// Package upcbh is the public API of the UPC Barnes-Hut reproduction: a
// distributed Barnes-Hut N-body simulator running on an emulated UPC
// (PGAS) runtime with a LogGP-style machine model, implementing every
// optimization level of "Optimizing the Barnes-Hut Algorithm in UPC"
// (Zhang, Behzad, Snir; 2011).
//
// Quick start:
//
//	opts := upcbh.DefaultOptions(16384, 8, upcbh.LevelSubspace)
//	sim, err := upcbh.New(opts)
//	res, err := sim.Run()
//	fmt.Println(res.Phases[upcbh.PhaseForce]) // simulated seconds
//
// The simulated per-phase times in Result correspond to the rows of the
// paper's tables; Result.Bodies is the real physical outcome, validated
// against direct summation in the test suite.
//
// Two execution backends are available (Options.ExecMode). ModeSimulate
// (the default, shown above) charges every UPC operation against the
// LogGP machine model and reports simulated cluster times. ModeNative
// runs the identical algorithm as a real parallel Go program — goroutine
// per UPC thread, real locks and barriers, no cost accounting — and
// reports measured wall-clock phase times instead:
//
//	opts.ExecMode = upcbh.ModeNative
//	sim, err := upcbh.New(opts)
//	res, err := sim.Run() // res.Phases are now measured wall seconds
//
// The physics is identical between modes; only the timing policy differs.
package upcbh

import (
	"io"

	"upcbh/internal/core"
	"upcbh/internal/machine"
	"upcbh/internal/nbody"
	"upcbh/internal/vec"
)

// Re-exported core types. See the internal/core documentation for
// details; these aliases are the supported public surface.
type (
	// Options configures a simulation run.
	Options = core.Options
	// Result is the outcome of a run: per-phase simulated times,
	// per-thread breakdowns, operation statistics, and final body state.
	Result = core.Result
	// Sim is a configured simulation. Besides run-to-completion (Run),
	// it supports a steppable session lifecycle: Step(k) advances k
	// time-steps and pauses, Snapshot copies out the paused state,
	// Finish collects the Result, Release recycles storage:
	//
	//	sim, _ := upcbh.New(opts)
	//	for done := 0; done < opts.Steps; done++ {
	//		_ = sim.Step(1)
	//		snap, _ := sim.Snapshot() // bodies, clocks, phase tables
	//		_ = snap
	//	}
	//	res, _ := sim.Finish()
	//	sim.Release()
	Sim = core.Sim
	// Snapshot is the observable state of a paused simulation at a step
	// boundary (see Sim.Snapshot); bhrun -stream emits one per line.
	Snapshot = core.Snapshot
	// Level is a cumulative optimization level from the paper.
	Level = core.Level
	// ExecMode selects the execution backend: cost-modelled simulation
	// (ModeSimulate, the paper reproduction) or real parallel execution
	// with wall-clock timing (ModeNative).
	ExecMode = core.ExecMode
	// Phase identifies one phase of a time-step.
	Phase = core.Phase
	// Body is one simulated particle.
	Body = nbody.Body
	// Scenario is a named, seeded initial-condition generator; select
	// one by name via Options.Scenario.
	Scenario = nbody.Scenario
	// V3 is a 3-component vector.
	V3 = vec.V3
	// Machine describes the emulated cluster configuration.
	Machine = machine.Machine
	// MachineParams holds the LogGP cost-model constants.
	MachineParams = machine.Params
)

// Optimization levels (§4-§6 of the paper), cumulative.
const (
	LevelBaseline     = core.LevelBaseline
	LevelScalars      = core.LevelScalars
	LevelRedistribute = core.LevelRedistribute
	LevelCacheTree    = core.LevelCacheTree
	LevelMergedBuild  = core.LevelMergedBuild
	LevelAsync        = core.LevelAsync
	LevelSubspace     = core.LevelSubspace
	NumLevels         = core.NumLevels
)

// Execution backends (Options.ExecMode).
const (
	ModeSimulate = core.ModeSimulate
	ModeNative   = core.ModeNative
)

// Time-step phases (the rows of the paper's tables).
const (
	PhaseTree      = core.PhaseTree
	PhaseCofM      = core.PhaseCofM
	PhasePartition = core.PhasePartition
	PhaseRedist    = core.PhaseRedist
	PhaseForce     = core.PhaseForce
	PhaseAdvance   = core.PhaseAdvance
	NumPhases      = core.NumPhases
)

// New creates a simulation from options.
func New(opts Options) (*Sim, error) { return core.New(opts) }

// Restore reconstructs a paused simulation from a checkpoint container
// written by Sim.Checkpoint (or Sim.CheckpointFile): the restored Sim
// resumes at the captured step, and its remaining trajectory — phase
// tables, snapshots, and the final Result — is byte-identical to the
// run that wrote the checkpoint continuing uninterrupted. A corrupted,
// truncated, or mismatched container is rejected with a descriptive
// error.
func Restore(r io.Reader) (*Sim, error) { return core.Restore(r) }

// DefaultOptions returns paper/SPLASH2 defaults for n bodies on the given
// number of emulated UPC threads (one per node) at an optimization level.
func DefaultOptions(n, threads int, level Level) Options {
	return core.DefaultOptions(n, threads, level)
}

// ParseLevel maps a level name ("baseline", ..., "subspace") to a Level.
func ParseLevel(s string) (Level, error) { return core.ParseLevel(s) }

// ParseExecMode maps a backend name ("simulate", "native") to an ExecMode.
func ParseExecMode(s string) (ExecMode, error) { return core.ParseExecMode(s) }

// ParseScenario maps a workload-scenario name ("plummer", "two-plummer",
// "uniform", "clustered", "disk"; "" means "plummer") to its generator.
func ParseScenario(s string) (Scenario, error) { return nbody.ParseScenario(s) }

// Scenarios returns the registered workload scenarios in presentation
// order.
func Scenarios() []Scenario { return nbody.Scenarios() }

// GenerateScenario generates n bodies from the named scenario with a
// deterministic seed.
func GenerateScenario(name string, n int, seed uint64) ([]Body, error) {
	return nbody.GenerateScenario(name, n, seed)
}

// NewMachine describes an emulated cluster: total UPC threads, threads
// packed per node, and whether the threaded (-pthreads) runtime is used.
func NewMachine(threads, threadsPerNode int, pthreads bool) (*Machine, error) {
	return machine.New(threads, threadsPerNode, pthreads, machine.Power5())
}

// Power5Params returns the cost-model preset calibrated to the paper's
// IBM Power5/LAPI cluster.
func Power5Params() MachineParams { return machine.Power5() }

// Plummer generates n bodies from the Plummer model (the paper's initial
// conditions) with a deterministic seed.
func Plummer(n int, seed uint64) []Body { return nbody.Plummer(n, seed) }

// TwoPlummer generates a two-cluster collision setup.
func TwoPlummer(n int, seed uint64, offset, vrel V3) []Body {
	return nbody.TwoPlummer(n, seed, offset, vrel)
}

// Energy returns kinetic and potential energy by direct summation
// (O(n^2); diagnostics at modest n).
func Energy(bodies []Body, eps float64) (kinetic, potential float64) {
	return nbody.Energy(bodies, eps)
}
