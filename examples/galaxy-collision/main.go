// Galaxy collision: two Plummer spheres on an approach orbit, simulated
// with the fully optimized distributed Barnes-Hut code. Tracks the
// separation of the two mass centers over time — the kind of workload the
// paper's introduction motivates (dynamic, irregular communication: the
// octree and body ownership change shape as the clusters interpenetrate).
package main

import (
	"fmt"
	"log"

	"upcbh"
)

func main() {
	const (
		bodies  = 4096
		threads = 8
		steps   = 24
	)
	// The two-cluster collision setup is a registered workload scenario:
	// the first simulation generates it from Options (no hand-built
	// bodies), and later steps continue from the previous final state.
	opts := upcbh.DefaultOptions(bodies, threads, upcbh.LevelSubspace)
	opts.Scenario = "two-plummer"
	opts.Seed = 99
	opts.Steps, opts.Warmup = 1, 0 // drive step by step to sample the trajectory

	fmt.Printf("galaxy collision: 2 x %d bodies, %d emulated threads\n\n", bodies/2, threads)
	fmt.Printf("%6s %12s %14s %14s\n", "step", "separation", "sim t/step(s)", "exchanged")

	var state []upcbh.Body
	for step := 0; step < steps; step++ {
		sim, err := upcbh.New(opts)
		if err != nil {
			log.Fatal(err)
		}
		if state != nil {
			sim.SetBodies(state) // continue the trajectory
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		state = res.Bodies
		if step%3 == 0 {
			fmt.Printf("%6d %12.4f %14.6f %13.1f%%\n",
				step, separation(state), res.Total(), 100*res.MigratedFraction)
		}
	}
	fmt.Println("\nclusters have passed through each other; ownership and tree shape")
	fmt.Println("changed every step — the dynamic irregular pattern the paper targets.")
}

// separation returns the distance between the mass centers of the two
// halves (body IDs are stable, so halves remain identifiable).
func separation(bodies []upcbh.Body) float64 {
	var a, b upcbh.V3
	var ma, mb float64
	for i := range bodies {
		if int(bodies[i].ID) < len(bodies)/2 {
			a = a.AddScaled(bodies[i].Pos, bodies[i].Mass)
			ma += bodies[i].Mass
		} else {
			b = b.AddScaled(bodies[i].Pos, bodies[i].Mass)
			mb += bodies[i].Mass
		}
	}
	return a.Scale(1 / ma).Sub(b.Scale(1 / mb)).Len()
}
