// Quickstart: run a fully optimized Barnes-Hut simulation on an emulated
// 8-node cluster and print the paper-style phase breakdown plus energy
// conservation diagnostics.
package main

import (
	"fmt"
	"log"

	"upcbh"
)

func main() {
	const (
		bodies  = 8192
		threads = 8
	)
	// Initial energy (O(n^2) diagnostic on the same deterministic ICs).
	initial := upcbh.Plummer(bodies, 42)
	k0, p0 := upcbh.Energy(initial, 0.05)

	opts := upcbh.DefaultOptions(bodies, threads, upcbh.LevelSubspace)
	opts.Seed = 42
	opts.Steps, opts.Warmup = 6, 2

	sim, err := upcbh.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Barnes-Hut, %d bodies on %d emulated UPC threads, all optimizations\n\n", bodies, threads)
	fmt.Printf("%-16s %12s %6s\n", "phase", "sim t(s)", "%")
	for ph := upcbh.Phase(0); ph < upcbh.NumPhases; ph++ {
		if res.Phases[ph] == 0 {
			continue
		}
		fmt.Printf("%-16s %12.6f %6.1f\n", ph, res.Phases[ph], 100*res.Phases[ph]/res.Total())
	}
	fmt.Printf("%-16s %12.6f\n\n", "Total", res.Total())

	k1, p1 := upcbh.Energy(res.Bodies, 0.05)
	e0, e1 := k0+p0, k1+p1
	fmt.Printf("interactions: %d   messages: %d   gather single-source: %.0f%%\n",
		res.Interactions, res.Stats.Msgs, 100*res.Stats.SingleSourceFraction())
	fmt.Printf("energy: %.6f -> %.6f (drift %.4f%%)\n", e0, e1, 100*(e1-e0)/-e0)
}
