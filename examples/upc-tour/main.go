// UPC runtime tour: exercises the PGAS substrate directly — the emulated
// equivalents of upc_alloc, pointer-to-shared dereference,
// upc_memget_ilist, bupc_memget_vlist_async, upc_lock, barriers and
// collectives — and shows how simulated time exposes communication cost.
//
// This is the substrate the Barnes-Hut code is written against; use it to
// build other irregular PGAS applications.
package main

import (
	"fmt"

	"upcbh/internal/machine"
	"upcbh/internal/upc"
)

func main() {
	m := machine.MustNew(4, 1, false, machine.Power5())
	rt := upc.NewRuntime(m)
	heap := upc.NewHeap[[16]float64](rt, 4096)
	lock := rt.NewLock(0)
	counter := upc.NewScalar(rt, 0.0)

	rt.Run(func(t *upc.Thread) {
		me := t.ID()

		// Every thread allocates a block in its local shared memory.
		block := heap.Alloc(t, 64)
		for i := 0; i < 64; i++ {
			v := heap.Local(t, upc.Ref{Thr: int32(me), Idx: block.Idx + int32(i)})
			v[0] = float64(me*1000 + i)
		}
		t.Barrier()

		// Fine-grained remote dereference: expensive (a round trip each).
		before := t.Now()
		right := (me + 1) % t.P()
		var sum float64
		for i := 0; i < 8; i++ {
			v := heap.Get(t, upc.Ref{Thr: int32(right), Idx: int32(i)})
			sum += v[0]
		}
		fine := t.Now() - before

		// Aggregated gather of the same data: one message.
		before = t.Now()
		refs := make([]upc.Ref, 8)
		for i := range refs {
			refs[i] = upc.Ref{Thr: int32(right), Idx: int32(i)}
		}
		dst := make([][16]float64, 8)
		heap.Gather(t, refs, dst)
		coarse := t.Now() - before

		// Non-blocking: overlap the transfer with local work.
		before = t.Now()
		h := heap.GatherAsync(t, refs, dst)
		for i := 0; i < 1000; i++ {
			t.Charge(100e-9) // useful local computation
		}
		t.WaitSync(h)
		overlapped := t.Now() - before

		if me == 0 {
			fmt.Printf("8 fine-grained remote derefs: %8.1f us simulated\n", fine*1e6)
			fmt.Printf("1 aggregated gather (ilist):  %8.1f us simulated\n", coarse*1e6)
			fmt.Printf("gather overlapped w/ compute: %8.1f us simulated (100us of it useful work)\n", overlapped*1e6)
		}
		t.Barrier()

		// Locks serialize in simulated time too.
		lock.Acquire(t)
		counter.Write(t, counter.Read(t)+1)
		lock.Release(t)
		t.Barrier()

		// Collectives: scalar and vector reduce&broadcast, all-to-all.
		total := upc.AllReduceF64(t, float64(me+1), upc.OpSum)
		vec := upc.AllReduceVecF64(t, []float64{float64(me), 1}, upc.OpSum)
		send := make([][]int, t.P())
		for j := range send {
			send[j] = []int{me*10 + j}
		}
		recv := upc.AllToAll(t, send)
		if me == 0 {
			fmt.Printf("\ncounter after locked updates: %.0f (threads: %d)\n", counter.Peek(), t.P())
			fmt.Printf("allreduce sum(1..P) = %.0f, vector reduce = %v\n", total, vec)
			fmt.Printf("alltoall row 0 received: %d %d %d %d\n", recv[0][0], recv[1][0], recv[2][0], recv[3][0])
			fmt.Printf("final simulated clock on thread 0: %.1f us\n", t.Now()*1e6)
		}
	})
}
