// Scaling study: compare the optimization levels of the paper on one
// problem size across thread counts — a miniature of Figure 5 — and print
// the cumulative speedup each optimization contributes.
package main

import (
	"fmt"
	"log"

	"upcbh"
)

func main() {
	const bodies = 8192
	threadCounts := []int{1, 4, 16, 64}
	levels := []upcbh.Level{
		upcbh.LevelBaseline, upcbh.LevelScalars, upcbh.LevelRedistribute,
		upcbh.LevelCacheTree, upcbh.LevelMergedBuild, upcbh.LevelAsync, upcbh.LevelSubspace,
	}

	fmt.Printf("simulated total time (s), %d bodies, 2 measured steps\n\n", bodies)
	fmt.Printf("%-14s", "level\\threads")
	for _, th := range threadCounts {
		fmt.Printf("%12d", th)
	}
	fmt.Println()

	totals := map[upcbh.Level][]float64{}
	for _, level := range levels {
		fmt.Printf("%-14s", level)
		for _, th := range threadCounts {
			opts := upcbh.DefaultOptions(bodies, th, level)
			sim, err := upcbh.New(opts)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				log.Fatal(err)
			}
			totals[level] = append(totals[level], res.Total())
			fmt.Printf("%12.4f", res.Total())
		}
		fmt.Println()
	}

	last := threadCounts[len(threadCounts)-1]
	improvement := totals[upcbh.LevelBaseline][len(threadCounts)-1] /
		totals[upcbh.LevelSubspace][len(threadCounts)-1]
	fmt.Printf("\nat %d threads, the full optimization stack is %.0fx faster than the\n", last, improvement)
	fmt.Printf("baseline shared-memory-style port (the paper reports 272x-1644x at 2-112 nodes).\n")
}
