package machine

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Power5().Validate(); err != nil {
		t.Fatalf("Power5 preset invalid: %v", err)
	}
	bad := Power5()
	bad.Latency = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero latency passed validation")
	}
	bad = Power5()
	bad.InteractionCost = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative interaction cost passed validation")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 1, false, Power5()); err == nil {
		t.Error("zero threads accepted")
	}
	m, err := New(8, 0, false, Power5())
	if err != nil {
		t.Fatal(err)
	}
	if m.ThreadsPerNode != 1 {
		t.Errorf("threadsPerNode default = %d, want 1", m.ThreadsPerNode)
	}
}

func TestTopology(t *testing.T) {
	m := MustNew(16, 4, true, Power5())
	if m.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", m.NumNodes())
	}
	if m.Node(0) != 0 || m.Node(3) != 0 || m.Node(4) != 1 || m.Node(15) != 3 {
		t.Error("node mapping wrong")
	}
	if m.Path(0, 0) != PathSelf {
		t.Error("self path wrong")
	}
	if m.Path(0, 3) != PathSmem {
		t.Error("same-node pthread path wrong")
	}
	if m.Path(0, 4) != PathNetwork {
		t.Error("cross-node path wrong")
	}
	proc := MustNew(16, 4, false, Power5())
	if proc.Path(0, 3) != PathLoopback {
		t.Error("same-node process path wrong")
	}
}

func TestMessageCostOrdering(t *testing.T) {
	m := MustNew(16, 4, true, Power5())
	self := m.Message(0, 0, 64)
	smem := m.Message(0, 1, 64)
	net := m.Message(0, 5, 64)
	if !(self.Transit <= smem.Transit && smem.Transit < net.Transit) {
		t.Errorf("transit ordering violated: self=%g smem=%g net=%g",
			self.Transit, smem.Transit, net.Transit)
	}
	proc := MustNew(16, 4, false, Power5())
	loop := proc.Message(0, 1, 64)
	if loop.Transit <= net.Transit {
		t.Errorf("loopback should exceed network on this model (paper anecdote): loop=%g net=%g",
			loop.Transit, net.Transit)
	}
}

// Property: message cost is monotone non-decreasing in size.
func TestQuickMessageMonotone(t *testing.T) {
	m := Default(8)
	f := func(a, b uint16) bool {
		small, big := int(a), int(b)
		if small > big {
			small, big = big, small
		}
		cs := m.Message(0, 3, small)
		cb := m.Message(0, 3, big)
		return cs.Transit <= cb.Transit && cs.TargetBusy <= cb.TargetBusy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPthreadComputeFactor(t *testing.T) {
	proc := MustNew(4, 1, false, Power5())
	thr := MustNew(4, 1, true, Power5())
	if proc.Compute(1.0) != 1.0 {
		t.Error("process-mode compute inflated")
	}
	if thr.Compute(1.0) != Power5().PthreadCPUFactor {
		t.Error("pthread-mode compute not inflated")
	}
}

func TestBarrierCostGrowsWithNodes(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 2, 8, 64, 512} {
		c := Default(n).BarrierCost()
		if c < prev {
			t.Errorf("barrier cost decreased at %d nodes: %g < %g", n, c, prev)
		}
		prev = c
	}
}

func TestCollectiveCostGrowsWithPayload(t *testing.T) {
	m := Default(64)
	if m.CollectiveCost(8) >= m.CollectiveCost(80000) {
		t.Error("collective cost not increasing with payload")
	}
}
