// Package machine models the parallel machine the paper ran on: a cluster
// of SMP nodes connected by an rDMA-capable network, programmed either with
// one process per node or with the Berkeley UPC -pthreads threaded runtime.
//
// The model is LogGP-flavoured. Every UPC thread has a simulated clock
// (owned by internal/upc); this package only computes costs:
//
//   - local computation is charged from explicit operation counts
//     (interactions, tree levels, bytes copied) times calibrated per-op
//     costs, optionally inflated by the threaded-runtime CPU factor;
//   - a remote message costs the sender o (send overhead), takes L + n*G
//     on the wire, and occupies the target NIC for g + n*G, which is how
//     hot-spots (shared scalars on thread 0, contended tree merges)
//     serialize in simulated time;
//   - message parameters depend on the pair topology: same thread, same
//     node under -pthreads (shared memory), same node across processes
//     (loopback; pathological on the paper's AIX/LAPI stack), or cross
//     node (network).
//
// The Power5 preset is calibrated against the paper's absolute
// single-thread numbers and its reported remote-access magnitudes; see
// DESIGN.md §3 for the calibration notes.
package machine

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the cost-model constants. All times are in seconds.
type Params struct {
	// Computation.
	InteractionCost float64 `json:"interaction_cost"` // one body/cell gravity interaction (flops incl. sqrt)
	BodyUpdateCost  float64 `json:"body_update_cost"` // one leapfrog position/velocity update
	TreeLevelCost   float64 `json:"tree_level_cost"`  // descending one level during insertion
	CellInitCost    float64 `json:"cell_init_cost"`   // creating/initializing one cell
	ByteCopyCost    float64 `json:"byte_copy_cost"`   // memcpy, per byte (local buffer copies, cell caching)
	GPtrDerefCost   float64 `json:"gptr_deref_cost"`  // extra cost of dereferencing a pointer-to-shared that is local
	LocalDerefCost  float64 `json:"local_deref_cost"` // plain C pointer dereference

	// Network (cross-node).
	SendOverhead float64 `json:"send_overhead"` // o: CPU time on the sender per message
	Latency      float64 `json:"latency"`       // L: wire latency
	GapPerByte   float64 `json:"gap_per_byte"`  // G: 1/bandwidth
	GapPerMsg    float64 `json:"gap_per_msg"`   // g: NIC occupancy per message at the target

	// Intra-node shared memory (threads of one process, -pthreads).
	SmemOverhead   float64 `json:"smem_overhead"`     // per-access overhead through the shared segment
	SmemGapPerByte float64 `json:"smem_gap_per_byte"` // 1/memcpy bandwidth

	// Intra-node across processes (no -pthreads, >1 process per node).
	// The paper observed this to be catastrophically slow on AIX/LAPI
	// (36000s vs 26s for 16 ranks on one node), so the loopback path
	// carries a large per-message overhead.
	LoopbackOverhead float64 `json:"loopback_overhead"`
	LoopbackPerByte  float64 `json:"loopback_per_byte"`

	// Synchronization.
	LockOverhead  float64 `json:"lock_overhead"`   // acquiring/releasing a upc_lock, on top of messaging
	BarrierPerHop float64 `json:"barrier_per_hop"` // cost per log2(P) combining step

	// PthreadCPUFactor inflates computation cost when the threaded runtime
	// is used (GASNet polling interference; the paper measured processes
	// ~1.4-2x faster than pthreads at equal thread counts).
	PthreadCPUFactor float64 `json:"pthread_cpu_factor"`
}

// Power5 returns parameters calibrated to the paper's IBM Power5/LAPI
// cluster. Calibration anchors:
//
//   - 2M bodies, 1 thread, optimized force computation ~136 s per two
//     time-steps => ~350 ns per interaction at ~190 interactions/body.
//   - baseline 1-thread force computation ~190 s: the extra ~40 ns per
//     shared-pointer dereference (3-4 derefs per interaction) matches the
//     ~25% gain the paper reports from global->local pointer casting.
//   - LAPI small-message round trip ~30 us; ~0.5 GB/s effective bandwidth.
func Power5() Params {
	return Params{
		InteractionCost: 350e-9,
		BodyUpdateCost:  75e-9,
		TreeLevelCost:   120e-9,
		CellInitCost:    400e-9,
		ByteCopyCost:    0.25e-9,
		GPtrDerefCost:   40e-9,
		LocalDerefCost:  1e-9,

		SendOverhead: 3e-6,
		Latency:      12e-6,
		GapPerByte:   2e-9, // 0.5 GB/s
		GapPerMsg:    1.5e-6,

		SmemOverhead:   120e-9,
		SmemGapPerByte: 0.4e-9,

		LoopbackOverhead: 300e-6,
		LoopbackPerByte:  4e-9,

		LockOverhead:  2e-6,
		BarrierPerHop: 15e-6,

		PthreadCPUFactor: 1.9,
	}
}

// Validate reports an error if any parameter is non-positive where a
// positive value is required.
func (p Params) Validate() error {
	pos := map[string]float64{
		"InteractionCost":  p.InteractionCost,
		"SendOverhead":     p.SendOverhead,
		"Latency":          p.Latency,
		"GapPerByte":       p.GapPerByte,
		"GapPerMsg":        p.GapPerMsg,
		"BarrierPerHop":    p.BarrierPerHop,
		"PthreadCPUFactor": p.PthreadCPUFactor,
	}
	for name, v := range pos {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("machine: parameter %s must be positive, got %g", name, v)
		}
	}
	return nil
}

// PathKind classifies the communication path between two UPC threads.
type PathKind int

const (
	// PathSelf is an access by a thread to its own shard.
	PathSelf PathKind = iota
	// PathSmem is a same-node access under the -pthreads runtime.
	PathSmem
	// PathLoopback is a same-node access between distinct processes.
	PathLoopback
	// PathNetwork is a cross-node access.
	PathNetwork
)

// Machine describes one experiment configuration: how many UPC threads run,
// how they are packed onto nodes, and whether the threaded (-pthreads)
// runtime is used for same-node threads.
type Machine struct {
	Threads        int    `json:"threads"`
	ThreadsPerNode int    `json:"threads_per_node"`
	Pthreads       bool   `json:"pthreads"` // true: one process/node with pthreads; false: one process per thread
	Par            Params `json:"params"`
}

// Key returns a canonical string identifying the machine configuration,
// including every cost-model constant: two Machines with equal keys cost
// identical simulated programs identically. Used by the experiment
// harness to memoize runs.
func (m *Machine) Key() string {
	if m == nil {
		return "mach{nil}"
	}
	return fmt.Sprintf("mach{t=%d,pn=%d,pth=%t,par=%.17g}", m.Threads, m.ThreadsPerNode, m.Pthreads,
		[]float64{
			m.Par.InteractionCost, m.Par.BodyUpdateCost, m.Par.TreeLevelCost, m.Par.CellInitCost,
			m.Par.ByteCopyCost, m.Par.GPtrDerefCost, m.Par.LocalDerefCost,
			m.Par.SendOverhead, m.Par.Latency, m.Par.GapPerByte, m.Par.GapPerMsg,
			m.Par.SmemOverhead, m.Par.SmemGapPerByte,
			m.Par.LoopbackOverhead, m.Par.LoopbackPerByte,
			m.Par.LockOverhead, m.Par.BarrierPerHop, m.Par.PthreadCPUFactor,
		})
}

// New builds a Machine. threadsPerNode <= 0 means one thread per node.
func New(threads, threadsPerNode int, pthreads bool, par Params) (*Machine, error) {
	if threads <= 0 {
		return nil, errors.New("machine: need at least one thread")
	}
	if threadsPerNode <= 0 {
		threadsPerNode = 1
	}
	if err := par.Validate(); err != nil {
		return nil, err
	}
	return &Machine{Threads: threads, ThreadsPerNode: threadsPerNode, Pthreads: pthreads, Par: par}, nil
}

// MustNew is New but panics on error; for tests and presets.
func MustNew(threads, threadsPerNode int, pthreads bool, par Params) *Machine {
	m, err := New(threads, threadsPerNode, pthreads, par)
	if err != nil {
		panic(err)
	}
	return m
}

// Default returns the configuration used by most paper experiments in
// sections 4-5: one process per node, i.e. every thread on its own node.
func Default(threads int) *Machine {
	return MustNew(threads, 1, false, Power5())
}

// Node returns the node that thread t occupies.
func (m *Machine) Node(t int) int { return t / m.ThreadsPerNode }

// NumNodes returns the number of occupied nodes.
func (m *Machine) NumNodes() int {
	return (m.Threads + m.ThreadsPerNode - 1) / m.ThreadsPerNode
}

// Path classifies the communication path from thread a to thread b.
func (m *Machine) Path(a, b int) PathKind {
	if a == b {
		return PathSelf
	}
	// One thread per node — the common configuration — needs no node
	// arithmetic: every distinct pair crosses the network. Message runs
	// per modelled remote access, so the two integer divisions matter.
	if m.ThreadsPerNode == 1 {
		return PathNetwork
	}
	switch {
	case m.Node(a) != m.Node(b):
		return PathNetwork
	case m.Pthreads:
		return PathSmem
	default:
		return PathLoopback
	}
}

// Compute inflates a raw computation cost by the threaded-runtime factor.
// The paper observed the -pthreads build to be slower than processes even
// at one thread per node (Table 8 vs 9), so the factor applies whenever
// the threaded runtime is used.
func (m *Machine) Compute(sec float64) float64 {
	if m.Pthreads {
		return sec * m.Par.PthreadCPUFactor
	}
	return sec
}

// MsgCost describes the simulated cost of one one-sided message.
type MsgCost struct {
	SenderBusy float64 // CPU time charged to the sender before it can continue (blocking ops also wait for Transit)
	Transit    float64 // time from send to data availability, excluding queueing at the target
	TargetBusy float64 // NIC occupancy at the target (serializes hot-spots)
}

// NetOnly reports whether every distinct thread pair communicates over
// the network path (one thread per node) — the configuration of most
// paper experiments. Hot per-message paths use it to take NetMessage,
// which is small enough to inline.
func (m *Machine) NetOnly() bool { return m.ThreadsPerNode == 1 }

// NetMessage is Message for a known network path — Message's PathNetwork
// arm delegates here, so the hot fast path in the simulate runtime and
// the general classifier cannot diverge.
func (m *Machine) NetMessage(bytes int) MsgCost {
	if bytes < 0 {
		bytes = 0
	}
	fb := float64(bytes)
	return MsgCost{
		SenderBusy: m.Par.SendOverhead,
		Transit:    m.Par.Latency + fb*m.Par.GapPerByte,
		TargetBusy: m.Par.GapPerMsg + fb*m.Par.GapPerByte,
	}
}

// Message returns the cost of sending `bytes` from thread a to thread b.
func (m *Machine) Message(a, b, bytes int) MsgCost {
	if bytes < 0 {
		bytes = 0
	}
	fb := float64(bytes)
	switch m.Path(a, b) {
	case PathSelf:
		// A "message" to self degenerates to a memcpy.
		return MsgCost{SenderBusy: fb * m.Par.ByteCopyCost}
	case PathSmem:
		return MsgCost{
			SenderBusy: m.Par.SmemOverhead,
			Transit:    m.Par.SmemOverhead + fb*m.Par.SmemGapPerByte,
			TargetBusy: 0, // shared-memory copy does not involve a NIC
		}
	case PathLoopback:
		return MsgCost{
			SenderBusy: m.Par.LoopbackOverhead,
			Transit:    m.Par.LoopbackOverhead + fb*m.Par.LoopbackPerByte,
			TargetBusy: m.Par.LoopbackOverhead + fb*m.Par.LoopbackPerByte,
		}
	default: // PathNetwork
		return m.NetMessage(bytes)
	}
}

// BarrierCost returns the simulated cost of one barrier across all threads:
// a combining tree over nodes plus a cheap intra-node phase.
func (m *Machine) BarrierCost() float64 {
	nodes := m.NumNodes()
	c := m.Par.BarrierPerHop * log2ceil(nodes)
	if m.ThreadsPerNode > 1 {
		intra := m.Par.SmemOverhead
		if !m.Pthreads {
			intra = m.Par.LoopbackOverhead
		}
		c += intra * log2ceil(m.ThreadsPerNode)
	}
	return c
}

// CollectiveCost returns the simulated cost of one reduce&broadcast (or
// broadcast) collective carrying `bytes` per hop.
func (m *Machine) CollectiveCost(bytes int) float64 {
	hop := m.Par.SendOverhead + m.Par.Latency + float64(bytes)*m.Par.GapPerByte
	return hop * log2ceil(m.NumNodes()) * 2 // reduce then broadcast
}

func log2ceil(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(n)))
}
