package upc

import (
	"reflect"
	"unsafe"
)

// Stats counts the operations a thread performed; aggregated over threads
// they back the paper's in-text claims (message counts, gather source
// locality, etc.). Counters are owned by their thread and must only be
// aggregated after Run returns or at a barrier.
type Stats struct {
	Msgs        uint64
	Bytes       uint64
	RemoteGets  uint64
	RemotePuts  uint64
	LocalDerefs uint64
	GatherReqs  uint64
	// GatherSrcHist[k] counts aggregated gather requests that touched k
	// remote source threads (k>=8 buckets into the last slot).
	GatherSrcHist [9]uint64
	Barriers      uint64
	Collectives   uint64
	LockAcqs      uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Msgs += other.Msgs
	s.Bytes += other.Bytes
	s.RemoteGets += other.RemoteGets
	s.RemotePuts += other.RemotePuts
	s.LocalDerefs += other.LocalDerefs
	s.GatherReqs += other.GatherReqs
	for i := range s.GatherSrcHist {
		s.GatherSrcHist[i] += other.GatherSrcHist[i]
	}
	s.Barriers += other.Barriers
	s.Collectives += other.Collectives
	s.LockAcqs += other.LockAcqs
}

// Delta returns s - earlier, counter-wise; for phase-level profiling
// from two snapshots of one thread's counters.
func (s Stats) Delta(earlier Stats) Stats {
	d := s
	d.Msgs -= earlier.Msgs
	d.Bytes -= earlier.Bytes
	d.RemoteGets -= earlier.RemoteGets
	d.RemotePuts -= earlier.RemotePuts
	d.LocalDerefs -= earlier.LocalDerefs
	d.GatherReqs -= earlier.GatherReqs
	for i := range d.GatherSrcHist {
		d.GatherSrcHist[i] -= earlier.GatherSrcHist[i]
	}
	d.Barriers -= earlier.Barriers
	d.Collectives -= earlier.Collectives
	d.LockAcqs -= earlier.LockAcqs
	return d
}

// SingleSourceFraction returns the fraction of multi-cell gather requests
// that needed exactly one remote source thread (§5.5 reports >=93%).
func (s Stats) SingleSourceFraction() float64 {
	var total uint64
	for _, c := range s.GatherSrcHist[1:] {
		total += c
	}
	if total == 0 {
		return 1
	}
	return float64(s.GatherSrcHist[1]) / float64(total)
}

// TotalStats sums the per-thread counters. Only call after Run returns.
func (rt *Runtime) TotalStats() Stats {
	var agg Stats
	for _, t := range rt.threads {
		agg.Add(t.stats)
	}
	return agg
}

// ThreadClock returns thread i's clock (after Run returns): simulated
// seconds in ModeSimulate, wall-clock seconds since the epoch otherwise.
func (rt *Runtime) ThreadClock(i int) float64 { return rt.cost.now(rt.threads[i]) }

// MaxClock returns the maximum clock over all threads.
func (rt *Runtime) MaxClock() float64 {
	var mx float64
	for _, t := range rt.threads {
		if c := rt.cost.now(t); c > mx {
			mx = c
		}
	}
	return mx
}

// intSizeof returns the in-memory size of v as an int.
func intSizeof[T any](v T) int { return int(unsafe.Sizeof(v)) }

// payloadBytes returns the wire size of a collective payload: for slices
// the elements it carries (len * elem size), not the 24-byte slice
// header unsafe.Sizeof would report; for everything else the in-memory
// size. Collectives run once per phase at most, so the reflection is off
// any hot path.
func payloadBytes[T any](v T) int {
	rv := reflect.ValueOf(&v).Elem()
	if rv.Kind() == reflect.Slice {
		return rv.Len() * int(rv.Type().Elem().Size())
	}
	return intSizeof(v)
}
