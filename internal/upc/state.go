package upc

import (
	"fmt"
	"reflect"
	"unsafe"
)

// This file is the checkpoint/restore surface of the runtime: the
// portion of a Runtime's virtual-time state that persists across
// session step boundaries and therefore must survive a checkpoint.
// Everything else the scheduler owns — barrier/collective epochs, lock
// hold state, run queues — is provably quiescent at a completed pause
// (all live threads parked in sStep, no arrivals counted, no locks
// held), so a restored runtime reproduces it by construction and only
// the state below needs to travel (DESIGN.md §13).

// ThreadState is one thread's persistent clock and operation counters.
type ThreadState struct {
	Clock float64 `json:"clock"`
	Stats Stats   `json:"stats"`
}

// RuntimeState is the runtime's checkpointable state at a paused step
// gate.
type RuntimeState struct {
	Threads []ThreadState `json:"threads"`
	// NICAvail is the per-thread NIC availability time (simulate mode):
	// it carries serialization pressure across step boundaries.
	NICAvail []float64 `json:"nic_avail,omitempty"`
	// Sched is the cooperative-scheduler counter state; byte-exact
	// stepped equivalence includes SchedStats.
	Sched SchedStats `json:"sched"`
	// StepFirst is the thread that held the baton when the pause began:
	// Resume hands it the baton back, so the restored continuation is
	// scheduled exactly as the uninterrupted run's.
	StepFirst int32 `json:"step_first"`
}

// CaptureState snapshots the persistent runtime state. Only valid
// while a session is paused (every live thread parked at the step
// gate) — the moment no thread is running and every clock is final.
func (rt *Runtime) CaptureState() RuntimeState {
	st := RuntimeState{
		Threads:   make([]ThreadState, rt.n),
		StepFirst: -1,
	}
	for i, t := range rt.threads {
		st.Threads[i] = ThreadState{Clock: t.clock, Stats: t.stats}
	}
	if rt.coop != nil {
		st.NICAvail = make([]float64, rt.n)
		for i := range rt.nic {
			st.NICAvail[i] = rt.nic[i].availAt
		}
		st.Sched = rt.coop.stats
		st.StepFirst = rt.coop.stepFirst
	}
	return st
}

// RestoreState overwrites the persistent runtime state with a captured
// snapshot. Only valid while a session is paused; the snapshot must
// come from a runtime of the same thread count and mode.
func (rt *Runtime) RestoreState(st RuntimeState) error {
	if len(st.Threads) != rt.n {
		return fmt.Errorf("upc: restore of %d-thread state into %d-thread runtime", len(st.Threads), rt.n)
	}
	for i, t := range rt.threads {
		t.clock = st.Threads[i].Clock
		t.stats = st.Threads[i].Stats
	}
	if rt.coop != nil {
		if len(st.NICAvail) != rt.n {
			return fmt.Errorf("upc: restore with %d NIC states, want %d", len(st.NICAvail), rt.n)
		}
		for i := range rt.nic {
			rt.nic[i].availAt = st.NICAvail[i]
		}
		rt.coop.stats = st.Sched
		if st.StepFirst >= 0 {
			if int(st.StepFirst) >= rt.n {
				return fmt.Errorf("upc: restore step-first thread %d out of range", st.StepFirst)
			}
			// The restored pause must resume through the same thread the
			// original pause parked first, not whichever thread parked
			// first during the fresh runtime's setup.
			rt.coop.stepFirst = st.StepFirst
		}
	}
	return nil
}

// CaptureShard appends the raw bytes of the first Len(thr) elements of
// thread thr's shard to buf and returns the extended buffer. The bytes
// are the element storage verbatim — including any never-written gap
// slots from chunk-boundary skips, which the deterministic allocator
// reproduces and the application never reads.
func (h *Heap[T]) CaptureShard(thr int, buf []byte) []byte {
	sh := &h.shards[thr]
	cs := h.chunkSize
	for start := int32(0); start < sh.n; start += cs {
		end := start + cs
		if end > sh.n {
			end = sh.n
		}
		c := sh.table[start>>h.shift].Load()
		b := unsafe.Slice((*byte)(unsafe.Pointer(&(*c)[0])), int(cs)*h.elemSize)
		buf = append(buf, b[:int(end-start)*h.elemSize]...)
	}
	return buf
}

// RestoreShard overwrites the allocated elements of thread thr's shard
// with previously captured bytes. The shard must already hold exactly
// the right number of elements — the restore protocol reconstructs the
// allocation layout by re-running the deterministic setup, then
// overwrites the contents.
func (h *Heap[T]) RestoreShard(thr int, data []byte) error {
	sh := &h.shards[thr]
	if want := int(sh.n) * h.elemSize; want != len(data) {
		return fmt.Errorf("upc: restore shard %d: %d bytes captured, shard holds %d", thr, len(data), want)
	}
	cs := h.chunkSize
	for start := int32(0); start < sh.n; start += cs {
		end := start + cs
		if end > sh.n {
			end = sh.n
		}
		c := sh.table[start>>h.shift].Load()
		b := unsafe.Slice((*byte)(unsafe.Pointer(&(*c)[0])), int(cs)*h.elemSize)
		copy(b[:int(end-start)*h.elemSize], data[int(start)*h.elemSize:])
	}
	return nil
}

// ShardBytes returns the size in bytes of the allocated portion of
// thread thr's shard (what CaptureShard would append).
func (h *Heap[T]) ShardBytes(thr int) int {
	return int(h.shards[thr].n) * h.elemSize
}

// GrowShard extends thread thr's shard to exactly n allocated elements,
// materializing any missing chunks, without a Thread and without
// charging simulated cost. It exists for the restore path: a
// checkpointed run may have allocated buffers mid-flight (subspace
// buffer growth) that the fresh setup does not reproduce, so restore
// first grows the shard to the captured layout and then overwrites the
// contents with RestoreShard. Chunk contents are unspecified until
// overwritten.
func (h *Heap[T]) GrowShard(thr int, n int32) error {
	sh := &h.shards[thr]
	if n < sh.n {
		return fmt.Errorf("upc: GrowShard to %d elements, shard already holds %d", n, sh.n)
	}
	if n == sh.n {
		return nil
	}
	last := int((n - 1) >> h.shift)
	if last >= maxChunks {
		return fmt.Errorf("upc: GrowShard to %d elements exceeds shard capacity", n)
	}
	cs := int(h.chunkSize)
	p := heapPool(heapPoolKey{typ: reflect.TypeFor[T](), els: cs})
	for j := 0; j <= last; j++ {
		if sh.table[j].Load() != nil {
			continue
		}
		if h.recycle {
			if v := p.Get(); v != nil {
				sh.table[j].Store(v.(*[]T))
				continue
			}
		}
		c := make([]T, cs)
		sh.table[j].Store(&c)
	}
	sh.n = n
	return nil
}

// CaptureAvail returns each lock's simulated availability time — the
// only lock state that persists across a completed pause (no lock is
// held at a step boundary, but a contended lock's serialization
// horizon feeds the next acquisition's clock).
func (la *LockArray) CaptureAvail() []float64 {
	out := make([]float64, len(la.locks))
	for i, l := range la.locks {
		out[i] = l.availAt
	}
	return out
}

// RestoreAvail overwrites each lock's availability time.
func (la *LockArray) RestoreAvail(avail []float64) error {
	if len(avail) != len(la.locks) {
		return fmt.Errorf("upc: restore of %d lock states into %d locks", len(avail), len(la.locks))
	}
	for i, l := range la.locks {
		l.availAt = avail[i]
	}
	return nil
}

// Len returns the number of locks in the array.
func (la *LockArray) Len() int { return len(la.locks) }
