package upc

import (
	"testing"

	"upcbh/internal/machine"
)

// TestAllocChargesNoCost pins Heap.Alloc's documented behavior: the
// emulated upc_alloc is a local bump-pointer reservation and charges no
// simulated time — allocator overhead is folded into the operation that
// initializes the allocation (CellInitCost, ByteCopyCost).
func TestAllocChargesNoCost(t *testing.T) {
	rt := testRuntime(2)
	h := NewHeap[[16]float64](rt, 1024)
	rt.Run(func(th *Thread) {
		before := th.Now()
		for i := 0; i < 100; i++ {
			h.Alloc(th, 7)
		}
		if got := th.Now(); got != before {
			t.Errorf("thread %d: Alloc advanced the clock from %g to %g", th.ID(), before, got)
		}
	})
}

// TestCollectivePayloadSizing pins that Broadcast and AllGather charge
// the real element size (like AllToAll) rather than a hard-coded 8-byte
// scalar payload.
func TestCollectivePayloadSizing(t *testing.T) {
	type wide struct{ A, B, C, D, E, F float64 } // 48 bytes
	const threads = 4
	m := machine.Default(threads)

	rt := NewRuntime(m)
	rt.Run(func(th *Thread) {
		th.Barrier() // align clocks so the collective cost is the exact delta

		before := th.Now()
		Broadcast(th, 0, wide{A: float64(th.ID())})
		if got, want := th.Now()-before, m.CollectiveCost(48); !closeTo(got, want) {
			t.Errorf("thread %d: wide Broadcast cost %g, want %g", th.ID(), got, want)
		}

		before = th.Now()
		Broadcast(th, 0, th.ID())
		if got, want := th.Now()-before, m.CollectiveCost(8); !closeTo(got, want) {
			t.Errorf("thread %d: scalar Broadcast cost %g, want %g", th.ID(), got, want)
		}

		before = th.Now()
		AllGather(th, wide{A: float64(th.ID())})
		if got, want := th.Now()-before, m.CollectiveCost(48*threads); !closeTo(got, want) {
			t.Errorf("thread %d: wide AllGather cost %g, want %g", th.ID(), got, want)
		}

		// Slice payloads charge the elements carried, not the 24-byte
		// slice header (the mpibh sample-sort splitter exchange).
		before = th.Now()
		AllGather(th, make([]float64, 100))
		if got, want := th.Now()-before, m.CollectiveCost(8*100*threads); !closeTo(got, want) {
			t.Errorf("thread %d: slice AllGather cost %g, want %g", th.ID(), got, want)
		}
	})
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-15*(1+b)
}
