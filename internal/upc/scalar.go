package upc

import "sync"

// Scalar is a UPC shared scalar variable: by the language specification
// it has affinity to thread 0, so every read from another thread is a
// remote access — the §5.1 pathology. The optimized code replicates such
// values into thread-private copies instead of using Scalar reads.
type Scalar[T any] struct {
	rt *Runtime
	mu sync.RWMutex
	v  T
}

// NewScalar declares a shared scalar initialized to init.
func NewScalar[T any](rt *Runtime, init T) *Scalar[T] {
	return &Scalar[T]{rt: rt, v: init}
}

const scalarBytes = 8

// Read returns the value, charging a remote round trip to thread 0 when
// the caller is any other thread. The NIC occupancy at thread 0 makes
// frequent scalar reads a simulated hot-spot, as observed in the paper.
func (s *Scalar[T]) Read(t *Thread) T {
	if t.id == 0 {
		t.ChargeRaw(t.rt.mach.Par.GPtrDerefCost)
	} else {
		t.stats.RemoteGets++
		t.remoteRoundTrip(0, scalarBytes)
	}
	if t.rt.coop != nil {
		// Cooperative simulate: one thread runs at a time, and the
		// scheduler's baton handoffs order all accesses — no lock needed.
		// Baseline-level code reads scalars per interaction, so this is
		// a hot path.
		return s.v
	}
	s.mu.RLock()
	v := s.v
	s.mu.RUnlock()
	return v
}

// Write stores the value (remote put when not on thread 0).
func (s *Scalar[T]) Write(t *Thread, v T) {
	if t.id == 0 {
		t.ChargeRaw(t.rt.mach.Par.GPtrDerefCost)
	} else {
		t.stats.RemotePuts++
		t.remoteRoundTrip(0, scalarBytes)
	}
	if t.rt.coop != nil {
		s.v = v
		return
	}
	s.mu.Lock()
	s.v = v
	s.mu.Unlock()
}

// Peek reads the value without charging simulated cost. It is for the
// harness and tests, not for modelled application code.
func (s *Scalar[T]) Peek() T {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v
}

// Poke stores the value without charging simulated cost: the restore
// path overwriting a reconstructed simulation's scalars while the
// session is paused (no thread is running, so no charge may occur).
func (s *Scalar[T]) Poke(v T) {
	s.mu.Lock()
	s.v = v
	s.mu.Unlock()
}
