package upc

import (
	"encoding/json"
	"fmt"
	"time"

	"upcbh/internal/machine"
)

// ExecMode selects the execution backend of a Runtime: how operations are
// timed and what Thread.Now means. The mechanisms of the runtime (shared
// heap storage, data transfer, locks, barriers, collectives, poisoning)
// are identical in every mode; only the timing policy differs.
type ExecMode int

const (
	// ModeSimulate is the paper-reproduction backend: every operation
	// advances the calling thread's simulated LogGP clock, remote messages
	// occupy the target NIC, and all reported times are simulated seconds
	// on the modelled machine.
	ModeSimulate ExecMode = iota
	// ModeNative skips simulated-time accounting entirely: threads run as
	// plain goroutines with real locks and barriers, cost charges are
	// no-ops, and Thread.Now returns measured wall-clock seconds since the
	// runtime (or clock-reset) epoch — so phase timings in the harness
	// become real measured times on the host hardware.
	ModeNative
)

var execModeNames = [...]string{"simulate", "native"}

// String returns the mode's flag name ("simulate" or "native").
func (m ExecMode) String() string {
	if m < 0 || int(m) >= len(execModeNames) {
		return fmt.Sprintf("ExecMode(%d)", int(m))
	}
	return execModeNames[m]
}

// ParseExecMode maps a mode name back to an ExecMode.
func ParseExecMode(s string) (ExecMode, error) {
	for i, n := range execModeNames {
		if n == s {
			return ExecMode(i), nil
		}
	}
	return 0, fmt.Errorf("upc: unknown exec mode %q (want simulate|native)", s)
}

// MarshalJSON encodes the mode as its flag name ("simulate"/"native") so
// serialized reports stay readable and stable across reorderings.
func (m ExecMode) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON decodes a flag name back into an ExecMode.
func (m *ExecMode) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseExecMode(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// costModel is the seam between the runtime's mechanisms and its timing
// policy: every clock read, NIC reservation, and synchronization time
// alignment with non-trivial policy goes through it. Stats counting and
// the real synchronization primitives (channel locks, generation
// barriers, collective rendezvous) stay in the mechanism layer because
// they are mode-independent; the trivial per-operation clock ops
// (Thread.Charge/ChargeRaw/AdvanceTo) are implemented directly on
// Thread behind the Runtime.native flag, because they run millions of
// times per phase and must stay inlinable.
type costModel interface {
	mode() ExecMode

	// now returns thread t's current time: the simulated clock, or
	// wall-clock seconds since the runtime epoch.
	now(t *Thread) float64

	// barrier performs the time part of Thread.Barrier. It must rendezvous
	// through rt.bar in every mode (the real synchronization lives there).
	barrier(t *Thread)
	// collectiveCost returns the time charge of one collective carrying
	// `bytes` per hop; the rendezvous itself is handled by collSite.
	collectiveCost(t *Thread, bytes int) float64

	// remoteRoundTrip accounts a blocking one-sided transfer of `bytes`
	// between t and thread `target` (data copy happens in the caller).
	remoteRoundTrip(t *Thread, target, bytes int)
	// sendEvent accounts the sender side of a one-way message and returns
	// the time the data is fully received at `to`.
	sendEvent(t *Thread, to, bytes int) float64
	// gatherGroup accounts one per-source-thread message of an aggregated
	// gather and returns its completion time.
	gatherGroup(t *Thread, target, bytes int) float64
	// trySync polls an outstanding handle (one poll charge applies).
	trySync(t *Thread, h *Handle) bool

	// lockAcquired accounts the acquisition of l, after the real lock has
	// been taken; lockReleasing accounts the release, before the real lock
	// is handed back.
	lockAcquired(t *Thread, l *Lock)
	lockReleasing(t *Thread, l *Lock)

	// reset restarts the model's notion of time (simulated clocks and NIC
	// occupancy, or the wall-clock epoch).
	reset(rt *Runtime)
}

// simCost is the ModeSimulate policy: the LogGP cost model of
// internal/machine, with per-thread simulated clocks and NIC occupancy
// serialization. It is stateless; all state lives on Runtime/Thread.
type simCost struct{}

func (simCost) mode() ExecMode        { return ModeSimulate }
func (simCost) now(t *Thread) float64 { return t.clock }

func (simCost) barrier(t *Thread) {
	t.rt.coop.barrier(t)
}

func (simCost) collectiveCost(t *Thread, bytes int) float64 {
	return t.rt.mach.CollectiveCost(bytes)
}

// message dispatches the per-message cost: the inlinable network-only
// fast path (one thread per node, a != b — the hot configuration) or
// the general path classifier. Identical results by construction.
func message(m *machine.Machine, a, b, bytes int) machine.MsgCost {
	if a != b && m.NetOnly() {
		return m.NetMessage(bytes)
	}
	return m.Message(a, b, bytes)
}

func (simCost) remoteRoundTrip(t *Thread, target, bytes int) {
	mc := message(t.rt.mach, t.id, target, bytes)
	// Request reaches the target, queues at its NIC, then the reply
	// transits back.
	arrive := t.clock + mc.SenderBusy + mc.Transit
	start := t.rt.nicReserve(target, arrive, mc.TargetBusy)
	t.clock = start + mc.Transit
}

func (simCost) sendEvent(t *Thread, to, bytes int) float64 {
	c := message(t.rt.mach, t.id, to, bytes)
	t.clock += c.SenderBusy
	arrive := t.clock + c.Transit
	start := t.rt.nicReserve(to, arrive, c.TargetBusy)
	return start + c.TargetBusy
}

func (simCost) gatherGroup(t *Thread, target, bytes int) float64 {
	m := t.rt.mach
	if target == t.id {
		t.clock += float64(bytes) * m.Par.ByteCopyCost
		return t.clock
	}
	c := message(m, t.id, target, bytes)
	t.clock += c.SenderBusy
	arrive := t.clock + c.Transit
	start := t.rt.nicReserve(target, arrive, c.TargetBusy)
	return start + c.Transit
}

func (simCost) trySync(t *Thread, h *Handle) bool {
	t.clock += t.rt.mach.Par.LocalDerefCost * 50
	return t.clock >= h.CompleteAt
}

func (simCost) lockAcquired(t *Thread, l *Lock) {
	m := t.rt.mach
	c := m.Message(t.id, l.home, lockMsgBytes)
	// Request is serviced at the home no earlier than the lock frees up.
	req := t.clock + c.SenderBusy + c.Transit
	if l.availAt > req {
		req = l.availAt
	}
	t.clock = req + m.Par.LockOverhead + c.Transit
}

func (simCost) lockReleasing(t *Thread, l *Lock) {
	m := t.rt.mach
	c := m.Message(t.id, l.home, lockMsgBytes)
	l.availAt = t.clock + c.SenderBusy + c.Transit + m.Par.LockOverhead
	t.clock += c.SenderBusy
}

func (simCost) reset(rt *Runtime) {
	for _, t := range rt.threads {
		t.clock = 0
	}
	for i := range rt.nic {
		rt.nic[i].availAt = 0
	}
}

// nativeCost is the ModeNative policy: no simulated accounting at all.
// Time is the host wall clock, charges are no-ops, outstanding handles
// are complete as soon as they are issued (the data is staged at issue),
// and locks/barriers rely purely on their real synchronization. The
// runtime then executes the application with genuine goroutine
// parallelism at hardware speed.
type nativeCost struct {
	epoch time.Time
}

func (*nativeCost) mode() ExecMode { return ModeNative }

func (n *nativeCost) now(t *Thread) float64 { return time.Since(n.epoch).Seconds() }

func (*nativeCost) barrier(t *Thread) {
	t.rt.bar.wait(t.rt, 0, 0)
}

func (*nativeCost) collectiveCost(t *Thread, bytes int) float64 { return 0 }

func (*nativeCost) remoteRoundTrip(t *Thread, target, bytes int) {}

func (n *nativeCost) sendEvent(t *Thread, to, bytes int) float64 { return n.now(t) }

func (n *nativeCost) gatherGroup(t *Thread, target, bytes int) float64 { return 0 }

func (*nativeCost) trySync(t *Thread, h *Handle) bool { return true }

func (*nativeCost) lockAcquired(t *Thread, l *Lock)  {}
func (*nativeCost) lockReleasing(t *Thread, l *Lock) {}

func (n *nativeCost) reset(rt *Runtime) {
	// Thread clocks are never read in native mode; the epoch is the only
	// time state this policy owns.
	n.epoch = time.Now()
}

// newCostModel builds the policy object for a mode.
func newCostModel(mode ExecMode) costModel {
	switch mode {
	case ModeNative:
		return &nativeCost{epoch: time.Now()}
	default:
		return simCost{}
	}
}

// lockMsgBytes is the modelled wire size of a lock protocol message.
const lockMsgBytes = 16
