package upc

import (
	"sync/atomic"
	"testing"

	"upcbh/internal/machine"
)

func testRuntime(threads int) *Runtime {
	return NewRuntime(machine.Default(threads))
}

func TestRunSPMD(t *testing.T) {
	rt := testRuntime(8)
	var count atomic.Int64
	seen := make([]bool, 8)
	rt.Run(func(th *Thread) {
		count.Add(1)
		seen[th.ID()] = true
		if th.P() != 8 {
			t.Errorf("P() = %d", th.P())
		}
	})
	if count.Load() != 8 {
		t.Fatalf("ran %d threads", count.Load())
	}
	for i, s := range seen {
		if !s {
			t.Errorf("thread %d never ran", i)
		}
	}
}

func TestRunPanicPropagates(t *testing.T) {
	rt := testRuntime(4)
	defer func() {
		if recover() == nil {
			t.Error("panic in thread did not propagate")
		}
	}()
	rt.Run(func(th *Thread) {
		if th.ID() == 2 {
			panic("boom")
		}
	})
}

func TestBarrierAlignsClocks(t *testing.T) {
	rt := testRuntime(4)
	rt.Run(func(th *Thread) {
		th.ChargeRaw(float64(th.ID()) * 1e-3) // skewed clocks
		th.Barrier()
		if th.Now() < 3e-3 {
			t.Errorf("thread %d clock %g below max participant", th.ID(), th.Now())
		}
		base := th.Now()
		th.Barrier()
		if th.Now() <= base {
			t.Errorf("barrier cost not charged")
		}
	})
}

func TestHeapLocalRemoteCosts(t *testing.T) {
	rt := testRuntime(2)
	h := NewHeap[[8]float64](rt, 1024)
	rt.Run(func(th *Thread) {
		r := h.Alloc(th, 4)
		v := h.Local(th, r)
		v[0] = float64(th.ID() + 1)
		th.Barrier()

		before := th.Now()
		_ = h.Get(th, Ref{Thr: int32(th.ID()), Idx: r.Idx})
		localCost := th.Now() - before

		before = th.Now()
		got := h.Get(th, Ref{Thr: int32(1 - th.ID()), Idx: 0})
		remoteCost := th.Now() - before

		if got[0] != float64(2-th.ID()) {
			t.Errorf("thread %d read %v from neighbour", th.ID(), got[0])
		}
		if remoteCost < 10*localCost {
			t.Errorf("remote get (%g) should dwarf local get (%g)", remoteCost, localCost)
		}
	})
}

func TestLocalPanicsOnRemote(t *testing.T) {
	rt := testRuntime(2)
	h := NewHeap[int](rt, 1024)
	defer func() {
		if recover() == nil {
			t.Error("Local() cast of remote ref did not panic")
		}
	}()
	rt.Run(func(th *Thread) {
		h.Alloc(th, 1)
		th.Barrier()
		if th.ID() == 1 {
			h.Local(th, Ref{Thr: 0, Idx: 0}) // illegal cast
		}
	})
}

func TestNilDerefPanics(t *testing.T) {
	rt := testRuntime(1)
	h := NewHeap[int](rt, 1024)
	defer func() {
		if recover() == nil {
			t.Error("nil deref did not panic")
		}
	}()
	rt.Run(func(th *Thread) { h.Get(th, NilRef) })
}

func TestAllocContiguityAndReset(t *testing.T) {
	rt := testRuntime(1)
	h := NewHeap[int](rt, 1024)
	rt.Run(func(th *Thread) {
		a := h.Alloc(th, 10)
		b := h.Alloc(th, 2000) // spans chunks
		if h.Len(0) < 2010 {
			t.Errorf("Len = %d", h.Len(0))
		}
		for i := 0; i < 2000; i++ {
			*h.Local(th, Ref{Thr: 0, Idx: b.Idx + int32(i)}) = i
		}
		for i := 0; i < 2000; i++ {
			if *h.Local(th, Ref{Thr: 0, Idx: b.Idx + int32(i)}) != i {
				t.Fatalf("element %d corrupted", i)
			}
		}
		_ = a
		h.Reset(th)
		if h.Len(0) != 0 {
			t.Errorf("Len after Reset = %d", h.Len(0))
		}
		c := h.Alloc(th, 5)
		if c.Idx != 0 {
			t.Errorf("post-reset alloc at %d", c.Idx)
		}
	})
}

func TestGatherAggregatesBySource(t *testing.T) {
	rt := testRuntime(4)
	h := NewHeap[float64](rt, 1024)
	rt.Run(func(th *Thread) {
		r := h.Alloc(th, 8)
		for i := 0; i < 8; i++ {
			*h.Local(th, Ref{Thr: int32(th.ID()), Idx: r.Idx + int32(i)}) = float64(th.ID()*100 + i)
		}
		th.Barrier()
		if th.ID() != 0 {
			return
		}
		// Gather 6 elements from one remote source: must count as a
		// single-source request and cost about one round trip.
		refs := []Ref{{1, 0}, {1, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5}}
		dst := make([]float64, 6)
		before := th.Now()
		h.Gather(th, refs, dst)
		oneSrc := th.Now() - before
		for i, v := range dst {
			if v != float64(100+i) {
				t.Errorf("gather element %d = %v", i, v)
			}
		}
		st := th.Stats()
		if st.GatherSrcHist[1] != 1 {
			t.Errorf("single-source hist = %v", st.GatherSrcHist)
		}

		// Same volume from 3 sources: more messages, more sender time.
		refs = []Ref{{1, 0}, {2, 0}, {3, 0}, {1, 1}, {2, 1}, {3, 1}}
		before = th.Now()
		h.Gather(th, refs, dst)
		threeSrc := th.Now() - before
		if threeSrc <= oneSrc {
			t.Errorf("3-source gather (%g) not costlier than 1-source (%g)", threeSrc, oneSrc)
		}
	})
}

func TestGatherAsyncOverlap(t *testing.T) {
	rt := testRuntime(2)
	h := NewHeap[float64](rt, 1024)
	rt.Run(func(th *Thread) {
		r := h.Alloc(th, 4)
		*h.Local(th, r) = float64(th.ID())
		th.Barrier()
		if th.ID() != 0 {
			return
		}
		dst := make([]float64, 1)
		hd := h.GatherAsync(th, []Ref{{1, 0}}, dst)
		if th.TrySync(hd) {
			t.Error("gather complete immediately after issue")
		}
		// Overlap: local compute advances the clock past completion.
		th.ChargeRaw(1) // 1 simulated second, far beyond the transfer
		if !th.TrySync(hd) {
			t.Error("gather not complete after long local work")
		}
		before := th.Now()
		th.WaitSync(hd)
		if th.Now() != before {
			t.Error("WaitSync advanced the clock past an already-complete handle")
		}
		if dst[0] != 1 {
			t.Errorf("async data = %v", dst[0])
		}
	})
}

func TestLockSerializesSimTime(t *testing.T) {
	rt := testRuntime(4)
	lk := rt.NewLock(0)
	work := NewScalar(rt, 0.0)
	rt.Run(func(th *Thread) {
		lk.Acquire(th)
		work.Write(th, work.Peek()+1)
		th.ChargeRaw(1e-3) // hold the lock for 1ms of simulated time
		lk.Release(th)
		th.Barrier()
		// 4 threads serialized through 1ms critical sections: the
		// aligned clock must exceed 4ms.
		if th.Now() < 4e-3 {
			t.Errorf("clock %g: critical sections did not serialize", th.Now())
		}
	})
	if work.Peek() != 4 {
		t.Errorf("lock-protected counter = %v", work.Peek())
	}
}

func TestScalarHotspot(t *testing.T) {
	rt := testRuntime(8)
	s := NewScalar(rt, 3.14)
	rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			// Thread 0 reads its own scalar cheaply.
			before := th.Now()
			for i := 0; i < 100; i++ {
				_ = s.Read(th)
			}
			if cost := th.Now() - before; cost > 1e-4 {
				t.Errorf("local scalar reads cost %g", cost)
			}
			return
		}
		before := th.Now()
		for i := 0; i < 100; i++ {
			if v := s.Read(th); v != 3.14 {
				t.Errorf("scalar read = %v", v)
			}
		}
		if cost := th.Now() - before; cost < 100*12e-6 {
			t.Errorf("remote scalar reads cost %g, want >= 100 latencies", cost)
		}
	})
}

func TestCollectives(t *testing.T) {
	rt := testRuntime(6)
	rt.Run(func(th *Thread) {
		me := float64(th.ID())
		if got := AllReduceF64(th, me+1, OpSum); got != 21 {
			t.Errorf("sum = %v", got)
		}
		if got := AllReduceF64(th, me, OpMax); got != 5 {
			t.Errorf("max = %v", got)
		}
		if got := AllReduceF64(th, me, OpMin); got != 0 {
			t.Errorf("min = %v", got)
		}
		vecOut := AllReduceVecF64(th, []float64{me, 1, -me}, OpSum)
		if vecOut[0] != 15 || vecOut[1] != 6 || vecOut[2] != -15 {
			t.Errorf("vector reduce = %v", vecOut)
		}
		if got := Broadcast(th, 3, th.ID()*10); got != 30 {
			t.Errorf("broadcast = %v", got)
		}
		ag := AllGather(th, th.ID()*2)
		for i, v := range ag {
			if v != i*2 {
				t.Errorf("allgather[%d] = %d", i, v)
			}
		}
	})
}

func TestVectorReduceCheaperThanScalars(t *testing.T) {
	// The §6 observation: one vector reduction of length k costs far
	// less than k scalar reductions.
	run := func(vector bool) float64 {
		rt := testRuntime(8)
		rt.Run(func(th *Thread) {
			vals := make([]float64, 64)
			if vector {
				AllReduceVecF64(th, vals, OpSum)
				return
			}
			for _, v := range vals {
				AllReduceF64(th, v, OpSum)
			}
		})
		return rt.MaxClock()
	}
	v, s := run(true), run(false)
	if s < 10*v {
		t.Errorf("64 scalar reductions (%g) should cost >>10x one vector reduction (%g)", s, v)
	}
}

func TestAllToAll(t *testing.T) {
	rt := testRuntime(4)
	rt.Run(func(th *Thread) {
		send := make([][]int, 4)
		for j := range send {
			send[j] = []int{th.ID()*10 + j}
		}
		recv := AllToAll(th, send)
		for j := range recv {
			if len(recv[j]) != 1 || recv[j][0] != j*10+th.ID() {
				t.Errorf("recv[%d] = %v", j, recv[j])
			}
		}
	})
}

func TestStatsAggregation(t *testing.T) {
	rt := testRuntime(2)
	h := NewHeap[int](rt, 1024)
	rt.Run(func(th *Thread) {
		h.Alloc(th, 4)
		th.Barrier()
		h.Get(th, Ref{Thr: int32(1 - th.ID()), Idx: 0})
		h.Put(th, Ref{Thr: int32(1 - th.ID()), Idx: 1}, 9)
	})
	st := rt.TotalStats()
	if st.RemoteGets != 2 || st.RemotePuts != 2 {
		t.Errorf("gets/puts = %d/%d", st.RemoteGets, st.RemotePuts)
	}
	if st.Barriers != 2 {
		t.Errorf("barriers = %d", st.Barriers)
	}
	if st.Msgs == 0 || st.Bytes == 0 {
		t.Error("no message traffic recorded")
	}
}

func TestNICHotspotSerializes(t *testing.T) {
	// Many threads hammering thread 0 must serialize at its NIC: the
	// last arrival's latency grows with the number of senders.
	cost := func(p int) float64 {
		rt := testRuntime(p)
		h := NewHeap[[64]byte](rt, 1024)
		rt.Run(func(th *Thread) {
			if th.ID() == 0 {
				h.Alloc(th, 1)
			}
			th.Barrier()
			if th.ID() != 0 {
				for i := 0; i < 50; i++ {
					h.Get(th, Ref{Thr: 0, Idx: 0})
				}
			}
		})
		return rt.MaxClock()
	}
	if c2, c16 := cost(2), cost(16); c16 < c2*2 {
		t.Errorf("hot-spot did not serialize: 16 threads %g vs 2 threads %g", c16, c2)
	}
}

func TestResetClocks(t *testing.T) {
	rt := testRuntime(2)
	rt.Run(func(th *Thread) { th.ChargeRaw(1) })
	if rt.MaxClock() != 1 {
		t.Fatalf("clock = %g", rt.MaxClock())
	}
	rt.ResetClocks()
	if rt.MaxClock() != 0 {
		t.Errorf("clock after reset = %g", rt.MaxClock())
	}
}

func TestLocalSliceContiguity(t *testing.T) {
	rt := testRuntime(1)
	h := NewHeap[int](rt, 4096)
	rt.Run(func(th *Thread) {
		r := h.Alloc(th, 100)
		s := h.LocalSlice(th, r, 100)
		for i := range s {
			s[i] = i * 3
		}
		for i := 0; i < 100; i++ {
			if *h.Local(th, Ref{Thr: 0, Idx: r.Idx + int32(i)}) != i*3 {
				t.Fatalf("LocalSlice not aliased to heap storage at %d", i)
			}
		}
	})
}

func TestPthreadIntraNodeCheaperThanNetwork(t *testing.T) {
	m := machine.MustNew(4, 2, true, machine.Power5())
	rt := NewRuntime(m)
	h := NewHeap[[256]byte](rt, 1024)
	rt.Run(func(th *Thread) {
		h.Alloc(th, 1)
		th.Barrier()
		if th.ID() != 0 {
			return
		}
		before := th.Now()
		h.Get(th, Ref{Thr: 1, Idx: 0}) // same node
		intra := th.Now() - before
		before = th.Now()
		h.Get(th, Ref{Thr: 2, Idx: 0}) // cross node
		inter := th.Now() - before
		if intra >= inter {
			t.Errorf("intra-node (%g) should be cheaper than cross-node (%g)", intra, inter)
		}
	})
}
