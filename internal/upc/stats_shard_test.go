package upc

import (
	"testing"

	"upcbh/internal/machine"
)

// The runtime keeps no shared mutexed counters: every Stats counter is a
// per-thread shard owned by its thread (aggregated only after Run or at
// phase boundaries via snapshots/deltas). These tests pin that — under
// -race with real native parallelism, and with exact deterministic
// totals at paper scale under the cooperative scheduler.

func TestStatsPerThreadShardsNativeRace(t *testing.T) {
	rt := NewRuntimeMode(machine.Default(8), ModeNative)
	h := NewHeap[int](rt, 1024)
	const gets = 400
	rt.Run(func(th *Thread) {
		h.Alloc(th, 4)
		th.Barrier()
		for i := 0; i < gets; i++ {
			h.Get(th, Ref{Thr: int32((th.ID() + 1) % th.P()), Idx: 0})
		}
		_ = AllReduceF64(th, 1, OpSum)
	})
	st := rt.TotalStats()
	if st.RemoteGets != 8*gets {
		t.Fatalf("RemoteGets = %d, want %d (lost updates => counters are shared)", st.RemoteGets, 8*gets)
	}
	if st.Barriers != 8 || st.Collectives != 8 {
		t.Fatalf("barriers/collectives = %d/%d, want 8/8", st.Barriers, st.Collectives)
	}
}

func TestStatsPerThreadShardsSimulate112(t *testing.T) {
	run := func() Stats {
		rt := testRuntime(112)
		h := NewHeap[int](rt, 1024)
		lk := rt.NewLock(3)
		rt.Run(func(th *Thread) {
			h.Alloc(th, 2)
			th.Barrier()
			for i := 0; i < 5; i++ {
				h.Get(th, Ref{Thr: int32((th.ID() + 7) % th.P()), Idx: 1})
			}
			lk.Acquire(th)
			lk.Release(th)
			th.Barrier()
		})
		return rt.TotalStats()
	}
	st := run()
	if st.RemoteGets != 112*5 || st.LockAcqs != 112 || st.Barriers != 2*112 {
		t.Fatalf("unexpected totals: %+v", st)
	}
	if st2 := run(); st2 != st {
		t.Fatalf("stats not deterministic across runs: %+v vs %+v", st2, st)
	}
}
