package upc

import "sync"

// exchange routes a collective rendezvous to the execution backend: the
// cooperative scheduler's epoch in ModeSimulate, the mutex/cond collSite
// under real ModeNative parallelism. Semantics are identical.
func (rt *Runtime) exchange(t *Thread, v any, cost float64, combine func(slots []any) any) (any, float64) {
	if rt.coop != nil {
		return rt.coop.exchange(t, v, cost, combine)
	}
	return rt.coll.exchange(t, v, cost, combine)
}

// collSite is the rendezvous used by all collectives in ModeNative. SPMD
// discipline guarantees all threads call the same collective in the same
// order, so a single generation-counted site per runtime suffices.
type collSite struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int

	gen      uint64
	count    int
	slots    []any
	maxClock float64

	resolvedClock float64
	result        any
}

func newCollSite(n int) *collSite {
	c := &collSite{n: n, slots: make([]any, n)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// exchange deposits `v` for thread t, waits for all threads, and returns
// combine(slots) along with the aligned clock max(arrivals)+cost. combine
// runs exactly once per generation, on the last arriver.
func (c *collSite) exchange(t *Thread, v any, cost float64, combine func(slots []any) any) (any, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t.rt.checkPoison()
	c.slots[t.id] = v
	if t.clock > c.maxClock {
		c.maxClock = t.clock
	}
	c.count++
	if c.count == c.n {
		c.result = combine(c.slots)
		c.resolvedClock = c.maxClock + cost
		c.count = 0
		c.maxClock = 0
		for i := range c.slots {
			c.slots[i] = nil
		}
		c.gen++
		c.cond.Broadcast()
		return c.result, c.resolvedClock
	}
	gen := c.gen
	for gen == c.gen {
		c.cond.Wait()
		t.rt.checkPoison()
	}
	return c.result, c.resolvedClock
}

// Op selects the combining operator of a reduction.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMin
	OpMax
)

func (op Op) apply(a, b float64) float64 {
	switch op {
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// AllReduceF64 is a scalar reduce&broadcast over all threads.
func AllReduceF64(t *Thread, v float64, op Op) float64 {
	t.stats.Collectives++
	cost := t.rt.cost.collectiveCost(t, 8)
	if t.rt.n == 1 {
		// Single-thread fast path: same charge as the rendezvous would
		// align to (max-of-one clock plus cost), no interface boxing.
		t.ChargeRaw(cost)
		return v
	}
	res, clock := t.rt.exchange(t, v, cost, func(slots []any) any {
		acc := slots[0].(float64)
		for _, s := range slots[1:] {
			acc = op.apply(acc, s.(float64))
		}
		return acc
	})
	t.AdvanceTo(clock)
	return res.(float64)
}

// AllReduceVecF64 is the vector reduce&broadcast the paper identifies as
// critical for the subspace tree-building algorithm (§6): one collective
// combines a whole level's worth of costs. The input slice is not
// modified; all threads receive the same shared read-only result — a
// fresh allocation with multiple threads, the input slice itself at
// THREADS==1 (treat it as read-only either way).
func AllReduceVecF64(t *Thread, v []float64, op Op) []float64 {
	t.stats.Collectives++
	cost := t.rt.cost.collectiveCost(t, 8*len(v))
	if t.rt.n == 1 {
		t.ChargeRaw(cost)
		return v
	}
	res, clock := t.rt.exchange(t, v, cost, func(slots []any) any {
		first := slots[0].([]float64)
		acc := make([]float64, len(first))
		copy(acc, first)
		for _, s := range slots[1:] {
			sv := s.([]float64)
			if len(sv) != len(acc) {
				panic("upc: AllReduceVecF64 with mismatched lengths")
			}
			for i, x := range sv {
				acc[i] = op.apply(acc[i], x)
			}
		}
		return acc
	})
	t.AdvanceTo(clock)
	return res.([]float64)
}

// Broadcast distributes root's value to all threads.
func Broadcast[T any](t *Thread, root int, v T) T {
	t.stats.Collectives++
	cost := t.rt.cost.collectiveCost(t, payloadBytes(v))
	if t.rt.n == 1 {
		t.ChargeRaw(cost)
		return v
	}
	res, clock := t.rt.exchange(t, v, cost, func(slots []any) any {
		return slots[root]
	})
	t.AdvanceTo(clock)
	return res.(T)
}

// AllGather collects one value from every thread; the result is indexed
// by thread id and shared (read-only) by all threads.
func AllGather[T any](t *Thread, v T) []T {
	t.stats.Collectives++
	cost := t.rt.cost.collectiveCost(t, payloadBytes(v)*t.rt.n)
	if t.rt.n == 1 {
		t.ChargeRaw(cost)
		return []T{v}
	}
	res, clock := t.rt.exchange(t, v, cost, func(slots []any) any {
		out := make([]T, len(slots))
		for i, s := range slots {
			out[i] = s.(T)
		}
		return out
	})
	t.AdvanceTo(clock)
	return res.([]T)
}

// AllToAll performs a personalized exchange: send[j] is delivered to
// thread j; the result's element j is what thread j sent to the caller.
// Received slices alias the sender's buffers; callers must treat them as
// read-only until the next collective, mirroring one-sided semantics.
//
// Simulated cost: a synchronization to the slowest participant plus each
// thread's own volume term (per-message overhead for its sends, transit
// for its receives).
func AllToAll[T any](t *Thread, send [][]T) [][]T {
	if len(send) != t.rt.n {
		panic("upc: AllToAll send matrix must have THREADS rows")
	}
	t.stats.Collectives++
	if t.rt.n == 1 {
		// Same charge as the general path degenerates to at one thread:
		// no messages, no volume, the two latency terms.
		t.ChargeRaw(2 * t.rt.mach.Par.Latency)
		return [][]T{send[0]}
	}
	res, clock := t.rt.exchange(t, send, 0, func(slots []any) any {
		out := make([][][]T, len(slots))
		for i, s := range slots {
			out[i] = s.([][]T)
		}
		return out
	})
	t.AdvanceTo(clock)
	matrix := res.([][][]T)
	var zero T
	elem := intSizeof(zero)
	m := t.rt.mach
	recv := make([][]T, t.rt.n)
	sentBytes, recvBytes, nmsg := 0, 0, 0
	for j := 0; j < t.rt.n; j++ {
		recv[j] = matrix[j][t.id]
		if j != t.id {
			if len(send[j]) > 0 {
				sentBytes += len(send[j]) * elem
				nmsg++
			}
			recvBytes += len(recv[j]) * elem
		}
	}
	t.ChargeRaw(float64(nmsg)*m.Par.SendOverhead +
		float64(sentBytes+recvBytes)*m.Par.GapPerByte +
		2*m.Par.Latency)
	t.stats.Msgs += uint64(nmsg)
	t.stats.Bytes += uint64(sentBytes)
	return recv
}
