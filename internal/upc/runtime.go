// Package upc emulates the UPC (Unified Parallel C) partitioned global
// address space runtime that the paper programs against, on top of
// goroutines and a LogGP-style simulated-time cost model
// (internal/machine).
//
// The emulation has two jobs:
//
//  1. Functional: provide the primitives the paper's code uses — SPMD
//     thread launch, a partitioned shared heap addressed by global
//     references, blocking and non-blocking one-sided transfers
//     (upc_memget_ilist / bupc_memget_vlist_async), global locks,
//     barriers, shared scalars with affinity to thread 0, and collectives
//     including vector reduce&broadcast.
//  2. Performance modelling: every operation advances the calling
//     thread's *simulated* clock by the cost the machine model assigns
//     it, and remote messages occupy the target thread's NIC, so
//     hot-spots and lock contention serialize in simulated time the way
//     they do on real PGAS hardware. All reported "times" in the
//     experiment harness are these simulated clocks.
//
// Memory-model note: like UPC's relaxed memory model, concurrent relaxed
// accesses to the same shared location are only meaningful when the
// application synchronizes them (locks, barriers, flag protocols). The
// Barnes-Hut code follows the paper's phase discipline; flags that are
// genuinely polled across threads are accessed with atomics.
package upc

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"upcbh/internal/machine"
)

// Runtime is one emulated UPC job: a fixed number of SPMD threads over a
// machine model. A Runtime may execute many Run invocations; heaps, locks
// and scalars created against it persist across them.
//
// The execution backend (ExecMode) is fixed at construction: ModeSimulate
// charges every operation against the LogGP machine model, ModeNative
// runs with real parallelism and wall-clock timing only.
type Runtime struct {
	mach *machine.Machine
	n    int
	cost costModel
	// native caches cost.mode() == ModeNative so the per-operation hot
	// paths (Charge in the force inner loop runs millions of times) pay
	// one predictable branch instead of an interface dispatch; cpuFactor
	// caches mach.Compute's threaded-runtime multiplier (1 for process
	// runtimes — multiplying by exactly 1.0 is a bit-exact no-op) so
	// Charge is a single fused multiply-add.
	native    bool
	cpuFactor float64

	bar  *barrier
	coll *collSite
	nic  []nicState

	// coop is the deterministic virtual-time cooperative scheduler
	// (sched.go); non-nil exactly in ModeSimulate. When set, barriers,
	// collectives, locks and spin-waits go through baton-passing segments
	// instead of kernel synchronization, and at most one emulated thread
	// executes at any moment.
	coop *sched

	// poisoned is set when a thread panics so that peers blocked in
	// barriers/collectives abort instead of waiting forever; poisonCh is
	// closed at the same time to abort lock waiters.
	poisoned atomic.Pointer[string]
	poisonCh chan struct{}

	// session is the active resumable SPMD region, if any (session.go).
	// Written by the controller while no thread goroutine is running
	// (before launch, after the last exit), read by threads and poison.
	session *Session

	threads []*Thread
}

// nicState tracks when a target thread's NIC frees up. Only the
// simulate backend reserves NICs, and the cooperative scheduler
// guarantees a single running thread — even during poisoned unwinding —
// so plain fields suffice (baton handoffs order all accesses).
type nicState struct {
	availAt float64
}

// NewRuntime creates a ModeSimulate runtime with mach.Threads SPMD
// threads.
func NewRuntime(mach *machine.Machine) *Runtime {
	return NewRuntimeMode(mach, ModeSimulate)
}

// NewRuntimeMode creates a runtime with mach.Threads SPMD threads using
// the given execution backend.
func NewRuntimeMode(mach *machine.Machine, mode ExecMode) *Runtime {
	n := mach.Threads
	rt := &Runtime{
		mach:      mach,
		n:         n,
		cost:      newCostModel(mode),
		native:    mode == ModeNative,
		cpuFactor: mach.Compute(1),
		bar:       newBarrier(n),
		coll:      newCollSite(n),
		nic:       make([]nicState, n),
		poisonCh:  make(chan struct{}),
	}
	rt.threads = make([]*Thread, n)
	for i := 0; i < n; i++ {
		rt.threads[i] = &Thread{rt: rt, id: i}
	}
	if mode != ModeNative {
		rt.coop = newSched(rt)
	}
	return rt
}

// Threads returns the number of UPC threads (the UPC THREADS constant).
func (rt *Runtime) Threads() int { return rt.n }

// Mode returns the execution backend the runtime was built with.
func (rt *Runtime) Mode() ExecMode { return rt.cost.mode() }

// Machine returns the machine model the runtime charges costs against.
func (rt *Runtime) Machine() *machine.Machine { return rt.mach }

// Run executes fn once on every thread (SPMD) and blocks until all
// complete. A panic on any thread poisons the runtime — peers blocked in
// barriers or collectives abort immediately instead of deadlocking — and
// the original panic is re-raised on the caller with the thread id and
// stack attached. Run may be called repeatedly; simulated clocks continue
// from where the previous Run left them.
//
// In ModeSimulate the threads execute under the cooperative virtual-time
// scheduler (sched.go): one at a time, in deterministic lowest-clock
// order. In ModeNative they run as freely scheduled parallel goroutines.
func (rt *Runtime) Run(fn func(t *Thread)) {
	if rt.session != nil {
		panic("upc: Run while a session is active on this runtime")
	}
	var wg sync.WaitGroup
	panics := make(chan string, rt.n)
	body := fn
	if rt.coop != nil {
		body = rt.coop.gatedBody(fn)
	}
	rt.launch(body, &wg, panics)
	if rt.coop != nil {
		rt.coop.start()
	}
	wg.Wait()
	if primary := primaryPanic(panics); primary != "" {
		panic(primary)
	}
}

// launch starts one goroutine per thread running body with the standard
// poison-on-panic wrapper; panic messages land on the panics channel.
// Shared by Run and Session.Start.
func (rt *Runtime) launch(body func(t *Thread), wg *sync.WaitGroup, panics chan string) {
	for i := 0; i < rt.n; i++ {
		wg.Add(1)
		go func(t *Thread) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					msg := fmt.Sprintf("upc: thread %d panicked: %v\n%s", t.id, r, debug.Stack())
					if _, secondary := r.(poisonAbort); secondary {
						msg = poisonSecondary
					}
					rt.poison(msg)
					panics <- msg
				}
			}()
			body(t)
		}(rt.threads[i])
	}
}

// primaryPanic drains the collected panic messages, preferring the
// original failure over secondary peer-abort markers. Returns "" when
// no thread panicked.
func primaryPanic(panics chan string) string {
	primary := ""
	for {
		select {
		case msg := <-panics:
			if msg != poisonSecondary && (primary == "" || primary == poisonSecondary) {
				primary = msg
			} else if primary == "" {
				primary = msg
			}
		default:
			return primary
		}
	}
}

// poisonAbort is the panic value thrown in threads that were aborted
// because a peer failed first.
type poisonAbort struct{ msg string }

func (p poisonAbort) Error() string { return p.msg }

const poisonSecondary = "upc: thread aborted because a peer thread panicked"

// poison marks the runtime failed and wakes all blocked waiters.
func (rt *Runtime) poison(msg string) {
	if rt.poisoned.CompareAndSwap(nil, &msg) {
		close(rt.poisonCh)
	}
	if rt.coop != nil {
		// Cooperative threads all park on their gates; wake them so they
		// observe the poison and abort. (Only the baton holder can
		// poison, so no other thread is running right now.)
		rt.coop.wakeAllParked()
		return
	}
	rt.bar.mu.Lock()
	rt.bar.cond.Broadcast()
	rt.bar.mu.Unlock()
	rt.coll.mu.Lock()
	rt.coll.cond.Broadcast()
	rt.coll.mu.Unlock()
	if sess := rt.session; sess != nil {
		// Native session: wake gate-parked threads (they abort) and the
		// controller (it re-raises via fail).
		sess.mu.Lock()
		sess.stepC.Broadcast()
		sess.ctrlC.Broadcast()
		sess.mu.Unlock()
	}
}

// checkPoison panics with a secondary abort if a peer has failed.
func (rt *Runtime) checkPoison() {
	if rt.poisoned.Load() != nil {
		panic(poisonAbort{poisonSecondary})
	}
}

// Poisoned reports whether a peer thread has failed; long-running local
// loops (e.g. flag spins) should consult it to abort promptly.
func (t *Thread) Poisoned() bool { return t.rt.poisoned.Load() != nil }

// ResetClocks restarts time (simulated clocks and NIC states, or the
// wall-clock epoch in ModeNative) and zeroes the operation counters. Call
// between independent experiments that share a Runtime.
func (rt *Runtime) ResetClocks() {
	for _, t := range rt.threads {
		t.stats = Stats{}
	}
	if rt.coop != nil {
		rt.coop.stats = SchedStats{}
	}
	rt.cost.reset(rt)
}

// nicReserve serializes a message arriving at target's NIC at time
// `arrive`, occupying it for `busy`: it returns the time service starts.
// It runs once per modelled remote access, so it must stay a handful of
// plain float operations.
func (rt *Runtime) nicReserve(target int, arrive, busy float64) float64 {
	n := &rt.nic[target]
	start := n.availAt
	if arrive > start {
		start = arrive
	}
	n.availAt = start + busy
	return start
}

// Thread is one emulated UPC thread. All methods must be called from the
// goroutine Run assigned it; a Thread owns its simulated clock.
type Thread struct {
	rt    *Runtime
	id    int
	clock float64
	stats Stats

	// gatherGroups is the per-source grouping scratch of
	// GatherAsyncBytes, retained so steady-state gathers allocate
	// nothing. Owned by the thread.
	gatherGroups []gatherGroup
}

// gatherGroup is one source thread's share of an aggregated gather.
type gatherGroup struct {
	thr   int32
	count int32
}

// ID returns the UPC MYTHREAD value.
func (t *Thread) ID() int { return t.id }

// P returns the UPC THREADS value.
func (t *Thread) P() int { return t.rt.n }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// Now returns the thread's current time in seconds: the simulated clock
// in ModeSimulate, wall-clock seconds since the runtime epoch in
// ModeNative.
func (t *Thread) Now() float64 { return t.rt.cost.now(t) }

// Charge accounts a computation cost, inflated by the threaded-runtime
// CPU factor of the machine model (no-op in ModeNative, where the real
// computation takes its real time).
func (t *Thread) Charge(sec float64) {
	if t.rt.native {
		return
	}
	t.clock += sec * t.rt.cpuFactor
}

// ChargeRaw accounts exactly sec of already-modelled cost.
func (t *Thread) ChargeRaw(sec float64) {
	if t.rt.native {
		return
	}
	t.clock += sec
}

// AdvanceTo aligns the clock to a modelled completion event (e.g. a
// producer's flag-set time observed by a spin-waiting consumer).
func (t *Thread) AdvanceTo(when float64) {
	if t.rt.native {
		return
	}
	if when > t.clock {
		t.clock = when
	}
}

// Stats returns a copy of this thread's operation counters.
func (t *Thread) Stats() Stats { return t.stats }

// BarrierCount returns how many barriers this thread has passed; cheap
// epoch source for barrier-invalidated caches.
func (t *Thread) BarrierCount() uint64 { return t.stats.Barriers }

// Barrier is upc_barrier: synchronizes all threads in real execution
// and, in ModeSimulate, aligns simulated clocks to max(participants)
// plus the modelled barrier cost.
func (t *Thread) Barrier() {
	t.stats.Barriers++
	t.rt.cost.barrier(t)
}

// SendEvent charges the sender side of a one-way message of `bytes` to
// thread `to` and returns the time the data is fully received (after
// queueing at the target NIC). It is the primitive the MPI emulation
// layers its two-sided Send/Recv on.
func (t *Thread) SendEvent(to, bytes int) float64 {
	t.stats.Msgs++
	t.stats.Bytes += uint64(bytes)
	return t.rt.cost.sendEvent(t, to, bytes)
}

// Aborted returns a channel closed when a peer thread has failed; use it
// to abort real blocking waits (e.g. a two-sided receive).
func (rt *Runtime) Aborted() <-chan struct{} { return rt.poisonCh }

// remoteRoundTrip records a blocking one-sided transfer of `bytes`
// between t and thread `target`: the stats are counted in every mode,
// the time accounting is the cost model's.
func (t *Thread) remoteRoundTrip(target, bytes int) {
	t.stats.Msgs++
	t.stats.Bytes += uint64(bytes)
	t.rt.cost.remoteRoundTrip(t, target, bytes)
}

// barrier is a reusable generation barrier that also computes the maximum
// simulated clock of the participants.
type barrier struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int

	gen      uint64
	count    int
	maxClock float64
	resolved float64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n threads arrive; returns the aligned clock.
// It aborts (panics with a secondary marker) if the runtime is poisoned.
func (b *barrier) wait(rt *Runtime, clock, cost float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	rt.checkPoison()
	if clock > b.maxClock {
		b.maxClock = clock
	}
	b.count++
	if b.count == b.n {
		b.resolved = b.maxClock + cost
		b.count = 0
		b.maxClock = 0
		b.gen++
		b.cond.Broadcast()
		return b.resolved
	}
	gen := b.gen
	for gen == b.gen {
		b.cond.Wait()
		rt.checkPoison()
	}
	return b.resolved
}
