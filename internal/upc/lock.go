package upc

// Lock is a upc_lock_t: a global lock with affinity to a home thread. In
// real execution it is a channel-based mutex (so waiters can abort if a
// peer thread fails); in simulated time, acquisition costs a round trip
// to the home thread and the critical sections of competing threads
// serialize through the lock's availability time, which is what makes
// lock contention visible in the reported phase times.
type Lock struct {
	rt      *Runtime
	home    int
	ch      chan struct{} // holds one token when the lock is free
	availAt float64       // simulated time the lock frees up; guarded by holding the lock
}

// NewLock allocates a lock homed on thread `home` (upc_global_lock_alloc
// distributes homes; the Barnes-Hut code uses arrays of locks).
func (rt *Runtime) NewLock(home int) *Lock {
	l := &Lock{rt: rt, home: home % rt.n, ch: make(chan struct{}, 1)}
	l.ch <- struct{}{}
	return l
}

// Acquire takes the lock (upc_lock). The caller's simulated clock is
// advanced past both the messaging cost and any serialization behind the
// previous holder. Acquire aborts if a peer thread has failed, so a
// panic inside a critical section cannot strand other threads.
func (l *Lock) Acquire(t *Thread) {
	m := t.rt.mach
	c := m.Message(t.id, l.home, 16)
	t.stats.LockAcqs++
	t.stats.Msgs++
	select {
	case <-l.ch:
	default:
		select {
		case <-l.ch:
		case <-t.rt.poisonCh:
			panic(poisonAbort{poisonSecondary})
		}
	}
	// Request is serviced at the home no earlier than the lock frees up.
	req := t.clock + c.SenderBusy + c.Transit
	if l.availAt > req {
		req = l.availAt
	}
	t.clock = req + m.Par.LockOverhead + c.Transit
}

// Release drops the lock (upc_unlock).
func (l *Lock) Release(t *Thread) {
	m := t.rt.mach
	c := m.Message(t.id, l.home, 16)
	l.availAt = t.clock + c.SenderBusy + c.Transit + m.Par.LockOverhead
	t.ChargeRaw(c.SenderBusy)
	l.ch <- struct{}{}
}

// LockArray is the hashed array of locks SPLASH2 uses to protect octree
// cells without one lock per cell.
type LockArray struct {
	locks []*Lock
}

// NewLockArray creates n locks with homes spread round-robin over threads.
func (rt *Runtime) NewLockArray(n int) *LockArray {
	la := &LockArray{locks: make([]*Lock, n)}
	for i := range la.locks {
		la.locks[i] = rt.NewLock(i % rt.n)
	}
	return la
}

// ForRef returns the lock guarding the cell addressed by r.
func (la *LockArray) ForRef(r Ref) *Lock {
	h := uint64(uint32(r.Thr))*0x9e3779b1 + uint64(uint32(r.Idx))*0x85ebca6b
	return la.locks[h%uint64(len(la.locks))]
}
