package upc

// Lock is a upc_lock_t: a global lock with affinity to a home thread. In
// real execution it is a channel-based mutex (so waiters can abort if a
// peer thread fails); in simulated time, acquisition additionally costs a
// round trip to the home thread and the critical sections of competing
// threads serialize through the lock's availability time, which is what
// makes lock contention visible in the reported phase times.
type Lock struct {
	rt      *Runtime
	home    int
	ch      chan struct{} // ModeNative: holds one token when the lock is free
	availAt float64       // simulated time the lock frees up; guarded by holding the lock

	// Cooperative-scheduler state (ModeSimulate): only the baton holder
	// touches these, so they need no synchronization. Ownership transfers
	// directly to the first waiter on release.
	held    bool
	waiters []int32
}

// NewLock allocates a lock homed on thread `home` (upc_global_lock_alloc
// distributes homes; the Barnes-Hut code uses arrays of locks).
func (rt *Runtime) NewLock(home int) *Lock {
	l := &Lock{rt: rt, home: home % rt.n, ch: make(chan struct{}, 1)}
	l.ch <- struct{}{}
	return l
}

// Acquire takes the lock (upc_lock). Mutual exclusion is real in every
// mode; under simulation the caller's clock is additionally advanced past
// both the messaging cost and any serialization behind the previous
// holder. Acquire aborts if a peer thread has failed, so a panic inside a
// critical section cannot strand other threads.
func (l *Lock) Acquire(t *Thread) {
	t.stats.LockAcqs++
	t.stats.Msgs++
	if s := t.rt.coop; s != nil {
		s.lockAcquire(t, l)
	} else {
		select {
		case <-l.ch:
		default:
			select {
			case <-l.ch:
			case <-t.rt.poisonCh:
				panic(poisonAbort{poisonSecondary})
			}
		}
	}
	t.rt.cost.lockAcquired(t, l)
}

// Release drops the lock (upc_unlock).
func (l *Lock) Release(t *Thread) {
	t.rt.cost.lockReleasing(t, l)
	if s := t.rt.coop; s != nil {
		s.lockRelease(t, l)
		return
	}
	l.ch <- struct{}{}
}

// LockArray is the hashed array of locks SPLASH2 uses to protect octree
// cells without one lock per cell.
type LockArray struct {
	locks []*Lock
}

// NewLockArray creates n locks with homes spread round-robin over threads.
func (rt *Runtime) NewLockArray(n int) *LockArray {
	la := &LockArray{locks: make([]*Lock, n)}
	for i := range la.locks {
		la.locks[i] = rt.NewLock(i % rt.n)
	}
	return la
}

// ForRef returns the lock guarding the cell addressed by r.
func (la *LockArray) ForRef(r Ref) *Lock {
	h := uint64(uint32(r.Thr))*0x9e3779b1 + uint64(uint32(r.Idx))*0x85ebca6b
	return la.locks[h%uint64(len(la.locks))]
}
