package upc

import (
	"fmt"
	"sync"
)

// Session is a resumable SPMD region: the same thread function Run
// executes to completion, but with the step loop driven from outside.
// The thread function marks its step boundaries by calling
// Thread.NextStep in a loop; the controller — the goroutine that called
// Start — doles out steps with Resume(k) and regains control whenever
// every thread has consumed its grant and parked at the gate. While the
// session is paused the runtime is quiescent (no emulated thread is
// running), so the controller may freely read shared heap state, thread
// clocks, and anything else the threads own.
//
// Lifecycle: Start(fn) launches the threads and returns at the first
// pause (threads park at their first NextStep, before any step has
// run). Resume(k) releases k steps to every thread and blocks until all
// of them are parked at the gate again. Finish() makes every pending
// NextStep return false — the thread functions fall out of their loops
// and return — and blocks until all thread goroutines have exited.
// A panic on any thread poisons the runtime exactly as under Run, and
// the call in progress (Start, Resume or Finish) re-raises the primary
// panic on the controller.
//
// Scheduling transparency (ModeSimulate): the step gate must not
// disturb the deterministic baton order that makes simulate runs
// byte-identical (see sched.go). Parking charges nothing and aligns no
// clocks, and when a pause is released the baton goes back to the
// thread that held it when the pause began (the first gate arriver) —
// so the post-resume schedule is exactly the schedule of an
// uninterrupted run. That is what makes Run() ≡ Start+Resume(Steps)+
// Finish, and any Step(k) partition thereof, byte-identical.
//
// One session may be active per Runtime at a time, and Runtime.Run may
// not be called while a session is active.
type Session struct {
	rt *Runtime
	// consumed[i] counts the steps thread i has taken; granted is the
	// total released by the controller. Under the cooperative scheduler
	// these are plain fields (single-runner + gate-channel ordering); in
	// ModeNative every access holds mu.
	consumed  []int64
	granted   int64
	finishing bool
	done      bool // every thread function has returned
	completed bool // Finish (or a propagated failure) already ran

	wg     sync.WaitGroup
	panics chan string

	// pauseCh carries the "all live threads parked" signal from the
	// cooperative scheduler to the controller (buffered: the pause can
	// complete before the controller starts waiting).
	pauseCh chan struct{}

	// Native-mode gate: threads park on stepC when their grant is
	// exhausted; the controller waits on ctrlC for quiescence.
	mu     sync.Mutex
	stepC  *sync.Cond
	ctrlC  *sync.Cond
	parked int
	live   int
}

// Start launches fn as a resumable SPMD session on every thread and
// blocks until the first pause: each thread has run the code before its
// first NextStep call (typically setup) and parked at the gate with no
// steps granted. If fn never calls NextStep, Start returns when every
// thread has exited; Resume then panics and only Finish is legal.
func (rt *Runtime) Start(fn func(t *Thread)) *Session {
	if rt.session != nil {
		panic("upc: Start while another session is active on this runtime")
	}
	sess := &Session{
		rt:       rt,
		consumed: make([]int64, rt.n),
		live:     rt.n,
		pauseCh:  make(chan struct{}, 1),
		panics:   make(chan string, rt.n),
	}
	sess.stepC = sync.NewCond(&sess.mu)
	sess.ctrlC = sync.NewCond(&sess.mu)
	rt.session = sess
	body := fn
	if rt.coop != nil {
		rt.coop.sess = sess
		body = rt.coop.gatedBody(fn)
	} else {
		body = func(t *Thread) {
			fn(t)
			sess.retire()
		}
	}
	rt.launch(body, &sess.wg, sess.panics)
	if rt.coop != nil {
		rt.coop.start()
	}
	sess.waitPause()
	return sess
}

// retire records a native-mode thread function's normal return. Threads
// that panic skip it: the poison path already wakes the controller.
func (sess *Session) retire() {
	sess.mu.Lock()
	sess.live--
	sess.ctrlC.Broadcast()
	sess.mu.Unlock()
}

// Resume releases k more steps to every thread and blocks until all of
// them have consumed the grant and parked at the gate again.
func (sess *Session) Resume(k int) {
	if k <= 0 {
		panic(fmt.Sprintf("upc: Session.Resume needs k > 0, got %d", k))
	}
	if sess.completed || sess.finishing {
		panic("upc: Session.Resume after Finish")
	}
	if sess.done {
		panic("upc: Session.Resume on a session whose threads have exited")
	}
	if sess.rt.coop != nil {
		sess.granted += int64(k)
		sess.rt.coop.stepResume()
	} else {
		sess.mu.Lock()
		sess.granted += int64(k)
		sess.stepC.Broadcast()
		sess.mu.Unlock()
	}
	sess.waitPause()
}

// Finish releases the threads to exit: every pending (and future)
// NextStep returns false, the thread functions return, and Finish
// blocks until all thread goroutines are gone. It is idempotent.
func (sess *Session) Finish() {
	if sess.completed {
		return
	}
	sess.finishing = true
	if sess.rt.coop != nil {
		if !sess.done && sess.rt.poisoned.Load() == nil {
			sess.rt.coop.stepResume()
		}
	} else {
		sess.mu.Lock()
		sess.stepC.Broadcast()
		sess.mu.Unlock()
	}
	sess.wg.Wait()
	sess.close()
	if msg := primaryPanic(sess.panics); msg != "" {
		panic(msg)
	}
}

// StepsDone returns the number of steps every thread has completed
// (meaningful while paused; all threads agree at a pause).
func (sess *Session) StepsDone() int64 {
	if sess.rt.coop != nil {
		return sess.granted
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.granted
}

// Done reports whether every thread function has returned.
func (sess *Session) Done() bool { return sess.done || sess.completed }

// close detaches the completed session from the runtime.
func (sess *Session) close() {
	sess.completed = true
	sess.rt.session = nil
	if sess.rt.coop != nil {
		sess.rt.coop.sess = nil
	}
}

// fail is the controller-side poison path: wait out the unwinding
// threads, detach, and re-raise the primary panic — the same contract
// Run has.
func (sess *Session) fail() {
	sess.wg.Wait()
	sess.close()
	msg := primaryPanic(sess.panics)
	if msg == "" {
		msg = poisonSecondary
	}
	panic(msg)
}

// waitPause blocks the controller until the session is quiescent: every
// live thread parked at the gate with its grant consumed, or every
// thread exited, or the runtime poisoned (which re-raises).
func (sess *Session) waitPause() {
	if sess.rt.coop != nil {
		select {
		case <-sess.pauseCh:
		case <-sess.rt.poisonCh:
		}
		if sess.rt.poisoned.Load() != nil {
			sess.fail()
		}
		if sess.rt.coop.nDone == sess.rt.coop.n {
			sess.done = true
		}
		return
	}
	sess.mu.Lock()
	for sess.rt.poisoned.Load() == nil && sess.live > 0 &&
		!(sess.parked == sess.live && sess.allConsumed()) {
		sess.ctrlC.Wait()
	}
	poisoned := sess.rt.poisoned.Load() != nil
	if sess.live == 0 {
		sess.done = true
	}
	sess.mu.Unlock()
	if poisoned {
		sess.fail()
	}
}

// allConsumed reports whether every thread has used its full grant (mu
// held). It distinguishes a genuine pause from the instant just after
// Resume, when the grant has grown but the parked threads have not yet
// woken to consume it.
func (sess *Session) allConsumed() bool {
	for i := range sess.consumed {
		if sess.consumed[i] < sess.granted {
			return false
		}
	}
	return true
}

// NextStep is the step gate of a session thread function: it blocks
// until the controller has granted this thread another step (true) or
// called Finish (false). Outside a session it panics — plain Run
// regions have no step protocol.
func (t *Thread) NextStep() bool {
	sess := t.rt.session
	if sess == nil {
		panic("upc: Thread.NextStep outside a session (use Runtime.Start)")
	}
	if t.rt.coop != nil {
		return sess.nextCoop(t)
	}
	return sess.nextNative(t)
}

// nextCoop is the cooperative-scheduler gate: charge-free, clock-
// neutral, parking through the scheduler so the single-runner invariant
// holds across the pause.
func (sess *Session) nextCoop(t *Thread) bool {
	s := sess.rt.coop
	for {
		sess.rt.checkPoison()
		if sess.consumed[t.id] < sess.granted {
			sess.consumed[t.id]++
			return true
		}
		if sess.finishing {
			return false
		}
		s.stepPark(t)
	}
}

// nextNative is the native-mode gate: a plain condition-variable park.
// The fast path (grant available) is one uncontended lock/unlock per
// step and allocates nothing, preserving the steady-state zero-
// allocation invariant of the native step loop.
func (sess *Session) nextNative(t *Thread) bool {
	sess.mu.Lock()
	for {
		if sess.rt.poisoned.Load() != nil {
			sess.mu.Unlock()
			panic(poisonAbort{poisonSecondary})
		}
		if sess.consumed[t.id] < sess.granted {
			sess.consumed[t.id]++
			sess.mu.Unlock()
			return true
		}
		if sess.finishing {
			sess.mu.Unlock()
			return false
		}
		sess.parked++
		if sess.parked == sess.live {
			sess.ctrlC.Broadcast()
		}
		sess.stepC.Wait()
		sess.parked--
	}
}

// ThreadNow returns thread i's current time (Thread.Now read from
// outside): the simulated clock in ModeSimulate, wall-clock seconds
// since the epoch in ModeNative. Only safe while the runtime is
// quiescent — between Run invocations, or while a session is paused.
func (rt *Runtime) ThreadNow(i int) float64 { return rt.cost.now(rt.threads[i]) }
