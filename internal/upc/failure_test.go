package upc

import (
	"strings"
	"testing"

	"upcbh/internal/machine"
)

// Misuse of the runtime must fail loudly, not corrupt state.

func expectPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("expected panic containing %q", substr)
			return
		}
		var msg string
		switch v := r.(type) {
		case string:
			msg = v
		case error:
			msg = v.Error()
		default:
			t.Fatalf("unexpected panic type %T", r)
		}
		if !strings.Contains(msg, substr) {
			t.Errorf("panic %q does not mention %q", msg, substr)
		}
	}()
	fn()
}

func TestAllocNonPositivePanics(t *testing.T) {
	rt := testRuntime(1)
	h := NewHeap[int](rt, 1024)
	expectPanic(t, "non-positive", func() {
		rt.Run(func(th *Thread) { h.Alloc(th, 0) })
	})
}

func TestGatherShortDstPanics(t *testing.T) {
	rt := testRuntime(1)
	h := NewHeap[int](rt, 1024)
	expectPanic(t, "destination shorter", func() {
		rt.Run(func(th *Thread) {
			r := h.Alloc(th, 4)
			h.GatherAsync(th, []Ref{r, {Thr: 0, Idx: r.Idx + 1}}, make([]int, 1))
		})
	})
}

func TestVecReduceLengthMismatchPanics(t *testing.T) {
	rt := testRuntime(2)
	expectPanic(t, "mismatched lengths", func() {
		rt.Run(func(th *Thread) {
			v := make([]float64, 2+th.ID()) // different length per thread
			AllReduceVecF64(th, v, OpSum)
		})
	})
}

func TestAllToAllWrongRowsPanics(t *testing.T) {
	rt := testRuntime(2)
	expectPanic(t, "THREADS rows", func() {
		rt.Run(func(th *Thread) {
			AllToAll(th, make([][]int, 1))
		})
	})
}

func TestLocalSliceSpanPanics(t *testing.T) {
	rt := testRuntime(1)
	h := NewHeap[int](rt, 1024) // chunk = 1024
	expectPanic(t, "spans chunks", func() {
		rt.Run(func(th *Thread) {
			r := h.Alloc(th, 3000)
			h.LocalSlice(th, r, 3000)
		})
	})
}

func TestPoisonAbortsBarrierWaiters(t *testing.T) {
	rt := testRuntime(4)
	expectPanic(t, "panicked", func() {
		rt.Run(func(th *Thread) {
			if th.ID() == 0 {
				panic("original failure")
			}
			th.Barrier() // must not hang
		})
	})
}

func TestPoisonAbortsCollectiveWaiters(t *testing.T) {
	rt := testRuntime(4)
	expectPanic(t, "original failure", func() {
		rt.Run(func(th *Thread) {
			if th.ID() == 3 {
				panic("original failure")
			}
			AllReduceF64(th, 1, OpSum) // must not hang
		})
	})
}

func TestPoisonAbortsLockWaiters(t *testing.T) {
	rt := testRuntime(2)
	lk := rt.NewLock(0)
	expectPanic(t, "original failure", func() {
		rt.Run(func(th *Thread) {
			if th.ID() == 0 {
				lk.Acquire(th)
				th.Barrier() // rendezvous so thread 1 is queued behind the lock
				panic("original failure")
			}
			th.Barrier()
			lk.Acquire(th) // held by the dying thread: must abort, not hang
		})
	})
}

func TestRuntimeReusableAcrossRuns(t *testing.T) {
	rt := NewRuntime(machine.Default(4))
	h := NewHeap[int](rt, 1024)
	rt.Run(func(th *Thread) {
		r := h.Alloc(th, 1)
		*h.Local(th, r) = th.ID()
	})
	// Second SPMD region over the same runtime: state persists.
	rt.Run(func(th *Thread) {
		if got := *h.Local(th, Ref{Thr: int32(th.ID()), Idx: 0}); got != th.ID() {
			t.Errorf("thread %d: heap state lost across runs: %d", th.ID(), got)
		}
		th.Barrier()
	})
}
