package upc

import (
	"testing"

	"upcbh/internal/machine"
)

func nativeRuntime(p int) *Runtime {
	return NewRuntimeMode(machine.Default(p), ModeNative)
}

func TestParseExecMode(t *testing.T) {
	for _, m := range []ExecMode{ModeSimulate, ModeNative} {
		got, err := ParseExecMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseExecMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseExecMode("warp9"); err == nil {
		t.Error("ParseExecMode accepted a bogus mode")
	}
}

func TestRuntimeMode(t *testing.T) {
	if m := NewRuntime(machine.Default(2)).Mode(); m != ModeSimulate {
		t.Errorf("default runtime mode = %v", m)
	}
	if m := nativeRuntime(2).Mode(); m != ModeNative {
		t.Errorf("native runtime mode = %v", m)
	}
}

// TestNativeChargesAreFree: in ModeNative, cost charges must not
// influence reported time beyond the real wall clock. A million charged
// "seconds" should leave the clock at sub-second wall time.
func TestNativeChargesAreFree(t *testing.T) {
	rt := nativeRuntime(2)
	rt.Run(func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Charge(1000)
			th.ChargeRaw(1000)
		}
		th.AdvanceTo(1e12)
	})
	if c := rt.MaxClock(); c > 60 {
		t.Errorf("native clock %g reflects simulated charges, want wall time", c)
	}
}

// TestNativeNowMonotonic: the wall clock must be non-decreasing within a
// thread and positive after real work.
func TestNativeNowMonotonic(t *testing.T) {
	rt := nativeRuntime(4)
	rt.Run(func(th *Thread) {
		t0 := th.Now()
		acc := 0.0
		for i := 0; i < 100000; i++ {
			acc += float64(i)
		}
		_ = acc
		t1 := th.Now()
		if t1 < t0 {
			t.Errorf("thread %d: Now went backwards: %g -> %g", th.ID(), t0, t1)
		}
		if t1 < 0 {
			t.Errorf("thread %d: negative wall time %g", th.ID(), t1)
		}
	})
}

// TestNativeHeapTransfers: data movement is mode-independent — remote
// gets, puts, and gathers must move real bytes in ModeNative.
func TestNativeHeapTransfers(t *testing.T) {
	const p = 4
	rt := nativeRuntime(p)
	h := NewHeap[int](rt, 1024)
	rt.Run(func(th *Thread) {
		r := h.Alloc(th, 1)
		h.Put(th, r, 100+th.ID())
		th.Barrier()
		// Read every peer's value remotely.
		for i := 0; i < p; i++ {
			if got := h.Get(th, Ref{Thr: int32(i), Idx: 0}); got != 100+i {
				t.Errorf("thread %d: Get(%d) = %d, want %d", th.ID(), i, got, 100+i)
			}
		}
		// Gather them all at once.
		refs := make([]Ref, p)
		for i := range refs {
			refs[i] = Ref{Thr: int32(i), Idx: 0}
		}
		dst := make([]int, p)
		hd := h.GatherAsync(th, refs, dst)
		if !th.TrySync(hd) {
			t.Errorf("thread %d: native TrySync should complete immediately", th.ID())
		}
		th.WaitSync(hd)
		for i, v := range dst {
			if v != 100+i {
				t.Errorf("thread %d: gather[%d] = %d, want %d", th.ID(), i, v, 100+i)
			}
		}
	})
}

// TestNativeLockMutualExclusion: the lock must provide real mutual
// exclusion (not just simulated serialization) — concurrent unprotected
// increments would be lost (and flagged by the race detector).
func TestNativeLockMutualExclusion(t *testing.T) {
	const p, iters = 8, 2000
	rt := nativeRuntime(p)
	lk := rt.NewLock(0)
	counter := 0
	rt.Run(func(th *Thread) {
		for i := 0; i < iters; i++ {
			lk.Acquire(th)
			counter++
			lk.Release(th)
		}
	})
	if counter != p*iters {
		t.Errorf("counter = %d, want %d: lock failed to exclude", counter, p*iters)
	}
}

// TestNativeCollectives: reductions and broadcasts must still combine
// real values under the native backend.
func TestNativeCollectives(t *testing.T) {
	const p = 4
	rt := nativeRuntime(p)
	rt.Run(func(th *Thread) {
		if sum := AllReduceF64(th, float64(th.ID()+1), OpSum); sum != 10 {
			t.Errorf("thread %d: allreduce sum = %g, want 10", th.ID(), sum)
		}
		vec := AllReduceVecF64(th, []float64{float64(th.ID()), 1}, OpMax)
		if vec[0] != p-1 || vec[1] != 1 {
			t.Errorf("thread %d: vector reduce = %v", th.ID(), vec)
		}
		if v := Broadcast(th, 2, th.ID()*11); v != 22 {
			t.Errorf("thread %d: broadcast = %d, want 22", th.ID(), v)
		}
		all := AllGather(th, th.ID())
		for i, v := range all {
			if v != i {
				t.Errorf("thread %d: allgather[%d] = %d", th.ID(), i, v)
			}
		}
	})
}

// TestNativeResetClocks: resetting restarts the wall-clock epoch.
func TestNativeResetClocks(t *testing.T) {
	rt := nativeRuntime(2)
	rt.Run(func(th *Thread) {
		acc := 0.0
		for i := 0; i < 200000; i++ {
			acc += float64(i)
		}
		_ = acc
	})
	before := rt.MaxClock()
	rt.ResetClocks()
	if after := rt.MaxClock(); after > before && before > 0 {
		// after is measured immediately after the reset; it must be (near)
		// zero relative to the pre-reset elapsed time.
		t.Errorf("clock after reset (%g) exceeds pre-reset elapsed (%g)", after, before)
	}
	if st := rt.TotalStats(); st.Msgs != 0 || st.Barriers != 0 {
		t.Errorf("stats not cleared by reset: %+v", st)
	}
}

// TestSimulateUnaffectedBySeam: a sanity pin that the simulate backend
// still charges remote accesses orders of magnitude above local ones
// after the cost-model extraction.
func TestSimulateUnaffectedBySeam(t *testing.T) {
	rt := NewRuntime(machine.Default(2))
	h := NewHeap[[64]byte](rt, 1024)
	rt.Run(func(th *Thread) {
		h.Alloc(th, 1)
		th.Barrier()
		before := th.Now()
		h.Get(th, Ref{Thr: int32(th.ID()), Idx: 0})
		localCost := th.Now() - before
		before = th.Now()
		h.Get(th, Ref{Thr: int32(1 - th.ID()), Idx: 0})
		remoteCost := th.Now() - before
		if remoteCost < 100*localCost {
			t.Errorf("thread %d: remote %g vs local %g: cost model gone", th.ID(), remoteCost, localCost)
		}
	})
}
