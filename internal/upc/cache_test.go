package upc

import (
	"testing"

	"upcbh/internal/machine"
)

func TestCacheHitsAndCosts(t *testing.T) {
	rt := NewRuntime(machine.Default(2))
	h := NewHeap[[16]float64](rt, 1024)
	rt.Run(func(th *Thread) {
		r := h.Alloc(th, 8)
		v := h.Local(th, r)
		v[0] = float64(th.ID() + 7)
		th.Barrier()
		if th.ID() != 0 {
			return
		}
		c := NewCache(th, h, 256)
		remote := Ref{Thr: 1, Idx: 0}

		before := th.Now()
		got := c.Get(remote)
		missCost := th.Now() - before
		if got[0] != 8 {
			t.Errorf("cached value %v", got[0])
		}
		before = th.Now()
		got = c.Get(remote)
		hitCost := th.Now() - before
		if got[0] != 8 {
			t.Errorf("hit value %v", got[0])
		}
		if hitCost*100 > missCost {
			t.Errorf("hit (%g) should be >>100x cheaper than miss (%g)", hitCost, missCost)
		}
		st := c.Stats()
		if st.Hits != 1 || st.Misses != 1 {
			t.Errorf("stats = %+v", st)
		}
		if c.HitRate() != 0.5 {
			t.Errorf("hit rate %v", c.HitRate())
		}
	})
}

func TestCacheBarrierInvalidation(t *testing.T) {
	rt := NewRuntime(machine.Default(2))
	h := NewHeap[int](rt, 1024)
	rt.Run(func(th *Thread) {
		r := h.Alloc(th, 1)
		*h.Local(th, r) = 1
		th.Barrier()
		if th.ID() == 0 {
			c := NewCache(th, h, 64)
			if got := c.Get(Ref{Thr: 1, Idx: 0}); got != 1 {
				t.Errorf("initial value %d", got)
			}
			th.Barrier() // writer updates after this barrier...
			th.Barrier() // ...and before this one
			// A correct barrier-invalidated cache must re-fetch now.
			if got := c.Get(Ref{Thr: 1, Idx: 0}); got != 2 {
				t.Errorf("post-barrier value %d, want fresh 2", got)
			}
			st := c.Stats()
			if st.Misses != 2 || st.Invalidations != 1 {
				t.Errorf("stats = %+v", st)
			}
			return
		}
		th.Barrier()
		*h.Local(th, Ref{Thr: 1, Idx: 0}) = 2
		th.Barrier() // publish before the reader's second access
	})
}

func TestCacheLocalBypass(t *testing.T) {
	rt := NewRuntime(machine.Default(1))
	h := NewHeap[int](rt, 1024)
	rt.Run(func(th *Thread) {
		r := h.Alloc(th, 1)
		*h.Local(th, r) = 5
		c := NewCache(th, h, 64)
		if got := c.Get(r); got != 5 {
			t.Errorf("local read %d", got)
		}
		if st := c.Stats(); st.Hits+st.Misses != 0 {
			t.Errorf("local access went through the cache: %+v", st)
		}
	})
}

func TestCacheWriteThrough(t *testing.T) {
	rt := NewRuntime(machine.Default(2))
	h := NewHeap[int](rt, 1024)
	rt.Run(func(th *Thread) {
		h.Alloc(th, 1)
		th.Barrier()
		if th.ID() == 0 {
			c := NewCache(th, h, 64)
			c.Put(Ref{Thr: 1, Idx: 0}, 42)
			if got := c.Get(Ref{Thr: 1, Idx: 0}); got != 42 {
				t.Errorf("read-after-write through cache: %d", got)
			}
		}
		th.Barrier()
		if th.ID() == 1 {
			if got := *h.Local(th, Ref{Thr: 1, Idx: 0}); got != 42 {
				t.Errorf("write-through did not reach home: %d", got)
			}
		}
	})
}

func TestCacheConflictEviction(t *testing.T) {
	rt := NewRuntime(machine.Default(2))
	h := NewHeap[int](rt, 8192)
	rt.Run(func(th *Thread) {
		r := h.Alloc(th, 4096)
		for i := 0; i < 4096; i++ {
			*h.Local(th, Ref{Thr: int32(th.ID()), Idx: r.Idx + int32(i)}) = i
		}
		th.Barrier()
		if th.ID() != 0 {
			return
		}
		// 64-line cache scanned over 4096 remote elements twice: the
		// second pass cannot be all hits (direct-mapped conflicts).
		c := NewCache(th, h, 64)
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 4096; i++ {
				if got := c.Get(Ref{Thr: 1, Idx: int32(i)}); got != i {
					t.Fatalf("element %d = %d", i, got)
				}
			}
		}
		st := c.Stats()
		if st.Misses < 4096 {
			t.Errorf("conflict misses not happening: %+v", st)
		}
	})
}
