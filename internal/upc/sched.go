package upc

import (
	"fmt"
	"runtime"
	"strings"
)

// sched is the deterministic virtual-time cooperative scheduler behind
// ModeSimulate. The old simulate backend ran one freely-preempted OS
// goroutine per emulated thread and rendezvoused them through real
// sync.Mutex/sync.Cond barriers — paying genuine kernel contention and
// context-switch cost to compute *virtual* LogGP clocks, and leaving
// multi-thread clock sequences at the mercy of the Go scheduler (lock
// acquisition and NIC reservation order varied run to run).
//
// The cooperative scheduler replaces that with run-to-completion
// segments: emulated threads still own a goroutine each (application
// code blocks mid-call-stack, so it needs a real stack), but exactly one
// is ever runnable — a "baton" is handed from thread to thread at
// synchronization points only (barriers, collectives, contended locks,
// spin polls, two-sided receives). Between sync points a thread runs
// straight through, charging its private virtual clock with plain
// arithmetic; barriers and collectives resolve by counting arrivals in
// ordinary fields instead of kernel synchronization.
//
// Scheduling policy: whenever the baton is released, it goes to the
// eligible thread with the lowest virtual clock (ties to the lowest
// thread id). This yields a canonical interleaving — one the old
// preemptive runtime could legally have produced — so simulated clocks
// are byte-identical across repeated runs, across -parallel worker
// counts, and under -race. Single-thread runs are trivially unchanged,
// which is what pins the simulate goldens.
//
// Determinism argument (see DESIGN.md §9): every source of cross-thread
// virtual-time coupling — barrier max-clock alignment, collective
// epochs, Lock.availAt serialization, NIC occupancy (nicReserve) — is
// either order-independent (max over arrivals) or ordered by the baton,
// and the baton order is a pure function of virtual clocks, which are
// themselves pure functions of the deterministic per-thread instruction
// streams. No wall-clock time, map iteration, or Go scheduling decision
// feeds back into a clock.
type sched struct {
	rt *Runtime
	n  int

	// gates are the per-thread wake channels (capacity 1). A parked
	// thread blocks on its gate; the baton holder wakes exactly one
	// thread per handoff. Poison wakes everyone (non-blocking sends).
	gates []chan struct{}
	state []schedState
	// ready holds the BlockOn predicate of an sWaiting thread.
	ready []func() bool

	// runq is a binary min-heap of parked runnable threads ordered by
	// (clock, id): scheduling decisions are O(log n), and a spinning
	// thread can test "am I still the lowest clock?" against runq[0] in
	// O(1) — with 512+ emulated threads and millions of spin polls, a
	// linear scan per yield dominated the whole run. Thread clocks never
	// change while parked in the heap (resolvers align clocks before
	// pushing), so the heap invariant holds. waitq holds sWaiting
	// threads; their predicates are polled at each scheduling decision
	// (rare — only two-sided receives use it).
	runq  []int32
	waitq []int32

	// Barrier epoch: arrivals counted in plain fields; the last arriver
	// resolves and keeps running.
	barCount int
	barMax   float64

	// Collective epoch (mirrors collSite, without the mutex/cond).
	collCount    int
	collMax      float64
	collSlots    []any
	collResult   any
	collResolved float64

	// Session step gate (session.go): the active session, the number of
	// threads parked at the gate this pause, and the first arriver — the
	// thread that held the baton when the pause began, which gets it
	// back on resume so the pause is invisible to the schedule.
	sess      *Session
	stepCount int
	stepFirst int32

	nDone int

	stats SchedStats
}

// schedState is a parked thread's scheduling eligibility.
type schedState uint8

const (
	sRunnable schedState = iota // parked in the run queue, eligible
	sRunning                    // holds the baton
	sBarrier                    // parked in Barrier until the epoch resolves
	sColl                       // parked in a collective until the epoch resolves
	sLock                       // parked waiting for a Lock holder to release
	sWaiting                    // parked on a BlockOn predicate
	sStep                       // parked at the session step gate
	sDone                       // returned from the SPMD function
)

func (st schedState) String() string {
	switch st {
	case sRunnable:
		return "runnable"
	case sRunning:
		return "running"
	case sBarrier:
		return "barrier"
	case sColl:
		return "collective"
	case sLock:
		return "lock"
	case sWaiting:
		return "waiting"
	case sStep:
		return "step-gate"
	case sDone:
		return "done"
	}
	return "?"
}

// SchedStats counts cooperative-scheduler events over a Runtime's
// lifetime (zeroed by ResetClocks, like the clocks). They quantify the
// real cost the harness pays per simulated run: Handoffs is the number
// of baton transfers between thread goroutines (two channel operations
// each — the only kernel synchronization left in a simulate run),
// SpinYields the number of spin-wait polls that actually offered the
// baton to a peer (fast-path polls that kept it are not counted).
type SchedStats struct {
	Handoffs   uint64 `json:"handoffs"`
	SpinYields uint64 `json:"spin_yields"`
}

func newSched(rt *Runtime) *sched {
	s := &sched{
		rt:        rt,
		n:         rt.n,
		gates:     make([]chan struct{}, rt.n),
		state:     make([]schedState, rt.n),
		ready:     make([]func() bool, rt.n),
		collSlots: make([]any, rt.n),
	}
	for i := range s.gates {
		s.gates[i] = make(chan struct{}, 1)
	}
	return s
}

// SchedStats returns the cooperative-scheduler counters (zero in
// ModeNative, which has no scheduler).
func (rt *Runtime) SchedStats() SchedStats {
	if rt.coop == nil {
		return SchedStats{}
	}
	return rt.coop.stats
}

// less orders threads by (clock, id) — the scheduling priority.
func (s *sched) less(a, b int32) bool {
	ca, cb := s.rt.threads[a].clock, s.rt.threads[b].clock
	return ca < cb || (ca == cb && a < b)
}

// heapPush marks thread i runnable-parked and enqueues it.
func (s *sched) heapPush(i int32) {
	q := append(s.runq, i)
	c := len(q) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !s.less(q[c], q[p]) {
			break
		}
		q[c], q[p] = q[p], q[c]
		c = p
	}
	s.runq = q
}

// heapPop removes and returns the lowest-(clock, id) runnable thread,
// or -1 when none is parked runnable.
func (s *sched) heapPop() int {
	q := s.runq
	if len(q) == 0 {
		return -1
	}
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(q) && s.less(q[l], q[m]) {
			m = l
		}
		if r < len(q) && s.less(q[r], q[m]) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	s.runq = q
	return int(top)
}

// popNext returns the next thread to run: ready sWaiting threads join
// the heap first, then the heap minimum wins. Returns -1 when every
// live thread is blocked.
func (s *sched) popNext() int {
	if len(s.waitq) > 0 {
		kept := s.waitq[:0]
		for _, i := range s.waitq {
			if s.ready[i]() {
				s.state[i] = sRunnable
				s.heapPush(i)
			} else {
				kept = append(kept, i)
			}
		}
		s.waitq = kept
	}
	return s.heapPop()
}

// handoff gives the baton to thread next (which popNext removed from
// the queues). Callers must have finished all scheduler-state updates
// first: the moment the gate send completes, next is running.
func (s *sched) handoff(next int) {
	s.state[next] = sRunning
	s.stats.Handoffs++
	s.gates[next] <- struct{}{}
}

// handoffGate is handoff without the Handoffs count. The session step
// gate uses it exclusively: gate parks and resumes are an artifact of
// the observer pausing the run, not of the simulated program's
// schedule, so a stepped run must report byte-identical SchedStats to
// an uninterrupted one.
func (s *sched) handoffGate(next int) {
	s.state[next] = sRunning
	s.gates[next] <- struct{}{}
}

// yield parks the calling thread in `state` and hands the baton to the
// lowest-clock eligible thread. It returns when the caller is scheduled
// again. With state == sRunnable and no lower-clock peer, the caller
// keeps the baton and returns immediately (the spin fast path).
func (s *sched) yield(me int, state schedState) {
	s.state[me] = state
	switch state {
	case sRunnable:
		s.heapPush(int32(me))
	case sWaiting:
		s.waitq = append(s.waitq, int32(me))
	}
	next := s.popNext()
	if next == me {
		s.state[me] = sRunning
		return
	}
	if next < 0 {
		msg := s.deadlockMsg(me)
		s.rt.poison(msg) // wakes every parked thread; they abort on their gates
		panic(msg)
	}
	s.handoff(next)
	<-s.gates[me]
}

// deadlockMsg renders the all-threads-blocked failure. The old runtime
// hung forever here; the scheduler can see the whole wait graph and
// fails loudly instead.
func (s *sched) deadlockMsg(me int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "upc: deadlock: every live thread is blocked (thread %d yielded last):", me)
	for i, st := range s.state {
		if st != sRunnable || i == me {
			fmt.Fprintf(&b, " t%d=%v", i, st)
		}
	}
	return b.String()
}

// wakeAllParked is the poison path: wake every parked thread so it can
// observe the poisoned runtime and abort. Gate sends are non-blocking —
// a thread that was already handed the baton keeps its pending wake.
// Only the baton holder ever calls poison in cooperative mode, so the
// state scan is race-free.
func (s *sched) wakeAllParked() {
	for i := range s.gates {
		select {
		case s.gates[i] <- struct{}{}:
		default:
		}
	}
}

// barrier is the cooperative Thread.Barrier: deposit the clock, resolve
// on the last arrival (max over participants plus the modelled cost),
// park otherwise. The resolver keeps the baton; resumed waiters have
// their clocks pre-aligned to the resolved time.
func (s *sched) barrier(t *Thread) {
	s.rt.checkPoison()
	if t.clock > s.barMax {
		s.barMax = t.clock
	}
	s.barCount++
	if s.barCount == s.n {
		resolved := s.barMax + s.rt.mach.BarrierCost()
		s.barCount, s.barMax = 0, 0
		for i, st := range s.state {
			if st == sBarrier {
				s.rt.threads[i].clock = resolved
				s.state[i] = sRunnable
				s.heapPush(int32(i))
			}
		}
		t.clock = resolved
		return
	}
	s.yield(t.id, sBarrier)
	s.rt.checkPoison()
	// The resolver aligned our clock before marking us runnable.
}

// exchange is the cooperative collective rendezvous (the scheduler's
// replacement for collSite.exchange): identical result and clock
// semantics, no mutex/cond. combine runs exactly once per epoch, on the
// last arriver, which keeps the baton.
func (s *sched) exchange(t *Thread, v any, cost float64, combine func(slots []any) any) (any, float64) {
	s.rt.checkPoison()
	s.collSlots[t.id] = v
	if t.clock > s.collMax {
		s.collMax = t.clock
	}
	s.collCount++
	if s.collCount == s.n {
		s.collResult = combine(s.collSlots)
		s.collResolved = s.collMax + cost
		s.collCount, s.collMax = 0, 0
		for i := range s.collSlots {
			s.collSlots[i] = nil
		}
		for i, st := range s.state {
			if st == sColl {
				s.state[i] = sRunnable
				s.heapPush(int32(i))
			}
		}
		return s.collResult, s.collResolved
	}
	s.yield(t.id, sColl)
	s.rt.checkPoison()
	// SPMD discipline makes this read safe: the next epoch cannot
	// resolve (and overwrite the result) until every thread — including
	// us — has deposited into it, which happens after this return.
	return s.collResult, s.collResolved
}

// lockAcquire takes l or parks until the holder releases. Mutual
// exclusion is structural: ownership transfers directly to the first
// waiter at release, and only one thread runs at a time.
func (s *sched) lockAcquire(t *Thread, l *Lock) {
	s.rt.checkPoison()
	if !l.held {
		l.held = true
		return
	}
	l.waiters = append(l.waiters, int32(t.id))
	s.yield(t.id, sLock)
	s.rt.checkPoison()
	// The releaser transferred ownership to us (l.held stayed true).
}

// lockRelease hands l to the longest-waiting thread, or frees it.
func (s *sched) lockRelease(t *Thread, l *Lock) {
	if len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[:copy(l.waiters, l.waiters[1:])]
		s.state[w] = sRunnable
		s.heapPush(w)
		return
	}
	l.held = false
}

// SpinYield is the cooperative replacement for runtime.Gosched in
// spin-wait loops (e.g. the c-of-m Done-flag poll): under the
// cooperative scheduler the producer can never run while the consumer
// spins, so each failed poll must offer the baton to the lowest-clock
// peer. If the spinner still has the lowest clock it keeps running —
// charged polls advance its clock, so the producer is reached in
// bounded virtual time. In ModeNative it degenerates to runtime.Gosched.
func (t *Thread) SpinYield() {
	s := t.rt.coop
	if s == nil {
		runtime.Gosched()
		return
	}
	t.rt.checkPoison()
	// O(1) fast path: if no parked peer has a lower (clock, id), the
	// spinner keeps the baton — no peer could have run before it, so the
	// polled condition cannot have changed. Charged polls advance the
	// spinner's clock, so it eventually yields past runq[0]. (With
	// predicate waiters present the full path runs: their readiness is
	// not clock-ordered.)
	if len(s.waitq) == 0 {
		if len(s.runq) == 0 || !s.less(s.runq[0], int32(t.id)) {
			return
		}
	}
	s.stats.SpinYields++
	s.yield(t.id, sRunnable)
	t.rt.checkPoison()
}

// BlockOn parks the thread until ready() reports true. It is the
// primitive for conditions produced by *other* threads with no modelled
// completion time of their own (e.g. a two-sided MPI receive waiting for
// its sender). ready must be side-effect free; it is evaluated by
// scheduling decisions, not just by this thread. Under the cooperative
// scheduler the thread is simply ineligible until ready() holds; in
// ModeNative it spin-waits, aborting if the runtime is poisoned.
func (t *Thread) BlockOn(ready func() bool) {
	if ready() {
		return
	}
	s := t.rt.coop
	if s == nil {
		for !ready() {
			select {
			case <-t.rt.poisonCh:
				panic(poisonAbort{poisonSecondary})
			default:
				runtime.Gosched()
			}
		}
		return
	}
	t.rt.checkPoison()
	s.ready[t.id] = ready
	s.yield(t.id, sWaiting)
	s.ready[t.id] = nil
	t.rt.checkPoison()
}

// stepPark parks the calling thread at the session step gate. When the
// last live thread parks, the pause is complete and control passes to
// the session controller instead of another emulated thread — the
// single-runner invariant extends to the controller, which runs only
// while every thread is parked. Parking charges nothing and aligns no
// clocks: the gate must be invisible to the simulated-time model.
func (s *sched) stepPark(t *Thread) {
	me := t.id
	if s.stepCount == 0 {
		s.stepFirst = int32(me)
	}
	s.stepCount++
	s.state[me] = sStep
	if s.stepCount == s.n-s.nDone {
		// Every live thread is at the gate: hand control to the
		// controller (buffered send — it may not be waiting yet).
		s.sess.pauseCh <- struct{}{}
	} else {
		next := s.popNext()
		if next < 0 {
			// Peers are blocked on events only gate-parked threads could
			// produce (a barrier this thread abandoned, etc.) — the SPMD
			// discipline is broken.
			msg := s.deadlockMsg(me)
			s.rt.poison(msg)
			panic(msg)
		}
		s.handoffGate(next)
	}
	<-s.gates[me]
	s.rt.checkPoison()
}

// stepResume releases a completed pause: every gate-parked thread except
// the first arriver re-enters the run queue, and the baton goes back to
// the first arriver — the thread that was running when the pause began —
// so the continuation is scheduled exactly as if the gate did not exist.
// Called by the session controller while every thread is parked.
func (s *sched) stepResume() {
	first := s.stepFirst
	s.stepCount, s.stepFirst = 0, -1
	for i, st := range s.state {
		if st == sStep && int32(i) != first {
			s.state[i] = sRunnable
			s.heapPush(int32(i))
		}
	}
	s.handoffGate(int(first))
}

// exit retires the calling thread at the end of the SPMD function and
// passes the baton on. After a poison every thread is already awake and
// unwinding, so no baton discipline remains.
func (s *sched) exit(me int) {
	if s.rt.poisoned.Load() != nil {
		return
	}
	s.state[me] = sDone
	s.nDone++
	if s.nDone == s.n {
		if s.sess != nil {
			// Session region: the last thread exited, so no pause will
			// ever signal again — return control to the controller (it
			// may be waiting in Start/Resume if fn never hit the gate).
			select {
			case s.sess.pauseCh <- struct{}{}:
			default:
			}
		}
		return
	}
	next := s.popNext()
	if next < 0 {
		// The remaining threads are blocked on events that can no longer
		// happen (e.g. a barrier this thread will never reach).
		msg := s.deadlockMsg(me)
		s.rt.poison(msg)
		panic(msg)
	}
	s.handoff(next)
}

// gatedBody wraps one cooperative SPMD region's thread function: reset
// the region state (the caller invokes gatedBody before launching any
// goroutine), then have each thread wait for its first scheduling, run,
// and retire. Clocks persist across regions, exactly like the old
// backend.
func (s *sched) gatedBody(fn func(t *Thread)) func(t *Thread) {
	s.runq = s.runq[:0]
	s.waitq = s.waitq[:0]
	for i := range s.state {
		s.state[i] = sRunnable
		s.ready[i] = nil
		s.heapPush(int32(i))
	}
	s.nDone = 0
	s.stepCount, s.stepFirst = 0, -1
	return func(t *Thread) {
		<-s.gates[t.id]
		if s.rt.poisoned.Load() != nil {
			// A peer failed before this thread was ever scheduled. Abort
			// instead of running fn: the single-runner invariant must
			// hold even while a poisoned region unwinds, so that the
			// scheduler (and everything it orders — clocks, NIC times,
			// heap storage) never sees concurrent access.
			panic(poisonAbort{poisonSecondary})
		}
		fn(t)
		s.exit(t.id)
	}
}

// start hands the baton to the first thread of a region (called by Run
// after every thread goroutine is launched; threads are parked on their
// gates, so launch order is irrelevant).
func (s *sched) start() {
	if first := s.popNext(); first >= 0 {
		s.handoff(first)
	}
}
