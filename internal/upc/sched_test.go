package upc

import (
	"strings"
	"sync/atomic"
	"testing"

	"upcbh/internal/machine"
)

// The cooperative virtual-time scheduler must reproduce the blocking
// semantics of the old goroutine runtime (locks held across barriers,
// spin-wait protocols, two-sided waits) while making every simulated
// clock sequence deterministic.

// TestSchedDeterministicClocks runs a lock/NIC/collective-heavy SPMD
// region repeatedly and demands byte-identical clocks: the whole point
// of lowest-clock baton scheduling.
func TestSchedDeterministicClocks(t *testing.T) {
	run := func() ([]float64, Stats) {
		rt := testRuntime(16)
		h := NewHeap[[4]float64](rt, 1024)
		lk := rt.NewLockArray(8)
		rt.Run(func(th *Thread) {
			r := h.Alloc(th, 64)
			th.Barrier()
			for i := 0; i < 50; i++ {
				src := (th.ID() + i) % th.P()
				_ = h.Get(th, Ref{Thr: int32(src), Idx: int32(i % 64)})
				l := lk.ForRef(Ref{Thr: int32(src), Idx: int32(i)})
				l.Acquire(th)
				th.ChargeRaw(1e-6)
				l.Release(th)
			}
			_ = AllReduceF64(th, float64(th.ID()), OpSum)
			th.Barrier()
			_ = r
		})
		clocks := make([]float64, rt.Threads())
		for i := range clocks {
			clocks[i] = rt.ThreadClock(i)
		}
		return clocks, rt.TotalStats()
	}
	c0, s0 := run()
	for rep := 0; rep < 3; rep++ {
		c, s := run()
		for i := range c {
			if c[i] != c0[i] {
				t.Fatalf("rep %d: thread %d clock %.17g != %.17g", rep, i, c[i], c0[i])
			}
		}
		if s != s0 {
			t.Fatalf("rep %d: stats diverged: %+v vs %+v", rep, s, s0)
		}
	}
}

// TestSchedLockHeldAcrossBarrier pins the blocking-lock path: a lock
// held across a barrier forces the other thread to park on the lock and
// be resumed by the release (the old channel-lock semantics).
func TestSchedLockHeldAcrossBarrier(t *testing.T) {
	rt := testRuntime(2)
	lk := rt.NewLock(0)
	order := make([]int, 0, 4)
	rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			lk.Acquire(th)
			th.Barrier()
			th.ChargeRaw(1e-3)
			order = append(order, 0)
			lk.Release(th)
		} else {
			th.Barrier()
			lk.Acquire(th) // held by thread 0: must park, not deadlock
			order = append(order, 1)
			lk.Release(th)
		}
		th.Barrier()
	})
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("critical sections ran in order %v, want [0 1]", order)
	}
}

// TestSchedDeadlockPanics: the old runtime hung forever when every
// thread blocked on an event that could not happen; the scheduler sees
// the whole wait graph and must fail loudly instead.
func TestSchedDeadlockPanics(t *testing.T) {
	rt := testRuntime(2)
	lk := rt.NewLock(0)
	expectPanic(t, "deadlock", func() {
		rt.Run(func(th *Thread) {
			if th.ID() == 0 {
				lk.Acquire(th)
				th.Barrier() // waits for thread 1, which waits for the lock
				lk.Release(th)
			} else {
				lk.Acquire(th)
				th.Barrier()
				lk.Release(th)
			}
		})
	})
}

// TestSpinYieldConverges: a flag protocol (producer stores, consumer
// spin-polls with SpinYield) must terminate, charge deterministically,
// and align the consumer past the producer's publication.
func TestSpinYieldConverges(t *testing.T) {
	run := func() (float64, uint64) {
		rt := testRuntime(2)
		var flag atomic.Uint32
		var doneAt float64
		var polls uint64
		rt.Run(func(th *Thread) {
			// The consumer is thread 0 so it is scheduled first (equal
			// clocks tie-break by id) and must actually poll.
			if th.ID() == 1 {
				th.ChargeRaw(1e-3) // publish "late" in virtual time
				doneAt = th.Now()
				flag.Store(1)
				return
			}
			for flag.Load() == 0 {
				if th.Poisoned() {
					panic("peer failed")
				}
				polls++
				th.ChargeRaw(1e-5) // a charged poll
				th.SpinYield()
			}
			th.AdvanceTo(doneAt)
		})
		return rt.ThreadClock(0), polls
	}
	c0, p0 := run()
	if p0 == 0 {
		t.Fatal("consumer never had to poll")
	}
	if c0 < 1e-3 {
		t.Fatalf("consumer clock %g not aligned past producer's publication", c0)
	}
	for rep := 0; rep < 3; rep++ {
		if c, p := run(); c != c0 || p != p0 {
			t.Fatalf("spin nondeterministic: clock %g/%g polls %d/%d", c, c0, p, p0)
		}
	}
}

// TestBlockOnWakesWhenReady: BlockOn parks the thread until another
// thread makes the predicate true (the mpi.Recv wait path).
func TestBlockOnWakesWhenReady(t *testing.T) {
	rt := testRuntime(2)
	ch := make(chan int, 4)
	got := 0
	rt.Run(func(th *Thread) {
		// The consumer is thread 0 so it is scheduled first and must
		// genuinely park on the predicate.
		if th.ID() == 1 {
			th.ChargeRaw(1e-3)
			ch <- 42
			return
		}
		th.BlockOn(func() bool { return len(ch) > 0 })
		got = <-ch
	})
	if got != 42 {
		t.Fatalf("BlockOn consumer read %d", got)
	}
}

// TestBlockOnDeadlockPanics: a predicate nobody can satisfy must be
// diagnosed, not hung on.
func TestBlockOnDeadlockPanics(t *testing.T) {
	rt := testRuntime(2)
	expectPanic(t, "deadlock", func() {
		rt.Run(func(th *Thread) {
			if th.ID() == 1 {
				th.BlockOn(func() bool { return false })
			}
		})
	})
}

// TestSchedStatsCount: handoffs and spin yields are counted (the sched
// experiment reports them as the harness's real per-run overhead).
func TestSchedStatsCount(t *testing.T) {
	rt := testRuntime(4)
	rt.Run(func(th *Thread) {
		th.Barrier()
		th.Barrier()
	})
	st := rt.SchedStats()
	if st.Handoffs == 0 {
		t.Fatalf("no handoffs counted: %+v", st)
	}
}

// TestSchedPoisonMessageNamesDeadlockedThreads: failure diagnostics
// should describe the wait graph.
func TestSchedPoisonMessageNamesDeadlockedThreads(t *testing.T) {
	rt := testRuntime(3)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, "t1=barrier") && !strings.Contains(msg, "t0=barrier") {
			t.Fatalf("deadlock message %q does not describe blocked threads", msg)
		}
	}()
	rt.Run(func(th *Thread) {
		if th.ID() != 2 {
			th.Barrier() // thread 2 exits without ever arriving
		}
	})
}

// TestCooperativeSingleRunner: under ModeSimulate at most one emulated
// thread executes at any instant — the invariant that lets the runtime
// drop kernel synchronization from the per-operation paths.
func TestCooperativeSingleRunner(t *testing.T) {
	rt := testRuntime(32)
	var running atomic.Int32
	rt.Run(func(th *Thread) {
		for i := 0; i < 20; i++ {
			if n := running.Add(1); n != 1 {
				t.Errorf("%d emulated threads running concurrently", n)
			}
			running.Add(-1)
			th.Barrier()
		}
	})
}

// TestNativeModeUnaffected: ModeNative keeps real parallel goroutines
// and real synchronization (no scheduler).
func TestNativeModeUnaffected(t *testing.T) {
	rt := NewRuntimeMode(machine.Default(4), ModeNative)
	var count atomic.Int32
	rt.Run(func(th *Thread) {
		count.Add(1)
		th.Barrier()
		_ = AllGather(th, th.ID())
	})
	if count.Load() != 4 {
		t.Fatalf("ran %d native threads", count.Load())
	}
	if st := rt.SchedStats(); st.Handoffs != 0 {
		t.Fatalf("native mode used the cooperative scheduler: %+v", st)
	}
}
