package upc

import (
	"fmt"
	"testing"

	"upcbh/internal/machine"
)

// Real (wall-clock) cost of the emulation primitives themselves — the
// overhead the harness pays per modelled operation.

func BenchmarkLocalGet(b *testing.B) {
	rt := NewRuntime(machine.Default(1))
	h := NewHeap[[8]float64](rt, 4096)
	rt.Run(func(t *Thread) {
		r := h.Alloc(t, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = h.Get(t, r)
		}
	})
}

func BenchmarkRemoteGet(b *testing.B) {
	rt := NewRuntime(machine.Default(2))
	h := NewHeap[[8]float64](rt, 4096)
	rt.Run(func(t *Thread) {
		h.Alloc(t, 1)
		t.Barrier()
		if t.ID() != 0 {
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = h.Get(t, Ref{Thr: 1, Idx: 0})
		}
	})
}

func BenchmarkGather64(b *testing.B) {
	rt := NewRuntime(machine.Default(2))
	h := NewHeap[[8]float64](rt, 4096)
	rt.Run(func(t *Thread) {
		h.Alloc(t, 64)
		t.Barrier()
		if t.ID() != 0 {
			return
		}
		refs := make([]Ref, 64)
		for i := range refs {
			refs[i] = Ref{Thr: 1, Idx: int32(i)}
		}
		dst := make([][8]float64, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Gather(t, refs, dst)
		}
	})
}

func BenchmarkBarrier8(b *testing.B) {
	rt := NewRuntime(machine.Default(8))
	b.ResetTimer()
	rt.Run(func(t *Thread) {
		for i := 0; i < b.N; i++ {
			t.Barrier()
		}
	})
}

func BenchmarkAllReduceVec8(b *testing.B) {
	rt := NewRuntime(machine.Default(8))
	v := make([]float64, 64)
	b.ResetTimer()
	rt.Run(func(t *Thread) {
		for i := 0; i < b.N; i++ {
			_ = AllReduceVecF64(t, v, OpSum)
		}
	})
}

// BenchmarkRuntimeOps measures the real (wall-clock) cost of the core
// runtime operations under the cooperative scheduler at a small and at
// the paper's maximum thread count — the per-operation overhead every
// simulate-mode experiment pays. Run in CI to track the scheduler's
// perf trajectory.
func BenchmarkRuntimeOps(b *testing.B) {
	for _, p := range []int{8, 112} {
		b.Run(fmt.Sprintf("barrier/p=%d", p), func(b *testing.B) {
			rt := NewRuntime(machine.Default(p))
			b.ResetTimer()
			rt.Run(func(t *Thread) {
				for i := 0; i < b.N; i++ {
					t.Barrier()
				}
			})
		})
		b.Run(fmt.Sprintf("memget/p=%d", p), func(b *testing.B) {
			rt := NewRuntime(machine.Default(p))
			h := NewHeap[[8]float64](rt, 4096)
			rt.Run(func(t *Thread) {
				h.Alloc(t, 1)
				t.Barrier()
				if t.ID() != 0 {
					return
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = h.Get(t, Ref{Thr: int32(1 + i%(p-1)), Idx: 0})
				}
			})
		})
		b.Run(fmt.Sprintf("broadcast/p=%d", p), func(b *testing.B) {
			rt := NewRuntime(machine.Default(p))
			b.ResetTimer()
			rt.Run(func(t *Thread) {
				for i := 0; i < b.N; i++ {
					_ = Broadcast(t, 0, i)
				}
			})
		})
		b.Run(fmt.Sprintf("lock/p=%d", p), func(b *testing.B) {
			rt := NewRuntime(machine.Default(p))
			lk := rt.NewLock(p - 1)
			rt.Run(func(t *Thread) {
				t.Barrier()
				if t.ID() != 0 {
					return
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lk.Acquire(t)
					lk.Release(t)
				}
			})
		})
	}
}

func BenchmarkCacheHit(b *testing.B) {
	rt := NewRuntime(machine.Default(2))
	h := NewHeap[[8]float64](rt, 4096)
	rt.Run(func(t *Thread) {
		h.Alloc(t, 1)
		t.Barrier()
		if t.ID() != 0 {
			return
		}
		c := NewCache(t, h, 256)
		r := Ref{Thr: 1, Idx: 0}
		_ = c.Get(r)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.Get(r)
		}
	})
}
