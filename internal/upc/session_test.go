package upc

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"upcbh/internal/machine"
)

// sessionBody is a canonical SPMD session body for the tests: per-step
// it charges thread-dependent time, exchanges data through a barrier-
// separated collective, and records its step count.
func sessionBody(steps *[][]int, clocks *[][]float64) func(t *Thread) {
	return func(t *Thread) {
		me := t.ID()
		t.Charge(1e-6 * float64(me+1)) // setup skew
		t.Barrier()
		for t.NextStep() {
			t.Charge(1e-6)
			AllReduceVecF64(t, []float64{float64(me)}, OpMax)
			t.Barrier()
			(*steps)[me] = append((*steps)[me], len((*steps)[me]))
			(*clocks)[me] = append((*clocks)[me], t.Now())
		}
	}
}

func newSessionState(n int) (*[][]int, *[][]float64) {
	steps := make([][]int, n)
	clocks := make([][]float64, n)
	return &steps, &clocks
}

func testSessionStepGate(t *testing.T, mode ExecMode) {
	const n = 4
	rt := NewRuntimeMode(machine.Default(n), mode)
	steps, clocks := newSessionState(n)
	sess := rt.Start(sessionBody(steps, clocks))
	for i := 0; i < n; i++ {
		if len((*steps)[i]) != 0 {
			t.Fatalf("thread %d ran %d steps before any Resume", i, len((*steps)[i]))
		}
	}
	sess.Resume(2)
	for i := 0; i < n; i++ {
		if len((*steps)[i]) != 2 {
			t.Fatalf("thread %d ran %d steps after Resume(2), want 2", i, len((*steps)[i]))
		}
	}
	sess.Resume(3)
	for i := 0; i < n; i++ {
		if got := len((*steps)[i]); got != 5 {
			t.Fatalf("thread %d ran %d steps after Resume(2)+Resume(3), want 5", i, got)
		}
	}
	if got := sess.StepsDone(); got != 5 {
		t.Fatalf("StepsDone = %d, want 5", got)
	}
	if mode == ModeSimulate {
		// Clocks must be monotone across the pause: the gate charges
		// nothing and never rewinds time.
		for i := 0; i < n; i++ {
			cs := (*clocks)[i]
			for k := 1; k < len(cs); k++ {
				if cs[k] < cs[k-1] {
					t.Fatalf("thread %d clock went backwards across steps: %v", i, cs)
				}
			}
		}
	}
	sess.Finish()
	if !sess.Done() {
		t.Fatal("session not done after Finish")
	}
	for i := 0; i < n; i++ {
		if got := len((*steps)[i]); got != 5 {
			t.Fatalf("thread %d ran %d steps total, want 5 (Finish must not grant steps)", i, got)
		}
	}
}

func TestSessionStepGateSimulate(t *testing.T) { testSessionStepGate(t, ModeSimulate) }
func TestSessionStepGateNative(t *testing.T)   { testSessionStepGate(t, ModeNative) }

// TestSessionEquivalentToRun pins the scheduling transparency of the
// step gate in the simulate backend: a stepped session must leave every
// thread with exactly the clock an uninterrupted Run of the same
// per-step work produces, for any partition of the steps.
func TestSessionEquivalentToRun(t *testing.T) {
	const n, total = 8, 6
	run := func(partition []int) []float64 {
		rt := NewRuntimeMode(machine.Default(n), ModeSimulate)
		steps, clocks := newSessionState(n)
		sess := rt.Start(sessionBody(steps, clocks))
		for _, k := range partition {
			sess.Resume(k)
		}
		sess.Finish()
		out := make([]float64, n)
		for i := range out {
			out[i] = rt.ThreadNow(i)
		}
		return out
	}
	reference := func() []float64 {
		rt := NewRuntimeMode(machine.Default(n), ModeSimulate)
		// The same per-step work as sessionBody, but as a plain Run
		// region with a counted loop instead of the NextStep gate.
		rt.Run(func(t *Thread) {
			me := t.ID()
			t.Charge(1e-6 * float64(me+1))
			t.Barrier()
			for s := 0; s < total; s++ {
				t.Charge(1e-6)
				AllReduceVecF64(t, []float64{float64(me)}, OpMax)
				t.Barrier()
			}
		})
		out := make([]float64, n)
		for i := range out {
			out[i] = rt.ThreadNow(i)
		}
		return out
	}()
	for _, partition := range [][]int{{total}, {1, 1, 1, 1, 1, 1}, {2, 3, 1}, {5, 1}} {
		got := run(partition)
		for i := range got {
			if got[i] != reference[i] {
				t.Fatalf("partition %v: thread %d clock %v != reference %v",
					partition, i, got[i], reference[i])
			}
		}
	}
}

func testSessionPanicPropagates(t *testing.T, mode ExecMode) {
	rt := NewRuntimeMode(machine.Default(4), mode)
	sess := rt.Start(func(th *Thread) {
		th.Barrier()
		for th.NextStep() {
			if th.ID() == 2 {
				panic("session boom")
			}
			th.Barrier()
		}
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Resume did not propagate the thread panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "session boom") {
			t.Fatalf("propagated panic lost the original message: %v", r)
		}
	}()
	sess.Resume(1)
	t.Fatal("Resume returned despite a panicking thread")
}

func TestSessionPanicPropagatesSimulate(t *testing.T) { testSessionPanicPropagates(t, ModeSimulate) }
func TestSessionPanicPropagatesNative(t *testing.T)   { testSessionPanicPropagates(t, ModeNative) }

// TestSessionBodyWithoutGate: a session whose body never calls NextStep
// degenerates to a plain SPMD region — Start returns once every thread
// has exited, and Finish is a no-op.
func TestSessionBodyWithoutGate(t *testing.T) {
	for _, mode := range []ExecMode{ModeSimulate, ModeNative} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := NewRuntimeMode(machine.Default(3), mode)
			var ran atomic.Int64
			sess := rt.Start(func(th *Thread) {
				th.Barrier()
				ran.Add(1)
			})
			if got := ran.Load(); got != 3 {
				t.Fatalf("Start returned with %d of 3 threads finished", got)
			}
			if !sess.Done() {
				t.Fatal("session with no gate should be done after Start")
			}
			sess.Finish()
		})
	}
}

// TestSessionGuards pins the misuse panics: Run during an active
// session, a second Start, Resume(0), Resume after Finish, and NextStep
// outside any session.
func TestSessionGuards(t *testing.T) {
	rt := NewRuntime(machine.Default(2))
	sess := rt.Start(func(th *Thread) {
		for th.NextStep() {
			th.Barrier()
		}
	})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Run during session", func() { rt.Run(func(th *Thread) {}) })
	mustPanic("second Start", func() { rt.Start(func(th *Thread) {}) })
	mustPanic("Resume(0)", func() { sess.Resume(0) })
	sess.Resume(2)
	sess.Finish()
	sess.Finish() // idempotent
	mustPanic("Resume after Finish", func() { sess.Resume(1) })

	rt2 := NewRuntime(machine.Default(1))
	mustPanic("NextStep outside session", func() {
		rt2.Run(func(th *Thread) { th.NextStep() })
	})
}

// TestSessionRunAfterFinish: the runtime is reusable for plain Run
// regions after a session completes (clocks continue, like repeated
// Run).
func TestSessionRunAfterFinish(t *testing.T) {
	rt := NewRuntime(machine.Default(2))
	sess := rt.Start(func(th *Thread) {
		for th.NextStep() {
			th.Charge(1e-6)
		}
	})
	sess.Resume(3)
	sess.Finish()
	before := rt.ThreadNow(0)
	rt.Run(func(th *Thread) { th.Charge(2e-6) })
	if after := rt.ThreadNow(0); after <= before {
		t.Fatalf("clock did not continue across session->Run: %v -> %v", before, after)
	}
}

// TestSessionManyThreadsStress drives a 64-thread cooperative session
// through many tiny resumes; catches bookkeeping drift in the gate
// (stepCount/stepFirst reset, heap re-insertion).
func TestSessionManyThreadsStress(t *testing.T) {
	const n, rounds = 64, 20
	rt := NewRuntime(machine.Default(n))
	var counts [n]int64
	sess := rt.Start(func(th *Thread) {
		th.Barrier()
		for th.NextStep() {
			th.Charge(float64(th.ID()+1) * 1e-8)
			th.Barrier()
			counts[th.ID()]++
		}
	})
	want := int64(0)
	for r := 0; r < rounds; r++ {
		k := r%3 + 1
		sess.Resume(k)
		want += int64(k)
		if counts[n-1] != want {
			t.Fatalf("round %d: thread %d at %d steps, want %d", r, n-1, counts[n-1], want)
		}
	}
	sess.Finish()
	for i, c := range counts {
		if c != want {
			t.Fatalf("thread %d ran %d steps, want %d", i, c, want)
		}
	}
}

// TestSessionDeadlockDetected: a broken SPMD body where one thread
// parks at the gate while a peer waits at a barrier must fail loudly
// (cooperative backend), not hang.
func TestSessionDeadlockDetected(t *testing.T) {
	rt := NewRuntime(machine.Default(2))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no deadlock panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "deadlock") {
			t.Fatalf("panic is not the deadlock report: %v", msg)
		}
	}()
	sess := rt.Start(func(th *Thread) {
		for th.NextStep() {
			if th.ID() == 0 {
				th.Barrier() // thread 1 never joins: it re-parks at the gate
			}
		}
	})
	sess.Resume(1)
	t.Fatal("Resume returned from a deadlocked region")
}
