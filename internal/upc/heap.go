package upc

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"
)

// heapPools recycles shard storage across runtimes: the experiment
// harness builds one Runtime per configuration, and allocating (and,
// above all, zeroing) megabytes of chunk backing and chunk-table memory
// per simulation dominated the harness's allocation profile. Pools are
// keyed by element type and chunk geometry; see Heap.SetRecycle for the
// (non-zeroed!) reuse contract.
var heapPools sync.Map // heapPoolKey -> *sync.Pool

type heapPoolKey struct {
	typ   reflect.Type
	table bool // chunk tables vs chunk backings
	els   int  // elements per chunk (backings only)
}

func heapPool(key heapPoolKey) *sync.Pool {
	if p, ok := heapPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := heapPools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

// Ref is a global reference into a Heap: the UPC "pointer-to-shared". The
// zero value is NOT nil; use NilRef / IsNil.
type Ref struct {
	Thr int32 // affinity: which thread's shard holds the element
	Idx int32 // element index within that shard
}

// NilRef is the null pointer-to-shared.
var NilRef = Ref{Thr: -1, Idx: -1}

// IsNil reports whether r is the null reference.
func (r Ref) IsNil() bool { return r.Thr < 0 }

// String implements fmt.Stringer for diagnostics.
func (r Ref) String() string {
	if r.IsNil() {
		return "ref(nil)"
	}
	return fmt.Sprintf("ref(%d:%d)", r.Thr, r.Idx)
}

const maxChunks = 1 << 14

// Heap is a distributed array of T: each thread owns a shard in its local
// shared memory, grown by Alloc. Elements are addressed by Ref and
// accessed through cost-charged operations. The backing storage is
// chunked so raw pointers obtained via Local remain valid across later
// allocations.
type Heap[T any] struct {
	rt        *Runtime
	elemSize  int
	chunkSize int32
	shift     uint
	recycle   bool
	shards    []heapShard[T]
}

type heapShard[T any] struct {
	table []atomic.Pointer[[]T] // chunk table; entries published atomically
	n     int32                 // allocated elements; written only by the owner
	_     [6]uint64             // keep owners off each other's cache lines
}

// NewHeap creates a heap over rt whose shards grow in chunks of
// chunkSize elements (rounded up to a power of two, min 1024).
func NewHeap[T any](rt *Runtime, chunkSize int) *Heap[T] {
	cs := int32(1024)
	var shift uint = 10
	for int(cs) < chunkSize {
		cs <<= 1
		shift++
	}
	var zero T
	h := &Heap[T]{
		rt:        rt,
		elemSize:  int(unsafe.Sizeof(zero)),
		chunkSize: cs,
		shift:     shift,
		shards:    make([]heapShard[T], rt.Threads()),
	}
	tp := heapPool(heapPoolKey{typ: reflect.TypeFor[T](), table: true})
	for i := range h.shards {
		// Chunk tables are recycled unconditionally: Release nils the
		// entries it harvests, so a pooled table is indistinguishable
		// from a fresh one.
		if v := tp.Get(); v != nil {
			h.shards[i].table = *v.(*[]atomic.Pointer[[]T])
		} else {
			h.shards[i].table = make([]atomic.Pointer[[]T], maxChunks)
		}
	}
	return h
}

// SetRecycle opts the heap into cross-runtime chunk recycling: Release
// returns the shard storage to a process-wide pool, and Alloc may hand
// out pooled chunks WITHOUT zeroing them. Only enable this when every
// element is fully initialized before its first read (the Barnes-Hut
// heaps are: cells are whole-struct assigned at creation, bodies copied
// in), because Alloc's usual zeroed-memory guarantee no longer holds.
func (h *Heap[T]) SetRecycle() { h.recycle = true }

// Release returns the heap's storage to the process-wide recycling
// pools (chunk backings only if SetRecycle was called). The heap must
// not be used afterwards; data previously copied out (e.g. a collected
// Result) is unaffected.
func (h *Heap[T]) Release() {
	typ := reflect.TypeFor[T]()
	cp := heapPool(heapPoolKey{typ: typ, els: int(h.chunkSize)})
	tp := heapPool(heapPoolKey{typ: typ, table: true})
	for i := range h.shards {
		sh := &h.shards[i]
		for j := 0; j < maxChunks; j++ {
			c := sh.table[j].Load()
			if c == nil {
				break
			}
			sh.table[j].Store(nil)
			if h.recycle {
				cp.Put(c)
			}
		}
		tbl := sh.table
		sh.table = nil
		tp.Put(&tbl)
	}
}

// ElemSize returns the modelled size in bytes of one element.
func (h *Heap[T]) ElemSize() int { return h.elemSize }

// Len returns the number of elements allocated in thread thr's shard.
// Only meaningful at phase boundaries (the owner may be allocating).
func (h *Heap[T]) Len(thr int) int { return int(h.shards[thr].n) }

// Alloc reserves count contiguous elements in t's own shard (upc_alloc
// allocates in the caller's local shared space) and returns the Ref of
// the first. No simulated cost is charged: the emulated allocator is a
// local bump-pointer whose per-object overhead the cost model folds into
// the operation that initializes the allocation (CellInitCost for cells,
// ByteCopyCost for buffers), mirroring how the paper's timings cannot
// separate upc_alloc from the work that populates the memory.
// TestAllocChargesNoCost pins this behavior.
func (h *Heap[T]) Alloc(t *Thread, count int) Ref {
	if count <= 0 {
		panic("upc: Alloc with non-positive count")
	}
	sh := &h.shards[t.id]
	start := sh.n
	mask := h.chunkSize - 1
	if off := start & mask; off != 0 && off+int32(count) > h.chunkSize {
		start = start - off + h.chunkSize // skip to a chunk boundary
	}
	first := int(start >> h.shift)
	last := int((start + int32(count) - 1) >> h.shift)
	if last >= maxChunks {
		panic("upc: heap shard exhausted")
	}
	if sh.table[last].Load() == nil {
		firstMissing := first
		for firstMissing <= last && sh.table[firstMissing].Load() != nil {
			firstMissing++
		}
		nchunks := last - firstMissing + 1
		cs := int(h.chunkSize)
		if h.recycle && nchunks == 1 {
			// Recycled chunk if one is pooled (NOT re-zeroed — see
			// SetRecycle), else a fresh zeroed one.
			p := heapPool(heapPoolKey{typ: reflect.TypeFor[T](), els: cs})
			if v := p.Get(); v != nil {
				sh.table[last].Store(v.(*[]T))
			} else {
				c := make([]T, cs)
				sh.table[last].Store(&c)
			}
		} else {
			// Allocate all missing chunks in one backing array so large
			// allocations are physically contiguous too. Caps are bounded
			// per chunk so Release can pool each independently.
			backing := make([]T, nchunks*cs)
			for k := 0; k < nchunks; k++ {
				c := backing[k*cs : (k+1)*cs : (k+1)*cs]
				sh.table[firstMissing+k].Store(&c)
			}
		}
	}
	sh.n = start + int32(count)
	return Ref{Thr: int32(t.id), Idx: start}
}

// Reset discards all elements of t's own shard (retaining memory). Any
// outstanding Refs into the shard become logically dangling; callers must
// only Reset at phase boundaries, as the Barnes-Hut code does when it
// rebuilds the tree each time-step.
func (h *Heap[T]) Reset(t *Thread) { h.shards[t.id].n = 0 }

// ptr returns the raw address of the element; no cost, no checks.
func (h *Heap[T]) ptr(thr, idx int32) *T {
	c := h.shards[thr].table[idx>>h.shift].Load()
	return &(*c)[idx&(h.chunkSize-1)]
}

// Local returns a raw pointer to an element with affinity to t: the
// "cast pointer-to-shared to local pointer" optimization. It panics if
// the reference is remote — exactly the bug that cast would be in UPC.
// No simulated cost is charged (plain C pointer access).
func (h *Heap[T]) Local(t *Thread, r Ref) *T {
	if int(r.Thr) != t.id {
		panic(fmt.Sprintf("upc: Local cast of remote reference %v on thread %d", r, t.id))
	}
	return h.ptr(r.Thr, r.Idx)
}

// IsLocal reports whether r has affinity to t (upc_threadof == MYTHREAD).
func (h *Heap[T]) IsLocal(t *Thread, r Ref) bool { return int(r.Thr) == t.id }

// Get dereferences a pointer-to-shared, returning a copy of the whole
// element. Local affinity costs the shared-pointer overhead; remote
// affinity costs a blocking round trip carrying the element.
func (h *Heap[T]) Get(t *Thread, r Ref) T {
	h.chargeGet(t, r, h.elemSize)
	return *h.ptr(r.Thr, r.Idx)
}

// GetBytes models a fine-grained access that reads only the leading
// `bytes` of the element (e.g. the hot fields of a struct in the
// SPLASH2-style code). Exactly that byte prefix is copied — you get the
// bytes you pay for — which also keeps concurrent prefix reads disjoint
// from the owner's writes to trailing fields (the UPC one-sided-get
// pattern, expressed race-free).
func (h *Heap[T]) GetBytes(t *Thread, r Ref, bytes int) T {
	h.chargeGet(t, r, bytes)
	var out T
	copyPrefix(&out, h.ptr(r.Thr, r.Idx), bytes, h.elemSize)
	return out
}

// copyPrefix copies min(n, size) leading bytes of src into dst.
func copyPrefix[T any](dst, src *T, n, size int) {
	if n >= size {
		*dst = *src
		return
	}
	if n <= 0 {
		return
	}
	db := unsafe.Slice((*byte)(unsafe.Pointer(dst)), size)
	sb := unsafe.Slice((*byte)(unsafe.Pointer(src)), size)
	copy(db[:n], sb[:n])
}

// ReadView dereferences a pointer-to-shared without materializing a
// copy: it charges exactly what GetBytes(t, r, bytes) would charge (the
// modelled wire cost is a property of the access, not of how the
// emulator stages the data) and returns a read-only pointer into the
// element's live storage. The caller must consume the fields it needs —
// which must lie within the charged byte prefix — without writing, and
// must not hold the view across an operation that may mutate the
// element. It exists for the force/c-of-m hot paths, where GetBytes'
// whole-struct staging copies dominated the real (wall-clock) cost of a
// simulate run; the charge sequence is pinned by the simulate goldens.
func (h *Heap[T]) ReadView(t *Thread, r Ref, bytes int) *T {
	h.chargeGet(t, r, bytes)
	return h.ptr(r.Thr, r.Idx)
}

func (h *Heap[T]) chargeGet(t *Thread, r Ref, bytes int) {
	if r.IsNil() {
		panic("upc: dereference of nil pointer-to-shared")
	}
	if int(r.Thr) == t.id {
		t.stats.LocalDerefs++
		t.ChargeRaw(t.rt.mach.Par.GPtrDerefCost)
		return
	}
	t.stats.RemoteGets++
	t.remoteRoundTrip(int(r.Thr), bytes)
}

// Put stores a whole element through a pointer-to-shared.
func (h *Heap[T]) Put(t *Thread, r Ref, v T) {
	h.chargePut(t, r, h.elemSize)
	*h.ptr(r.Thr, r.Idx) = v
}

// PutBytes models a fine-grained partial store: mut is applied to the
// element in place and only `bytes` are charged on the wire. The caller
// must hold whatever application-level lock protects the element, as the
// UPC code does.
func (h *Heap[T]) PutBytes(t *Thread, r Ref, bytes int, mut func(*T)) {
	h.chargePut(t, r, bytes)
	mut(h.ptr(r.Thr, r.Idx))
}

func (h *Heap[T]) chargePut(t *Thread, r Ref, bytes int) {
	if r.IsNil() {
		panic("upc: store through nil pointer-to-shared")
	}
	if int(r.Thr) == t.id {
		t.stats.LocalDerefs++
		t.ChargeRaw(t.rt.mach.Par.GPtrDerefCost)
		return
	}
	t.stats.RemotePuts++
	t.remoteRoundTrip(int(r.Thr), bytes)
}

// LocalSlice returns the backing storage of n elements starting at r as
// a plain slice. The range must be local to t and lie within a single
// allocation chunk (one upc_alloc'd buffer); size the heap's chunkSize
// accordingly. No simulated cost is charged (local cast).
func (h *Heap[T]) LocalSlice(t *Thread, r Ref, n int) []T {
	if int(r.Thr) != t.id {
		panic(fmt.Sprintf("upc: LocalSlice of remote reference %v on thread %d", r, t.id))
	}
	if n == 0 {
		return nil
	}
	first := r.Idx >> h.shift
	last := (r.Idx + int32(n) - 1) >> h.shift
	if first != last {
		panic("upc: LocalSlice range spans chunks; allocate a larger chunkSize")
	}
	c := h.shards[r.Thr].table[first].Load()
	off := r.Idx & (h.chunkSize - 1)
	return (*c)[off : off+int32(n)]
}

// OneChunk reports whether the n-element range starting at local index
// idx lies within a single allocation chunk — the LocalSlice
// precondition, which every Alloc of up to a chunk's worth of elements
// satisfies. The checkpoint-restore path uses it to validate captured
// buffer geometry before the hot path dereferences it.
func (h *Heap[T]) OneChunk(idx int32, n int) bool {
	if idx < 0 || n <= 0 {
		return false
	}
	return int64(idx)>>h.shift == (int64(idx)+int64(n)-1)>>h.shift
}

// Raw returns the element's address regardless of affinity, charging
// nothing. It exists for flag protocols that need atomics (spin-waiting
// on a cell's Done flag) and for emulation internals; callers are
// responsible for charging the corresponding simulated cost via Touch.
func (h *Heap[T]) Raw(r Ref) *T {
	if r.IsNil() {
		panic("upc: Raw of nil pointer-to-shared")
	}
	return h.ptr(r.Thr, r.Idx)
}

// Touch charges the cost of a fine-grained read of `bytes` from the
// element without copying it (companion to Raw).
func (h *Heap[T]) Touch(t *Thread, r Ref, bytes int) { h.chargeGet(t, r, bytes) }

// TouchPut charges the cost of a fine-grained write of `bytes` to the
// element without performing it (companion to Raw).
func (h *Heap[T]) TouchPut(t *Thread, r Ref, bytes int) { h.chargePut(t, r, bytes) }

// Gather is upc_memget_ilist: a blocking indexed gather of refs[i] into
// dst[i]. Elements with the same source thread travel in one aggregated
// message. dst must be at least as long as refs.
func (h *Heap[T]) Gather(t *Thread, refs []Ref, dst []T) {
	hd := h.GatherAsync(t, refs, dst)
	t.WaitSync(hd)
}

// Handle is an outstanding non-blocking communication, as returned by
// bupc_memget_vlist_async. Completion is a simulated-time event: the data
// is staged at issue (legal because the paper only gathers read-only
// cells) and becomes "available" when the clock passes CompleteAt.
type Handle struct {
	CompleteAt float64
	Refs       int
	Sources    int
}

// GatherAsync is bupc_memget_vlist_async: a non-blocking gather from
// possibly many source threads. The sender is charged the per-message
// overheads immediately; the handle completes when the slowest source's
// reply would arrive.
func (h *Heap[T]) GatherAsync(t *Thread, refs []Ref, dst []T) *Handle {
	return h.GatherAsyncBytes(t, refs, dst, h.elemSize)
}

// GatherAsyncBytes is GatherAsync fetching only the leading bytesPer
// bytes of each element (see GetBytes for the prefix semantics).
func (h *Heap[T]) GatherAsyncBytes(t *Thread, refs []Ref, dst []T, bytesPer int) *Handle {
	if len(dst) < len(refs) {
		panic("upc: GatherAsync destination shorter than reference list")
	}
	if bytesPer <= 0 || bytesPer > h.elemSize {
		bytesPer = h.elemSize
	}
	// Group by source thread, in deterministic first-appearance order
	// (the sender-side charges accumulate per group, so iteration order
	// feeds the virtual clock — a map here would leak Go's randomized
	// iteration into the simulated times). Request lists are short (tens
	// of cells from a handful of sources), so a linear scan over a small
	// reused scratch slice beats a map anyway.
	groups := t.gatherGroups[:0]
	for i, r := range refs {
		if r.IsNil() {
			panic("upc: GatherAsync of nil reference")
		}
		// Stage the data now; it is exposed at sync time.
		copyPrefix(&dst[i], h.ptr(r.Thr, r.Idx), bytesPer, h.elemSize)
		found := false
		for gi := range groups {
			if groups[gi].thr == r.Thr {
				groups[gi].count++
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, gatherGroup{thr: r.Thr, count: 1})
		}
	}
	t.gatherGroups = groups
	// CompleteAt only matters under simulation (native handles are done
	// at issue); skip the clock reads in the async-force hot path.
	complete := 0.0
	if !t.rt.native {
		complete = t.rt.cost.now(t)
	}
	nsrc := 0
	for _, g := range groups {
		bytes := int(g.count) * bytesPer
		if int(g.thr) != t.id {
			nsrc++
			t.stats.Msgs++
			t.stats.Bytes += uint64(bytes)
		}
		if t.rt.native {
			continue
		}
		if done := t.rt.cost.gatherGroup(t, int(g.thr), bytes); done > complete {
			complete = done
		}
	}
	t.stats.GatherReqs++
	hist := nsrc
	if hist >= len(t.stats.GatherSrcHist) {
		hist = len(t.stats.GatherSrcHist) - 1
	}
	t.stats.GatherSrcHist[hist]++
	return &Handle{CompleteAt: complete, Refs: len(refs), Sources: nsrc}
}

// WaitSync is bupc_waitsync: block until the handle completes. (The data
// is staged at issue, so in ModeNative this returns immediately; in
// ModeSimulate it aligns the clock to the completion event.)
func (t *Thread) WaitSync(h *Handle) {
	t.AdvanceTo(h.CompleteAt)
}

// TrySync is bupc_trysync: poll the handle; reports whether it has
// completed by the thread's current time. Each poll costs a small
// runtime-progress charge under simulation.
func (t *Thread) TrySync(h *Handle) bool {
	return t.rt.cost.trySync(t, h)
}
