package upc

// Cache is a per-thread transparent software cache over a Heap, in the
// style of the MuPC runtime cache and the Berkeley UPC caching prototype
// the paper surveys in §8: direct-mapped, line = one element, and —
// to avoid a coherence protocol — invalidated wholesale at every barrier
// ("variables are written back at each synchronization point").
//
// The paper suspects such fully transparent caching cannot match the
// manual caching of §5.3 because of frequent invalidations and the
// difficulty of choosing the caching unit; the ext-cache experiment in
// the harness quantifies exactly that comparison.
//
// A Cache is owned by one thread and must only be used from it.
type Cache[T any] struct {
	h     *Heap[T]
	t     *Thread
	lines []cacheLine[T]
	mask  uint64

	hits, misses, invalidations uint64
	lastBarrierGen              uint64
}

type cacheLine[T any] struct {
	ref   Ref
	gen   uint64 // barrier generation at fill time
	valid bool
	val   T
}

// NewCache creates a cache of `lines` entries (rounded up to a power of
// two, min 64) for thread t over heap h.
func NewCache[T any](t *Thread, h *Heap[T], lines int) *Cache[T] {
	n := 64
	for n < lines {
		n <<= 1
	}
	return &Cache[T]{
		h:     h,
		t:     t,
		lines: make([]cacheLine[T], n),
		mask:  uint64(n - 1),
	}
}

func (c *Cache[T]) slot(r Ref) *cacheLine[T] {
	hsh := uint64(uint32(r.Thr))*0x9e3779b1 ^ uint64(uint32(r.Idx))*0x85ebca6b
	return &c.lines[hsh&c.mask]
}

// gen returns the current invalidation epoch: the thread's barrier count.
// Any line filled before the last barrier is stale.
func (c *Cache[T]) gen() uint64 { return c.t.stats.Barriers }

// Get reads an element through the cache. A hit costs a table lookup; a
// miss performs the underlying (charged) remote get and fills the line.
// Local-affinity references bypass the cache entirely, like a runtime
// that checks upc_threadof first.
func (c *Cache[T]) Get(r Ref) T {
	if c.h.IsLocal(c.t, r) {
		return c.h.Get(c.t, r)
	}
	ln := c.slot(r)
	g := c.gen()
	if ln.valid && ln.ref == r {
		if ln.gen == g {
			c.hits++
			c.t.ChargeRaw(10 * c.t.rt.mach.Par.LocalDerefCost)
			return ln.val
		}
		c.invalidations++
	}
	c.misses++
	v := c.h.Get(c.t, r)
	*ln = cacheLine[T]{ref: r, gen: g, valid: true, val: v}
	return v
}

// GetBytes models a fine-grained access through the cache. The cache
// operates at whole-element ("logical cache line") granularity, so a hit
// serves any prefix; a miss transfers (and caches) only the requested
// byte prefix — the unit-choice problem §8 describes. Callers should use
// a consistent prefix size per cache, since a hit may otherwise serve a
// shorter line than requested.
func (c *Cache[T]) GetBytes(r Ref, bytes int) T {
	if c.h.IsLocal(c.t, r) {
		return c.h.GetBytes(c.t, r, bytes)
	}
	ln := c.slot(r)
	g := c.gen()
	if ln.valid && ln.ref == r && ln.gen == g {
		c.hits++
		c.t.ChargeRaw(10 * c.t.rt.mach.Par.LocalDerefCost)
		return ln.val
	}
	if ln.valid && ln.ref == r {
		c.invalidations++
	}
	c.misses++
	v := c.h.GetBytes(c.t, r, bytes)
	*ln = cacheLine[T]{ref: r, gen: g, valid: true, val: v}
	return v
}

// Put writes through the cache (write-through, matching the surveyed
// designs) and updates the local line.
func (c *Cache[T]) Put(r Ref, v T) {
	c.h.Put(c.t, r, v)
	if !c.h.IsLocal(c.t, r) {
		*c.slot(r) = cacheLine[T]{ref: r, gen: c.gen(), valid: true, val: v}
	}
}

// CacheStats reports hit/miss/stale counts.
type CacheStats struct {
	Hits, Misses, Invalidations uint64
}

// Stats returns the counters.
func (c *Cache[T]) Stats() CacheStats {
	return CacheStats{Hits: c.hits, Misses: c.misses, Invalidations: c.invalidations}
}

// HitRate returns hits / (hits+misses), or 0 when unused.
func (c *Cache[T]) HitRate() float64 {
	tot := c.hits + c.misses
	if tot == 0 {
		return 0
	}
	return float64(c.hits) / float64(tot)
}
