package mpibh

import (
	"math"
	"testing"

	"upcbh/internal/nbody"
	"upcbh/internal/vec"
)

func run(t *testing.T, n, ranks, steps int, theta float64) *Result {
	t.Helper()
	res, err := Run(Options{
		Bodies: n, Ranks: ranks, Steps: steps, Warmup: 0,
		Theta: theta, Eps: 0.05, Dt: 0.025, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestForcesVsDirect(t *testing.T) {
	const n = 512
	direct := nbody.Plummer(n, 21)
	nbody.Direct(direct, 0.05)
	res := run(t, n, 4, 1, 0.5)
	var worst float64
	for i := range res.Bodies {
		e := res.Bodies[i].Acc.Sub(direct[i].Acc).Len() / (1 + direct[i].Acc.Len())
		if e > worst {
			worst = e
		}
	}
	if worst > 0.05 || math.IsNaN(worst) {
		t.Errorf("worst acceleration error vs direct: %v", worst)
	}
}

func TestRankCountInvariance(t *testing.T) {
	// The LET approximation differs slightly from the sequential walk,
	// but positions must stay very close across rank counts.
	base := run(t, 600, 1, 3, 1.0)
	for _, ranks := range []int{2, 5, 8} {
		res := run(t, 600, ranks, 3, 1.0)
		var worst float64
		for i := range res.Bodies {
			d := res.Bodies[i].Pos.Sub(base.Bodies[i].Pos).Len()
			if d > worst {
				worst = d
			}
		}
		if worst > 1e-3 {
			t.Errorf("%d ranks: positions diverge from 1 rank by %v", ranks, worst)
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	const n = 400
	ic := nbody.Plummer(n, 21)
	k0, p0 := nbody.Energy(ic, 0.05)
	res := run(t, n, 4, 10, 1.0)
	k1, p1 := nbody.Energy(res.Bodies, 0.05)
	drift := math.Abs((k1 + p1 - k0 - p0) / (k0 + p0))
	if drift > 0.03 {
		t.Errorf("energy drift %.4f over 10 steps", drift)
	}
}

func TestScalesWithRanks(t *testing.T) {
	// More ranks must reduce total simulated time on a decent problem.
	r1 := run(t, 8192, 1, 2, 1.0)
	r8 := run(t, 8192, 8, 2, 1.0)
	t.Logf("1 rank %.4fs, 8 ranks %.4fs (%.1fx)", r1.Total, r8.Total, r1.Total/r8.Total)
	if r8.Total >= r1.Total {
		t.Errorf("no speedup: 1 rank %.4f vs 8 ranks %.4f", r1.Total, r8.Total)
	}
}

func TestBoxMinDist(t *testing.T) {
	b := box{Lo: vec.V3{X: -1, Y: -1, Z: -1}, Hi: vec.V3{X: 1, Y: 1, Z: 1}}
	if d := b.minDist2(vec.V3{}); d != 0 {
		t.Errorf("inside point dist %v", d)
	}
	if d := b.minDist2(vec.V3{X: 3}); d != 4 {
		t.Errorf("outside point dist %v, want 4", d)
	}
	if d := b.minDist2(vec.V3{X: 3, Y: 3}); d != 8 {
		t.Errorf("corner dist %v, want 8", d)
	}
}

func TestOptionValidation(t *testing.T) {
	bad := []Options{
		{Bodies: 1, Ranks: 1, Steps: 1, Theta: 1},
		{Bodies: 100, Ranks: 0, Steps: 1, Theta: 1},
		{Bodies: 100, Ranks: 1, Steps: 1, Warmup: 1, Theta: 1},
		{Bodies: 100, Ranks: 1, Steps: 1, Theta: 0},
	}
	for i, o := range bad {
		if _, err := Run(o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}
