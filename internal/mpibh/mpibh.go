// Package mpibh is a message-passing Barnes-Hut implementation — the
// comparison code the paper's §9 plans ("We plan, in future work, to
// directly compare the performance of this code to the performance of a
// similar code expressed in MPI"). It follows the classic distributed
// design of Salmon/Warren rather than the PGAS formulation:
//
//  1. bodies are kept sorted by Morton code and repartitioned by sample
//     sort into contiguous, cost-balanced key ranges (the Warren-Salmon
//     partitioning the paper's §8 discusses);
//  2. each rank builds a sequential local octree over its bodies;
//  3. ranks exchange locally essential tree (LET) data: for every other
//     rank, the parts of the local tree that rank could need — cells
//     that are "far enough" from the whole remote domain travel as
//     single pseudo-particles, near cells are opened recursively;
//  4. forces are computed entirely locally on the union tree.
//
// It runs on the same emulated machine (and simulated clocks) as the UPC
// code, so totals are directly comparable (the ext-mpi experiment).
package mpibh

import (
	"fmt"
	"math"
	"sort"

	"upcbh/internal/machine"
	"upcbh/internal/nbody"
	"upcbh/internal/octree"
	"upcbh/internal/upc"
	"upcbh/internal/vec"
)

// Phase identifies one phase of an MPI time-step.
type Phase int

// The phases of the MPI formulation.
const (
	PhaseSort  Phase = iota // Morton sort + sample-sort repartition
	PhaseTree               // local octree construction
	PhaseLET                // locally-essential-tree exchange
	PhaseForce              // local force computation
	PhaseAdv                // body advancing
	NumPhases
)

var phaseNames = [NumPhases]string{"Sort+Part.", "Local tree", "LET exch.", "Force Comp.", "Body-adv."}

// String returns the phase's display name.
func (p Phase) String() string { return phaseNames[p] }

// Options configures one MPI Barnes-Hut run.
type Options struct {
	Bodies int
	Ranks  int
	Steps  int
	Warmup int

	Theta, Eps, Dt float64
	Seed           uint64

	Machine *machine.Machine
}

// Result reports simulated phase times (max over ranks per measured
// step, summed) and the final body state in ID order.
type Result struct {
	Phases [NumPhases]float64
	Total  float64
	Bodies []nbody.Body
}

// pseudo is one LET entry: a point mass standing in for a remote body or
// a whole remote subtree.
type pseudo struct {
	Pos  vec.V3
	Mass float64
}

// box is an axis-aligned bounding box.
type box struct{ Lo, Hi vec.V3 }

// minDist2 returns the squared distance from p to the box (0 inside).
func (b box) minDist2(p vec.V3) float64 {
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	q := vec.V3{
		X: clamp(p.X, b.Lo.X, b.Hi.X),
		Y: clamp(p.Y, b.Lo.Y, b.Hi.Y),
		Z: clamp(p.Z, b.Lo.Z, b.Hi.Z),
	}
	return q.Sub(p).Len2()
}

// Run executes the MPI Barnes-Hut simulation.
func Run(o Options) (*Result, error) {
	if o.Bodies < 2 {
		return nil, fmt.Errorf("mpibh: need at least 2 bodies")
	}
	if o.Ranks < 1 {
		return nil, fmt.Errorf("mpibh: need at least 1 rank")
	}
	if o.Steps <= o.Warmup {
		return nil, fmt.Errorf("mpibh: Steps (%d) must exceed Warmup (%d)", o.Steps, o.Warmup)
	}
	if o.Theta <= 0 {
		return nil, fmt.Errorf("mpibh: Theta must be positive")
	}
	m := o.Machine
	if m == nil {
		m = machine.Default(o.Ranks)
	}
	rt := upc.NewRuntime(m)
	init := nbody.Plummer(o.Bodies, o.Seed)

	type rstate struct {
		bodies []nbody.Body
		phases [NumPhases]float64
	}
	states := make([]*rstate, o.Ranks)
	for r := range states {
		lo, hi := r*o.Bodies/o.Ranks, (r+1)*o.Bodies/o.Ranks
		states[r] = &rstate{bodies: append([]nbody.Body(nil), init[lo:hi]...)}
	}

	rt.Run(func(t *upc.Thread) {
		st := states[t.ID()]
		par := m.Par
		for step := 0; step < o.Steps; step++ {
			measured := step >= o.Warmup
			var ph [NumPhases]float64
			mark := func(p Phase, t0 float64) {
				ph[p] += t.Now() - t0
				t.Barrier()
			}

			// --- global cube --------------------------------------------
			t0 := t.Now()
			lo := vec.V3{X: inf, Y: inf, Z: inf}
			hi := lo.Scale(-1)
			for i := range st.bodies {
				lo = lo.Min(st.bodies[i].Pos)
				hi = hi.Max(st.bodies[i].Pos)
				t.Charge(par.LocalDerefCost)
			}
			mins := upc.AllReduceVecF64(t, []float64{lo.X, lo.Y, lo.Z}, upc.OpMin)
			maxs := upc.AllReduceVecF64(t, []float64{hi.X, hi.Y, hi.Z}, upc.OpMax)
			center, half := nbody.RootCell(
				vec.V3{X: mins[0], Y: mins[1], Z: mins[2]},
				vec.V3{X: maxs[0], Y: maxs[1], Z: maxs[2]})

			// --- Morton sample sort -------------------------------------
			st.bodies = sampleSort(t, st.bodies, center, half, par)
			mark(PhaseSort, t0)

			// --- local tree ---------------------------------------------
			t0 = t.Now()
			tree := octree.New(center, half)
			for i := range st.bodies {
				levels := tree.Insert(&st.bodies[i])
				t.Charge(float64(levels) * par.TreeLevelCost)
			}
			tree.ComputeCofM()
			t.Charge(float64(tree.Cells) * 8 * par.TreeLevelCost)
			mark(PhaseTree, t0)

			// --- LET exchange -------------------------------------------
			t0 = t.Now()
			boxes := upc.AllGather(t, box{Lo: lo, Hi: hi})
			send := make([][]pseudo, t.P())
			for r := 0; r < t.P(); r++ {
				if r == t.ID() || len(st.bodies) == 0 {
					continue
				}
				send[r] = collectLET(t, tree.Root, boxes[r], o.Theta, par, send[r])
			}
			recv := upc.AllToAll(t, send)
			let := octree.New(center, half)
			fars := make([]nbody.Body, 0, 1024)
			for r, ps := range recv {
				if r == t.ID() {
					continue
				}
				for _, pb := range ps {
					fars = append(fars, nbody.Body{Pos: pb.Pos, Mass: pb.Mass, ID: -1})
				}
			}
			for i := range st.bodies {
				levels := let.Insert(&st.bodies[i])
				t.Charge(float64(levels) * par.TreeLevelCost)
			}
			for i := range fars {
				levels := let.Insert(&fars[i])
				t.Charge(float64(levels) * par.TreeLevelCost)
			}
			let.ComputeCofM()
			t.Charge(float64(let.Cells) * 8 * par.TreeLevelCost)
			mark(PhaseLET, t0)

			// --- force --------------------------------------------------
			t0 = t.Now()
			for i := range st.bodies {
				acc, phi, inter := let.ForceOn(&st.bodies[i], o.Theta, o.Eps)
				st.bodies[i].Acc = acc
				st.bodies[i].Phi = phi
				st.bodies[i].Cost = float64(inter)
				t.Charge(float64(inter) * par.InteractionCost)
			}
			mark(PhaseForce, t0)

			// --- advance ------------------------------------------------
			t0 = t.Now()
			for i := range st.bodies {
				nbody.AdvanceKickDrift(&st.bodies[i], o.Dt)
				t.Charge(par.BodyUpdateCost)
			}
			mark(PhaseAdv, t0)

			if measured {
				for p := range ph {
					st.phases[p] += ph[p]
				}
			}
		}
	})

	res := &Result{}
	for _, st := range states {
		for p := range st.phases {
			if st.phases[p] > res.Phases[p] {
				res.Phases[p] = st.phases[p]
			}
		}
		res.Bodies = append(res.Bodies, st.bodies...)
	}
	for _, v := range res.Phases {
		res.Total += v
	}
	if len(res.Bodies) != o.Bodies {
		return nil, fmt.Errorf("mpibh: ranks hold %d bodies, want %d", len(res.Bodies), o.Bodies)
	}
	sort.Slice(res.Bodies, func(i, j int) bool { return res.Bodies[i].ID < res.Bodies[j].ID })
	for i := 1; i < len(res.Bodies); i++ {
		if res.Bodies[i].ID == res.Bodies[i-1].ID {
			return nil, fmt.Errorf("mpibh: body %d held by two ranks", res.Bodies[i].ID)
		}
	}
	return res, nil
}

var inf = math.Inf(1)

// collectLET appends to out the pseudo-particles of the local tree that
// the remote domain `dom` needs: cells far enough from every point of
// the domain travel as one point mass; near cells are opened; leaves
// travel as bodies. This is Salmon's locally essential tree criterion
// with the conservative minimum-distance test.
func collectLET(t *upc.Thread, n *octree.Node, dom box, theta float64, par machine.Params, out []pseudo) []pseudo {
	if n == nil {
		return out
	}
	t.Charge(par.TreeLevelCost)
	if n.IsLeaf() {
		return append(out, pseudo{Pos: n.Body.Pos, Mass: n.Body.Mass})
	}
	if n.Mass == 0 {
		return out
	}
	l := 2 * n.Half
	d2 := dom.minDist2(n.CofM)
	if l*l < theta*theta*d2 {
		// Far enough from everywhere in the domain: one point mass.
		return append(out, pseudo{Pos: n.CofM, Mass: n.Mass})
	}
	for _, ch := range n.Child {
		if ch != nil {
			out = collectLET(t, ch, dom, theta, par, out)
		}
	}
	return out
}

// sampleSort repartitions bodies into contiguous Morton-key ranges of
// roughly equal cost using regular sampling: each rank contributes P
// evenly spaced samples, every rank picks identical splitters from the
// gathered sample set, and an all-to-all delivers each body to its
// target rank.
func sampleSort(t *upc.Thread, bodies []nbody.Body, center vec.V3, half float64, par machine.Params) []nbody.Body {
	p := t.P()
	type keyed struct {
		key  uint64
		body nbody.Body
	}
	ks := make([]keyed, len(bodies))
	for i := range bodies {
		ks[i] = keyed{octree.Morton(bodies[i].Pos, center, half), bodies[i]}
		t.Charge(par.BodyUpdateCost)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	t.Charge(float64(len(ks)) * 4 * par.LocalDerefCost * 20) // n log n sort work

	if p == 1 {
		out := make([]nbody.Body, len(ks))
		for i := range ks {
			out[i] = ks[i].body
		}
		return out
	}

	// P samples per rank (pad with max key when short of bodies).
	samples := make([]float64, p)
	for i := 0; i < p; i++ {
		if len(ks) > 0 {
			samples[i] = float64(ks[i*len(ks)/p].key)
		} else {
			samples[i] = float64(^uint64(0) >> 1)
		}
	}
	all := upc.AllGather(t, samples)
	flat := make([]float64, 0, p*p)
	for _, s := range all {
		flat = append(flat, s...)
	}
	sort.Float64s(flat)
	splitters := make([]uint64, p-1)
	for i := 1; i < p; i++ {
		splitters[i-1] = uint64(flat[i*len(flat)/p])
	}

	send := make([][]nbody.Body, p)
	for _, k := range ks {
		dst := sort.Search(len(splitters), func(i int) bool { return splitters[i] > k.key })
		send[dst] = append(send[dst], k.body)
		t.Charge(par.LocalDerefCost * 4)
	}
	recv := upc.AllToAll(t, send)
	out := make([]nbody.Body, 0, len(bodies))
	for _, r := range recv {
		out = append(out, r...)
	}
	// Keep the merged list Morton-sorted for locality.
	sort.Slice(out, func(i, j int) bool {
		return octree.Morton(out[i].Pos, center, half) < octree.Morton(out[j].Pos, center, half)
	})
	t.Charge(float64(len(out)) * 4 * par.LocalDerefCost * 20)
	return out
}
