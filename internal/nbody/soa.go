package nbody

import (
	"upcbh/internal/arena"
	"upcbh/internal/vec"
)

// SoA is a structure-of-arrays view of a body set: the hot read-only
// inputs of tree construction and force computation (position, mass,
// load-balancing cost) split into parallel slices so the inner loops
// stream over contiguous memory instead of striding through 104-byte
// Body records. ID maps each SoA slot back to the body it was gathered
// from, so results computed against the view can be scattered to the
// original array-of-structs layout.
//
// The zero value is ready to use; Gather reuses the backing arrays, so a
// long-lived SoA reaches a steady state with no per-step allocations.
type SoA struct {
	Pos  []vec.V3
	Mass []float64
	Cost []float64
	ID   []int32

	// mem, when set via SetArena, backs all growth: the component
	// arrays live in off-heap (GC-invisible) mmap memory. All element
	// types are pointer-free, so the collector never needs to see them.
	mem *arena.Arena
}

// Len returns the number of bodies in the view.
func (s *SoA) Len() int { return len(s.Pos) }

// SetArena directs all future growth of the view onto a: existing
// contents are preserved (they migrate on the next growing Resize). A
// nil arena reverts to Go-heap growth.
func (s *SoA) SetArena(a *arena.Arena) { s.mem = a }

// Resize sets the view's length to n, reusing capacity when possible and
// preserving existing slots on growth. Newly exposed slots are
// uninitialized (the caller fills every one).
func (s *SoA) Resize(n int) {
	if cap(s.Pos) < n {
		c := 2 * cap(s.Pos)
		if c < n {
			c = n
		}
		pos := arena.MakeSlice[vec.V3](s.mem, n, c)
		mass := arena.MakeSlice[float64](s.mem, n, c)
		cost := arena.MakeSlice[float64](s.mem, n, c)
		id := arena.MakeSlice[int32](s.mem, n, c)
		copy(pos, s.Pos)
		copy(mass, s.Mass)
		copy(cost, s.Cost)
		copy(id, s.ID)
		s.Pos, s.Mass, s.Cost, s.ID = pos, mass, cost, id
		return
	}
	s.Pos = s.Pos[:n]
	s.Mass = s.Mass[:n]
	s.Cost = s.Cost[:n]
	s.ID = s.ID[:n]
}

// Gather fills the view from bodies: slot i holds bodies[i] with
// ID[i] = i. Previous contents are discarded; backing arrays are reused.
func (s *SoA) Gather(bodies []Body) {
	s.Resize(len(bodies))
	for i := range bodies {
		b := &bodies[i]
		s.Pos[i] = b.Pos
		s.Mass[i] = b.Mass
		s.Cost[i] = b.Cost
		s.ID[i] = int32(i)
	}
}

// Set fills one slot.
func (s *SoA) Set(i int, pos vec.V3, mass, cost float64, id int32) {
	s.Pos[i] = pos
	s.Mass[i] = mass
	s.Cost[i] = cost
	s.ID[i] = id
}

// Swap exchanges two slots (all component arrays move together).
func (s *SoA) Swap(i, j int) {
	s.Pos[i], s.Pos[j] = s.Pos[j], s.Pos[i]
	s.Mass[i], s.Mass[j] = s.Mass[j], s.Mass[i]
	s.Cost[i], s.Cost[j] = s.Cost[j], s.Cost[i]
	s.ID[i], s.ID[j] = s.ID[j], s.ID[i]
}

// CopySlot copies slot j of src into slot i of s.
func (s *SoA) CopySlot(i int, src *SoA, j int) {
	s.Pos[i] = src.Pos[j]
	s.Mass[i] = src.Mass[j]
	s.Cost[i] = src.Cost[j]
	s.ID[i] = src.ID[j]
}
