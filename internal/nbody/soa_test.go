package nbody

import (
	"testing"

	"upcbh/internal/vec"
)

func TestSoAGatherRoundTrip(t *testing.T) {
	bodies := Plummer(100, 3)
	var s SoA
	s.Gather(bodies)
	if s.Len() != len(bodies) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(bodies))
	}
	for i := range bodies {
		if s.Pos[i] != bodies[i].Pos || s.Mass[i] != bodies[i].Mass ||
			s.Cost[i] != bodies[i].Cost || s.ID[i] != int32(i) {
			t.Fatalf("slot %d mismatch", i)
		}
	}
	// Re-gathering a same-size set must not allocate (arena reuse).
	if allocs := testing.AllocsPerRun(10, func() { s.Gather(bodies) }); allocs > 0 {
		t.Errorf("steady-state Gather allocated %.1f objects/op, want 0", allocs)
	}
}

// TestSoAResizePreservesOnGrowth pins the incremental-append contract
// the flat-tree converters rely on: growing the view must keep existing
// slots intact.
func TestSoAResizePreservesOnGrowth(t *testing.T) {
	var s SoA
	s.Resize(1)
	s.Set(0, vec.V3{X: 1, Y: 2, Z: 3}, 4, 5, 6)
	for n := 2; n <= 70; n++ {
		s.Resize(n)
		s.Set(n-1, vec.V3{X: float64(n)}, float64(n), 0, int32(n))
	}
	if s.Pos[0] != (vec.V3{X: 1, Y: 2, Z: 3}) || s.Mass[0] != 4 || s.Cost[0] != 5 || s.ID[0] != 6 {
		t.Fatalf("slot 0 lost on growth: pos %v mass %g cost %g id %d", s.Pos[0], s.Mass[0], s.Cost[0], s.ID[0])
	}
	for n := 2; n <= 70; n++ {
		if s.Pos[n-1].X != float64(n) || s.ID[n-1] != int32(n) {
			t.Fatalf("slot %d lost on growth", n-1)
		}
	}
	// Shrink + regrow within capacity keeps the arena.
	s.Resize(5)
	if allocs := testing.AllocsPerRun(10, func() { s.Resize(70); s.Resize(5) }); allocs > 0 {
		t.Errorf("in-capacity Resize allocated %.1f objects/op, want 0", allocs)
	}
}

func TestSoASwapAndCopySlot(t *testing.T) {
	var a, b SoA
	a.Resize(2)
	a.Set(0, vec.V3{X: 1}, 10, 100, 0)
	a.Set(1, vec.V3{X: 2}, 20, 200, 1)
	a.Swap(0, 1)
	if a.Pos[0].X != 2 || a.Mass[0] != 20 || a.Cost[0] != 200 || a.ID[0] != 1 {
		t.Fatalf("Swap did not move all components: %+v", a)
	}
	b.Resize(1)
	b.CopySlot(0, &a, 1)
	if b.Pos[0].X != 1 || b.Mass[0] != 10 || b.Cost[0] != 100 || b.ID[0] != 0 {
		t.Fatalf("CopySlot did not copy all components: %+v", b)
	}
}
