package nbody

import (
	"fmt"
	"math"
	"sort"

	"upcbh/internal/rng"
	"upcbh/internal/vec"
)

// Scenario is a named, seeded initial-condition generator. The paper
// evaluates every optimization level on a single Plummer sphere, but its
// argument is about irregular access patterns — which depend on how
// bodies are distributed across space (and therefore across threads and
// subspaces). Scenarios make that distribution a first-class, selectable
// workload axis: same seed + same n => bit-identical bodies, so every
// scenario is usable in memoized experiments and golden tests.
type Scenario interface {
	// Name is the registry key ("plummer", "disk", ...), stable across
	// releases: it appears in Options JSON and in Options.Key.
	Name() string
	// Description is a one-line summary for CLI listings and docs.
	Description() string
	// Generate returns n bodies with sequential IDs, unit total mass,
	// Cost 1, shifted to the center-of-mass frame.
	Generate(n int, seed uint64) []Body
}

// scenarioFunc adapts a generator function to the Scenario interface.
type scenarioFunc struct {
	name, desc string
	gen        func(n int, seed uint64) []Body
}

func (s scenarioFunc) Name() string                       { return s.name }
func (s scenarioFunc) Description() string                { return s.desc }
func (s scenarioFunc) Generate(n int, seed uint64) []Body { return s.gen(n, seed) }

// DefaultScenario is the registry key assumed when none is specified —
// the paper's own workload.
const DefaultScenario = "plummer"

// Default two-plummer collision geometry (shared with the
// galaxy-collision example): clusters 4 length units apart closing at
// unit speed with a slight transverse offset so they don't hit head-on.
var (
	twoPlummerOffset = vec.V3{X: 4.0}
	twoPlummerVrel   = vec.V3{X: 1.0, Y: 0.15}
)

// scenarios is the registry, in presentation order.
var scenarios = []Scenario{
	scenarioFunc{"plummer", "single Plummer sphere (the paper's SPLASH2 workload)", Plummer},
	scenarioFunc{"two-plummer", "two Plummer spheres on a collision orbit (offset 4, closing speed 1)",
		func(n int, seed uint64) []Body { return TwoPlummer(n, seed, twoPlummerOffset, twoPlummerVrel) }},
	scenarioFunc{"uniform", "uniform sphere with isotropic velocity dispersion (near-balanced octree)", Uniform},
	scenarioFunc{"clustered", "8 hierarchical clumps with geometric mass imbalance (worst-case load skew)",
		func(n int, seed uint64) []Body { return Clustered(n, seed, 8, 0.6) }},
	scenarioFunc{"disk", "rotating exponential disk with vertical scale height (flattened, ordered motion)", Disk},
}

// Scenarios returns the registry in presentation order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// ScenarioNames returns the registry keys in presentation order.
func ScenarioNames() []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name()
	}
	return names
}

// ParseScenario maps a registry key to its Scenario. The empty string
// maps to DefaultScenario, mirroring how zero-valued Options fields fall
// back to paper defaults.
func ParseScenario(name string) (Scenario, error) {
	if name == "" {
		name = DefaultScenario
	}
	for _, s := range scenarios {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("nbody: unknown scenario %q (have %v)", name, ScenarioNames())
}

// GenerateScenario generates n bodies from the named scenario.
func GenerateScenario(name string, n int, seed uint64) ([]Body, error) {
	s, err := ParseScenario(name)
	if err != nil {
		return nil, err
	}
	return s.Generate(n, seed), nil
}

// Uniform generates n equal-mass bodies uniformly distributed inside the
// unit sphere with an isotropic Maxwellian velocity dispersion of ~40% of
// the circular speed at the edge (sigma 0.25 in N-body units). The
// resulting octree is as balanced as Barnes-Hut gets, making this the
// best-case baseline for load-balance comparisons.
func Uniform(n int, seed uint64) []Body {
	r := rng.New(seed)
	bodies := make([]Body, n)
	mass := 1.0 / float64(n)
	const sigma = 0.25
	for i := range bodies {
		// Uniform in the ball: radius ~ u^(1/3).
		radius := math.Cbrt(r.Float64())
		x, y, z := r.UnitSphere()
		pos := vec.V3{X: x, Y: y, Z: z}.Scale(radius)
		vel := vec.V3{X: r.Gauss(), Y: r.Gauss(), Z: r.Gauss()}.Scale(sigma)
		bodies[i] = Body{Pos: pos, Vel: vel, Mass: mass, Cost: 1, ID: int32(i)}
	}
	centerOfMass(bodies)
	return bodies
}

// Clustered generates n equal-mass bodies in `clumps` Gaussian clumps
// with geometrically decaying populations: clump k receives a share
// proportional to ratio^k, so ratio 1 is perfectly balanced and smaller
// ratios concentrate most of the mass (and most of the interactions) in
// the first few clumps. Clump centers are placed uniformly in a
// radius-3 sphere with clump scale radius 0.25 — deep, uneven octrees
// and the per-thread load skew the paper's costzones/subspace balancers
// exist to fix.
func Clustered(n int, seed uint64, clumps int, ratio float64) []Body {
	if clumps < 1 {
		clumps = 1
	}
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	r := rng.New(seed)
	mass := 1.0 / float64(n)

	// Geometric shares, largest first, exact total n.
	weights := make([]float64, clumps)
	var wsum float64
	for k := range weights {
		weights[k] = math.Pow(ratio, float64(k))
		wsum += weights[k]
	}
	counts := make([]int, clumps)
	assigned := 0
	for k := range counts {
		counts[k] = int(float64(n) * weights[k] / wsum)
		assigned += counts[k]
	}
	counts[0] += n - assigned // rounding remainder to the largest clump

	bodies := make([]Body, 0, n)
	for k := 0; k < clumps; k++ {
		cx, cy, cz := r.UnitSphere()
		center := vec.V3{X: cx, Y: cy, Z: cz}.Scale(3 * math.Cbrt(r.Float64()))
		bulk := vec.V3{X: r.Gauss(), Y: r.Gauss(), Z: r.Gauss()}.Scale(0.2)
		for i := 0; i < counts[k]; i++ {
			pos := center.Add(vec.V3{X: r.Gauss(), Y: r.Gauss(), Z: r.Gauss()}.Scale(0.25))
			vel := bulk.Add(vec.V3{X: r.Gauss(), Y: r.Gauss(), Z: r.Gauss()}.Scale(0.1))
			bodies = append(bodies, Body{Pos: pos, Vel: vel, Mass: mass, Cost: 1, ID: int32(len(bodies))})
		}
	}
	centerOfMass(bodies)
	return bodies
}

// Disk generates n equal-mass bodies in a rotating exponential disk:
// surface density ~ exp(-r/Rd) with scale length Rd = 1 (radii sampled
// by inverting the enclosed-mass profile M(<x) = 1-(1+x)e^{-x}), a
// Gaussian vertical structure with scale height 0.05 Rd, and circular
// velocities v_c = sqrt(M(<r)/r) from the analytic enclosed mass (G = 1)
// plus a 10% isotropic dispersion. The geometry is flattened and the
// motion ordered — a spatial distribution no isotropic model produces.
func Disk(n int, seed uint64) []Body {
	r := rng.New(seed)
	bodies := make([]Body, n)
	mass := 1.0 / float64(n)
	const (
		zScale = 0.05
		sigma  = 0.1
		rMax   = 6.0 // truncation: M(<6) ~ 0.983 of the disk
	)
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = diskRadius(r.Range(0, diskMass(rMax)))
	}
	// Enclosed mass must count the bodies actually sampled, so sort the
	// radii once and hand body i the i-th smallest radius; the uniform
	// azimuth decorrelates position from index.
	sort.Float64s(radii)
	for i := range bodies {
		rad := radii[i]
		phi := r.Range(0, 2*math.Pi)
		cosp, sinp := math.Cos(phi), math.Sin(phi)
		pos := vec.V3{X: rad * cosp, Y: rad * sinp, Z: zScale * r.Gauss()}

		// Circular speed from the mass interior to this body's ring:
		// (i+0.5)/n of the total unit mass is inside radius rad.
		enc := (float64(i) + 0.5) / float64(n)
		vc := math.Sqrt(enc / math.Max(rad, 1e-3))
		vel := vec.V3{X: -vc * sinp, Y: vc * cosp}.
			Add(vec.V3{X: r.Gauss(), Y: r.Gauss(), Z: r.Gauss()}.Scale(sigma * vc))
		bodies[i] = Body{Pos: pos, Vel: vel, Mass: mass, Cost: 1, ID: int32(i)}
	}
	centerOfMass(bodies)
	return bodies
}

// diskMass is the enclosed-mass profile of the unit exponential disk:
// M(<x) = 1 - (1+x)e^{-x} for x = r/Rd.
func diskMass(x float64) float64 { return 1 - (1+x)*math.Exp(-x) }

// diskRadius inverts diskMass by bisection (monotone on [0, inf)).
func diskRadius(m float64) float64 {
	lo, hi := 0.0, 20.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if diskMass(mid) < m {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
