package nbody

import (
	"math"
	"testing"
	"testing/quick"

	"upcbh/internal/vec"
)

func TestPlummerBasics(t *testing.T) {
	const n = 4096
	bodies := Plummer(n, 1)
	if len(bodies) != n {
		t.Fatalf("got %d bodies", len(bodies))
	}
	var mass float64
	var cpos, cvel vec.V3
	for i := range bodies {
		if !bodies[i].Pos.IsFinite() || !bodies[i].Vel.IsFinite() {
			t.Fatalf("non-finite body %d", i)
		}
		mass += bodies[i].Mass
		cpos = cpos.AddScaled(bodies[i].Pos, bodies[i].Mass)
		cvel = cvel.AddScaled(bodies[i].Vel, bodies[i].Mass)
		if bodies[i].ID != int32(i) {
			t.Fatalf("ID mismatch at %d", i)
		}
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("total mass %v, want 1 (M=1 units)", mass)
	}
	if cpos.Len() > 1e-9 || cvel.Len() > 1e-9 {
		t.Errorf("not in center-of-mass frame: pos %v vel %v", cpos, cvel)
	}
}

func TestPlummerVirial(t *testing.T) {
	// In M=-4E=G=1 units: E=-1/4, and virial equilibrium gives
	// T ~= -E = 1/4, V ~= 2E = -1/2 for the un-softened system.
	bodies := Plummer(8192, 2)
	kin, pot := Energy(bodies, 0)
	e := kin + pot
	if math.Abs(e+0.25) > 0.03 {
		t.Errorf("total energy %v, want ~-0.25", e)
	}
	if math.Abs(kin-0.25) > 0.04 {
		t.Errorf("kinetic %v, want ~0.25", kin)
	}
}

func TestPlummerOddCount(t *testing.T) {
	bodies := Plummer(257, 4)
	if len(bodies) != 257 {
		t.Fatalf("got %d bodies", len(bodies))
	}
	var m float64
	for i := range bodies {
		if !bodies[i].Pos.IsFinite() {
			t.Fatalf("non-finite body %d", i)
		}
		m += bodies[i].Mass
	}
	if math.Abs(m-1) > 1e-9 {
		t.Errorf("total mass %v", m)
	}
}

func TestPlummerDeterministic(t *testing.T) {
	a := Plummer(512, 5)
	b := Plummer(512, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different body %d", i)
		}
	}
}

func TestInteractSoftening(t *testing.T) {
	// Exactly coincident points must not blow up with softening.
	acc, phi := Interact(vec.V3{}, vec.V3{}, 1, 0.05*0.05)
	if !acc.IsFinite() || math.IsInf(phi, 0) || math.IsNaN(phi) {
		t.Error("softened interaction not finite at zero distance")
	}
	// Far field: |acc| ~ m/r^2 toward the source.
	acc, phi = Interact(vec.V3{}, vec.V3{X: 10}, 2, 0)
	if math.Abs(acc.X-2.0/100) > 1e-12 || acc.Y != 0 || acc.Z != 0 {
		t.Errorf("far-field acceleration wrong: %v", acc)
	}
	if math.Abs(phi+0.2) > 1e-12 {
		t.Errorf("far-field potential wrong: %v", phi)
	}
}

// Property: gravity is attractive and Newton's third law holds per pair.
func TestQuickInteractSymmetry(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		mod := func(v float64) float64 { return math.Mod(v, 100) }
		a := vec.V3{X: mod(ax), Y: mod(ay), Z: mod(az)}
		b := vec.V3{X: mod(bx) + 1, Y: mod(by), Z: mod(bz)} // avoid exact overlap
		if a.Sub(b).Len() < 1e-6 {
			return true
		}
		fab, _ := Interact(a, b, 3, 0.01)
		fba, _ := Interact(b, a, 3, 0.01)
		// Equal masses: forces equal and opposite.
		return fab.Add(fba).Len() <= 1e-9*(1+fab.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundingBoxAndRootCell(t *testing.T) {
	bodies := []Body{
		{Pos: vec.V3{X: -1, Y: 2, Z: 0}},
		{Pos: vec.V3{X: 3, Y: -4, Z: 5}},
	}
	lo, hi := BoundingBox(bodies)
	if lo != (vec.V3{X: -1, Y: -4, Z: 0}) || hi != (vec.V3{X: 3, Y: 2, Z: 5}) {
		t.Fatalf("bbox = %v %v", lo, hi)
	}
	center, half := RootCell(lo, hi)
	for _, b := range bodies {
		d := b.Pos.Sub(center)
		if math.Abs(d.X) > half || math.Abs(d.Y) > half || math.Abs(d.Z) > half {
			t.Errorf("body %v outside root cell (center %v half %v)", b.Pos, center, half)
		}
	}
	// Root side is a power of two (SPLASH2 setbound behaviour).
	side := 2 * half
	if math.Abs(math.Log2(side)-math.Round(math.Log2(side))) > 1e-9 {
		t.Errorf("root side %v not a power of two", side)
	}
}

func TestDirectEnergyConservesUnderLeapfrog(t *testing.T) {
	bodies := Plummer(256, 3)
	const eps, dt = 0.05, 0.0125
	k0, p0 := Energy(bodies, eps)
	e0 := k0 + p0
	for step := 0; step < 20; step++ {
		Direct(bodies, eps)
		for i := range bodies {
			AdvanceKickDrift(&bodies[i], dt)
		}
	}
	k1, p1 := Energy(bodies, eps)
	drift := math.Abs((k1 + p1 - e0) / e0)
	if drift > 0.02 {
		t.Errorf("energy drift %.4f over 20 steps, want < 2%%", drift)
	}
}

func TestTwoPlummerApproach(t *testing.T) {
	ic := TwoPlummer(1024, 9, vec.V3{X: 4}, vec.V3{X: 1})
	if len(ic) != 1024 {
		t.Fatalf("got %d bodies", len(ic))
	}
	// Closing velocity: d|separation|/dt < 0 at t=0.
	var a, b, va, vb vec.V3
	var ma, mb float64
	for i := range ic {
		if i < 512 {
			a = a.AddScaled(ic[i].Pos, ic[i].Mass)
			va = va.AddScaled(ic[i].Vel, ic[i].Mass)
			ma += ic[i].Mass
		} else {
			b = b.AddScaled(ic[i].Pos, ic[i].Mass)
			vb = vb.AddScaled(ic[i].Vel, ic[i].Mass)
			mb += ic[i].Mass
		}
	}
	sep := a.Scale(1 / ma).Sub(b.Scale(1 / mb))
	relV := va.Scale(1 / ma).Sub(vb.Scale(1 / mb))
	if sep.Dot(relV) >= 0 {
		t.Errorf("clusters not approaching: sep %v relV %v", sep, relV)
	}
}

func TestMaxAccError(t *testing.T) {
	a := Plummer(64, 4)
	b := append([]Body(nil), a...)
	Direct(a, 0.05)
	Direct(b, 0.05)
	if e := MaxAccError(a, b); e != 0 {
		t.Errorf("identical runs differ: %v", e)
	}
	b[3].Acc = b[3].Acc.Scale(1.5)
	if e := MaxAccError(a, b); e < 0.2 {
		t.Errorf("perturbation not detected: %v", e)
	}
}
