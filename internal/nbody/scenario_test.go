package nbody

import (
	"math"
	"testing"
)

// TestScenarioInvariants checks every registered generator for the
// contract Sim.New depends on: exact body count, sequential IDs, unit
// total mass, positive per-body costs, finite state, and a
// center-of-mass frame.
func TestScenarioInvariants(t *testing.T) {
	const n = 1000
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			bodies := s.Generate(n, 42)
			if len(bodies) != n {
				t.Fatalf("generated %d bodies, want %d", len(bodies), n)
			}
			var cpos, cvel [3]float64
			var mtot float64
			for i := range bodies {
				b := &bodies[i]
				if b.ID != int32(i) {
					t.Fatalf("body %d has ID %d", i, b.ID)
				}
				if b.Cost <= 0 {
					t.Fatalf("body %d has non-positive cost %g", i, b.Cost)
				}
				if b.Mass <= 0 {
					t.Fatalf("body %d has non-positive mass %g", i, b.Mass)
				}
				for _, v := range []float64{b.Pos.X, b.Pos.Y, b.Pos.Z, b.Vel.X, b.Vel.Y, b.Vel.Z} {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("body %d has non-finite state %+v", i, b)
					}
				}
				mtot += b.Mass
				cpos[0] += b.Mass * b.Pos.X
				cpos[1] += b.Mass * b.Pos.Y
				cpos[2] += b.Mass * b.Pos.Z
				cvel[0] += b.Mass * b.Vel.X
				cvel[1] += b.Mass * b.Vel.Y
				cvel[2] += b.Mass * b.Vel.Z
			}
			if math.Abs(mtot-1) > 1e-9 {
				t.Errorf("total mass %g, want 1", mtot)
			}
			for k := 0; k < 3; k++ {
				if math.Abs(cpos[k]) > 1e-9 || math.Abs(cvel[k]) > 1e-9 {
					t.Errorf("not in center-of-mass frame: cpos=%v cvel=%v", cpos, cvel)
					break
				}
			}
		})
	}
}

// TestScenarioDeterminism: same name+n+seed => bit-identical bodies
// (the memoization and golden-test contract); different seeds differ.
func TestScenarioDeterminism(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			a := s.Generate(512, 7)
			b := s.Generate(512, 7)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("body %d differs between identical seeds: %+v vs %+v", i, a[i], b[i])
				}
			}
			c := s.Generate(512, 8)
			same := true
			for i := range a {
				if a[i].Pos != c[i].Pos {
					same = false
					break
				}
			}
			if same {
				t.Error("seed 7 and seed 8 generated identical positions")
			}
		})
	}
}

func TestParseScenario(t *testing.T) {
	for _, name := range ScenarioNames() {
		s, err := ParseScenario(name)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ParseScenario(%q).Name() = %q", name, s.Name())
		}
		if s.Description() == "" {
			t.Errorf("scenario %q has no description", name)
		}
	}
	if s, err := ParseScenario(""); err != nil || s.Name() != DefaultScenario {
		t.Errorf("ParseScenario(\"\") = %v, %v; want the %q default", s, err, DefaultScenario)
	}
	if _, err := ParseScenario("warp-core"); err == nil {
		t.Error("ParseScenario accepted an unknown name")
	}
}

// TestClusteredImbalance pins the property the scenario exists for: with
// a geometric ratio well below 1, the densest octant holds far more
// than 1/8 of the bodies.
func TestClusteredImbalance(t *testing.T) {
	bodies := Clustered(4096, 3, 8, 0.6)
	lo, hi := BoundingBox(bodies)
	center := lo.Add(hi).Scale(0.5)
	var octants [8]int
	for i := range bodies {
		oct := 0
		if bodies[i].Pos.X > center.X {
			oct |= 1
		}
		if bodies[i].Pos.Y > center.Y {
			oct |= 2
		}
		if bodies[i].Pos.Z > center.Z {
			oct |= 4
		}
		octants[oct]++
	}
	max := 0
	for _, c := range octants {
		if c > max {
			max = c
		}
	}
	if max < len(bodies)/4 {
		t.Errorf("densest octant holds %d of %d bodies; expected clustering well above the uniform 1/8", max, len(bodies))
	}
}

// TestDiskGeometry pins the disk's defining shape: flattened (z extent a
// small fraction of the radial extent) and rotating (net angular
// momentum about z far from zero).
func TestDiskGeometry(t *testing.T) {
	bodies := Disk(2048, 11)
	var zrms, rrms, lz float64
	for i := range bodies {
		b := &bodies[i]
		zrms += b.Pos.Z * b.Pos.Z
		rrms += b.Pos.X*b.Pos.X + b.Pos.Y*b.Pos.Y
		lz += b.Mass * (b.Pos.X*b.Vel.Y - b.Pos.Y*b.Vel.X)
	}
	zrms = math.Sqrt(zrms / float64(len(bodies)))
	rrms = math.Sqrt(rrms / float64(len(bodies)))
	if zrms > 0.2*rrms {
		t.Errorf("disk not flattened: z_rms %g vs r_rms %g", zrms, rrms)
	}
	if lz < 0.1 {
		t.Errorf("disk not rotating: L_z = %g", lz)
	}
}
