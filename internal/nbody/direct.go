package nbody

import "upcbh/internal/vec"

// Direct computes accelerations and potentials by O(n^2) direct
// summation with softening eps. It is the correctness reference against
// which every Barnes-Hut variant is validated.
func Direct(bodies []Body, eps float64) {
	epsSq := eps * eps
	for i := range bodies {
		var acc vec.V3
		var phi float64
		for j := range bodies {
			if i == j {
				continue
			}
			da, dp := Interact(bodies[i].Pos, bodies[j].Pos, bodies[j].Mass, epsSq)
			acc = acc.Add(da)
			phi += dp
		}
		bodies[i].Acc = acc
		bodies[i].Phi = phi
	}
}

// Energy returns the kinetic and potential energy of the system by
// direct summation (O(n^2)); intended for diagnostics at modest n.
func Energy(bodies []Body, eps float64) (kinetic, potential float64) {
	epsSq := eps * eps
	for i := range bodies {
		kinetic += 0.5 * bodies[i].Mass * bodies[i].Vel.Len2()
		for j := i + 1; j < len(bodies); j++ {
			_, dp := Interact(bodies[i].Pos, bodies[j].Pos, bodies[j].Mass, epsSq)
			potential += bodies[i].Mass * dp
		}
	}
	return kinetic, potential
}

// MaxAccError returns the maximum relative acceleration error of bodies
// versus a reference copy with identical ordering.
func MaxAccError(bodies, ref []Body) float64 {
	var worst float64
	for i := range bodies {
		denom := ref[i].Acc.Len()
		if denom == 0 {
			continue
		}
		if e := bodies[i].Acc.Sub(ref[i].Acc).Len() / denom; e > worst {
			worst = e
		}
	}
	return worst
}
