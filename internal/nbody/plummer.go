package nbody

import (
	"math"

	"upcbh/internal/rng"
	"upcbh/internal/vec"
)

// Plummer generates n bodies drawn from the Plummer model with the
// standard N-body units M = -4E = G = 1 (Aarseth, Henon & Wielen 1974),
// exactly the initial-condition recipe SPLASH2's testdata uses: positions
// from the inverted cumulative mass profile, velocities by von
// Neumann rejection from the isotropic distribution function, pairs of
// bodies mirrored about the origin for symmetry, and the whole system
// shifted to its center of mass.
func Plummer(n int, seed uint64) []Body {
	r := rng.New(seed)
	bodies := make([]Body, n)
	const rsc = 3 * math.Pi / 16 // scales the structural radius to N-body units
	vsc := math.Sqrt(1 / rsc)
	mass := 1.0 / float64(n)

	for i := 0; i < n; i += 2 {
		// Radius from the inverse cumulative mass distribution, with the
		// SPLASH2 cutoff at 0.999 of the mass to avoid huge outliers.
		var radius float64
		for {
			m := r.Range(0, 0.999)
			radius = 1 / math.Sqrt(math.Pow(m, -2.0/3.0)-1)
			if radius < 9 {
				break
			}
		}
		x, y, z := r.UnitSphere()
		pos := vec.V3{X: x, Y: y, Z: z}.Scale(rsc * radius)

		// Speed by rejection: q^2 (1-q^2)^3.5 on q in [0,1).
		var q float64
		for {
			q = r.Float64()
			g := r.Range(0, 0.1)
			if g < q*q*math.Pow(1-q*q, 3.5) {
				break
			}
		}
		speed := q * math.Sqrt2 * math.Pow(1+radius*radius, -0.25)
		vx, vy, vz := r.UnitSphere()
		vel := vec.V3{X: vx, Y: vy, Z: vz}.Scale(vsc * speed)

		bodies[i] = Body{Pos: pos, Vel: vel, Mass: mass, Cost: 1, ID: int32(i)}
		if i+1 < n {
			// Mirror the second body of the pair, as SPLASH2 does.
			bodies[i+1] = Body{Pos: pos.Scale(-1), Vel: vel.Scale(-1), Mass: mass, Cost: 1, ID: int32(i + 1)}
		}
	}

	centerOfMass(bodies)
	return bodies
}

// TwoPlummer generates a pair of n/2-body Plummer spheres: cluster A at
// +offset/2 and cluster B at -offset/2, with closing relative velocity
// `vrel` (A moves at -vrel/2, B at +vrel/2, so a positive vrel along
// +offset makes the clusters approach) — a standard galaxy collision
// setup used by the examples.
func TwoPlummer(n int, seed uint64, offset vec.V3, vrel vec.V3) []Body {
	half := n / 2
	a := Plummer(half, seed)
	b := Plummer(n-half, seed^0x517cc1b727220a95)
	out := make([]Body, 0, n)
	for i := range a {
		a[i].Pos = a[i].Pos.Add(offset.Scale(0.5))
		a[i].Vel = a[i].Vel.Sub(vrel.Scale(0.5))
		a[i].Mass /= 2
		a[i].ID = int32(len(out))
		out = append(out, a[i])
	}
	for i := range b {
		b[i].Pos = b[i].Pos.Sub(offset.Scale(0.5))
		b[i].Vel = b[i].Vel.Add(vrel.Scale(0.5))
		b[i].Mass /= 2
		b[i].ID = int32(len(out))
		out = append(out, b[i])
	}
	centerOfMass(out)
	return out
}

// centerOfMass shifts positions and velocities to the center-of-mass
// frame.
func centerOfMass(bodies []Body) {
	var cpos, cvel vec.V3
	var mtot float64
	for i := range bodies {
		cpos = cpos.AddScaled(bodies[i].Pos, bodies[i].Mass)
		cvel = cvel.AddScaled(bodies[i].Vel, bodies[i].Mass)
		mtot += bodies[i].Mass
	}
	cpos = cpos.Scale(1 / mtot)
	cvel = cvel.Scale(1 / mtot)
	for i := range bodies {
		bodies[i].Pos = bodies[i].Pos.Sub(cpos)
		bodies[i].Vel = bodies[i].Vel.Sub(cvel)
	}
}
