package nbody

import (
	"testing"

	"upcbh/internal/vec"
)

func BenchmarkInteract(b *testing.B) {
	p := vec.V3{X: 1, Y: 2, Z: 3}
	q := vec.V3{X: -2, Y: 0.5, Z: 1}
	var acc vec.V3
	var phi float64
	for i := 0; i < b.N; i++ {
		da, dp := Interact(p, q, 0.5, 0.0025)
		acc = acc.Add(da)
		phi += dp
	}
	_ = acc
	_ = phi
}

func BenchmarkPlummer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Plummer(4096, uint64(i))
	}
}

func BenchmarkDirect1K(b *testing.B) {
	bodies := Plummer(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Direct(bodies, 0.05)
	}
}
