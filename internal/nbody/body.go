// Package nbody provides the physics substrate of the Barnes-Hut
// reproduction: the body type, the Plummer-model initial-condition
// generator used by SPLASH2, the softened gravity kernel, leapfrog
// integration, the O(n^2) direct-summation reference and energy
// diagnostics.
package nbody

import (
	"math"

	"upcbh/internal/vec"
)

// Body is one simulated particle. Cost is the load-balancing weight
// (number of interactions computed for this body in the previous
// time-step), as used by the SPLASH2 costzones partitioner and by the
// paper's subspace tree builder.
//
// The field order is load-bearing: the PGAS emulation's fine-grained
// remote reads copy a byte *prefix* of the struct (exactly the bytes
// the message is charged for), so the fields other threads read while
// the owner updates force results must come first:
//
//	[0,24)   Pos   — read during tree build and force computation
//	[24,32)  Mass  — read during force computation
//	[32,40)  Cost  — read during c-of-m / partitioning (never while written)
//	[40,48)  ID
//	[48,..)  Vel, Acc, Phi — owner-private within a phase
type Body struct {
	Pos  vec.V3
	Mass float64
	Cost float64
	ID   int32
	_    int32 // padding; keeps Vel 8-byte aligned explicitly
	Vel  vec.V3
	Acc  vec.V3
	Phi  float64 // gravitational potential at the body (diagnostic)
}

// Interact accumulates the softened gravitational pull of a point mass
// (at `at`, with mass m) on a body at pos, returning the acceleration
// increment and potential increment. This single kernel is shared by the
// direct solver, the sequential octree, and every distributed variant so
// that all of them agree bit-for-bit per interaction.
//
// The body is written component-wise rather than through the vec.V3
// helpers: the float operations (and therefore the results) are
// identical, but the scalar form fits the compiler's inlining budget —
// and this function runs once per modelled interaction, hundreds of
// millions of times per experiment suite.
func Interact(pos, at vec.V3, m, epsSq float64) (dacc vec.V3, dphi float64) {
	var acc vec.V3
	var phi float64
	InteractAccum(&acc, &phi, pos, at, m, epsSq)
	return acc, phi
}

// InteractAccum is Interact fused with the accumulation the callers all
// perform (acc = acc.Add(dacc); phi += dphi): the float operations are
// bit-identical, but the fused scalar form avoids the struct return and
// the separate vector adds, which matters because this runs once per
// modelled interaction — hundreds of millions of times per experiment
// suite.
func InteractAccum(acc *vec.V3, phi *float64, pos, at vec.V3, m, epsSq float64) {
	dx := at.X - pos.X
	dy := at.Y - pos.Y
	dz := at.Z - pos.Z
	r2 := dx*dx + dy*dy + dz*dz + epsSq
	r := math.Sqrt(r2)
	inv := 1 / r
	s := m * inv * inv * inv
	acc.X += dx * s
	acc.Y += dy * s
	acc.Z += dz * s
	*phi += -m * inv
}

// AcceptInteract fuses the SPLASH2 opening test (octree.Accept) with the
// interaction: both need the body→cell displacement, so the walk was
// computing it twice per accepted cell. It reports whether the cell was
// far enough (l/d < theta, squared form); when it is, the interaction is
// accumulated; when it is not, nothing is touched and the caller opens
// the cell. Bit-identical to octree.Accept followed by InteractAccum:
// the squared distance uses the same component order, and the negated
// displacement Accept effectively uses squares to the same values.
func AcceptInteract(acc *vec.V3, phi *float64, pos, cofm vec.V3, m, half, theta, epsSq float64) bool {
	dx := cofm.X - pos.X
	dy := cofm.Y - pos.Y
	dz := cofm.Z - pos.Z
	d2 := dx*dx + dy*dy + dz*dz
	l := 2 * half
	if l*l >= theta*theta*d2 {
		return false
	}
	r2 := d2 + epsSq
	r := math.Sqrt(r2)
	inv := 1 / r
	s := m * inv * inv * inv
	acc.X += dx * s
	acc.Y += dy * s
	acc.Z += dz * s
	*phi += -m * inv
	return true
}

// AdvanceHalfKick applies the opening half-kick of leapfrog integration.
func AdvanceHalfKick(b *Body, dt float64) {
	b.Vel = b.Vel.AddScaled(b.Acc, dt/2)
}

// AdvanceKickDrift applies one full leapfrog step given freshly computed
// accelerations: kick the velocity by dt then drift the position by dt,
// matching the SPLASH2 advancebody sequence.
func AdvanceKickDrift(b *Body, dt float64) {
	b.Vel = b.Vel.AddScaled(b.Acc, dt)
	b.Pos = b.Pos.AddScaled(b.Vel, dt)
}

// BoundingBox returns the component-wise min and max position over
// bodies. It panics on an empty slice.
func BoundingBox(bodies []Body) (lo, hi vec.V3) {
	if len(bodies) == 0 {
		panic("nbody: bounding box of no bodies")
	}
	lo, hi = bodies[0].Pos, bodies[0].Pos
	for i := 1; i < len(bodies); i++ {
		lo = lo.Min(bodies[i].Pos)
		hi = hi.Max(bodies[i].Pos)
	}
	return lo, hi
}

// RootCell converts a bounding box into the side length and center of the
// Barnes-Hut root cell: the smallest power-of-two-friendly cube
// containing all bodies, expanded exactly as SPLASH2's setbound does
// (side doubled until it covers the box).
func RootCell(lo, hi vec.V3) (center vec.V3, half float64) {
	center = lo.Add(hi).Scale(0.5)
	side := hi.Sub(lo).MaxComponent()
	rsize := 1.0
	for rsize < side*1.00002 {
		rsize *= 2
	}
	return center, rsize / 2
}

// TotalMass sums the masses.
func TotalMass(bodies []Body) float64 {
	var m float64
	for i := range bodies {
		m += bodies[i].Mass
	}
	return m
}
