// Package hostenv captures the host machine stamp attached to bench
// reports and checkpoint headers: the facts needed to judge whether a
// native-mode wall-clock number means anything, and to flag a
// checkpoint restored on different hardware.
//
// It sits below both internal/bench and internal/core so either can
// stamp artifacts without importing the other.
package hostenv

import (
	"os"
	"runtime"
	"strings"
	"sync"
)

// Env is the machine stamp.
type Env struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	// CPUModel is the "model name" line of /proc/cpuinfo, best-effort:
	// empty on hosts without procfs.
	CPUModel string `json:"cpu_model,omitempty"`
}

// Capture samples the current process environment. GOMAXPROCS and
// NumCPU are read live (the scaling experiment re-pins GOMAXPROCS
// between captures); the /proc/cpuinfo parse — immutable for the
// process lifetime — runs once.
func Capture() Env {
	return Env{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		CPUModel:   cpuModel(),
	}
}

// cpuModel extracts the first "model name" entry from /proc/cpuinfo,
// parsed once per process: the file never changes under us, and
// re-reading it on every Report/trajectory/checkpoint stamp was pure
// waste.
var cpuModel = sync.OnceValue(func() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
})
