package core

import "testing"

// TestConcurrentStress hammers the lock-protocol-heavy levels with many
// threads and seeds, with full structural verification enabled. This is
// the regression test for the cost double-counting bug: inflated cell
// costs silently broke the exact-prefix arithmetic of costzones and
// produced duplicate body ownership (visible only as rare depth-limit
// panics under contention).
func TestConcurrentStress(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 3
	}
	for iter := 0; iter < iters; iter++ {
		for _, level := range []Level{LevelBaseline, LevelCacheTree, LevelMergedBuild, LevelAsync, LevelSubspace} {
			opts := DefaultOptions(2048, 16, level)
			opts.Steps, opts.Warmup = 2, 1
			opts.Seed = uint64(100 + iter)
			opts.Verify = true
			sim, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Run(); err != nil {
				t.Fatalf("iter %d level %v: %v", iter, level, err)
			}
		}
	}
}

// TestVerifyAllLevels runs every level with the structural verifier on.
func TestVerifyAllLevels(t *testing.T) {
	for level := LevelBaseline; level < NumLevels; level++ {
		opts := DefaultOptions(1024, 6, level)
		opts.Steps, opts.Warmup = 3, 1
		opts.Verify = true
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("level %v: %v", level, err)
		}
	}
}
