package core

import (
	"fmt"

	"upcbh/internal/nbody"
)

// Key returns a canonical string identifying the simulation this Options
// value would run: two Options with equal keys produce statistically
// identical results (bit-identical at one thread, where simulation is
// deterministic). The experiment harness uses it to memoize runs shared
// across tables and figures.
//
// Defaulted fields are normalized exactly as validate() normalizes them
// (N1/N2/N3, SubspaceAlpha), so an explicit default and a zero value that
// validate() would fill in map to the same key.
func (o Options) Key() string {
	n1, n2, n3 := o.N1, o.N2, o.N3
	if n1 <= 0 {
		n1 = 4
	}
	if n2 <= 0 {
		n2 = 4
	}
	if n3 <= 0 {
		n3 = 4
	}
	alpha := o.SubspaceAlpha
	if alpha <= 0 {
		alpha = 2.0 / 3.0
	}
	scn := o.Scenario
	if scn == "" {
		scn = nbody.DefaultScenario
	}
	return fmt.Sprintf(
		"n=%d;steps=%d;warm=%d;theta=%.17g;eps=%.17g;dt=%.17g;seed=%d;scn=%s;mode=%s;level=%s;"+
			"alias=%t;vec=%t;async=%d/%d/%d;alpha=%.17g;verify=%t;tcache=%t;noflat=%t;tbuf=%d;%s",
		o.Bodies, o.Steps, o.Warmup, o.Theta, o.Eps, o.Dt, o.Seed, scn, o.ExecMode, o.Level,
		o.AliasLocalCells, o.VectorReduce, n1, n2, n3, alpha, o.Verify, o.TransparentCache,
		o.DisableFlat, o.testBufferCap, o.Machine.Key())
}
