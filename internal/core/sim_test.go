package core

import (
	"math"
	"testing"

	"upcbh/internal/machine"
	"upcbh/internal/nbody"
	"upcbh/internal/octree"
)

// runLevel executes a small simulation at the given level/threads.
func runLevel(t *testing.T, level Level, n, threads int, mut func(*Options)) *Result {
	t.Helper()
	opts := DefaultOptions(n, threads, level)
	opts.Steps = 2
	opts.Warmup = 1
	if mut != nil {
		mut(&opts)
	}
	sim, err := New(opts)
	if err != nil {
		t.Fatalf("New(%v): %v", level, err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run(%v): %v", level, err)
	}
	return res
}

// reference runs the same number of steps with the sequential octree
// solver and SPLASH2-style kick-drift advancing.
func reference(n int, seed uint64, steps int, theta, eps, dt float64) []nbody.Body {
	bodies := nbody.Plummer(n, seed)
	for s := 0; s < steps; s++ {
		octree.Solve(bodies, theta, eps)
		for i := range bodies {
			nbody.AdvanceKickDrift(&bodies[i], dt)
		}
	}
	return bodies
}

func TestAllLevelsMatchReference(t *testing.T) {
	const n = 512
	ref := reference(n, 123, 2, 1.0, 0.05, 0.025)
	for level := LevelBaseline; level < NumLevels; level++ {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			res := runLevel(t, level, n, 4, nil)
			if len(res.Bodies) != n {
				t.Fatalf("got %d bodies, want %d", len(res.Bodies), n)
			}
			var worst float64
			for i := range res.Bodies {
				if res.Bodies[i].ID != ref[i].ID {
					t.Fatalf("body order mismatch at %d", i)
				}
				d := res.Bodies[i].Pos.Sub(ref[i].Pos).Len()
				scale := 1 + ref[i].Pos.Len()
				if e := d / scale; e > worst {
					worst = e
				}
			}
			// Different traversal orders reorder FP sums; positions must
			// still agree tightly after 2 steps.
			if worst > 1e-6 {
				t.Errorf("worst relative position error vs reference: %g", worst)
			}
		})
	}
}

func TestForcesAgainstDirectSummation(t *testing.T) {
	const n = 256
	// One step with theta=0.5: Barnes-Hut must be within a few percent
	// of direct summation.
	direct := nbody.Plummer(n, 7)
	nbody.Direct(direct, 0.05)

	res := runLevel(t, LevelSubspace, n, 4, func(o *Options) {
		o.Seed = 7
		o.Theta = 0.5
		o.Steps = 1
		o.Warmup = 0
	})
	var worst float64
	for i := range res.Bodies {
		e := res.Bodies[i].Acc.Sub(direct[i].Acc).Len() / (1 + direct[i].Acc.Len())
		if e > worst {
			worst = e
		}
	}
	if worst > 0.05 {
		t.Errorf("worst acceleration error vs direct summation: %g", worst)
	}
	if math.IsNaN(worst) {
		t.Error("NaN acceleration")
	}
}

func TestSimulatedTimeOrdering(t *testing.T) {
	// The paper's headline: at scale, each optimization level is faster
	// than the previous. At 8 threads with a small problem the ordering
	// of the big jumps must already hold.
	const n = 2048
	totals := make([]float64, NumLevels)
	for level := LevelBaseline; level < NumLevels; level++ {
		res := runLevel(t, level, n, 8, nil)
		totals[level] = res.Total()
		t.Logf("%-12s total=%.4fs force=%.4fs tree=%.4fs",
			level, res.Total(), res.Phases[PhaseForce], res.Phases[PhaseTree])
	}
	if !(totals[LevelBaseline] > totals[LevelScalars]) {
		t.Errorf("replicating scalars should help: baseline %.3f <= scalars %.3f",
			totals[LevelBaseline], totals[LevelScalars])
	}
	if !(totals[LevelScalars] > totals[LevelCacheTree]*2) {
		t.Errorf("caching should be a large win: scalars %.3f vs cache %.3f",
			totals[LevelScalars], totals[LevelCacheTree])
	}
	if !(totals[LevelBaseline] > totals[LevelSubspace]*20) {
		t.Errorf("full optimization should be >20x at 8 threads: baseline %.3f vs subspace %.3f",
			totals[LevelBaseline], totals[LevelSubspace])
	}
}

func TestSingleThreadAllLevels(t *testing.T) {
	ref := reference(300, 5, 2, 1.0, 0.05, 0.025)
	for level := LevelBaseline; level < NumLevels; level++ {
		res := runLevel(t, level, 300, 1, func(o *Options) { o.Seed = 5 })
		for i := range res.Bodies {
			if d := res.Bodies[i].Pos.Sub(ref[i].Pos).Len(); d > 1e-9 {
				t.Fatalf("%v: single-thread position diverges at body %d by %g", level, i, d)
			}
		}
	}
}

func TestMigrationFractionSmall(t *testing.T) {
	// §5.2: in steady state only ~2% of bodies migrate per step. Run a
	// few steps so the first (full) redistribution is excluded.
	res := runLevel(t, LevelMergedBuild, 4096, 4, func(o *Options) {
		o.Steps = 5
		o.Warmup = 2
	})
	if res.MigratedFraction > 0.15 {
		t.Errorf("migrated fraction %.3f, want small steady-state migration", res.MigratedFraction)
	}
}

func TestPthreadModeSlower(t *testing.T) {
	// Table 8 vs 9: with the same thread count, the threaded runtime is
	// ~1.4-2x slower than one process per node.
	mk := func(pthreads bool) float64 {
		opts := DefaultOptions(2048, 4, LevelSubspace)
		opts.Steps, opts.Warmup = 2, 1
		if pthreads {
			opts.Machine = machine.MustNew(4, 4, true, machine.Power5())
		}
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Total()
	}
	proc, thr := mk(false), mk(true)
	if thr <= proc {
		t.Errorf("pthread mode should be slower: process %.4f vs pthread %.4f", proc, thr)
	}
}
