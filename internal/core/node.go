package core

import (
	"sync/atomic"
	"unsafe"

	"upcbh/internal/nbody"
	"upcbh/internal/upc"
	"upcbh/internal/vec"
)

// NodeRef is a tagged global reference to an octree node: either a cell
// (in the cells heap) or a body (in the bodies heap), or nil. It is
// packed into one machine word so that tree slots can be read and written
// atomically — the pointer-sized loads/stores that make the SPLASH2
// lock-protocol sound on real shared-memory hardware.
//
// Layout: bits 62-63 kind, bits 32-45 thread, bits 0-31 index.
type NodeRef uint64

// Node kinds.
const (
	refNil  = 0
	refBody = 1
	refCell = 2
)

// NilNode is the empty tree slot.
const NilNode NodeRef = 0

// BodyRef tags a bodies-heap reference.
func BodyRef(r upc.Ref) NodeRef { return packRef(refBody, r) }

// CellRef tags a cells-heap reference.
func CellRef(r upc.Ref) NodeRef { return packRef(refCell, r) }

func packRef(kind uint64, r upc.Ref) NodeRef {
	return NodeRef(kind<<62 | uint64(uint32(r.Thr)&0x3fff)<<32 | uint64(uint32(r.Idx)))
}

// IsNil reports an empty slot.
func (n NodeRef) IsNil() bool { return n == 0 }

// IsBody reports a body leaf.
func (n NodeRef) IsBody() bool { return n>>62 == refBody }

// IsCell reports an internal cell.
func (n NodeRef) IsCell() bool { return n>>62 == refCell }

// Ref unpacks the heap reference.
func (n NodeRef) Ref() upc.Ref {
	return upc.Ref{Thr: int32(n >> 32 & 0x3fff), Idx: int32(uint32(n))}
}

// loadSlot / storeSlot access a tree slot atomically.
func loadSlot(p *NodeRef) NodeRef     { return NodeRef(atomic.LoadUint64((*uint64)(p))) }
func storeSlot(p *NodeRef, v NodeRef) { atomic.StoreUint64((*uint64)(p), uint64(v)) }

// Cell is one internal octree cell, stored in the distributed cells heap.
// During phases that mutate cells concurrently (tree build, merge) the
// Sub slots are accessed atomically and the aggregate fields under the
// hashed cell lock, per the SPLASH2 protocol.
//
// Field order is load-bearing: fine-grained remote reads copy byte
// prefixes (see upc.Heap.GetBytes), so the fields the force walk's
// acceptance test reads come first, then the remaining aggregates the
// c-of-m phase reads, then owner-side bookkeeping and child slots:
//
//	[0,24)  CofM, [24,32) Mass, [32,40) Half   — acceptance test
//	[40,48) Cost, [48,52) NSub, [52,56) Done   — aggregates
//	[56,..) Center, DoneAt, Sub                — full-cell transfers only
type Cell struct {
	CofM vec.V3 // center of mass (kept normalized; merges use weighted averages)
	Mass float64
	Half float64
	Cost float64 // subtree work estimate, for costzones
	NSub int32   // bodies in subtree
	Done uint32  // atomic flag: aggregates valid (L0-L3 c-of-m phase)

	Center vec.V3
	// DoneAt is the simulated time Done was set; a thread that observed
	// Done==0 and waited aligns its clock to this modelled event.
	DoneAt float64

	Sub [8]NodeRef
}

// cellBytes is the modelled wire size of one cell; computed from the real
// struct so the cost model tracks the implementation.
var cellBytes = int(unsafe.Sizeof(Cell{}))

// bodyBytes is the modelled wire size of one body.
var bodyBytes = int(unsafe.Sizeof(nbody.Body{}))

// Modelled sizes of fine-grained accesses (bytes on the wire). These are
// byte-prefix lengths of the structs above, matching the fields the
// SPLASH2-style code actually reads; layout_test.go pins the offsets.
const (
	bytesSlot       = 8  // one Sub slot
	bytesCellAccept = 40 // CofM+Mass+Half: the theta acceptance test
	bytesAgg        = 56 // + Cost+NSub+Done: c-of-m aggregation
	bytesBodyPos    = 24 // body position
	bytesBodyMass   = 32 // position+mass (force computation)
	bytesBodyCost   = 40 // +cost (c-of-m, partitioning)
	bytesBodyAcc    = 40 // acceleration+potential+cost write-back
)

// bytesBodyAll is the whole-body advance read-modify-write.
var bytesBodyAll = bodyBytes
