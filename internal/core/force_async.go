package core

import (
	"upcbh/internal/nbody"
	"upcbh/internal/upc"
	"upcbh/internal/vec"
)

// wbody is one entry of the §5.5 working-body list: a body whose force is
// being computed concurrently with others, with its frontier of tree
// nodes still to process.
type wbody struct {
	br  upc.Ref
	pos vec.V3
	acc vec.V3
	phi float64

	inter   int
	active  []*lnode // frontier nodes ready to process
	blocked []*lnode // frontier nodes waiting for their children
}

// reqItem maps one gathered child back to its place in the local tree.
type reqItem struct {
	parent *lnode
	oct    int
	isBody bool
	idx    int // index into the request's cell or body staging buffer
}

// request is one aggregated non-blocking gather
// (bupc_memget_vlist_async): all children of a batch of parents, staged
// into per-heap buffers. For simplicity all children of a cell travel in
// the same request, so a request handles between n3 and n3+7 nodes, as in
// the paper.
type request struct {
	parents  []*lnode
	items    []reqItem
	cellRefs []upc.Ref
	cellDst  []Cell
	bodyRefs []upc.Ref
	bodyDst  []nbody.Body
	hc, hb   *upc.Handle
}

func (r *request) empty() bool { return len(r.items) == 0 }

// getWbody/putWbody and getRequest/putRequest recycle the async-force
// working structures across bodies and steps; their slices keep their
// capacity, so the steady-state force phase stops allocating.
func (st *tstate) getWbody(br upc.Ref, pos vec.V3) *wbody {
	if n := len(st.wbFree); n > 0 {
		wb := st.wbFree[n-1]
		st.wbFree = st.wbFree[:n-1]
		*wb = wbody{br: br, pos: pos, active: wb.active[:0], blocked: wb.blocked[:0]}
		return wb
	}
	return &wbody{br: br, pos: pos}
}

func (st *tstate) putWbody(wb *wbody) { st.wbFree = append(st.wbFree, wb) }

func (st *tstate) getRequest() *request {
	if n := len(st.reqFree); n > 0 {
		r := st.reqFree[n-1]
		st.reqFree = st.reqFree[:n-1]
		return r
	}
	return &request{}
}

func (st *tstate) putRequest(r *request) {
	*r = request{
		parents:  r.parents[:0],
		items:    r.items[:0],
		cellRefs: r.cellRefs[:0],
		cellDst:  r.cellDst[:0],
		bodyRefs: r.bodyRefs[:0],
		bodyDst:  r.bodyDst[:0],
	}
	st.reqFree = append(st.reqFree, r)
}

// sized returns a destination slice of exactly n elements, reusing
// capacity. Stale trailing bytes beyond each staged prefix are never
// read: cell gathers copy whole elements, body gathers only expose the
// staged position/mass prefix.
func sized[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// forceAsync implements Listing 3: maintain n1 working bodies, aggregate
// needed remote children into requests of at least n3 cells, keep at most
// n2 outstanding non-blocking gathers, and overlap communication with the
// force computation of bodies whose frontiers can still make progress.
func (s *Sim) forceAsync(t *upc.Thread, st *tstate, measured bool) {
	st.lroot = s.fetchLocalRoot(t, st)
	eps := s.readEps(t, st)
	tol := s.readTol(t, st)
	epsSq := eps * eps
	n1, n2, n3 := s.o.N1, s.o.N2, s.o.N3

	queue := st.myBodies
	next := 0
	working := make([]*wbody, 0, n1)
	pending := st.getRequest()
	var outstanding []*request

	enqueueChildren := func(n *lnode) {
		n.requested = true
		pending.parents = append(pending.parents, n)
		for oct, slot := range n.sub {
			if slot.IsNil() {
				continue
			}
			if slot.IsBody() {
				pending.items = append(pending.items, reqItem{parent: n, oct: oct, isBody: true, idx: len(pending.bodyRefs)})
				pending.bodyRefs = append(pending.bodyRefs, slot.Ref())
			} else {
				pending.items = append(pending.items, reqItem{parent: n, oct: oct, idx: len(pending.cellRefs)})
				pending.cellRefs = append(pending.cellRefs, slot.Ref())
			}
		}
	}

	issue := func() {
		if pending.empty() {
			return
		}
		r := pending
		pending = st.getRequest()
		if len(r.cellRefs) > 0 {
			r.cellDst = sized(r.cellDst, len(r.cellRefs))
			r.hc = s.cells.GatherAsync(t, r.cellRefs, r.cellDst)
		}
		if len(r.bodyRefs) > 0 {
			r.bodyDst = sized(r.bodyDst, len(r.bodyRefs))
			// Only the position/mass prefix travels: the owners are
			// concurrently writing force results into the same bodies.
			r.hb = s.bodies.GatherAsyncBytes(t, r.bodyRefs, r.bodyDst, bytesBodyMass)
		}
		outstanding = append(outstanding, r)
	}

	complete := func(r *request) {
		if r.hc != nil {
			t.WaitSync(r.hc)
		}
		if r.hb != nil {
			t.WaitSync(r.hb)
		}
		for _, it := range r.items {
			if it.isBody {
				b := &r.bodyDst[it.idx]
				it.parent.child[it.oct] = st.newBodyLnode(r.bodyRefs[it.idx], b.Pos, b.Mass)
				continue
			}
			c := &r.cellDst[it.idx]
			t.Charge(s.par.CellInitCost + float64(cellBytes)*s.par.ByteCopyCost)
			it.parent.child[it.oct] = st.newCellLnode(c)
			st.cellsCopied++
		}
		for _, p := range r.parents {
			p.localized = true
		}
		st.putRequest(r)
	}

	unblock := func() {
		for _, wb := range working {
			keep := wb.blocked[:0]
			for _, n := range wb.blocked {
				if n.localized {
					wb.active = append(wb.active, n)
				} else {
					keep = append(keep, n)
				}
			}
			wb.blocked = keep
		}
	}

	processBody := func(wb *wbody) {
		for len(wb.active) > 0 {
			n := wb.active[len(wb.active)-1]
			wb.active = wb.active[:len(wb.active)-1]
			if n.isBody {
				if n.bodyRef == wb.br {
					continue
				}
				nbody.InteractAccum(&wb.acc, &wb.phi, wb.pos, n.cofm, n.mass, epsSq)
				wb.inter++
				t.Charge(s.par.InteractionCost)
				continue
			}
			if nbody.AcceptInteract(&wb.acc, &wb.phi, wb.pos, n.cofm, n.mass, n.half, tol, epsSq) {
				wb.inter++
				t.Charge(s.par.InteractionCost)
				continue
			}
			if n.localized {
				for oct := 7; oct >= 0; oct-- {
					if ch := n.child[oct]; ch != nil {
						wb.active = append(wb.active, ch)
					}
				}
				continue
			}
			if !n.requested {
				enqueueChildren(n)
			}
			wb.blocked = append(wb.blocked, n)
		}
	}

	for {
		// Fill up the list of working bodies.
		for len(working) < n1 && next < len(queue) {
			br := queue[next]
			next++
			wb := st.getWbody(br, s.bodyPos(t, st, br))
			wb.active = append(wb.active, st.lroot)
			working = append(working, wb)
		}
		if len(working) == 0 {
			if pending.empty() && len(outstanding) == 0 {
				break
			}
			issue()
			if len(outstanding) > 0 {
				complete(outstanding[0])
				outstanding = outstanding[1:]
			}
			continue
		}

		// Compute force for working bodies until they can't make progress.
		for _, wb := range working {
			processBody(wb)
		}

		// Retire finished bodies.
		keep := working[:0]
		for _, wb := range working {
			if len(wb.active) == 0 && len(wb.blocked) == 0 {
				s.writeForce(t, st, wb.br, wb.acc, wb.phi, wb.inter)
				if measured {
					st.inter += uint64(wb.inter)
				}
				st.putWbody(wb)
			} else {
				keep = append(keep, wb)
			}
		}
		working = keep

		// Send out a request if it is long enough and a slot is free.
		if len(pending.items) >= n3 && len(outstanding) < n2 {
			issue()
		}

		// If every working body is blocked, we must drain communication.
		stuck := len(working) > 0 || next < len(queue)
		for _, wb := range working {
			if len(wb.active) > 0 {
				stuck = false
			}
		}
		if len(working) == n1 || next >= len(queue) {
			// No new bodies can enter; progress requires completions.
			if stuck {
				if len(outstanding) == 0 {
					issue()
				}
				if len(outstanding) > 0 {
					complete(outstanding[0])
					outstanding = outstanding[1:]
					unblock()
				}
			}
		}
	}
	st.putRequest(pending)
}
