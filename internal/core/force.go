package core

import (
	"upcbh/internal/nbody"
	"upcbh/internal/octree"
	"upcbh/internal/upc"
	"upcbh/internal/vec"
)

// force dispatches the force-computation phase by optimization level.
// Under the native backend, every level that walks a private/cached view
// of the tree (LevelCacheTree and above) runs the flat-snapshot kernel
// instead — the communication-hiding machinery of forceCached/forceAsync
// only exists to model remote access, which native execution does not
// have. The naive levels (L0-L2) keep the shared-pointer walk: their
// point is the fine-grained access pattern itself.
func (s *Sim) force(t *upc.Thread, st *tstate, measured bool) {
	switch {
	case s.nativeFlat() && s.o.Level >= LevelCacheTree:
		s.forceFlat(t, st, measured)
	case s.o.Level >= LevelAsync:
		s.forceAsync(t, st, measured)
	case s.o.Level >= LevelCacheTree:
		s.forceCached(t, st, measured)
	default:
		s.forceNaive(t, st, measured)
	}
}

// writeForce stores the computed acceleration, potential and new cost
// back into the body (remote put below LevelRedistribute).
func (s *Sim) writeForce(t *upc.Thread, st *tstate, br upc.Ref, acc vec.V3, phi float64, inter int) {
	if measuredLocal := s.o.Level >= LevelRedistribute && s.bodies.IsLocal(t, br); measuredLocal {
		b := s.bodies.Local(t, br)
		b.Acc, b.Phi, b.Cost = acc, phi, float64(inter)
		return
	}
	s.bodies.PutBytes(t, br, bytesBodyAcc, func(b *nbody.Body) {
		b.Acc, b.Phi, b.Cost = acc, phi, float64(inter)
	})
}

// forceNaive is the shared-memory-style force computation (L0-L2): every
// tree node is accessed through pointers-to-shared, field by field, and
// — at LevelBaseline — tol and eps are read from thread 0's shared
// scalars at every acceptance test and interaction.
func (s *Sim) forceNaive(t *upc.Thread, st *tstate, measured bool) {
	rootNR := s.readRoot(t, st)
	stack := make([]NodeRef, 0, 128)
	for _, br := range st.myBodies {
		pos := s.bodyPos(t, st, br)
		var acc vec.V3
		var phi float64
		inter := 0

		stack = append(stack[:0], rootNR)
		for len(stack) > 0 {
			nr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if nr.IsBody() {
				if nr.Ref() == br {
					continue // skip self
				}
				var obPos vec.V3
				var obMass float64
				if st.bodyCache != nil {
					ob := st.bodyCache.GetBytes(nr.Ref(), bytesBodyMass)
					obPos, obMass = ob.Pos, ob.Mass
				} else {
					ob := s.bodies.ReadView(t, nr.Ref(), bytesBodyMass)
					obPos, obMass = ob.Pos, ob.Mass
				}
				eps := s.readEps(t, st)
				nbody.InteractAccum(&acc, &phi, pos, obPos, obMass, eps*eps)
				inter++
				t.Charge(s.par.InteractionCost)
				continue
			}
			var cell *Cell
			if st.cellCache != nil {
				// Runtime cache: the whole element is the cache line, so
				// one (possibly hit) access serves geometry, aggregates
				// and the child pointers alike.
				cv := st.cellCache.GetBytes(nr.Ref(), cellBytes)
				cell = &cv
			} else {
				cell = s.cells.ReadView(t, nr.Ref(), bytesCellAccept)
			}
			tol := s.readTol(t, st)
			if octree.Accept(pos, cell.CofM, cell.Half, tol) {
				eps := s.readEps(t, st)
				nbody.InteractAccum(&acc, &phi, pos, cell.CofM, cell.Mass, eps*eps)
				inter++
				t.Charge(s.par.InteractionCost)
				continue
			}
			if st.cellCache == nil {
				// Opening the cell: fetch the child pointers too.
				cell = s.cells.ReadView(t, nr.Ref(), cellBytes)
			}
			for oct := range cell.Sub {
				if slot := cell.Sub[oct]; !slot.IsNil() {
					stack = append(stack, slot)
				}
			}
		}

		s.writeForce(t, st, br, acc, phi, inter)
		if measured {
			st.inter += uint64(inter)
		}
	}
}

// lnode is a node of the per-thread cached local tree (§5.3): either a
// cached copy of a remote cell, an alias of a local cell (§5.3.2), or a
// cached body leaf. The local tree is rebuilt every time-step (cells are
// read-only within a force phase, so no coherence protocol is needed).
type lnode struct {
	isBody  bool
	bodyRef upc.Ref // leaf identity, for self-skip

	center vec.V3
	half   float64
	cofm   vec.V3
	mass   float64

	sub       [8]NodeRef // original global children (for fetching)
	child     [8]*lnode
	localized bool
	requested bool // async framework: children already on a request list
}

// lnodeArena is a per-thread slab allocator for the local tree: lnodes
// are rebuilt every time-step, so individually heap-allocating thousands
// of them per step dominated the harness's GC load. Blocks are fixed
// size (pointer stability: lnodes link to each other) and reused across
// steps; reset drops all nodes without freeing.
type lnodeArena struct {
	blocks [][]lnode
	nb     int // current block
	used   int // used entries in the current block
}

const lnodeBlockSize = 1024

func (a *lnodeArena) reset() { a.nb, a.used = 0, 0 }

func (a *lnodeArena) alloc() *lnode {
	if a.nb == len(a.blocks) {
		a.blocks = append(a.blocks, make([]lnode, lnodeBlockSize))
	}
	ln := &a.blocks[a.nb][a.used]
	if a.used++; a.used == lnodeBlockSize {
		a.nb, a.used = a.nb+1, 0
	}
	return ln
}

// newCellLnode copies a fetched cell into a fresh arena lnode.
func (st *tstate) newCellLnode(c *Cell) *lnode {
	ln := st.lna.alloc()
	*ln = lnode{
		center: c.Center, half: c.Half,
		cofm: c.CofM, mass: c.Mass,
		sub: c.Sub,
	}
	return ln
}

// newBodyLnode makes an arena lnode leaf for a fetched body.
func (st *tstate) newBodyLnode(r upc.Ref, pos vec.V3, mass float64) *lnode {
	ln := st.lna.alloc()
	*ln = lnode{isBody: true, bodyRef: r, cofm: pos, mass: mass}
	return ln
}

// fetchLocalRoot copies the global root into a fresh local tree.
func (s *Sim) fetchLocalRoot(t *upc.Thread, st *tstate) *lnode {
	st.lna.reset()
	rootNR := s.readRoot(t, st)
	c := s.cells.ReadView(t, rootNR.Ref(), cellBytes)
	return st.newCellLnode(c)
}

// localizeChildren implements Listing 1/Listing 2: fetch every child of n
// into the local tree (one blocking get per child, as the paper's first
// caching scheme does) and mark n localized. With AliasLocalCells
// (§5.3.2) children that already live in this thread's shared memory are
// aliased through "shadow pointers" instead of being copied.
func (s *Sim) localizeChildren(t *upc.Thread, st *tstate, n *lnode) {
	for oct, slot := range n.sub {
		if slot.IsNil() {
			continue
		}
		r := slot.Ref()
		if slot.IsBody() {
			b := s.bodies.ReadView(t, r, bytesBodyMass)
			n.child[oct] = st.newBodyLnode(r, b.Pos, b.Mass)
			continue
		}
		if s.o.AliasLocalCells && s.cells.IsLocal(t, r) {
			cp := s.cells.Raw(r)
			s.cells.Touch(t, r, bytesSlot) // shadow-pointer setup: a local deref
			n.child[oct] = st.newCellLnode(cp)
			st.cellsAliased++
			continue
		}
		// Whole-cell transfer (remote) or local copy; same charge as Get.
		c := s.cells.ReadView(t, r, cellBytes)
		t.Charge(s.par.CellInitCost + float64(cellBytes)*s.par.ByteCopyCost)
		n.child[oct] = st.newCellLnode(c)
		st.cellsCopied++
	}
	n.localized = true
}

// forceCached is the §5.3 force computation: walk the private local tree
// with plain pointers, localizing cells on demand with blocking gets.
func (s *Sim) forceCached(t *upc.Thread, st *tstate, measured bool) {
	st.lroot = s.fetchLocalRoot(t, st)
	eps := s.readEps(t, st)
	tol := s.readTol(t, st)
	epsSq := eps * eps

	stack := make([]*lnode, 0, 128)
	for _, br := range st.myBodies {
		pos := s.bodyPos(t, st, br)
		var acc vec.V3
		var phi float64
		inter := 0

		stack = append(stack[:0], st.lroot)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n.isBody {
				if n.bodyRef == br {
					continue
				}
				nbody.InteractAccum(&acc, &phi, pos, n.cofm, n.mass, epsSq)
				inter++
				t.Charge(s.par.InteractionCost)
				continue
			}
			if nbody.AcceptInteract(&acc, &phi, pos, n.cofm, n.mass, n.half, tol, epsSq) {
				inter++
				t.Charge(s.par.InteractionCost)
				continue
			}
			if !n.localized {
				s.localizeChildren(t, st, n)
			}
			for oct := 7; oct >= 0; oct-- {
				if ch := n.child[oct]; ch != nil {
					stack = append(stack, ch)
				}
			}
		}

		s.writeForce(t, st, br, acc, phi, inter)
		if measured {
			st.inter += uint64(inter)
		}
	}
}
