package core

import (
	"upcbh/internal/nbody"
	"upcbh/internal/octree"
	"upcbh/internal/upc"
	"upcbh/internal/vec"
)

// force dispatches the force-computation phase by optimization level.
// Under the native backend, every level that walks a private/cached view
// of the tree (LevelCacheTree and above) runs the flat-snapshot kernel
// instead — the communication-hiding machinery of forceCached/forceAsync
// only exists to model remote access, which native execution does not
// have. The naive levels (L0-L2) keep the shared-pointer walk: their
// point is the fine-grained access pattern itself.
func (s *Sim) force(t *upc.Thread, st *tstate, measured bool) {
	switch {
	case s.nativeFlat() && s.o.Level >= LevelCacheTree:
		s.forceFlat(t, st, measured)
	case s.o.Level >= LevelAsync:
		s.forceAsync(t, st, measured)
	case s.o.Level >= LevelCacheTree:
		s.forceCached(t, st, measured)
	default:
		s.forceNaive(t, st, measured)
	}
}

// writeForce stores the computed acceleration, potential and new cost
// back into the body (remote put below LevelRedistribute).
func (s *Sim) writeForce(t *upc.Thread, st *tstate, br upc.Ref, acc vec.V3, phi float64, inter int) {
	if measuredLocal := s.o.Level >= LevelRedistribute && s.bodies.IsLocal(t, br); measuredLocal {
		b := s.bodies.Local(t, br)
		b.Acc, b.Phi, b.Cost = acc, phi, float64(inter)
		return
	}
	s.bodies.PutBytes(t, br, bytesBodyAcc, func(b *nbody.Body) {
		b.Acc, b.Phi, b.Cost = acc, phi, float64(inter)
	})
}

// forceNaive is the shared-memory-style force computation (L0-L2): every
// tree node is accessed through pointers-to-shared, field by field, and
// — at LevelBaseline — tol and eps are read from thread 0's shared
// scalars at every acceptance test and interaction.
func (s *Sim) forceNaive(t *upc.Thread, st *tstate, measured bool) {
	rootNR := s.readRoot(t, st)
	stack := make([]NodeRef, 0, 128)
	for _, br := range st.myBodies {
		pos := s.bodyPos(t, st, br)
		var acc vec.V3
		var phi float64
		inter := 0

		stack = append(stack[:0], rootNR)
		for len(stack) > 0 {
			nr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if nr.IsBody() {
				if nr.Ref() == br {
					continue // skip self
				}
				var ob nbody.Body
				if st.bodyCache != nil {
					ob = st.bodyCache.GetBytes(nr.Ref(), bytesBodyMass)
				} else {
					ob = s.bodies.GetBytes(t, nr.Ref(), bytesBodyMass)
				}
				eps := s.readEps(t, st)
				da, dp := nbody.Interact(pos, ob.Pos, ob.Mass, eps*eps)
				acc = acc.Add(da)
				phi += dp
				inter++
				t.Charge(s.par.InteractionCost)
				continue
			}
			var cell Cell
			if st.cellCache != nil {
				// Runtime cache: the whole element is the cache line, so
				// one (possibly hit) access serves geometry, aggregates
				// and the child pointers alike.
				cell = st.cellCache.GetBytes(nr.Ref(), cellBytes)
			} else {
				cell = s.cells.GetBytes(t, nr.Ref(), bytesCellAccept)
			}
			tol := s.readTol(t, st)
			if octree.Accept(pos, cell.CofM, cell.Half, tol) {
				eps := s.readEps(t, st)
				da, dp := nbody.Interact(pos, cell.CofM, cell.Mass, eps*eps)
				acc = acc.Add(da)
				phi += dp
				inter++
				t.Charge(s.par.InteractionCost)
				continue
			}
			if st.cellCache == nil {
				// Opening the cell: fetch the child pointers too.
				cell = s.cells.GetBytes(t, nr.Ref(), cellBytes)
			}
			for oct := range cell.Sub {
				if slot := cell.Sub[oct]; !slot.IsNil() {
					stack = append(stack, slot)
				}
			}
		}

		s.writeForce(t, st, br, acc, phi, inter)
		if measured {
			st.inter += uint64(inter)
		}
	}
}

// lnode is a node of the per-thread cached local tree (§5.3): either a
// cached copy of a remote cell, an alias of a local cell (§5.3.2), or a
// cached body leaf. The local tree is rebuilt every time-step (cells are
// read-only within a force phase, so no coherence protocol is needed).
type lnode struct {
	isBody  bool
	bodyRef upc.Ref // leaf identity, for self-skip

	center vec.V3
	half   float64
	cofm   vec.V3
	mass   float64

	sub       [8]NodeRef // original global children (for fetching)
	child     [8]*lnode
	localized bool
	requested bool // async framework: children already on a request list
}

// fetchLocalRoot copies the global root into a fresh local tree.
func (s *Sim) fetchLocalRoot(t *upc.Thread, st *tstate) *lnode {
	rootNR := s.readRoot(t, st)
	c := s.cells.Get(t, rootNR.Ref())
	return &lnode{
		center: c.Center, half: c.Half,
		cofm: c.CofM, mass: c.Mass,
		sub: c.Sub,
	}
}

// wrapCellValue turns a fetched cell value into an lnode copy.
func wrapCellValue(c *Cell) *lnode {
	return &lnode{
		center: c.Center, half: c.Half,
		cofm: c.CofM, mass: c.Mass,
		sub: c.Sub,
	}
}

// localizeChildren implements Listing 1/Listing 2: fetch every child of n
// into the local tree (one blocking get per child, as the paper's first
// caching scheme does) and mark n localized. With AliasLocalCells
// (§5.3.2) children that already live in this thread's shared memory are
// aliased through "shadow pointers" instead of being copied.
func (s *Sim) localizeChildren(t *upc.Thread, st *tstate, n *lnode) {
	for oct, slot := range n.sub {
		if slot.IsNil() {
			continue
		}
		r := slot.Ref()
		if slot.IsBody() {
			b := s.bodies.GetBytes(t, r, bytesBodyMass)
			n.child[oct] = &lnode{isBody: true, bodyRef: r, cofm: b.Pos, mass: b.Mass}
			continue
		}
		if s.o.AliasLocalCells && s.cells.IsLocal(t, r) {
			cp := s.cells.Raw(r)
			s.cells.Touch(t, r, bytesSlot) // shadow-pointer setup: a local deref
			n.child[oct] = wrapCellValue(cp)
			st.cellsAliased++
			continue
		}
		c := s.cells.Get(t, r) // whole-cell transfer (remote) or local copy
		t.Charge(s.par.CellInitCost + float64(cellBytes)*s.par.ByteCopyCost)
		n.child[oct] = wrapCellValue(&c)
		st.cellsCopied++
	}
	n.localized = true
}

// forceCached is the §5.3 force computation: walk the private local tree
// with plain pointers, localizing cells on demand with blocking gets.
func (s *Sim) forceCached(t *upc.Thread, st *tstate, measured bool) {
	st.lroot = s.fetchLocalRoot(t, st)
	eps := s.readEps(t, st)
	tol := s.readTol(t, st)
	epsSq := eps * eps

	stack := make([]*lnode, 0, 128)
	for _, br := range st.myBodies {
		pos := s.bodyPos(t, st, br)
		var acc vec.V3
		var phi float64
		inter := 0

		stack = append(stack[:0], st.lroot)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n.isBody {
				if n.bodyRef == br {
					continue
				}
				da, dp := nbody.Interact(pos, n.cofm, n.mass, epsSq)
				acc = acc.Add(da)
				phi += dp
				inter++
				t.Charge(s.par.InteractionCost)
				continue
			}
			if octree.Accept(pos, n.cofm, n.half, tol) {
				da, dp := nbody.Interact(pos, n.cofm, n.mass, epsSq)
				acc = acc.Add(da)
				phi += dp
				inter++
				t.Charge(s.par.InteractionCost)
				continue
			}
			if !n.localized {
				s.localizeChildren(t, st, n)
			}
			for oct := 7; oct >= 0; oct-- {
				if ch := n.child[oct]; ch != nil {
					stack = append(stack, ch)
				}
			}
		}

		s.writeForce(t, st, br, acc, phi, inter)
		if measured {
			st.inter += uint64(inter)
		}
	}
}
