package core

import (
	"fmt"
	"sync/atomic"

	"upcbh/internal/nbody"
	"upcbh/internal/octree"
	"upcbh/internal/upc"
	"upcbh/internal/vec"
)

// maxDepth bounds tree descent; exceeding it means (near-)coincident
// bodies the octree cannot separate.
const maxDepth = 48

// buildGlobal is the SPLASH2/baseline tree construction (§4, and §5.1-5.3
// levels): every thread inserts its bodies into one shared octree,
// protecting mutations with the hashed lock array. At LevelBaseline the
// root geometry and root pointer are shared scalars read per insertion.
func (s *Sim) buildGlobal(t *upc.Thread, st *tstate) {
	g := s.boundingBox(t, st)

	// Thread 0 creates the (empty) root cell.
	var rootRef upc.Ref
	if t.ID() == 0 {
		rootRef = s.newCell(t, st, g.Center, g.Half)
	}
	if s.replicated() {
		st.root = CellRef(upc.Broadcast(t, 0, rootRef))
	} else {
		if t.ID() == 0 {
			s.rootS.Write(t, CellRef(rootRef))
		}
		t.Barrier()
	}

	for _, br := range st.myBodies {
		geom := s.readGeom(t, st) // per-insertion rsize read at baseline
		root := s.readRoot(t, st)
		pos := s.bodyPos(t, st, br)
		s.insertBody(t, st, br, pos, root.Ref(), geom.Center, geom.Half)
	}
}

// insertBody descends the shared tree from cur (covering center/half) and
// places the body, splitting leaves under the cell lock as SPLASH2's
// loadtree does. Slots are read/written atomically; modifications are
// serialized by the hashed lock of the parent cell.
func (s *Sim) insertBody(t *upc.Thread, st *tstate, bodyR upc.Ref, pos vec.V3, cur upc.Ref, center vec.V3, half float64) {
	for depth := 0; ; depth++ {
		if depth > maxDepth {
			panic(fmt.Sprintf("core: octree depth limit exceeded inserting body %v (coincident bodies?)", bodyR))
		}
		t.Charge(s.par.TreeLevelCost)
		oct := octree.Octant(center, pos)
		cp := s.cells.Raw(cur)
		s.cells.Touch(t, cur, bytesSlot)
		slot := loadSlot(&cp.Sub[oct])
		switch {
		case slot.IsCell():
			cur = slot.Ref()
			center, half = octree.ChildBounds(center, half, oct)

		case slot.IsNil():
			lk := s.locks.ForRef(cur)
			lk.Acquire(t)
			if loadSlot(&cp.Sub[oct]).IsNil() {
				s.cells.TouchPut(t, cur, bytesSlot)
				storeSlot(&cp.Sub[oct], BodyRef(bodyR))
				lk.Release(t)
				return
			}
			lk.Release(t) // lost the race; retry this level

		default: // occupied by a body: split the leaf under the lock
			lk := s.locks.ForRef(cur)
			lk.Acquire(t)
			if loadSlot(&cp.Sub[oct]) != slot {
				lk.Release(t)
				continue // slot changed under us; retry this level
			}
			oldR := slot.Ref()
			oldPos := s.bodyPos(t, st, oldR)
			cc, ch := octree.ChildBounds(center, half, oct)
			top := s.buildChain(t, st, cc, ch, oldR, oldPos, bodyR, pos, nil)
			s.cells.TouchPut(t, cur, bytesSlot)
			storeSlot(&cp.Sub[oct], CellRef(top))
			lk.Release(t)
			return
		}
	}
}

// chainAgg, when non-nil, makes buildChain fill cell aggregates from the
// two bodies (used by the merged build, where no separate c-of-m phase
// runs).
type chainAgg struct {
	oldMass, oldCost float64
	newMass, newCost float64
}

// buildChain creates the cell chain separating two bodies that fall in
// the same octant path, entirely in the caller's shard, and returns the
// top cell. The chain is unpublished until the caller stores it.
func (s *Sim) buildChain(t *upc.Thread, st *tstate, center vec.V3, half float64,
	oldR upc.Ref, oldPos vec.V3, newR upc.Ref, newPos vec.V3, agg *chainAgg) upc.Ref {

	top := s.newCell(t, st, center, half)
	cur := top
	for depth := 0; ; depth++ {
		if depth > maxDepth {
			panic(fmt.Sprintf("core: octree depth limit exceeded splitting leaf: old=%v@%+v new=%v@%+v cube=(%+v,%g) contains=%v/%v",
				oldR, oldPos, newR, newPos, center, half,
				octree.Contains(center, half, oldPos), octree.Contains(center, half, newPos)))
		}
		t.Charge(s.par.TreeLevelCost)
		cp := s.cells.Raw(cur)
		if agg != nil {
			m := agg.oldMass + agg.newMass
			cp.Mass = m
			if m > 0 {
				cp.CofM = oldPos.Scale(agg.oldMass/m).AddScaled(newPos, agg.newMass/m)
			}
			cp.Cost = agg.oldCost + agg.newCost
			cp.NSub = 2
		}
		o1 := octree.Octant(cp.Center, oldPos)
		o2 := octree.Octant(cp.Center, newPos)
		if o1 != o2 {
			cp.Sub[o1] = BodyRef(oldR)
			cp.Sub[o2] = BodyRef(newR)
			return top
		}
		cc, ch := octree.ChildBounds(cp.Center, cp.Half, o1)
		next := s.newCell(t, st, cc, ch)
		cp.Sub[o1] = CellRef(next)
		cur = next
	}
}

// cofmGlobal is the SPLASH2 center-of-mass phase (L0-L3): each thread
// processes the cells it created in reverse creation order (bottom-up)
// and spin-waits on children owned by other threads via the Done flag.
func (s *Sim) cofmGlobal(t *upc.Thread, st *tstate) {
	for i := len(st.myCells) - 1; i >= 0; i-- {
		cr := st.myCells[i]
		cp := s.cells.Raw(cr) // mine: local access
		var wsum vec.V3
		var mass, cost float64
		var n int32
		for oct := range cp.Sub {
			slot := cp.Sub[oct] // build phase is over; slots are stable
			switch {
			case slot.IsNil():
				continue
			case slot.IsBody():
				b := s.bodies.ReadView(t, slot.Ref(), bytesBodyCost)
				wsum = wsum.AddScaled(b.Pos, b.Mass)
				mass += b.Mass
				cost += b.Cost
				n++
			default:
				chR := slot.Ref()
				chP := s.cells.Raw(chR)
				// Spin on the child's Done flag; each poll is a charged
				// access, and on success the clock aligns to the
				// modelled flag-set time.
				polls := 0
				for atomic.LoadUint32(&chP.Done) == 0 {
					if t.Poisoned() {
						panic("core: aborting c-of-m spin: a peer thread failed")
					}
					polls++
					s.cells.Touch(t, chR, 4)
					// Offer the baton to lower-clock peers (cooperative
					// simulate) or the OS scheduler (native): each failed
					// poll is charged, so the spin converges in virtual
					// time and the poll count is deterministic.
					t.SpinYield()
				}
				if polls > 0 {
					t.AdvanceTo(chP.DoneAt)
					s.cells.Touch(t, chR, 4)
				}
				agg := s.cells.ReadView(t, chR, bytesAgg)
				wsum = wsum.AddScaled(agg.CofM, agg.Mass)
				mass += agg.Mass
				cost += agg.Cost
				n += agg.NSub
			}
			t.Charge(s.par.TreeLevelCost)
		}
		cp.Mass = mass
		cp.Cost = cost
		cp.NSub = n
		if mass > 0 {
			cp.CofM = wsum.Scale(1 / mass)
		} else {
			cp.CofM = cp.Center
		}
		cp.DoneAt = t.Now()
		atomic.StoreUint32(&cp.Done, 1)
	}
}

// costzones is the SPLASH2 partitioner (used through LevelAsync): walk
// the shared tree depth-first accumulating body costs; each thread claims
// the bodies whose cost prefix falls in its equal share of the total.
// Pruning disjoint subtrees keeps the walk near O(own zone). The walk is
// iterative over a retained explicit stack (children pushed in reverse,
// so the visit — and hence charge — order equals the recursive one);
// steady-state steps allocate nothing.
func (s *Sim) costzones(t *upc.Thread, st *tstate) {
	rootNR := s.readRoot(t, st)
	rootRef := rootNR.Ref()
	total := s.cells.ReadView(t, rootRef, bytesAgg).Cost
	if total <= 0 {
		total = float64(s.o.Bodies)
	}
	lo := total * float64(t.ID()) / float64(t.P())
	hi := total * float64(t.ID()+1) / float64(t.P())
	st.myBodies = st.myBodies[:0]

	prefix := 0.0
	stack := append(st.czstack[:0], rootNR)
	for len(stack) > 0 {
		nr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nr.IsBody() {
			b := s.bodies.ReadView(t, nr.Ref(), bytesBodyCost)
			c := b.Cost
			if c <= 0 {
				c = 1
			}
			// Claim by prefix start; identical arithmetic on all threads
			// makes the claims a disjoint cover.
			if prefix >= lo && prefix < hi {
				st.myBodies = append(st.myBodies, nr.Ref())
			}
			prefix += c
			t.Charge(s.par.LocalDerefCost)
			continue
		}
		cell := s.cells.ReadView(t, nr.Ref(), cellBytes)
		if prefix+cell.Cost <= lo || prefix >= hi {
			prefix += cell.Cost
			continue // disjoint subtree: prune
		}
		t.Charge(s.par.TreeLevelCost)
		for oct := 7; oct >= 0; oct-- {
			if slot := cell.Sub[oct]; !slot.IsNil() {
				stack = append(stack, slot)
			}
		}
	}
	st.czstack = stack[:0]
}

// redistribute implements §5.2: pull remotely stored owned bodies into
// the local double buffer with one indexed gather, swizzle mybodytab to
// the local copies, and compact into the alternate buffer when full.
func (s *Sim) redistribute(t *upc.Thread, st *tstate, measured bool) {
	me := int32(t.ID())
	// Parity-indexed scratch: see the tstate field comment.
	rs := &st.remote[st.stepParity]
	remoteIdx := rs.idx[:0]
	remoteRefs := rs.refs[:0]
	for i, br := range st.myBodies {
		if br.Thr != me {
			remoteIdx = append(remoteIdx, i)
			remoteRefs = append(remoteRefs, br)
		}
	}
	rs.idx, rs.refs = remoteIdx, remoteRefs
	if measured {
		st.migrated += len(remoteRefs)
		st.ownedTot += len(st.myBodies)
	}

	if st.curLen+len(remoteRefs) > st.bufCap {
		s.compactBuffer(t, st)
		if measured {
			st.bufCopies++
		}
	}
	if st.curLen+len(remoteRefs) > st.bufCap {
		panic(fmt.Sprintf("core: thread %d body buffer overflow: %d owned + %d incoming > cap %d",
			t.ID(), st.curLen, len(remoteRefs), st.bufCap))
	}
	if len(remoteRefs) > 0 {
		base := st.buf[st.cur]
		dst := s.bodies.LocalSlice(t, upc.Ref{Thr: me, Idx: base.Idx + int32(st.curLen)}, len(remoteRefs))
		s.bodies.Gather(t, remoteRefs, dst)
		for j, i := range remoteIdx {
			st.myBodies[i] = upc.Ref{Thr: me, Idx: base.Idx + int32(st.curLen+j)}
		}
		st.curLen += len(remoteRefs)
	}
}

// compactBuffer copies the live owned bodies into the alternate buffer
// and switches to it ("When curbuf fills up, the thread copies all the
// bodies in mybodytab[] to the alternative buffer", §5.2).
func (s *Sim) compactBuffer(t *upc.Thread, st *tstate) {
	me := int32(t.ID())
	alt := st.buf[1-st.cur]
	w := 0
	for i, br := range st.myBodies {
		if br.Thr != me {
			continue // still remote; will be gathered after the swap
		}
		if w >= st.bufCap {
			panic("core: compaction overflow: owned bodies exceed buffer capacity")
		}
		*s.bodies.Raw(upc.Ref{Thr: me, Idx: alt.Idx + int32(w)}) = *s.bodies.Raw(br)
		st.myBodies[i] = upc.Ref{Thr: me, Idx: alt.Idx + int32(w)}
		w++
	}
	t.Charge(float64(w*bodyBytes) * s.par.ByteCopyCost)
	st.cur = 1 - st.cur
	st.curLen = w
}

// advance is the body-advancing phase: a leapfrog (kick-drift) update of
// every owned body. Below LevelRedistribute the body may live in another
// thread's shard and the update is a charged remote read-modify-write.
func (s *Sim) advance(t *upc.Thread, st *tstate) {
	dt := s.o.Dt
	for _, br := range st.myBodies {
		t.Charge(s.par.BodyUpdateCost)
		if s.o.Level >= LevelRedistribute && s.bodies.IsLocal(t, br) {
			nbody.AdvanceKickDrift(s.bodies.Local(t, br), dt)
			continue
		}
		s.bodies.Touch(t, br, bytesBodyAll)
		s.bodies.PutBytes(t, br, bytesBodyAll, func(b *nbody.Body) {
			nbody.AdvanceKickDrift(b, dt)
		})
	}
}
