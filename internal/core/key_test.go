package core

import (
	"encoding/json"
	"testing"

	"upcbh/internal/machine"
)

func TestOptionsKeyCanonicalizesDefaults(t *testing.T) {
	a := DefaultOptions(2048, 4, LevelSubspace)
	b := a
	// validate() fills these in; Key must treat zero and default alike.
	b.N1, b.N2, b.N3 = 0, 0, 0
	b.SubspaceAlpha = 0
	if a.Key() != b.Key() {
		t.Errorf("defaulted options key differs:\n%s\n%s", a.Key(), b.Key())
	}
}

func TestOptionsKeyDiscriminates(t *testing.T) {
	base := DefaultOptions(2048, 4, LevelSubspace)
	seen := map[string]string{base.Key(): "base"}
	mutations := map[string]func(*Options){
		"bodies":   func(o *Options) { o.Bodies = 4096 },
		"steps":    func(o *Options) { o.Steps = 6 },
		"warmup":   func(o *Options) { o.Warmup = 3 },
		"theta":    func(o *Options) { o.Theta = 0.5 },
		"seed":     func(o *Options) { o.Seed = 7 },
		"scenario": func(o *Options) { o.Scenario = "clustered" },
		"mode":     func(o *Options) { o.ExecMode = ModeNative },
		"level":    func(o *Options) { o.Level = LevelAsync },
		"vec":      func(o *Options) { o.VectorReduce = false },
		"n1":       func(o *Options) { o.N1 = 8 },
		"verify":   func(o *Options) { o.Verify = true },
		"noflat":   func(o *Options) { o.DisableFlat = true },
		"tcache":   func(o *Options) { o.TransparentCache = true },
		"machine":  func(o *Options) { o.Machine = machine.MustNew(4, 4, true, machine.Power5()) },
		"parcost":  func(o *Options) { m := *o.Machine; m.Par.Latency *= 2; o.Machine = &m },
		"tbufcap":  func(o *Options) { o.testBufferCap = 64 },
	}
	for name, mut := range mutations {
		o := base
		mut(&o)
		k := o.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q: %s", name, prev, k)
		}
		seen[k] = name
	}
}

// TestOptionsJSONRoundTrip pins the serialization contract: Options
// (including the machine and its cost parameters, with Level/ExecMode as
// readable names) survives a marshal/unmarshal cycle.
func TestOptionsJSONRoundTrip(t *testing.T) {
	o := DefaultOptions(2048, 8, LevelAsync)
	o.ExecMode = ModeNative
	o.TransparentCache = true
	b, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var got Options
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	if got.Key() != o.Key() {
		t.Errorf("round-trip changed the options:\n got %s\nwant %s", got.Key(), o.Key())
	}
	if got.Level != LevelAsync || got.ExecMode != ModeNative {
		t.Errorf("level/mode lost: %v %v", got.Level, got.ExecMode)
	}
}
