package core

import "testing"

// The transparent cache (§8 extension) must not change the physics, and
// must land between "no caching" and "manual caching" in simulated time.
func TestTransparentCacheCorrectAndOrdered(t *testing.T) {
	run := func(level Level, transparent bool) *Result {
		opts := DefaultOptions(2048, 8, level)
		opts.Steps, opts.Warmup = 2, 1
		opts.TransparentCache = transparent
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(LevelRedistribute, false)
	cached := run(LevelRedistribute, true)
	manual := run(LevelCacheTree, false)

	for i := range plain.Bodies {
		if d := plain.Bodies[i].Pos.Sub(cached.Bodies[i].Pos).Len(); d > 1e-12 {
			t.Fatalf("transparent cache changed physics at body %d by %g", i, d)
		}
	}
	pf, cf, mf := plain.Phases[PhaseForce], cached.Phases[PhaseForce], manual.Phases[PhaseForce]
	t.Logf("force comp: no-cache %.4fs, transparent %.4fs, manual %.4fs", pf, cf, mf)
	if cf > pf/2 {
		t.Errorf("transparent cache should cut naive force time substantially: %.4f vs %.4f", cf, pf)
	}
	if mf > cf*1.3 {
		t.Errorf("manual caching should not lose to the transparent cache: %.4f vs %.4f", mf, cf)
	}
}

// At the baseline, the transparent scalar cache alone (tol/eps/rsize)
// removes the thread-0 hot-spot.
func TestTransparentScalarCacheAtBaseline(t *testing.T) {
	run := func(transparent bool) float64 {
		opts := DefaultOptions(1024, 8, LevelBaseline)
		opts.Steps, opts.Warmup = 2, 1
		opts.TransparentCache = transparent
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Total()
	}
	plain, cached := run(false), run(true)
	t.Logf("baseline total: %.3fs, with runtime caches: %.3fs", plain, cached)
	if cached > plain/2 {
		t.Errorf("runtime caching should rescue much of the baseline: %.3f vs %.3f", cached, plain)
	}
}
