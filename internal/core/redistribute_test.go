package core

import "testing"

// A tight double buffer must trigger the §5.2 compaction path ("when
// curbuf fills up, the thread copies all the bodies in mybodytab[] to
// the alternative buffer") without changing the physics.
func TestBufferCompaction(t *testing.T) {
	run := func(tight bool) *Result {
		opts := DefaultOptions(2048, 4, LevelMergedBuild)
		opts.Steps, opts.Warmup = 8, 1
		opts.Verify = true
		if tight {
			// Just above the per-thread body count: a handful of
			// migrations forces a compaction.
			opts.testBufferCap = 2048/4 + 24
		}
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	roomy := run(false)
	tight := run(true)
	if tight.BufferCopies == 0 {
		t.Error("tight buffer never compacted; the double-buffer path is untested")
	}
	t.Logf("compactions: tight=%d roomy=%d", tight.BufferCopies, roomy.BufferCopies)
	for i := range roomy.Bodies {
		if d := roomy.Bodies[i].Pos.Sub(tight.Bodies[i].Pos).Len(); d > 1e-12 {
			t.Fatalf("compaction changed physics at body %d by %g", i, d)
		}
	}
}

// Redistribution is what makes advance/c-of-m local; after it, every
// owned body must be in the owner's shard.
func TestRedistributionLocalizesOwnership(t *testing.T) {
	opts := DefaultOptions(1024, 4, LevelRedistribute)
	opts.Steps, opts.Warmup = 3, 1
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for id, st := range sim.ts {
		for _, br := range st.myBodies {
			if int(br.Thr) != id {
				t.Fatalf("thread %d owns remote body ref %v after redistribution", id, br)
			}
		}
	}
}
