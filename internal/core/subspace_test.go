package core

import (
	"testing"

	"upcbh/internal/nbody"
	"upcbh/internal/vec"
)

// runSubspace runs a LevelSubspace simulation with optional tweaks.
func runSubspace(t *testing.T, n, threads int, mut func(*Options)) *Result {
	t.Helper()
	opts := DefaultOptions(n, threads, LevelSubspace)
	opts.Steps, opts.Warmup = 3, 1
	opts.Verify = true
	if mut != nil {
		mut(&opts)
	}
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The subspace owner assignment targets per-thread cost shares of at
// most (1+alpha) x average (§6); interactions per thread measure the
// realized balance.
func TestSubspaceLoadBalance(t *testing.T) {
	res := runSubspace(t, 8192, 8, nil)
	var min, max uint64 = ^uint64(0), 0
	var total uint64
	for _, tb := range res.PerThread {
		if tb.Interactions < min {
			min = tb.Interactions
		}
		if tb.Interactions > max {
			max = tb.Interactions
		}
		total += tb.Interactions
	}
	avg := float64(total) / float64(len(res.PerThread))
	t.Logf("interactions/thread: min=%d avg=%.0f max=%d (max/avg=%.2f)", min, avg, max, float64(max)/avg)
	// The paper's bound is (1+alpha)=1.67x average on *costs*; realized
	// interaction counts track costs with one step of lag, so allow 2x.
	if float64(max) > 2*avg {
		t.Errorf("subspace ownership imbalanced: max %d vs avg %.0f", max, avg)
	}
	if min == 0 {
		t.Error("a thread computed no interactions at all")
	}
}

// Alpha controls the division threshold tau = alpha*Cost/THREADS: a
// smaller alpha divides deeper (more, finer subspaces).
func TestSubspaceAlphaEffect(t *testing.T) {
	coarse := runSubspace(t, 4096, 8, func(o *Options) { o.SubspaceAlpha = 2.0 })
	fine := runSubspace(t, 4096, 8, func(o *Options) { o.SubspaceAlpha = 0.25 })
	// Both must be correct (Verify on); finer division must not worsen
	// balance.
	spread := func(r *Result) float64 {
		var min, max uint64 = ^uint64(0), 0
		for _, tb := range r.PerThread {
			if tb.Interactions < min {
				min = tb.Interactions
			}
			if tb.Interactions > max {
				max = tb.Interactions
			}
		}
		return float64(max) / float64(min)
	}
	cs, fs := spread(coarse), spread(fine)
	t.Logf("max/min interactions: alpha=2.0 -> %.2f, alpha=0.25 -> %.2f", cs, fs)
	if fs > cs*1.5 {
		t.Errorf("finer subspace division worsened balance: %.2f vs %.2f", fs, cs)
	}
}

// The subspace build must work when bodies are clustered in a tiny
// off-center ball (deep division concentrated on one branch) and when
// one outlier stretches the root cube.
func TestSubspaceClusteredBodies(t *testing.T) {
	cl := nbody.Plummer(1024, 77)
	for i := range cl {
		cl[i].Pos = cl[i].Pos.Scale(0.01).Add(vec.V3{X: 5, Y: 5, Z: 5})
	}
	cl[0].Pos = vec.V3{X: -50, Y: 0, Z: 0} // outlier

	opts := DefaultOptions(len(cl), 8, LevelSubspace)
	opts.Steps, opts.Warmup = 2, 1
	opts.Verify = true
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetBodies(cl)
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bodies) != len(cl) {
		t.Fatalf("lost bodies: %d of %d", len(res.Bodies), len(cl))
	}
}
