package core

import (
	"fmt"
	"math"

	"upcbh/internal/octree"
	"upcbh/internal/upc"
	"upcbh/internal/vec"
)

// verifyTree walks the fully built global octree (uncharged Raw access)
// and checks the structural invariants every phase downstream relies on:
//
//   - every body appears exactly once (duplicate ownership corrupts
//     costzones' exact prefix arithmetic — see the cost invariant below);
//   - cell.Cost is EXACTLY the integer sum of body costs beneath it
//     (costzones' cross-thread claim disjointness depends on pruned and
//     descended walks computing bit-identical prefixes, which holds
//     because costs are integer-valued and float64 sums of integers are
//     exact);
//   - masses and body counts are additive; bodies lie inside their cells.
//
// It runs on thread 0 when Options.Verify is set, after tree
// construction, and panics with a descriptive message on violation.
func (s *Sim) verifyTree(t *upc.Thread, st *tstate) {
	root := s.readRoot(t, st)
	if !root.IsCell() {
		panic("core verify: root is not a cell")
	}
	seen := make(map[int32]bool, s.o.Bodies)

	var walk func(nr NodeRef, hasGeom bool, center vec.V3, half float64) (mass, cost float64, n int32)
	walk = func(nr NodeRef, hasGeom bool, center vec.V3, half float64) (float64, float64, int32) {
		if nr.IsBody() {
			b := s.bodies.Raw(nr.Ref())
			if seen[b.ID] {
				panic(fmt.Sprintf("core verify: body %d appears twice in the tree", b.ID))
			}
			seen[b.ID] = true
			if hasGeom && !octree.Contains(center, half, b.Pos) {
				panic(fmt.Sprintf("core verify: body %d at %+v outside its cell (%+v, %g)", b.ID, b.Pos, center, half))
			}
			c := b.Cost
			if c <= 0 {
				c = 1
			}
			return b.Mass, c, 1
		}
		cp := s.cells.Raw(nr.Ref())
		var mass, cost float64
		var n int32
		for oct := range cp.Sub {
			slot := cp.Sub[oct]
			if slot.IsNil() {
				continue
			}
			cc, ch := octree.ChildBounds(cp.Center, cp.Half, oct)
			m, c, k := walk(slot, true, cc, ch)
			mass += m
			cost += c
			n += k
		}
		if cp.Cost != cost {
			panic(fmt.Sprintf("core verify: cell %v cost %v != exact body-cost sum %v (level %v)",
				nr.Ref(), cp.Cost, cost, s.o.Level))
		}
		if cp.NSub != n {
			panic(fmt.Sprintf("core verify: cell %v NSub %d != body count %d", nr.Ref(), cp.NSub, n))
		}
		if mass > 0 && math.Abs(cp.Mass-mass) > 1e-9*mass {
			panic(fmt.Sprintf("core verify: cell %v mass %v != sum %v", nr.Ref(), cp.Mass, mass))
		}
		return mass, cost, n
	}
	_, _, n := walk(root, false, vec.V3{}, 0)
	if int(n) != s.o.Bodies {
		panic(fmt.Sprintf("core verify: tree holds %d bodies, want %d", n, s.o.Bodies))
	}
}
