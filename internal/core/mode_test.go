package core

import (
	"testing"
)

// runMode executes one configuration under the given backend.
func runMode(t *testing.T, mode ExecMode, n, threads int, level Level, steps, warmup int) *Result {
	t.Helper()
	opts := DefaultOptions(n, threads, level)
	opts.Steps, opts.Warmup = steps, warmup
	opts.ExecMode = mode
	sim, err := New(opts)
	if err != nil {
		t.Fatalf("New(%v, %v): %v", mode, level, err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run(%v, %v): %v", mode, level, err)
	}
	return res
}

// comparePhysics returns the worst relative position/velocity difference
// between two runs of the same configuration.
func comparePhysics(t *testing.T, a, b *Result) (worstPos, worstVel float64) {
	t.Helper()
	if len(a.Bodies) != len(b.Bodies) {
		t.Fatalf("body counts differ: %d vs %d", len(a.Bodies), len(b.Bodies))
	}
	for i := range a.Bodies {
		if a.Bodies[i].ID != b.Bodies[i].ID {
			t.Fatalf("body order mismatch at %d", i)
		}
		if e := a.Bodies[i].Pos.Sub(b.Bodies[i].Pos).Len() / (1 + b.Bodies[i].Pos.Len()); e > worstPos {
			worstPos = e
		}
		if e := a.Bodies[i].Vel.Sub(b.Bodies[i].Vel).Len() / (1 + b.Bodies[i].Vel.Len()); e > worstVel {
			worstVel = e
		}
	}
	return worstPos, worstVel
}

// TestModeEquivalence checks that the Native backend produces the same
// physics as the Simulate backend at a fixed seed: the timing policy is
// the only thing that changes, so positions and velocities must agree
// within FP-reordering tolerance (concurrent tree merges may reorder
// commutative center-of-mass sums in both modes).
func TestModeEquivalence(t *testing.T) {
	cases := []struct {
		level   Level
		n       int
		threads int
	}{
		{LevelBaseline, 512, 4},
		{LevelCacheTree, 1024, 4},
		{LevelMergedBuild, 1024, 4},
		{LevelAsync, 1024, 4},
		{LevelSubspace, 2048, 8},
	}
	for _, c := range cases {
		c := c
		t.Run(c.level.String(), func(t *testing.T) {
			sim := runMode(t, ModeSimulate, c.n, c.threads, c.level, 2, 1)
			nat := runMode(t, ModeNative, c.n, c.threads, c.level, 2, 1)
			if nat.ExecMode != ModeNative || sim.ExecMode != ModeSimulate {
				t.Fatalf("ExecMode not recorded: sim=%v native=%v", sim.ExecMode, nat.ExecMode)
			}
			worstPos, worstVel := comparePhysics(t, nat, sim)
			if worstPos > 1e-6 || worstVel > 1e-6 {
				t.Errorf("native physics diverges from simulate: pos %g vel %g", worstPos, worstVel)
			}
			if nat.Interactions == 0 {
				t.Error("native run recorded no interactions")
			}
		})
	}
}

// TestNativeSubspaceEndToEnd is the acceptance configuration: the
// LevelSubspace pipeline at n=16384 on 8 threads under the Native
// backend, with measured wall-clock phase times in the Result and
// physics matching the Simulate backend.
func TestNativeSubspaceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("large configuration")
	}
	const n, threads = 16384, 8
	nat := runMode(t, ModeNative, n, threads, LevelSubspace, 4, 2)
	if nat.ExecMode != ModeNative {
		t.Fatalf("ExecMode = %v", nat.ExecMode)
	}
	// Wall-clock phase times: the measured steps did real work, so the
	// dominant phases must have strictly positive measured durations and
	// every phase must be non-negative.
	if nat.Phases[PhaseForce] <= 0 || nat.Phases[PhaseTree] <= 0 {
		t.Errorf("expected positive wall-clock force/tree times, got %v", nat.Phases)
	}
	for p := Phase(0); p < NumPhases; p++ {
		if nat.Phases[p] < 0 {
			t.Errorf("negative wall-clock time for %v: %g", p, nat.Phases[p])
		}
	}
	// A native run of this size on any host completes the measured steps
	// in well under a minute; sanity-bound the measurement itself.
	if tot := nat.Total(); tot <= 0 || tot > 300 {
		t.Errorf("implausible wall-clock total %g", tot)
	}

	sim := runMode(t, ModeSimulate, n, threads, LevelSubspace, 4, 2)
	worstPos, worstVel := comparePhysics(t, nat, sim)
	if worstPos > 1e-6 || worstVel > 1e-6 {
		t.Errorf("native physics diverges from simulate: pos %g vel %g", worstPos, worstVel)
	}
}

// TestNativePhaseTimesAreWallClock: simulated baseline times at this size
// are hundreds of simulated seconds, while real execution takes well
// under a second — so if the Native backend accidentally charged
// simulated costs, the totals would be off by orders of magnitude.
func TestNativePhaseTimesAreWallClock(t *testing.T) {
	sim := runMode(t, ModeSimulate, 512, 4, LevelBaseline, 2, 1)
	nat := runMode(t, ModeNative, 512, 4, LevelBaseline, 2, 1)
	if nat.Total() >= sim.Total() {
		t.Errorf("native wall-clock total %g should be far below simulated total %g",
			nat.Total(), sim.Total())
	}
}
