package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"upcbh/internal/arena"
	"upcbh/internal/machine"
	"upcbh/internal/nbody"
	"upcbh/internal/octree"
	"upcbh/internal/upc"
	"upcbh/internal/vec"
)

// Lifecycle sentinel errors. Every lifecycle failure returned by Run,
// Step, Finish and Snapshot wraps one of these, so callers that drive a
// Sim on behalf of someone else (the bhserve session service) can map
// them with errors.Is — a finished or over-scheduled session is the
// caller's mistake (HTTP 409/400), not a server fault — without matching
// on message text.
var (
	// ErrFinished: the session has finished; no further Run/Step/Finish.
	ErrFinished = errors.New("session finished")
	// ErrReleased: the heap storage has been recycled; only Release
	// (a no-op) remains legal.
	ErrReleased = errors.New("session released")
	// ErrSchedule: a Step(k) would take the simulation past the
	// configured Options.Steps.
	ErrSchedule = errors.New("step exceeds the configured schedule")
	// ErrBadCheckpoint: Restore rejected the checkpoint container itself
	// (corrupt, truncated, mismatched, or carrying out-of-range state) —
	// the uploader's fault (HTTP 400), as opposed to a server-side
	// construction failure while rebuilding the simulation (500).
	ErrBadCheckpoint = errors.New("invalid checkpoint")
)

// rootGeom is the root-cell geometry (SPLASH2's rsize plus center); at
// LevelBaseline it lives in a UPC shared scalar on thread 0 and is read
// remotely by every insertion, which is the §5.1 pathology.
type rootGeom struct {
	Center vec.V3
	Half   float64
}

// remoteScratch is one step's migration worklist in redistribute: the
// myBodies positions holding remote refs and the refs themselves, in
// matching order.
type remoteScratch struct {
	idx  []int
	refs []upc.Ref
}

// simState is the lifecycle of a Sim (see the state machine in
// DESIGN.md §11):
//
//	simNew ──start──▶ simPaused ──Finish/Run──▶ simFinished ──Release──▶ simReleased
//
// simNew: configured, no threads launched; SetBodies is still legal.
// simPaused: a session is active and every thread is parked at a step
// boundary; Step, Snapshot, Run, Finish and Release are legal.
// simFinished: the threads have exited and the Result was collected;
// Snapshot remains legal (body state is still in the heaps).
// simReleased: heap storage recycled; only Release (a no-op) is legal.
type simState int

const (
	simNew simState = iota
	simPaused
	simFinished
	simReleased
)

// Sim is one configured Barnes-Hut simulation over the emulated UPC
// runtime. Create with New, then either execute to completion with Run,
// or drive it incrementally: Step(k) advances every thread k time-steps
// and pauses at the step boundary, Snapshot copies out the state of the
// paused simulation, Finish collects the Result, Release recycles the
// heap storage. Run is itself implemented as Step(all)+Finish, so the
// two styles are interchangeable — and byte-identical under the
// simulate backend (see upc.Session on scheduling transparency).
type Sim struct {
	o   Options
	rt  *upc.Runtime
	par machine.Params

	sess      *upc.Session
	state     simState
	stepsDone int

	bodies *upc.Heap[nbody.Body]
	cells  *upc.Heap[Cell]
	locks  *upc.LockArray

	// UPC shared scalars (affinity: thread 0).
	geomS *upc.Scalar[rootGeom]
	tolS  *upc.Scalar[float64]
	epsS  *upc.Scalar[float64]
	rootS *upc.Scalar[NodeRef]

	// flat is the shared native-backend snapshot state (see
	// flatnative.go); nil under ModeSimulate or DisableFlat.
	flat *flatState

	// mem backs the global flat snapshots' hot arrays with off-heap
	// (mmap) memory; tmem[i] backs thread i's local flat tree. Arenas
	// are single-owner bump allocators, so the global one is touched
	// only by thread 0 (the snapshot builder) and each tmem[i] only by
	// its thread. All nil under ModeSimulate/DisableFlat or when mmap
	// is unavailable — growth then falls back to the Go heap.
	mem  *arena.Arena
	tmem []*arena.Arena

	init []nbody.Body
	ts   []*tstate
}

// tstate is the thread-private state of one UPC thread (the "private
// area" of the UPC memory model).
type tstate struct {
	id int

	// step is this thread's time-step counter, advanced once per
	// granted session step. Threads never read each other's counters;
	// at a session pause they all agree.
	step int

	// mybodytab: global refs of the bodies this thread currently owns.
	myBodies []upc.Ref

	// §5.2 double buffer in the thread's local shared space.
	buf    [2]upc.Ref
	bufCap int
	cur    int
	curLen int

	// mycelltab: cells created this step, in creation order.
	myCells []upc.Ref

	// Replicated scalars (§5.1; populated at every level, consulted at
	// LevelScalars and above).
	tol, eps float64
	geom     rootGeom
	root     NodeRef

	// Cached local tree for force computation (§5.3+).
	lroot *lnode

	// §8 transparent software caches (Options.TransparentCache).
	cellCache *upc.Cache[Cell]
	bodyCache *upc.Cache[nbody.Body]
	scalars   scalarCache

	// Subspace scratch (§6).
	sub *subspaceState

	// Native flat-path scratch (flatnative.go), retained across steps:
	// the per-thread walker, the local-tree arena of the merged build,
	// the gathered owned-body slice it sorts, and the count of forceFlat
	// entries (the snapshot epoch this thread expects to acquire —
	// per-thread counters agree because every thread runs the same phase
	// sequence).
	fwalker   octree.FlatWalker
	lflat     octree.FlatTree
	lbodies   []nbody.Body
	flatEpoch uint64

	// Iterative-walk and redistribution scratch, retained across steps
	// so steady-state stepping allocates nothing. The migration scratch
	// is parity-indexed by step (stepParity): with the redistribute
	// barrier relaxed under the native flat path, step k's gather list
	// stays intact for the whole step it describes (and for test hooks
	// inspecting it) instead of being clobbered in place by step k+1.
	czstack    []NodeRef
	remote     [2]remoteScratch
	stepParity int
	bbLo, bbHi [3]float64

	// Local-tree arena and async-force object pools (force.go,
	// force_async.go), retained across steps: the §5.3+ local tree is
	// rebuilt every step, and per-lnode/per-request heap allocation
	// dominated the harness's GC load.
	lna     lnodeArena
	wbFree  []*wbody
	reqFree []*request

	// Counters (accumulated over measured steps).
	inter        uint64
	migrated     int
	ownedTot     int
	bufCopies    int
	cellsCopied  uint64
	cellsAliased uint64
	treeLocalT   float64
	treeMergeT   float64

	phases    PhaseTimes
	stepPh    []PhaseTimes
	phaseComm [NumPhases]upc.Stats // per-phase operation deltas (measured steps)
}

// New builds a simulation: generates the initial conditions from the
// configured scenario (Plummer by default) and sets up the runtime,
// heaps, locks and shared scalars.
func New(opts Options) (*Sim, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	init, err := nbody.GenerateScenario(opts.Scenario, opts.Bodies, opts.Seed)
	if err != nil {
		return nil, err
	}
	rt := upc.NewRuntimeMode(opts.Machine, opts.ExecMode)
	p := rt.Threads()
	perThread := opts.Bodies/p + 1
	bodyChunk := 16 * perThread // buffers must fit one chunk (LocalSlice)
	if bodyChunk < 4096 {
		bodyChunk = 4096
	}
	s := &Sim{
		o:      opts,
		rt:     rt,
		par:    opts.Machine.Par,
		bodies: upc.NewHeap[nbody.Body](rt, bodyChunk),
		cells:  upc.NewHeap[Cell](rt, 1<<14),
		locks:  rt.NewLockArray(2048),
		init:   init,
		ts:     make([]*tstate, p),
	}
	// Both heaps fully initialize every element before first read (cells
	// are whole-struct assigned at creation, bodies copied/gathered in),
	// so they can recycle chunk storage across simulations — the harness
	// builds one Sim per configuration, and per-Sim chunk zeroing was a
	// top allocation cost. See Release.
	s.bodies.SetRecycle()
	s.cells.SetRecycle()
	s.geomS = upc.NewScalar(rt, rootGeom{})
	s.tolS = upc.NewScalar(rt, opts.Theta)
	s.epsS = upc.NewScalar(rt, opts.Eps)
	s.rootS = upc.NewScalar(rt, NilNode)
	for i := range s.ts {
		s.ts[i] = &tstate{id: i}
	}
	if s.nativeFlat() {
		s.flat = &flatState{}
		// Arenas are sized from the body count with room for the
		// doubling-growth dead space; anonymous mappings commit pages
		// lazily, so over-reserving virtual space costs nothing. A
		// failed mmap leaves the arenas nil and growth on the Go heap.
		if a, err := arena.New(2048*opts.Bodies + 8<<20); err == nil {
			s.mem = a
			s.flat.bufs[0].ft.SetArena(a)
			s.flat.bufs[1].ft.SetArena(a)
		}
		s.tmem = make([]*arena.Arena, p)
		for i := range s.ts {
			if a, err := arena.New(1024*(opts.Bodies/p+1) + 1<<20); err == nil {
				s.tmem[i] = a
				s.ts[i].lflat.SetArena(a)
			}
		}
	}
	return s, nil
}

// SetBodies replaces the generated initial conditions. It must be
// called before the session starts (before the first Run, Step or
// Snapshot): setup copies the initial conditions into the shared heap,
// so a later replacement would silently not take effect — panic
// instead.
func (s *Sim) SetBodies(bodies []nbody.Body) {
	if s.state != simNew {
		panic("core: SetBodies after the session has started (call it before Run/Step/Snapshot)")
	}
	if len(bodies) < 2 {
		panic("core: SetBodies needs at least 2 bodies")
	}
	s.init = make([]nbody.Body, len(bodies))
	copy(s.init, bodies)
	for i := range s.init {
		s.init[i].ID = int32(i)
		if s.init[i].Cost <= 0 {
			s.init[i].Cost = 1
		}
	}
	s.o.Bodies = len(bodies)
}

// Options returns the configuration of the simulation.
func (s *Sim) Options() Options { return s.o }

// start launches the SPMD session: every thread runs setup and parks at
// its first step boundary. A setup-time thread panic propagates, as it
// did under the old run-to-completion Run.
func (s *Sim) start() {
	s.sess = s.rt.Start(s.threadMain)
	s.state = simPaused
}

// Run executes the remaining time-steps on all emulated threads and
// returns the collected result. On a fresh Sim that is the configured
// Options.Steps; on a partially-stepped Sim it completes the schedule.
// Run is Step(remaining)+Finish, so mixing the two styles is safe.
func (s *Sim) Run() (*Result, error) {
	switch s.state {
	case simFinished:
		return nil, fmt.Errorf("core: Run on a finished Sim: %w", ErrFinished)
	case simReleased:
		return nil, fmt.Errorf("core: Run on a released Sim: %w", ErrReleased)
	}
	if remaining := s.o.Steps - s.stepsDone; remaining > 0 {
		if err := s.Step(remaining); err != nil {
			return nil, err
		}
	}
	return s.Finish()
}

// Step advances the simulation k time-steps on every thread and pauses
// at the step boundary, starting the session if needed. While paused
// the runtime is quiescent: Snapshot (and any other read of simulation
// state) is safe. k must be positive and may not take the simulation
// past Options.Steps — the per-thread phase buffers are sized for
// exactly that many. A thread panic (runtime poison) propagates as a
// panic, exactly as under Run.
func (s *Sim) Step(k int) error {
	if k <= 0 {
		return fmt.Errorf("core: Step needs k > 0, got %d", k)
	}
	switch s.state {
	case simFinished:
		return fmt.Errorf("core: Step on a finished Sim: %w", ErrFinished)
	case simReleased:
		return fmt.Errorf("core: Step on a released Sim: %w", ErrReleased)
	}
	if s.stepsDone+k > s.o.Steps {
		return fmt.Errorf("core: Step(%d) would exceed the configured %d steps (%d already done): %w",
			k, s.o.Steps, s.stepsDone, ErrSchedule)
	}
	if s.state == simNew {
		s.start()
	}
	s.sess.Resume(k)
	s.stepsDone += k
	return nil
}

// StepsDone returns the number of time-steps completed so far.
func (s *Sim) StepsDone() int { return s.stepsDone }

// Finish ends the session — every thread falls out of its step loop and
// exits — and collects the Result from however many steps have run
// (finishing before Options.Steps is legal; the Result then covers the
// measured steps completed so far). Finish does not release heap
// storage: Snapshot stays legal until Release.
func (s *Sim) Finish() (*Result, error) {
	switch s.state {
	case simNew:
		s.start()
	case simPaused:
	case simFinished:
		return nil, fmt.Errorf("core: Finish on a finished Sim: %w", ErrFinished)
	case simReleased:
		return nil, fmt.Errorf("core: Finish on a released Sim: %w", ErrReleased)
	}
	s.sess.Finish()
	s.state = simFinished
	return s.collect()
}

// Release returns the simulation's heap storage to the process-wide
// recycling pools. Call it after the last use of the Sim; collected
// Results and Snapshots are unaffected (they copy all body state out).
// Release is idempotent — a second call is a no-op, not a double return
// of the same chunks to the pools — and it terminates a still-paused
// session first, so a stepped Sim can be abandoned without Finish.
func (s *Sim) Release() {
	switch s.state {
	case simReleased:
		return
	case simPaused:
		s.sess.Finish()
	}
	s.state = simReleased
	s.bodies.Release()
	s.cells.Release()
	// Unmap the flat-tree arenas after the threads have exited; any
	// slice into them (snapshot buffers, local trees) is dead now.
	s.mem.Close()
	for _, a := range s.tmem {
		a.Close()
	}
}

// beginPhase/endPhase bracket one phase: wall/simulated time and the
// operation-counter delta, then the phase barrier. They are plain
// methods (not closures) so the steady-state step loop allocates
// nothing; the measurement sequence is identical to the pre-refactor
// closure (time read before the counter delta, barrier last), which the
// simulate goldens pin.
func (s *Sim) beginPhase(t *upc.Thread) (float64, upc.Stats) {
	return t.Now(), t.Stats()
}

func (s *Sim) endPhase(t *upc.Thread, st *tstate, ph *PhaseTimes, p Phase, t0 float64, s0 upc.Stats, measured bool) {
	ph[p] += t.Now() - t0
	if measured {
		st.phaseComm[p].Add(t.Stats().Delta(s0))
	}
	t.Barrier()
}

// endPhaseFlow is endPhase without the closing barrier: the phase's time
// and operation delta are recorded, but the thread flows straight into
// the next phase. Used at phase boundaries whose ordering is enforced by
// something cheaper than a full rendezvous — under the native flat path,
// the redistribute→force boundary is ordered by the RCU snapshot
// acquisition instead (see relaxedSync).
func (s *Sim) endPhaseFlow(t *upc.Thread, st *tstate, ph *PhaseTimes, p Phase, t0 float64, s0 upc.Stats, measured bool) {
	ph[p] += t.Now() - t0
	if measured {
		st.phaseComm[p].Add(t.Stats().Delta(s0))
	}
}

// relaxedSync reports whether the redistribute phase may end without a
// barrier. This requires the native flat force path: forceFlat's
// epoch-acquired snapshot (built by thread 0 from tree state that the
// kept partition barrier already ordered) replaces the rendezvous.
// Redistribute's writes land only in slots the snapshot never
// references — gather destinations beyond each shard's build-time
// length and the idle compaction buffer — so the flatten pass and early
// force walkers race with nothing. The simulate backend never takes
// this path: its charged phase tables (pinned by the goldens) keep the
// barrier.
func (s *Sim) relaxedSync() bool {
	return s.nativeFlat() && s.o.Level >= LevelCacheTree
}

// endPhaseRedist closes the redistribute phase with or without its
// barrier, per relaxedSync.
func (s *Sim) endPhaseRedist(t *upc.Thread, st *tstate, ph *PhaseTimes, t0 float64, s0 upc.Stats, measured bool) {
	if s.relaxedSync() {
		s.endPhaseFlow(t, st, ph, PhaseRedist, t0, s0, measured)
	} else {
		s.endPhase(t, st, ph, PhaseRedist, t0, s0, measured)
	}
}

// threadMain is the SPMD session body: per-thread setup, then one
// stepOnce per granted step. The NextStep gate sits between step k's
// trailing bookkeeping (stats record, test hook) and step k+1's shared
// tree reset — both thread-local, so parking there perturbs no
// cross-thread coupling and the stepped schedule is the uninterrupted
// one (see upc.Session).
func (s *Sim) threadMain(t *upc.Thread) {
	st := s.ts[t.ID()]
	s.setup(t, st)
	t.Barrier()
	for t.NextStep() {
		s.stepOnce(t, st, st.step)
		st.step++
	}
}

// stepOnce runs one full time-step on one thread: tree build,
// partition, redistribution, force and advance, with per-phase timing.
func (s *Sim) stepOnce(t *upc.Thread, st *tstate, step int) {
	measured := step >= s.o.Warmup
	var ph PhaseTimes

	// Per-step reset of the shared tree storage.
	s.cells.Reset(t)
	st.myCells = st.myCells[:0]
	st.stepParity = step & 1
	t.Barrier()

	switch {
	case s.o.Level >= LevelSubspace:
		s.stepSubspace(t, st, &ph, measured)
	case s.o.Level >= LevelMergedBuild:
		t0, s0 := s.beginPhase(t)
		s.buildMerged(t, st, measured)
		s.endPhase(t, st, &ph, PhaseTree, t0, s0, measured)
		t0, s0 = s.beginPhase(t)
		s.costzones(t, st)
		s.endPhase(t, st, &ph, PhasePartition, t0, s0, measured)
		t0, s0 = s.beginPhase(t)
		s.redistribute(t, st, measured)
		s.endPhaseRedist(t, st, &ph, t0, s0, measured)
	default:
		t0, s0 := s.beginPhase(t)
		s.buildGlobal(t, st)
		s.endPhase(t, st, &ph, PhaseTree, t0, s0, measured)
		t0, s0 = s.beginPhase(t)
		s.cofmGlobal(t, st)
		s.endPhase(t, st, &ph, PhaseCofM, t0, s0, measured)
		t0, s0 = s.beginPhase(t)
		s.costzones(t, st)
		s.endPhase(t, st, &ph, PhasePartition, t0, s0, measured)
		if s.o.Level >= LevelRedistribute {
			t0, s0 = s.beginPhase(t)
			s.redistribute(t, st, measured)
			s.endPhaseRedist(t, st, &ph, t0, s0, measured)
		}
	}

	if s.o.Verify {
		if t.ID() == 0 {
			s.verifyTree(t, st)
		}
		t.Barrier()
	}

	t0, s0 := s.beginPhase(t)
	s.force(t, st, measured)
	s.endPhase(t, st, &ph, PhaseForce, t0, s0, measured)
	t0, s0 = s.beginPhase(t)
	s.advance(t, st)
	s.endPhase(t, st, &ph, PhaseAdvance, t0, s0, measured)

	if measured {
		st.phases.Add(ph)
		st.stepPh = append(st.stepPh, ph)
	}
	if s.o.testStepHook != nil {
		s.o.testStepHook(t, step)
	}
}

// setup distributes bodies block-wise (the baseline bodytab layout),
// allocates the §5.2 double buffers, and replicates scalar parameters
// ("let every thread parse user's input", §5.1). Setup is outside the
// measured steps.
func (s *Sim) setup(t *upc.Thread, st *tstate) {
	me, p, n := t.ID(), t.P(), s.o.Bodies
	lo, hi := me*n/p, (me+1)*n/p
	cnt := hi - lo

	capacity := cnt
	if s.o.Level >= LevelRedistribute {
		capacity = 4 * (n/p + 1)
		if capacity < 256 {
			capacity = 256
		}
		if s.o.testBufferCap > 0 {
			capacity = s.o.testBufferCap
			if capacity < cnt {
				capacity = cnt
			}
		}
	}
	if capacity < 1 {
		capacity = 1
	}
	st.bufCap = capacity
	st.buf[0] = s.bodies.Alloc(t, capacity)
	if s.o.Level >= LevelRedistribute {
		st.buf[1] = s.bodies.Alloc(t, capacity)
	}
	dst := s.bodies.LocalSlice(t, st.buf[0], cnt)
	copy(dst, s.init[lo:hi])
	st.cur = 0
	st.curLen = cnt
	st.myBodies = st.myBodies[:0]
	for i := 0; i < cnt; i++ {
		st.myBodies = append(st.myBodies, upc.Ref{Thr: int32(me), Idx: st.buf[0].Idx + int32(i)})
	}

	st.tol = s.o.Theta
	st.eps = s.o.Eps
	if st.stepPh == nil {
		st.stepPh = make([]PhaseTimes, 0, s.o.Steps-s.o.Warmup)
	}
	if me == 0 {
		s.tolS.Write(t, s.o.Theta)
		s.epsS.Write(t, s.o.Eps)
	}
	if s.o.Level >= LevelSubspace {
		st.sub = newSubspaceState()
	}
	if s.o.TransparentCache {
		st.cellCache = upc.NewCache(t, s.cells, 4096)
		st.bodyCache = upc.NewCache(t, s.bodies, 4096)
	}
}

// scalarCache is the runtime cache for UPC shared scalars (MuPC supports
// exactly this, §8): one value per scalar, invalidated at barriers.
type scalarCache struct {
	gen                uint64
	tol, eps           float64
	geom               rootGeom
	root               NodeRef
	okT, okE, okG, okR bool
}

func (sc *scalarCache) epoch(t *upc.Thread) *scalarCache {
	if g := t.BarrierCount(); g != sc.gen {
		*sc = scalarCache{gen: g}
	}
	return sc
}

const scalarHitCost = 10e-9

func (s *Sim) cachedScalarF(t *upc.Thread, st *tstate, sc *upc.Scalar[float64], val *float64, ok *bool) float64 {
	if !*ok {
		*val = sc.Read(t)
		*ok = true
	} else {
		t.ChargeRaw(scalarHitCost)
	}
	return *val
}

// --- level-dependent parameter access -----------------------------------

func (s *Sim) replicated() bool { return s.o.Level >= LevelScalars }

func (s *Sim) readTol(t *upc.Thread, st *tstate) float64 {
	if s.replicated() {
		return st.tol
	}
	if s.o.TransparentCache {
		sc := st.scalars.epoch(t)
		return s.cachedScalarF(t, st, s.tolS, &sc.tol, &sc.okT)
	}
	return s.tolS.Read(t)
}

func (s *Sim) readEps(t *upc.Thread, st *tstate) float64 {
	if s.replicated() {
		return st.eps
	}
	if s.o.TransparentCache {
		sc := st.scalars.epoch(t)
		return s.cachedScalarF(t, st, s.epsS, &sc.eps, &sc.okE)
	}
	return s.epsS.Read(t)
}

func (s *Sim) readGeom(t *upc.Thread, st *tstate) rootGeom {
	if s.replicated() {
		return st.geom
	}
	if s.o.TransparentCache {
		sc := st.scalars.epoch(t)
		if !sc.okG {
			sc.geom = s.geomS.Read(t)
			sc.okG = true
		} else {
			t.ChargeRaw(scalarHitCost)
		}
		return sc.geom
	}
	return s.geomS.Read(t)
}

func (s *Sim) readRoot(t *upc.Thread, st *tstate) NodeRef {
	if s.replicated() {
		return st.root
	}
	if s.o.TransparentCache {
		sc := st.scalars.epoch(t)
		if !sc.okR {
			sc.root = s.rootS.Read(t)
			sc.okR = true
		} else {
			t.ChargeRaw(scalarHitCost)
		}
		return sc.root
	}
	return s.rootS.Read(t)
}

// bodyPos reads a body's position: through the shared pointer (charged)
// below LevelRedistribute; through a cast local pointer at and above it
// when the body is local.
func (s *Sim) bodyPos(t *upc.Thread, st *tstate, r upc.Ref) vec.V3 {
	if s.o.Level >= LevelRedistribute && s.bodies.IsLocal(t, r) {
		return s.bodies.Local(t, r).Pos
	}
	return s.bodies.ReadView(t, r, bytesBodyPos).Pos
}

// newCell allocates and initializes a cell in the caller's shard.
func (s *Sim) newCell(t *upc.Thread, st *tstate, center vec.V3, half float64) upc.Ref {
	r := s.cells.Alloc(t, 1)
	t.Charge(s.par.CellInitCost)
	c := s.cells.Raw(r)
	*c = Cell{Center: center, Half: half}
	st.myCells = append(st.myCells, r)
	return r
}

// boundingBox computes the new root geometry: a local pass over owned
// bodies and two vector reductions. At LevelBaseline thread 0 publishes
// it to the shared scalar; above, every thread keeps the replicated copy.
func (s *Sim) boundingBox(t *upc.Thread, st *tstate) rootGeom {
	lo := vec.V3{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi := lo.Scale(-1)
	for _, br := range st.myBodies {
		pos := s.bodyPos(t, st, br)
		lo = lo.Min(pos)
		hi = hi.Max(pos)
		t.Charge(s.par.LocalDerefCost)
	}
	st.bbLo = [3]float64{lo.X, lo.Y, lo.Z}
	st.bbHi = [3]float64{hi.X, hi.Y, hi.Z}
	mins := upc.AllReduceVecF64(t, st.bbLo[:], upc.OpMin)
	maxs := upc.AllReduceVecF64(t, st.bbHi[:], upc.OpMax)
	center, half := nbody.RootCell(
		vec.V3{X: mins[0], Y: mins[1], Z: mins[2]},
		vec.V3{X: maxs[0], Y: maxs[1], Z: maxs[2]})
	g := rootGeom{Center: center, Half: half}
	st.geom = g
	if !s.replicated() {
		if t.ID() == 0 {
			s.geomS.Write(t, g)
		}
		t.Barrier()
	}
	return g
}

// collect assembles the Result after the SPMD run. nsteps is derived
// from the steps actually executed, not Options.Steps: a session
// finished early yields a Result over the measured steps it completed.
func (s *Sim) collect() (*Result, error) {
	p := s.rt.Threads()
	nsteps := s.stepsDone - s.o.Warmup
	if nsteps < 0 {
		nsteps = 0
	}
	res := &Result{
		Level:      s.o.Level,
		Threads:    p,
		ExecMode:   s.o.ExecMode,
		StepPhases: make([]PhaseTimes, nsteps),
		PerThread:  make([]ThreadBreakdown, p),
	}
	for i, st := range s.ts {
		if len(st.stepPh) != nsteps {
			return nil, fmt.Errorf("core: thread %d recorded %d measured steps, want %d", i, len(st.stepPh), nsteps)
		}
		for k, ph := range st.stepPh {
			res.StepPhases[k].MaxInto(ph)
		}
		res.PerThread[i] = ThreadBreakdown{
			Phases:       st.phases,
			TreeLocal:    st.treeLocalT,
			TreeMerge:    st.treeMergeT,
			Interactions: st.inter,
		}
		res.Interactions += st.inter
		res.BufferCopies += st.bufCopies
		res.CellsCopied += st.cellsCopied
		res.CellsAliased += st.cellsAliased
		for p := range st.phaseComm {
			res.PhaseComm[p].Add(st.phaseComm[p])
		}
	}
	for _, ph := range res.StepPhases {
		res.Phases.Add(ph)
	}
	var migrated, owned int
	for _, st := range s.ts {
		migrated += st.migrated
		owned += st.ownedTot
	}
	if owned > 0 {
		res.MigratedFraction = float64(migrated) / float64(owned)
	}
	res.Stats = s.rt.TotalStats()
	res.Sched = s.rt.SchedStats()

	// Final body state in ID order.
	bodies, err := s.gatherBodies()
	if err != nil {
		return nil, err
	}
	res.Bodies = bodies
	return res, nil
}

// gatherBodies copies the current body state out of the shared heaps in
// ID order, validating that thread ownership covers every body exactly
// once. Shared by collect and Snapshot; only safe while the runtime is
// quiescent (session paused or finished).
func (s *Sim) gatherBodies() ([]nbody.Body, error) {
	out := make([]nbody.Body, 0, s.o.Bodies)
	for _, st := range s.ts {
		for _, br := range st.myBodies {
			out = append(out, *s.bodies.Raw(br))
		}
	}
	if len(out) != s.o.Bodies {
		return nil, fmt.Errorf("core: ownership covers %d bodies, want %d", len(out), s.o.Bodies)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	for i := 1; i < len(out); i++ {
		if out[i].ID == out[i-1].ID {
			return nil, fmt.Errorf("core: body %d owned by two threads", out[i].ID)
		}
	}
	return out, nil
}
