package core

import (
	"runtime"
	"sync/atomic"

	"upcbh/internal/arena"
	"upcbh/internal/octree"
	"upcbh/internal/upc"
)

// This file is the native-backend fast path: under ModeNative the
// emulated PGAS heaps are ordinary host memory, so the hot phases can
// run on the flat, arena-backed octree representation (internal/octree
// FlatTree) instead of chasing NodeRef slots cell by cell:
//
//   - tree build (merged levels): each thread Morton-sorts its owned
//     bodies and builds its local tree in a flat arena, then emits the
//     cells into its heap shard in one DFS pass (buildLocalFlat);
//   - force computation (LevelCacheTree and above): thread 0 snapshots
//     the fully built global tree into a double-buffered flat arena once
//     per step and publishes it RCU-style through an epoch-tagged atomic
//     pointer (no barrier), and every thread walks it with the batched
//     explicit-stack kernel (forceFlat) — the logical conclusion of the
//     paper's §5.3 local-tree caching on a real shared-memory host. See
//     DESIGN.md §10 for the happens-before argument.
//
// The simulate backend never takes these paths, so its charged phase
// tables stay byte-identical (pinned by the goldens). Physics is
// preserved exactly: the flat local trees are node-for-node and
// bit-for-bit the trees insertLocalTree+cofmLocalTree would build, and
// the snapshot kernel interacts with the same nodes in the same DFS
// order as the pointer walk of forceCached, including its self-skip
// semantics (a body whose tree leaf was re-owned and re-gathered this
// step interacts with its stale copy in both paths). Options.DisableFlat
// switches the paths off for differential testing.

// nativeFlat reports whether the flat-tree fast paths are active.
func (s *Sim) nativeFlat() bool {
	return s.o.ExecMode == ModeNative && !s.o.DisableFlat
}

// flatSnap is one published flat snapshot of the global tree plus the
// ref->leaf index used to reproduce the pointer walk's self-skip. Two of
// these live in flatState; their arenas are retained across steps and
// each is rebuilt in place every other step.
type flatSnap struct {
	// epoch tags which forceFlat entry built this snapshot. Written by
	// thread 0 strictly before the release-store that publishes the
	// snapshot, so a reader that observes its expected epoch through
	// flatState.cur also observes every arena write of the build.
	epoch uint64

	ft octree.FlatTree
	// leafIdx maps a bodies-heap ref (shard, index) to 1+its SoA slot in
	// ft; 0 means the ref is not a leaf of the snapshot. Cleared and
	// refilled per step (zeroing is a memclr, hence the +1 encoding).
	leafIdx [][]int32
}

// skipFor returns the snapshot SoA slot holding ref, or -1 — exactly the
// nodes the pointer walk would skip by bodyRef equality. Refs past the
// end of a shard's index (bodies gathered into fresh slots after the
// snapshot was taken) are never snapshot leaves, hence -1.
func (sn *flatSnap) skipFor(r upc.Ref) int32 {
	shard := sn.leafIdx[r.Thr]
	if int(r.Idx) >= len(shard) {
		return -1
	}
	return shard[r.Idx] - 1
}

// flatState is the per-Sim RCU publication point of the flat snapshot.
// Thread 0 builds each step's snapshot into the parity buffer
// bufs[epoch&1] and publishes it with a single atomic pointer swap; the
// other threads acquire it by epoch instead of rendezvousing at a
// barrier. Double buffering makes publication of step k+1 independent of
// any reader of step k: the builder only ever reuses the arena whose
// readers are two force barriers in the past.
type flatState struct {
	cur  atomic.Pointer[flatSnap]
	bufs [2]flatSnap
}

// acquire spins (yielding) until the snapshot for the given epoch is
// published and returns it. The force phase still ends at a barrier, so
// publication can never lap a reader by a full cycle; an epoch from the
// future means phase structure diverged across threads, which is a bug
// worth crashing on.
func (fs *flatState) acquire(epoch uint64) *flatSnap {
	for {
		sn := fs.cur.Load()
		if sn != nil {
			if sn.epoch == epoch {
				return sn
			}
			if sn.epoch > epoch {
				panic("core: flat snapshot epoch overrun (reader lapped by publisher)")
			}
		}
		runtime.Gosched()
	}
}

// flattenGlobal rebuilds one snapshot buffer from the global tree: DFS
// preorder over the cells heap (uncharged Raw access — the build phase
// is complete and ordered before the force phase by the partition
// barrier and the acquire of the published pointer), children in octant
// order, aggregate values copied verbatim. Bodies are packed into the
// SoA/PM views in DFS leaf order with their heap refs indexed for
// self-skip. The tree leaves reference body slots as of build time;
// a concurrent redistribute on another thread only writes slots beyond
// its shard's snapshot range (gather appends) or in its idle alternate
// buffer (compaction), so every slot this pass reads is frozen.
func (s *Sim) flattenGlobal(t *upc.Thread, st *tstate, sn *flatSnap) {
	ft := &sn.ft
	ft.Nodes = ft.Nodes[:0]
	ft.Meta = ft.Meta[:0]
	ft.Kids = ft.Kids[:0]
	ft.Bodies.Resize(0)
	ft.PM = ft.PM[:0]

	if sn.leafIdx == nil {
		sn.leafIdx = make([][]int32, t.P())
	}
	for thr := range sn.leafIdx {
		n := s.bodies.Len(thr)
		if cap(sn.leafIdx[thr]) < n {
			sn.leafIdx[thr] = arena.MakeSlice[int32](s.mem, n, n)
		}
		shard := sn.leafIdx[thr][:n]
		for i := range shard {
			shard[i] = 0
		}
		sn.leafIdx[thr] = shard
	}

	root := s.readRoot(t, st)
	ft.Center = s.cells.Raw(root.Ref()).Center
	ft.Half = s.cells.Raw(root.Ref()).Half
	s.flattenCell(sn, root.Ref())
}

func (s *Sim) flattenCell(sn *flatSnap, r upc.Ref) int32 {
	ft := &sn.ft
	c := s.cells.Raw(r)
	idx := int32(len(ft.Nodes))
	l := 2 * c.Half
	// Growth goes through the Sim's snapshot arena (thread 0 is the
	// only builder); at steady state these appends stay in place.
	ft.Nodes = arena.Append(s.mem, ft.Nodes, octree.FlatNode{CofM: c.CofM, Mass: c.Mass, LSq: l * l})
	ft.Meta = arena.Append(s.mem, ft.Meta, octree.FlatMeta{Center: c.Center, Half: c.Half, Cost: c.Cost, N: c.NSub})

	first := int32(len(ft.Kids))
	nkids := int32(0)
	for oct := range c.Sub {
		if !c.Sub[oct].IsNil() {
			nkids++
		}
	}
	for k := int32(0); k < nkids; k++ {
		ft.Kids = arena.Append(s.mem, ft.Kids, 0)
	}
	ft.Nodes[idx].First = first
	ft.Nodes[idx].Count = nkids

	ki := first
	for oct := range c.Sub {
		slot := c.Sub[oct]
		if slot.IsNil() {
			continue
		}
		if slot.IsBody() {
			br := slot.Ref()
			b := s.bodies.Raw(br)
			bi := int32(ft.Bodies.Len())
			ft.Bodies.Resize(int(bi) + 1)
			ft.Bodies.Set(int(bi), b.Pos, b.Mass, b.Cost, b.ID)
			ft.PM = arena.Append(s.mem, ft.PM, octree.PosMass{Pos: b.Pos, Mass: b.Mass})
			sn.leafIdx[br.Thr][br.Idx] = bi + 1
			ft.Kids[ki] = octree.FlatLeaf(bi)
		} else {
			ft.Kids[ki] = s.flattenCell(sn, slot.Ref())
		}
		ki++
	}
	return idx
}

// forceFlat is the native force phase for LevelCacheTree and above:
// thread 0 snapshots the tree into the current parity buffer and
// publishes it with an atomic pointer swap; every thread (thread 0
// included) acquires the snapshot by epoch and walks batches of
// FlatBatchWidth owned bodies through the shared flat kernel. There is
// no entry barrier: a thread that reaches the force phase early spins
// only until publication, not until the slowest thread's redistribute,
// and thread 0 starts flattening without waiting for anyone. Zero
// allocations in steady state — both snapshot buffers' arenas, the leaf
// indexes, and each thread's walker scratch are all retained across
// steps.
func (s *Sim) forceFlat(t *upc.Thread, st *tstate, measured bool) {
	st.flatEpoch++
	if t.ID() == 0 {
		sn := &s.flat.bufs[st.flatEpoch&1]
		s.flattenGlobal(t, st, sn)
		sn.epoch = st.flatEpoch
		s.flat.cur.Store(sn)
	}
	sn := s.flat.acquire(st.flatEpoch)

	ft := &sn.ft
	tol, eps := st.tol, st.eps // replicated at LevelScalars and above
	var fb octree.FlatBatch
	mb := st.myBodies
	for base := 0; base < len(mb); base += octree.FlatBatchWidth {
		w := octree.FlatBatchWidth
		if len(mb)-base < w {
			w = len(mb) - base
		}
		fb.N = w
		for lane := 0; lane < w; lane++ {
			br := mb[base+lane]
			fb.Pos[lane] = s.bodies.Local(t, br).Pos
			fb.Skip[lane] = sn.skipFor(br)
		}
		st.fwalker.ForceBatch(ft, &fb, tol, eps)
		for lane := 0; lane < w; lane++ {
			b := s.bodies.Local(t, mb[base+lane])
			b.Acc = fb.Acc[lane]
			b.Phi = fb.Phi[lane]
			b.Cost = float64(fb.Inter[lane])
			if measured {
				st.inter += uint64(fb.Inter[lane])
			}
		}
	}
}

// buildLocalFlat is the native local-tree construction of the merged
// build (§5.4): gather the owned bodies into a scratch slice (costs
// clamped exactly as cofmLocalTree clamps them), Morton-sort and build
// the flat arena tree, then emit the cells into this thread's heap shard
// in one DFS pass — contiguous, cache-ordered, and bit-identical in
// structure and aggregates to what insertLocalTree+cofmLocalTree
// produce. Returns the local root's heap ref for the merge.
func (s *Sim) buildLocalFlat(t *upc.Thread, st *tstate, g rootGeom) upc.Ref {
	bs := st.lbodies[:0]
	for _, br := range st.myBodies {
		b := *s.bodies.Local(t, br)
		if b.Cost <= 0 {
			b.Cost = 1
		}
		bs = append(bs, b)
	}
	st.lbodies = bs

	ft := &st.lflat
	ft.RebuildWithRoot(bs, g.Center, g.Half)

	me := int32(t.ID())
	base := s.cells.Alloc(t, len(ft.Nodes))
	for i := range ft.Nodes {
		nd := &ft.Nodes[i]
		mt := &ft.Meta[i]
		ref := upc.Ref{Thr: me, Idx: base.Idx + int32(i)}
		cp := s.cells.Raw(ref)
		*cp = Cell{
			CofM: nd.CofM, Mass: nd.Mass, Half: mt.Half,
			Cost: mt.Cost, NSub: mt.N, Done: 1,
			Center: mt.Center,
		}
		for k := nd.First; k < nd.First+nd.Count; k++ {
			c := ft.Kids[k]
			oct := ft.KidOctant(int32(i), c)
			if c < 0 {
				// ft.Bodies.ID indexes st.lbodies, which parallels
				// st.myBodies.
				br := st.myBodies[ft.Bodies.ID[octree.FlatLeafBody(c)]]
				cp.Sub[oct] = BodyRef(br)
			} else {
				cp.Sub[oct] = CellRef(upc.Ref{Thr: me, Idx: base.Idx + c})
			}
		}
		st.myCells = append(st.myCells, ref)
	}
	return base
}
