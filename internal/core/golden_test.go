package core

import (
	"math"
	"testing"
)

// simulateGolden1T holds the per-phase simulated times of the
// single-thread n=2048 configuration (DefaultOptions: 4 steps, 2
// measured) for every optimization level, captured from the pre-refactor
// tree (before the CostModel/ExecMode seam was extracted). Single-thread
// runs are fully deterministic — no lock, NIC, or merge races — so the
// Simulate backend must reproduce them essentially exactly; any drift
// means the refactor changed the cost model, not just its packaging.
//
// Regenerate with `go run ./internal/core/goldengen` after an
// intentional cost-model change.
var simulateGolden1T = map[string]PhaseTimes{
	"baseline":     {0.016181087999543597, 0.00099039999999339656, 0.0005034559999088084, 0, 0.35947125993326862, 0.00063487999977951404},
	"scalars":      {0.016009311999482856, 0.00099039999982231119, 0.00050337599996508331, 0, 0.30037277996437545, 0.00063487999977951404},
	"redistribute": {0.015694871999648363, 0.00099039999982231119, 0.00050337599996508331, 0, 0.30004509996454787, 0.00030719999995199032},
	"cache":        {0.015694871999648363, 0.00099039999982231119, 0.00050337599996508331, 0, 0.25857483198684655, 0.00030719999995199032},
	"merged":       {0.0050991839998797417, 0, 0.00050337599996508331, 0, 0.2585748319868435, 0.00030719999995199032},
	"async":        {0.0050991839998797417, 0, 0.00050337599996508331, 0, 0.25843982798696341, 0.00030719999995199032},
	"subspace":     {0.0056788959999595212, 0, 4.1120001119665517e-06, 0.00015449600000005947, 0.25843982798696546, 0.00030719999995199032},
}

// simulateGolden4T holds one pre-refactor sample of the 4-thread n=2048
// configuration. Multi-thread simulated times are not run-to-run
// deterministic (goroutine scheduling reorders lock acquisitions and NIC
// reservations, which is part of what the model simulates), so these are
// checked with a generous tolerance: they catch structural regressions —
// a phase losing its charges entirely, or costs changing by integer
// factors — not scheduling noise.
var simulateGolden4T = map[string]PhaseTimes{
	"baseline":     {0.7982555211646698, 0.087730104020998567, 0.087363609025842948, 0, 49.498845671753514, 0.16626567307145024},
	"scalars":      {0.63234063703247401, 0.088497108005896052, 0.086924675994925593, 0, 19.544972014477946, 0.16637548702847482},
	"redistribute": {0.38270341696052412, 0.0060677439969616387, 0.0052585999976564324, 6.9076000002610272e-05, 18.212465192487507, 7.777500090710987e-05},
	"cache":        {0.38270341699661814, 0.006067743999750741, 0.0052586000000616195, 6.9076000000167781e-05, 0.40576458006634386, 7.7774999987845206e-05},
	"merged":       {0.038842869000307201, 0, 0.0057515149998793591, 6.7367999999956574e-05, 0.41208342802714437, 7.7774999987845206e-05},
	"async":        {0.037719153000309036, 0, 0.0054038229999012755, 6.8703999999919496e-05, 0.26057820598761716, 7.777499998784520e-05},
	"subspace":     {0.0036927979999637484, 0, 1.547000042123603e-06, 0.00010980000000004875, 0.26017232798723317, 0.00011519999998199637},
}

// simulateGoldenFlat1T extends golden coverage across the flat-tree
// refactor: per-phase simulated times for the single-thread n=1024
// configuration, per scenario, captured from the tree immediately BEFORE
// the arena/Morton flat octree landed. The flat representation is a
// native-backend execution detail, so the Simulate backend's phase
// tables must stay byte-identical across that refactor; this second,
// scenario-bearing pin catches a cost-model change the n=2048 plummer
// tables could miss (e.g. a charge keyed off tree shape).
//
// Regenerate with `go run ./internal/core/goldengen -n 1024 [-scenario s]`.
var simulateGoldenFlat1T = map[string]map[string]PhaseTimes{
	"plummer": {
		"baseline":     {0.0081315640000510225, 0.00049951999999703345, 0.00025628800001165075, 0, 0.13663619999875068, 0.00031743999994660044},
		"scalars":      {0.008047068000052629, 0.00049951999999703345, 0.00025620800001163735, 0, 0.11455092000571931, 0.00031744000000344386},
		"redistribute": {0.0078901080000328416, 0.00049951999999703345, 0.00025620800001163735, 0, 0.11438708000569187, 0.00015359999997599516},
		"cache":        {0.0078901080000538526, 0.0004995200000189326, 0.00025620800001933952, 0, 0.097669972002246877, 0.00015359999997599516},
		"merged":       {0.0026008959999930387, 0, 0.00025620800001933952, 0, 0.097669972001921887, 0.00015359999997599516},
		"async":        {0.0026008959999930387, 0, 0.00025620800001933952, 0, 0.097602288001897852, 0.00015359999997599516},
		"subspace":     {0.0029327999999905485, 0, 2.0639999989136015e-06, 0.00010124799999999823, 0.097602288001910759, 0.00015359999997599516},
	},
	"clustered": {
		"baseline":     {0.0081026040000882621, 0.0005124800000190638, 0.00026924800001948412, 0, 0.076565520004340026, 0.00031744000000344386},
		"scalars":      {0.0080205080001111845, 0.00051248000004140704, 0.00026916800002761698, 0, 0.064391040001862312, 0.00031744000001765471},
		"redistribute": {0.007863468000084875, 0.00051248000004140704, 0.00026916800002761698, 0, 0.064227200001808246, 0.00015359999999020602},
		"cache":        {0.007863468000084875, 0.00051248000004140704, 0.00026916800002761698, 0, 0.054581689999479627, 0.00015359999999020602},
		"merged":       {0.0025192960000377934, 0, 0.00026916800001259428, 0, 0.054581689999509506, 0.00015360000000441687},
		"async":        {0.0025192960000377934, 0, 0.00026916800001259428, 0, 0.054513843999493009, 0.00015360000000441687},
		"subspace":     {0.0028512000000424295, 0, 2.0639999989136015e-06, 0.00010124800000000517, 0.054513843999487888, 0.00015360000000441687},
	},
}

// TestSimulateGoldenFlatRefactor pins the Simulate backend to the exact
// pre-flat-tree phase tables: the flat octree must change native-mode
// execution only.
func TestSimulateGoldenFlatRefactor(t *testing.T) {
	for scenario, perLevel := range simulateGoldenFlat1T {
		for level := LevelBaseline; level < NumLevels; level++ {
			scenario, level := scenario, level
			t.Run(scenario+"/"+level.String(), func(t *testing.T) {
				want, ok := perLevel[level.String()]
				if !ok {
					t.Fatalf("no golden for level %v", level)
				}
				opts := DefaultOptions(1024, 1, level)
				opts.Scenario = scenario
				sim, err := New(opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				for p := Phase(0); p < NumPhases; p++ {
					got := res.Phases[p]
					if want[p] == 0 {
						if got != 0 {
							t.Errorf("%v: got %.17g, want exactly 0", p, got)
						}
						continue
					}
					if rel := math.Abs(got-want[p]) / want[p]; rel > 1e-12 {
						t.Errorf("%v: got %.17g, want %.17g (rel err %g)", p, got, want[p], rel)
					}
				}
			})
		}
	}
}

func goldenRun(t *testing.T, level Level, threads int) *Result {
	t.Helper()
	opts := DefaultOptions(2048, threads, level)
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSimulateGoldenSingleThread pins the Simulate backend to the exact
// pre-refactor phase tables at one thread.
func TestSimulateGoldenSingleThread(t *testing.T) {
	for level := LevelBaseline; level < NumLevels; level++ {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			want, ok := simulateGolden1T[level.String()]
			if !ok {
				t.Fatalf("no golden for level %v", level)
			}
			res := goldenRun(t, level, 1)
			for p := Phase(0); p < NumPhases; p++ {
				got := res.Phases[p]
				if want[p] == 0 {
					if got != 0 {
						t.Errorf("%v: got %.17g, want exactly 0", p, got)
					}
					continue
				}
				if rel := math.Abs(got-want[p]) / want[p]; rel > 1e-12 {
					t.Errorf("%v: got %.17g, want %.17g (rel err %g)", p, got, want[p], rel)
				}
			}
		})
	}
}

// TestSimulateGoldenFourThreads bounds the Simulate backend against a
// pre-refactor 4-thread sample within scheduling noise.
func TestSimulateGoldenFourThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulated runs")
	}
	const tol = 0.5 // scheduling noise observed <~15%; flag >50% shifts
	for level := LevelBaseline; level < NumLevels; level++ {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			want := simulateGolden4T[level.String()]
			res := goldenRun(t, level, 4)
			for p := Phase(0); p < NumPhases; p++ {
				got := res.Phases[p]
				// Tiny phases (<1ms) sit inside per-op noise; the large
				// ones carry the regression signal.
				if want[p] < 1e-3 {
					continue
				}
				if rel := math.Abs(got-want[p]) / want[p]; rel > tol {
					t.Errorf("%v: got %g, want %g within %.0f%% (rel err %g)",
						p, got, want[p], 100*tol, rel)
				}
			}
		})
	}
}
