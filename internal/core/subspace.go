package core

import (
	"fmt"

	"upcbh/internal/nbody"
	"upcbh/internal/octree"
	"upcbh/internal/upc"
	"upcbh/internal/vec"
)

// subsp is one subspace of the §6 algorithm. All threads compute an
// identical subspace tree because division decisions depend only on
// globally reduced costs.
type subsp struct {
	center     vec.V3
	half       float64
	parent     int32
	oct        int8
	firstChild int32 // index of child 0, or -1 for a leaf
	cost       float64
	owner      int32 // owning thread, for leaves
	intIdx     int32 // dense index among internal subspaces (top-tree cells)
}

// subspaceState is per-thread scratch for the subspace builder, reused
// across steps.
type subspaceState struct {
	nodes    []subsp
	bodiesOf [][]int32 // this thread's bodies per subspace (indices into myBodies)
	leaves   []int32   // leaf subspaces in DFS order

	// Per-step scratch retained across steps so steady-state subspace
	// stepping allocates (almost) nothing: the root body-index list, the
	// per-level cost vector, the all-to-all send matrix, and the
	// leaf-binning slots (first-appearance ordered; see the binning loop
	// for why the order matters).
	allBuf    []int32
	costBuf   []float64
	send      [][]nbody.Body
	leafSlot  map[int32]int32
	leafOrder []int32
	leafRows  [][]upc.Ref
}

func newSubspaceState() *subspaceState {
	return &subspaceState{leafSlot: make(map[int32]int32)}
}

func (ss *subspaceState) reset() {
	ss.nodes = ss.nodes[:0]
	ss.bodiesOf = ss.bodiesOf[:0]
	ss.leaves = ss.leaves[:0]
}

func (ss *subspaceState) addNode(n subsp) int32 {
	ss.nodes = append(ss.nodes, n)
	ss.bodiesOf = append(ss.bodiesOf, nil)
	return int32(len(ss.nodes) - 1)
}

// stepSubspace runs the §6 tree construction in place of the
// build/partition/redistribute phases: cost-threshold division with
// (vector) reductions, contiguous-leaf ownership, all-to-all body
// exchange, local subforest construction and lock-free hooking. Timers
// are charged to the paper's phases: division+subforest+hook+top-cofm to
// Tree-building, leaf-ownership to Partitioning, the body exchange to
// Redistribution.
func (s *Sim) stepSubspace(t *upc.Thread, st *tstate, ph *PhaseTimes, measured bool) {
	ss := st.sub
	p := t.P()
	sSnap := t.Stats()
	comm := func(phase Phase) {
		if measured {
			st.phaseComm[phase].Add(t.Stats().Delta(sSnap))
		}
		sSnap = t.Stats()
	}

	// --- Tree-building, part 1: subspace division -----------------------
	t0 := t.Now()
	g := s.boundingBox(t, st)
	ss.reset()
	rootIdx := ss.addNode(subsp{center: g.Center, half: g.Half, parent: -1, firstChild: -1})
	if cap(ss.allBuf) < len(st.myBodies) {
		ss.allBuf = make([]int32, len(st.myBodies))
	}
	all := ss.allBuf[:len(st.myBodies)]
	var rootCost float64
	for i, br := range st.myBodies {
		all[i] = int32(i)
		c := s.bodies.Local(t, br).Cost
		if c <= 0 {
			c = 1
		}
		rootCost += c
		t.Charge(s.par.LocalDerefCost)
	}
	ss.bodiesOf[rootIdx] = all
	total := s.reduceCosts(t, []float64{rootCost})[0]
	ss.nodes[rootIdx].cost = total
	tau := s.o.SubspaceAlpha * total / float64(p)

	frontier := []int32{rootIdx} // the root is always divided
	depth := 0
	for len(frontier) > 0 {
		if depth++; depth > maxDepth {
			panic("core: subspace division depth limit exceeded")
		}
		newStart := int32(len(ss.nodes))
		for _, fi := range frontier {
			f := &ss.nodes[fi]
			f.firstChild = int32(len(ss.nodes))
			for oct := 0; oct < 8; oct++ {
				cc, chh := octree.ChildBounds(f.center, f.half, oct)
				ss.addNode(subsp{center: cc, half: chh, parent: fi, oct: int8(oct), firstChild: -1})
			}
			// Scatter this thread's bodies of the divided subspace.
			first := ss.nodes[fi].firstChild
			for _, bi := range ss.bodiesOf[fi] {
				pos := s.bodies.Local(t, st.myBodies[bi]).Pos
				oct := octree.Octant(ss.nodes[fi].center, pos)
				ss.bodiesOf[first+int32(oct)] = append(ss.bodiesOf[first+int32(oct)], bi)
				t.Charge(s.par.TreeLevelCost)
			}
			ss.bodiesOf[fi] = nil
		}
		// Reduce the new level's costs: one vector collective (§6), or
		// one scalar collective per subspace when VectorReduce is off
		// (the figure 10 pathology).
		nNew := len(ss.nodes) - int(newStart)
		if cap(ss.costBuf) < nNew {
			ss.costBuf = make([]float64, nNew)
		}
		local := ss.costBuf[:nNew]
		for i := range local {
			var c float64
			for _, bi := range ss.bodiesOf[newStart+int32(i)] {
				bc := s.bodies.Local(t, st.myBodies[bi]).Cost
				if bc <= 0 {
					bc = 1
				}
				c += bc
			}
			local[i] = c
		}
		global := s.reduceCosts(t, local)
		frontier = frontier[:0]
		for i, c := range global {
			idx := newStart + int32(i)
			ss.nodes[idx].cost = c
			if c > tau {
				frontier = append(frontier, idx)
			}
		}
	}
	ph[PhaseTree] += t.Now() - t0
	comm(PhaseTree)
	t.Barrier()

	// --- Partitioning: contiguous-leaf ownership -------------------------
	t1 := t.Now()
	ss.leaves = ss.leaves[:0]
	var dfs func(idx int32)
	dfs = func(idx int32) {
		n := &ss.nodes[idx]
		if n.firstChild < 0 {
			ss.leaves = append(ss.leaves, idx)
			return
		}
		for oct := int32(0); oct < 8; oct++ {
			dfs(n.firstChild + oct)
		}
	}
	dfs(rootIdx)
	prefix := 0.0
	owner := int32(0)
	for _, li := range ss.leaves {
		for int(owner) < p-1 && prefix >= total*float64(owner+1)/float64(p) {
			owner++
		}
		ss.nodes[li].owner = owner
		prefix += ss.nodes[li].cost
		t.Charge(s.par.LocalDerefCost)
	}
	// Classify my bodies by destination owner. The send matrix is reused
	// across steps (AllToAll receivers alias these rows, but they copy
	// the bodies out before the next step's classification).
	if cap(ss.send) < p {
		ss.send = make([][]nbody.Body, p)
	}
	send := ss.send[:p]
	for i := range send {
		send[i] = send[i][:0]
	}
	for _, li := range ss.leaves {
		own := ss.nodes[li].owner
		for _, bi := range ss.bodiesOf[li] {
			send[own] = append(send[own], *s.bodies.Local(t, st.myBodies[bi]))
			t.Charge(s.par.LocalDerefCost)
		}
	}
	ph[PhasePartition] += t.Now() - t1
	comm(PhasePartition)
	t.Barrier()

	// --- Redistribution: all-to-all body exchange ------------------------
	t2 := t.Now()
	recv := upc.AllToAll(t, send)
	count := 0
	for _, r := range recv {
		count += len(r)
	}
	if count > st.bufCap {
		st.bufCap = 2 * count
		st.buf[0] = s.bodies.Alloc(t, st.bufCap)
		st.buf[1] = s.bodies.Alloc(t, st.bufCap)
		st.cur = 0
	}
	alt := st.buf[1-st.cur]
	moved := 0
	w := 0
	st.myBodies = st.myBodies[:0]
	me := int32(t.ID())
	for src, r := range recv {
		if src != t.ID() {
			moved += len(r)
		}
		for i := range r {
			*s.bodies.Raw(upc.Ref{Thr: me, Idx: alt.Idx + int32(w)}) = r[i]
			st.myBodies = append(st.myBodies, upc.Ref{Thr: me, Idx: alt.Idx + int32(w)})
			w++
		}
	}
	t.Charge(float64(w*bodyBytes) * s.par.ByteCopyCost)
	st.cur = 1 - st.cur
	st.curLen = w
	if measured {
		st.migrated += moved
		st.ownedTot += w
	}
	ph[PhaseRedist] += t.Now() - t2
	comm(PhaseRedist)
	t.Barrier()

	// --- Tree-building, part 2: subforest, hooking, top c-of-m ----------
	t3 := t.Now()
	// Dense indices for internal subspaces (identical on all threads).
	nInternal := int32(0)
	for i := range ss.nodes {
		if ss.nodes[i].firstChild >= 0 {
			ss.nodes[i].intIdx = nInternal
			nInternal++
		}
	}
	// Thread 0 materializes the shared top tree: one cell per internal
	// subspace, pre-wired internal->internal.
	var base upc.Ref
	if t.ID() == 0 {
		base = s.cells.Alloc(t, int(nInternal))
		t.Charge(float64(nInternal) * s.par.CellInitCost)
		for i := range ss.nodes {
			n := &ss.nodes[i]
			if n.firstChild < 0 {
				continue
			}
			c := s.cells.Raw(upc.Ref{Thr: 0, Idx: base.Idx + n.intIdx})
			*c = Cell{Center: n.center, Half: n.half}
			for oct := int32(0); oct < 8; oct++ {
				ch := &ss.nodes[n.firstChild+oct]
				if ch.firstChild >= 0 {
					c.Sub[oct] = CellRef(upc.Ref{Thr: 0, Idx: base.Idx + ch.intIdx})
				}
			}
		}
	}
	base = upc.Broadcast(t, 0, base)
	st.root = CellRef(base) // the root subspace is internal idx 0

	// Bin my (now local) bodies into my owned leaves. Leaves are visited
	// in first-appearance order below (not Go map order): cell allocation
	// order and the per-leaf charge sequence feed the virtual clock, so
	// the iteration order must be deterministic for byte-identical phase
	// tables. Slots and rows are retained across steps.
	clear(ss.leafSlot)
	ss.leafOrder = ss.leafOrder[:0]
	for _, br := range st.myBodies {
		pos := s.bodies.Local(t, br).Pos
		idx := rootIdx
		for ss.nodes[idx].firstChild >= 0 {
			oct := octree.Octant(ss.nodes[idx].center, pos)
			idx = ss.nodes[idx].firstChild + int32(oct)
			t.Charge(s.par.TreeLevelCost)
		}
		if ss.nodes[idx].owner != me {
			panic(fmt.Sprintf("core: body routed to leaf owned by thread %d, held by %d", ss.nodes[idx].owner, me))
		}
		slot, seen := ss.leafSlot[idx]
		if !seen {
			slot = int32(len(ss.leafOrder))
			ss.leafSlot[idx] = slot
			ss.leafOrder = append(ss.leafOrder, idx)
			if int(slot) == len(ss.leafRows) {
				ss.leafRows = append(ss.leafRows, nil)
			}
			ss.leafRows[slot] = ss.leafRows[slot][:0]
		}
		ss.leafRows[slot] = append(ss.leafRows[slot], br)
	}
	// Build one local subtree per owned leaf and hook it (no locks: leaf
	// slots are disjoint).
	for slot, li := range ss.leafOrder {
		brs := ss.leafRows[slot]
		leaf := &ss.nodes[li]
		var hook NodeRef
		if len(brs) == 1 {
			hook = BodyRef(brs[0])
		} else {
			lr := s.newCell(t, st, leaf.center, leaf.half)
			for _, br := range brs {
				s.insertLocalTree(t, st, lr, br, s.bodies.Local(t, br).Pos)
			}
			s.cofmLocalTree(t, lr)
			hook = CellRef(lr)
		}
		parent := &ss.nodes[leaf.parent]
		pRef := upc.Ref{Thr: 0, Idx: base.Idx + parent.intIdx}
		s.cells.TouchPut(t, pRef, bytesSlot)
		storeSlot(&s.cells.Raw(pRef).Sub[leaf.oct], hook)
	}
	t.Barrier()

	// Thread 0 computes centers of mass for the top cells (bottom-up:
	// internal nodes were created parent-before-child, so reverse order).
	if t.ID() == 0 {
		for i := len(ss.nodes) - 1; i >= 0; i-- {
			n := &ss.nodes[i]
			if n.firstChild < 0 {
				continue
			}
			cRef := upc.Ref{Thr: 0, Idx: base.Idx + n.intIdx}
			c := s.cells.Raw(cRef)
			var wsum vec.V3
			var mass, cost float64
			var cnt int32
			for oct := int32(0); oct < 8; oct++ {
				slot := loadSlot(&c.Sub[oct])
				switch {
				case slot.IsNil():
					continue
				case slot.IsBody():
					b := s.bodies.ReadView(t, slot.Ref(), bytesBodyCost)
					wsum = wsum.AddScaled(b.Pos, b.Mass)
					mass += b.Mass
					bc := b.Cost
					if bc <= 0 {
						bc = 1
					}
					cost += bc
					cnt++
				default:
					agg := s.cells.ReadView(t, slot.Ref(), bytesAgg)
					wsum = wsum.AddScaled(agg.CofM, agg.Mass)
					mass += agg.Mass
					cost += agg.Cost
					cnt += agg.NSub
				}
				t.Charge(s.par.TreeLevelCost)
			}
			c.Mass, c.Cost, c.NSub = mass, cost, cnt
			if mass > 0 {
				c.CofM = wsum.Scale(1 / mass)
			} else {
				c.CofM = c.Center
			}
			c.Done = 1
		}
	}
	ph[PhaseTree] += t.Now() - t3
	comm(PhaseTree)
	t.Barrier()
}

// reduceCosts performs the per-level cost reduction: a single vector
// reduce&broadcast when VectorReduce is on, or one scalar collective per
// element when it is off.
func (s *Sim) reduceCosts(t *upc.Thread, local []float64) []float64 {
	if s.o.VectorReduce {
		return upc.AllReduceVecF64(t, local, upc.OpSum)
	}
	out := make([]float64, len(local))
	for i, v := range local {
		out[i] = upc.AllReduceF64(t, v, upc.OpSum)
	}
	return out
}
