package core

import (
	"testing"
	"testing/quick"

	"upcbh/internal/upc"
)

// Property: NodeRef packing round-trips any (kind, thread, index) the
// runtime can produce. Slot atomicity (the reason for the packing)
// depends on this encoding being lossless.
func TestQuickNodeRefRoundTrip(t *testing.T) {
	f := func(thr uint16, idx uint32, body bool) bool {
		r := upc.Ref{Thr: int32(thr % 0x4000), Idx: int32(idx & 0x7fffffff)}
		var nr NodeRef
		if body {
			nr = BodyRef(r)
		} else {
			nr = CellRef(r)
		}
		if nr.IsNil() {
			return false
		}
		if body != nr.IsBody() || body == nr.IsCell() {
			return false
		}
		return nr.Ref() == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNilNode(t *testing.T) {
	if !NilNode.IsNil() || NilNode.IsBody() || NilNode.IsCell() {
		t.Error("NilNode misclassified")
	}
	var slot NodeRef
	storeSlot(&slot, BodyRef(upc.Ref{Thr: 3, Idx: 99}))
	got := loadSlot(&slot)
	if !got.IsBody() || got.Ref() != (upc.Ref{Thr: 3, Idx: 99}) {
		t.Errorf("slot round trip failed: %v", got.Ref())
	}
}

func TestPhaseTimes(t *testing.T) {
	a := PhaseTimes{1, 2, 3, 4, 5, 6}
	b := PhaseTimes{6, 5, 4, 3, 2, 1}
	if a.Total() != 21 {
		t.Errorf("Total = %v", a.Total())
	}
	sum := a
	sum.Add(b)
	for i := range sum {
		if sum[i] != 7 {
			t.Errorf("Add[%d] = %v", i, sum[i])
		}
	}
	mx := a
	mx.MaxInto(b)
	want := PhaseTimes{6, 5, 4, 4, 5, 6}
	if mx != want {
		t.Errorf("MaxInto = %v", mx)
	}
}

func TestPhaseAndLevelStrings(t *testing.T) {
	if PhaseTree.String() != "Tree-building" || PhaseForce.String() != "Force Comp." {
		t.Error("phase names changed; the paper-style tables depend on them")
	}
	if Phase(99).String() == "" || Level(99).String() == "" {
		t.Error("out-of-range values must still format")
	}
}
