package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"upcbh/internal/arena"
)

// checkpointAt runs opts for k steps, checkpoints, and returns the
// checkpoint bytes plus the still-paused source Sim (caller releases).
func checkpointAt(t *testing.T, opts Options, k int) ([]byte, *Sim) {
	t.Helper()
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if k > 0 {
		if err := sim.Step(k); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sim
}

// TestCheckpointRestoreEquivalence is the restore-equivalence matrix:
// checkpoint mid-run, restore, and demand that the restored simulation
// completes the schedule exactly as the uninterrupted run — and that
// taking the checkpoint did not perturb the source simulation either.
// Under the simulate backend "exactly" is byte-identical Results (phase
// tables, clocks, scheduler counters, final bodies); under native,
// wall-clock timings differ and the physics must agree (exact at one
// thread, FP-reordering tolerance above).
func TestCheckpointRestoreEquivalence(t *testing.T) {
	cases := []struct {
		level   Level
		mode    ExecMode
		threads int
		scen    string
	}{
		{LevelBaseline, ModeSimulate, 4, "plummer"},
		{LevelRedistribute, ModeSimulate, 4, "clustered"},
		{LevelMergedBuild, ModeSimulate, 4, "plummer"},
		{LevelMergedBuild, ModeSimulate, 4, "clustered"},
		{LevelSubspace, ModeSimulate, 4, "plummer"},
		{LevelMergedBuild, ModeNative, 1, "plummer"},
		{LevelMergedBuild, ModeNative, 4, "clustered"},
		{LevelSubspace, ModeNative, 4, "plummer"},
	}
	if testing.Short() {
		cases = cases[:3]
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/%s/p%d/%s", c.level, c.mode, c.threads, c.scen), func(t *testing.T) {
			opts := DefaultOptions(512, c.threads, c.level)
			opts.Scenario = c.scen
			opts.Steps, opts.Warmup = 4, 1
			opts.ExecMode = c.mode
			ref := runOnce(t, opts)

			ckpt, src := checkpointAt(t, opts, 2)
			defer src.Release()

			restored, err := Restore(bytes.NewReader(ckpt))
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Release()
			if restored.StepsDone() != 2 {
				t.Fatalf("restored sim at step %d, want 2", restored.StepsDone())
			}

			// The checkpoint must not have perturbed the source run.
			srcRes, err := src.Run()
			if err != nil {
				t.Fatal(err)
			}
			gotRes, err := restored.Run()
			if err != nil {
				t.Fatal(err)
			}

			if c.mode == ModeSimulate {
				refFp := resultFingerprint(t, ref)
				if fp := resultFingerprint(t, srcRes); fp != refFp {
					t.Fatalf("checkpoint perturbed the source run:\n%.300s\nvs\n%.300s", fp, refFp)
				}
				if fp := resultFingerprint(t, gotRes); fp != refFp {
					t.Fatalf("restored run diverged from the uninterrupted run:\n%.300s\nvs\n%.300s", fp, refFp)
				}
				sameBodies(t, gotRes.Bodies, ref.Bodies)
				return
			}
			if c.threads == 1 {
				sameBodies(t, gotRes.Bodies, ref.Bodies)
				return
			}
			worstPos, worstVel := comparePhysics(t, gotRes, ref)
			if worstPos > 1e-6 || worstVel > 1e-6 {
				t.Fatalf("restored native physics drifted: pos %g vel %g", worstPos, worstVel)
			}
		})
	}
}

// TestCheckpointSnapshotAgrees: a snapshot of the restored simulation
// is byte-identical to a snapshot of the source at the same pause
// (simulate backend).
func TestCheckpointSnapshotAgrees(t *testing.T) {
	opts := DefaultOptions(512, 4, LevelMergedBuild)
	opts.Steps, opts.Warmup = 4, 1
	ckpt, src := checkpointAt(t, opts, 2)
	defer src.Release()
	restored, err := Restore(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Release()
	want, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if !bytes.Equal(wj, gj) {
		t.Fatalf("restored snapshot differs from source snapshot:\n%.400s\nvs\n%.400s", gj, wj)
	}
}

// TestCheckpointFileByteIdentical: the streaming and mmap/msync
// checkpoint writers emit the same bytes for a real simulation.
func TestCheckpointFileByteIdentical(t *testing.T) {
	opts := DefaultOptions(256, 2, LevelMergedBuild)
	opts.Steps, opts.Warmup = 3, 1
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	if err := sim.Step(1); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if err := sim.Checkpoint(&stream); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sim.ckpt")
	if err := sim.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	file, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), file) {
		t.Fatalf("stream (%d bytes) and mmap (%d bytes) checkpoints differ", stream.Len(), len(file))
	}
	restored, err := Restore(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	restored.Release()
}

// TestCheckpointStepZeroAndReuse: a checkpoint before the first step
// restores, and a restored sim can itself be checkpointed again.
func TestCheckpointStepZeroAndReuse(t *testing.T) {
	opts := DefaultOptions(256, 2, LevelMergedBuild)
	opts.Steps, opts.Warmup = 3, 1
	ckpt, src := checkpointAt(t, opts, 0)
	src.Release()
	restored, err := Restore(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Step(1); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := restored.Checkpoint(&again); err != nil {
		t.Fatal(err)
	}
	restored.Release()
	second, err := Restore(bytes.NewReader(again.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Release()
	if second.StepsDone() != 1 {
		t.Fatalf("re-checkpointed sim restored at step %d, want 1", second.StepsDone())
	}
	if _, err := second.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointLifecycleErrors: finished and released Sims refuse to
// checkpoint with the lifecycle sentinels.
func TestCheckpointLifecycleErrors(t *testing.T) {
	opts := DefaultOptions(256, 2, LevelMergedBuild)
	opts.Steps, opts.Warmup = 2, 1
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Error("checkpoint of a finished Sim accepted")
	}
	sim.Release()
	if err := sim.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Error("checkpoint of a released Sim accepted")
	}
}

// TestRestoreRejects: corrupted, mismatched or garbage checkpoints are
// rejected with descriptive errors, never a crash or a half-restored
// Sim.
func TestRestoreRejects(t *testing.T) {
	opts := DefaultOptions(256, 2, LevelMergedBuild)
	opts.Steps, opts.Warmup = 2, 1
	ckpt, src := checkpointAt(t, opts, 1)
	defer src.Release()

	expectErr := func(name string, b []byte, wantSub string) {
		t.Helper()
		s, err := Restore(bytes.NewReader(b))
		if err == nil {
			s.Release()
			t.Fatalf("%s: accepted", name)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
		if !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: error %q is not ErrBadCheckpoint", name, err)
		}
	}

	expectErr("garbage", []byte("not a checkpoint at all........."), "bad magic")
	expectErr("empty", nil, "truncated")

	truncated := append([]byte(nil), ckpt...)
	expectErr("truncated", truncated[:len(truncated)-10], "truncated")

	flipped := append([]byte(nil), ckpt...)
	flipped[len(flipped)-1] ^= 0xff
	expectErr("payload corruption", flipped, "CRC")

	// A header whose key disagrees with the embedded Options.
	regions, err := src.checkpointRegions()
	if err != nil {
		t.Fatal(err)
	}
	var wrongKey bytes.Buffer
	if err := arena.WriteCheckpoint(&wrongKey, "bogus-key", src.StepsDone(), nil, regions); err != nil {
		t.Fatal(err)
	}
	expectErr("key mismatch", wrongKey.Bytes(), "key mismatch")

	// A header whose step disagrees with the embedded state.
	var wrongStep bytes.Buffer
	if err := arena.WriteCheckpoint(&wrongStep, src.Options().Key(), src.StepsDone()+1, nil, regions); err != nil {
		t.Fatal(err)
	}
	expectErr("step mismatch", wrongStep.Bytes(), "step mismatch")

	// CRC-valid containers whose state region smuggles out-of-range
	// values: the double-buffer geometry feeds unchecked hot-path
	// derefs (st.buf[st.cur], LocalSlice), so restore must bounds-check
	// it like it does the body refs — reject, never a later panic.
	mutated := func(f func(cs *ckptState)) []byte {
		t.Helper()
		c, err := arena.ReadCheckpoint(bytes.NewReader(ckpt))
		if err != nil {
			t.Fatal(err)
		}
		state, _ := c.Region(regState)
		var cs ckptState
		if err := json.Unmarshal(state, &cs); err != nil {
			t.Fatal(err)
		}
		f(&cs)
		enc, err := json.Marshal(&cs)
		if err != nil {
			t.Fatal(err)
		}
		heap, _ := c.Region(regHeap)
		refs, _ := c.Region(regRefs)
		var buf bytes.Buffer
		err = arena.WriteCheckpoint(&buf, c.Header.Key, c.Header.Step, nil, []arena.NamedRegion{
			{Name: regState, Data: enc},
			{Name: regHeap, Data: heap},
			{Name: regRefs, Data: refs},
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	expectErr("buffer index out of range",
		mutated(func(cs *ckptState) { cs.Threads[0].Cur = 7 }), "current-buffer index")
	expectErr("buffer ref outside shard",
		mutated(func(cs *ckptState) { cs.Threads[0].Buf[cs.Threads[0].Cur].Idx = 1 << 30 }), "current buffer")
	expectErr("buffer ref on wrong thread",
		mutated(func(cs *ckptState) { cs.Threads[1].Buf[cs.Threads[1].Cur].Thr = 0 }), "current buffer")
	expectErr("buffer capacity overrunning shard",
		mutated(func(cs *ckptState) { cs.Threads[0].BufCap = 1 << 30 }), "buffer")
	expectErr("occupancy past capacity",
		mutated(func(cs *ckptState) { cs.Threads[0].CurLen = cs.Threads[0].BufCap + 1 }), "occupancy")
	expectErr("owned count overflowing refs region",
		mutated(func(cs *ckptState) { cs.Threads[0].NOwned = 1 << 60 }), "refs region truncated")
	expectErr("buffer ref negative index",
		mutated(func(cs *ckptState) { cs.Threads[0].Buf[cs.Threads[0].Cur].Idx = -1 }), "current buffer")
}

// TestCheckpointRestoreFreshProcess re-executes the test binary so the
// restore happens in a process that never saw the original run: the
// child restores from a checkpoint file and prints the fingerprint of
// its completed Result, which must match the parent's uninterrupted
// run byte for byte (simulate backend).
func TestCheckpointRestoreFreshProcess(t *testing.T) {
	opts := DefaultOptions(512, 4, LevelMergedBuild)
	opts.Steps, opts.Warmup = 4, 1

	if path := os.Getenv("UPCBH_CKPT_RESTORE"); path != "" {
		// Child: restore, finish the schedule, print the fingerprint.
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sim, err := Restore(f)
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Release()
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("FINGERPRINT %s\n", resultFingerprint(t, res))
		return
	}

	ref := runOnce(t, opts)
	dir := t.TempDir()
	path := filepath.Join(dir, "mid.ckpt")
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(2); err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	sim.Release()

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestCheckpointRestoreFreshProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "UPCBH_CKPT_RESTORE="+path)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}
	var got string
	for _, line := range strings.Split(string(out), "\n") {
		if rest, ok := strings.CutPrefix(line, "FINGERPRINT "); ok {
			got = rest
			break
		}
	}
	if got == "" {
		t.Fatalf("child printed no fingerprint:\n%s", out)
	}
	if want := resultFingerprint(t, ref); got != want {
		t.Fatalf("fresh-process restore diverged from the uninterrupted run:\n%.300s\nvs\n%.300s", got, want)
	}
}

// TestSnapshotMetaNoBodyGather pins satellite 1: SnapshotMeta carries
// the same metadata as Snapshot but skips the O(n) body gather and
// allocates only fixed-size metadata.
func TestSnapshotMetaNoBodyGather(t *testing.T) {
	opts := DefaultOptions(4096, 4, LevelMergedBuild)
	opts.Steps, opts.Warmup = 3, 1
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	if err := sim.Step(2); err != nil {
		t.Fatal(err)
	}
	meta, err := sim.SnapshotMeta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Bodies != nil {
		t.Fatalf("SnapshotMeta gathered %d bodies", len(meta.Bodies))
	}
	full, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Bodies) != opts.Bodies {
		t.Fatalf("Snapshot gathered %d bodies, want %d", len(full.Bodies), opts.Bodies)
	}
	full.Bodies = nil
	mj, _ := json.Marshal(meta)
	fj, _ := json.Marshal(full)
	if !bytes.Equal(mj, fj) {
		t.Fatalf("SnapshotMeta disagrees with Snapshot metadata:\n%.300s\nvs\n%.300s", mj, fj)
	}
	// Fixed-size metadata only: a handful of allocations (the snapshot
	// struct, the clocks and step-phase slices), independent of n.
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sim.SnapshotMeta(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 12 {
		t.Errorf("SnapshotMeta allocates %v objects per call; body-independent metadata should need ~5", allocs)
	}
}
