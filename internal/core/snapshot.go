package core

import (
	"fmt"

	"upcbh/internal/nbody"
)

// Snapshot is a zero-surprise copy of the observable simulation state
// at a step boundary: body state, per-thread clocks, and the phase
// tables accumulated over the measured steps so far. Everything is
// copied out — a Snapshot stays valid after further Steps, Finish, and
// Release, and marshals cleanly to JSON (bhrun -stream emits exactly
// this type, one object per line).
type Snapshot struct {
	// Step is the number of completed time-steps (0 for a snapshot
	// taken before the first Step); Steps is the configured total.
	Step  int `json:"step"`
	Steps int `json:"steps"`

	// Warmup steps precede the measured window; StepPhases covers only
	// steps >= Warmup.
	Warmup int `json:"warmup"`

	Level    Level    `json:"level"`
	ExecMode ExecMode `json:"exec_mode"`
	Threads  int      `json:"threads"`
	Scenario string   `json:"scenario"`

	// Time is the simulated physical time, Step * Options.Dt.
	Time float64 `json:"time"`

	// Clocks[i] is thread i's clock at the pause: the charged virtual
	// time under ModeSimulate, wall-clock seconds since the runtime
	// epoch under ModeNative.
	Clocks []float64 `json:"clocks"`

	// Phases and StepPhases mirror Result: per-step maxima across
	// threads over the measured steps completed so far, and their sum.
	Phases     PhaseTimes   `json:"phases"`
	StepPhases []PhaseTimes `json:"step_phases"`

	// Interactions counts body-body and body-cell force interactions
	// across all threads (measured steps only).
	Interactions uint64 `json:"interactions"`

	// Bodies is the full body state in ID order. Omitted from the JSON
	// stream unless requested (bhrun -snap-bodies): at realistic body
	// counts it dominates the snapshot size.
	Bodies []nbody.Body `json:"bodies,omitempty"`
}

// Snapshot copies out the simulation state at the current step
// boundary. On a fresh Sim it starts the session (threads run setup and
// park before step 0), so a step-0 snapshot observes the initial
// conditions as distributed. It is legal while the session is paused
// and after Finish; it is an error after Release, when the body storage
// has been recycled. Taking a snapshot never perturbs the simulation:
// the runtime is quiescent at a pause, and every read here is a copy.
func (s *Sim) Snapshot() (*Snapshot, error) {
	snap, err := s.SnapshotMeta()
	if err != nil {
		return nil, err
	}
	bodies, err := s.gatherBodies()
	if err != nil {
		return nil, err
	}
	snap.Bodies = bodies
	return snap, nil
}

// SnapshotMeta is Snapshot without the body state: step counters,
// clocks, and the accumulated phase tables, with Bodies left nil. The
// full-body gather is the O(n log n) bulk of a Snapshot (copy every
// body, sort by ID); callers that only report progress — the session
// service's step responses, metadata-only stream frames — use this
// path, which allocates only the fixed-size metadata.
func (s *Sim) SnapshotMeta() (*Snapshot, error) {
	switch s.state {
	case simNew:
		s.start()
	case simPaused, simFinished:
	case simReleased:
		return nil, fmt.Errorf("core: Snapshot on a released Sim: %w", ErrReleased)
	}
	p := s.rt.Threads()
	snap := &Snapshot{
		Step:     s.stepsDone,
		Steps:    s.o.Steps,
		Warmup:   s.o.Warmup,
		Level:    s.o.Level,
		ExecMode: s.o.ExecMode,
		Threads:  p,
		Scenario: s.o.Scenario,
		Time:     float64(s.stepsDone) * s.o.Dt,
		Clocks:   make([]float64, p),
	}
	for i := 0; i < p; i++ {
		snap.Clocks[i] = s.rt.ThreadNow(i)
	}
	measured := s.stepsDone - s.o.Warmup
	if measured < 0 {
		measured = 0
	}
	snap.StepPhases = make([]PhaseTimes, measured)
	for i, st := range s.ts {
		if len(st.stepPh) != measured {
			return nil, fmt.Errorf("core: thread %d recorded %d measured steps at the pause, want %d",
				i, len(st.stepPh), measured)
		}
		for k, ph := range st.stepPh {
			snap.StepPhases[k].MaxInto(ph)
		}
		snap.Interactions += st.inter
	}
	for _, ph := range snap.StepPhases {
		snap.Phases.Add(ph)
	}
	return snap, nil
}
