package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"upcbh/internal/nbody"
)

// The cooperative virtual-time scheduler makes multi-thread simulate
// runs fully deterministic — a new property (the old goroutine backend's
// clocks depended on Go scheduling). This wall pins it at the paper's
// 112-thread scale across every scenario, under concurrent execution,
// and beyond the paper's scale at 512 threads.

// resultFingerprint serializes everything observable about a Result.
func resultFingerprint(t *testing.T, res *Result) string {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func determinismOpts(n, threads int, level Level, scenario string) Options {
	opts := DefaultOptions(n, threads, level)
	opts.Scenario = scenario
	opts.Steps, opts.Warmup = 3, 1
	return opts
}

func runOnce(t *testing.T, opts Options) *Result {
	t.Helper()
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	sim.Release()
	return res
}

// TestSimulateDeterministicWall112 runs every scenario at THREADS=112
// (the paper's maximum, §7) twice, at a lock/spin-heavy level and at the
// subspace level, and demands byte-identical results — phase tables,
// per-thread breakdowns, stats, final body state, everything.
func TestSimulateDeterministicWall112(t *testing.T) {
	scenarios := nbody.ScenarioNames()
	if testing.Short() {
		scenarios = scenarios[:2]
	}
	levels := []Level{LevelBaseline, LevelSubspace}
	if testing.Short() {
		levels = []Level{LevelSubspace}
	}
	for _, scen := range scenarios {
		for _, level := range levels {
			scen, level := scen, level
			t.Run(fmt.Sprintf("%s/%s", scen, level), func(t *testing.T) {
				opts := determinismOpts(768, 112, level, scen)
				a := resultFingerprint(t, runOnce(t, opts))
				b := resultFingerprint(t, runOnce(t, opts))
				if a != b {
					t.Fatalf("repeated 112-thread runs diverged:\n%.400s\nvs\n%.400s", a, b)
				}
			})
		}
	}
}

// TestSimulateConcurrentRunsDeterministic is the seeded stress test of
// the determinism wall: many simulate runs interleaved on concurrent
// goroutines (as the -parallel harness pool does) must each reproduce
// the serial reference byte-for-byte. Run it under -race: it is also the
// proof that concurrently executing runtimes share no mutable state
// (recycled heap chunks included).
func TestSimulateConcurrentRunsDeterministic(t *testing.T) {
	type cfg struct {
		seed  uint64
		level Level
	}
	cfgs := make([]cfg, 0, 8)
	for i := 0; i < 4; i++ {
		cfgs = append(cfgs, cfg{seed: 100 + uint64(i), level: LevelBaseline})
		cfgs = append(cfgs, cfg{seed: 100 + uint64(i), level: LevelAsync})
	}
	optsFor := func(c cfg) Options {
		opts := determinismOpts(512, 16, c.level, "clustered")
		opts.Seed = c.seed
		return opts
	}
	// Serial references.
	want := make([]string, len(cfgs))
	for i, c := range cfgs {
		want[i] = resultFingerprint(t, runOnce(t, optsFor(c)))
	}
	// Concurrent replay, several rounds.
	for round := 0; round < 2; round++ {
		var wg sync.WaitGroup
		for i, c := range cfgs {
			wg.Add(1)
			go func(i int, c cfg) {
				defer wg.Done()
				got := resultFingerprint(t, runOnce(t, optsFor(c)))
				if got != want[i] {
					t.Errorf("round %d cfg %d: concurrent run diverged from serial reference", round, i)
				}
			}(i, c)
		}
		wg.Wait()
	}
}

// TestSimulate512ThreadsCompletes exercises beyond-paper scale: a
// THREADS=512 simulate run (the paper stops at 112) must complete,
// satisfy the physics sanity checks, and stay deterministic.
func TestSimulate512ThreadsCompletes(t *testing.T) {
	opts := determinismOpts(2048, 512, LevelSubspace, "plummer")
	a := runOnce(t, opts)
	if a.Interactions == 0 {
		t.Fatal("512-thread run computed no interactions")
	}
	if a.Phases[PhaseForce] <= 0 {
		t.Fatal("512-thread run charged no force-phase time")
	}
	if len(a.Bodies) != opts.Bodies {
		t.Fatalf("body state lost: %d of %d", len(a.Bodies), opts.Bodies)
	}
	if !testing.Short() {
		b := runOnce(t, opts)
		if resultFingerprint(t, a) != resultFingerprint(t, b) {
			t.Fatal("512-thread runs diverged")
		}
	}
}
