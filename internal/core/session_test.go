package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"

	"upcbh/internal/nbody"
	"upcbh/internal/upc"
)

// The steppable session engine's core promise: a run partitioned into
// Step(k₁)…Step(kₘ)+Finish is indistinguishable from one Run(). Under
// the simulate backend that means byte-identical Results (the step gate
// is scheduling-transparent); under the native backend timings are wall
// clock, so the physics is compared instead — exactly for one thread
// (deterministic FP order), to FP-reordering tolerance for several.

// runStepped executes opts by the given step partition and returns the
// collected Result.
func runStepped(t *testing.T, opts Options, partition []int) *Result {
	t.Helper()
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	for _, k := range partition {
		if err := sim.Step(k); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameBodies(t *testing.T, a, b []nbody.Body) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("body counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("body %d differs:\n%+v\nvs\n%+v", i, a[i], b[i])
		}
	}
}

func TestStepEquivalenceSimulate(t *testing.T) {
	levels := []Level{LevelBaseline, LevelRedistribute, LevelMergedBuild, LevelSubspace}
	scenarios := []string{"plummer", "clustered"}
	if testing.Short() {
		levels = []Level{LevelMergedBuild}
		scenarios = scenarios[:1]
	}
	partitions := [][]int{{1, 1, 1, 1}, {2, 2}, {3, 1}, {1, 3}}
	for _, level := range levels {
		for _, scen := range scenarios {
			level, scen := level, scen
			t.Run(fmt.Sprintf("%s/%s", level, scen), func(t *testing.T) {
				opts := DefaultOptions(512, 4, level)
				opts.Scenario = scen
				opts.Steps, opts.Warmup = 4, 1
				ref := runOnce(t, opts)
				refFp := resultFingerprint(t, ref)
				for _, part := range partitions {
					got := runStepped(t, opts, part)
					if fp := resultFingerprint(t, got); fp != refFp {
						t.Fatalf("partition %v diverged from Run():\n%.300s\nvs\n%.300s", part, fp, refFp)
					}
					sameBodies(t, got.Bodies, ref.Bodies)
				}
			})
		}
	}
}

func TestStepEquivalenceNative(t *testing.T) {
	cases := []struct {
		threads int
		level   Level
	}{
		{1, LevelMergedBuild},
		{4, LevelMergedBuild},
		{4, LevelSubspace},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("p%d/%s", c.threads, c.level), func(t *testing.T) {
			opts := DefaultOptions(512, c.threads, c.level)
			opts.Steps, opts.Warmup = 4, 1
			opts.ExecMode = ModeNative
			ref := runOnce(t, opts)
			got := runStepped(t, opts, []int{1, 2, 1})
			if c.threads == 1 {
				// Single-thread native has a deterministic FP order:
				// stepped and straight runs agree exactly.
				sameBodies(t, got.Bodies, ref.Bodies)
				return
			}
			// Concurrent tree merges reorder commutative FP sums, so
			// multi-thread native runs agree only to tolerance — the
			// same bound mode_test.go uses for native-vs-simulate.
			worstPos, worstVel := comparePhysics(t, got, ref)
			if worstPos > 1e-6 || worstVel > 1e-6 {
				t.Fatalf("stepped native run drifted beyond FP tolerance: pos %g vel %g", worstPos, worstVel)
			}
		})
	}
}

// FuzzStepPartition lets the fuzzer pick the partition: any way of
// cutting the step schedule must reproduce the uninterrupted simulate
// run byte-for-byte.
func FuzzStepPartition(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1))
	f.Add(uint8(4), uint8(0), uint8(0))
	f.Add(uint8(2), uint8(1), uint8(1))
	f.Add(uint8(3), uint8(7), uint8(0))
	opts := DefaultOptions(256, 3, LevelMergedBuild)
	opts.Steps, opts.Warmup = 4, 1
	var (
		refFp     string
		refBodies []nbody.Body
	)
	f.Fuzz(func(t *testing.T, a, b, c uint8) {
		if refFp == "" {
			ref := runOnce(t, opts)
			refFp = resultFingerprint(t, ref)
			refBodies = ref.Bodies
		}
		// Normalize the three cuts into a valid partition of Steps.
		var part []int
		left := opts.Steps
		for _, raw := range []uint8{a, b, c} {
			if left == 0 {
				break
			}
			k := int(raw)%left + 1
			part = append(part, k)
			left -= k
		}
		if left > 0 {
			part = append(part, left)
		}
		got := runStepped(t, opts, part)
		if fp := resultFingerprint(t, got); fp != refFp {
			t.Fatalf("partition %v (from %d,%d,%d) diverged from Run()", part, a, b, c)
		}
		sameBodies(t, got.Bodies, refBodies)
	})
}

// TestStepSteadyStateZeroAlloc is the session-path twin of
// TestNativeSteadyStateZeroAlloc: driving the native merged-build hot
// path one Step at a time must not allocate in steady state either —
// the gate's fast path and the controller handshake stay off the heap.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()

	const steps, warm = 8, 1
	mallocs := make([]uint64, 0, steps)
	opts := DefaultOptions(2048, 1, LevelMergedBuild)
	opts.Steps, opts.Warmup = steps, warm
	opts.ExecMode = ModeNative
	opts.testStepHook = func(th *upc.Thread, step int) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mallocs = append(mallocs, ms.Mallocs)
	}
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	for i := 0; i < steps; i++ {
		if err := sim.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(mallocs) != steps {
		t.Fatalf("hook ran %d times, want %d", len(mallocs), steps)
	}
	for i := steps - 3; i < steps; i++ {
		if d := mallocs[i] - mallocs[i-1]; d != 0 {
			t.Errorf("step %d allocated %d objects in steady state, want 0", i, d)
		}
	}
}

// TestSnapshotNonPerturbing interleaves a Snapshot at every step
// boundary and demands the final Result still matches the plain Run
// byte-for-byte, while the snapshots themselves are monotone and
// internally consistent.
func TestSnapshotNonPerturbing(t *testing.T) {
	opts := DefaultOptions(512, 4, LevelMergedBuild)
	opts.Steps, opts.Warmup = 4, 1
	refFp := resultFingerprint(t, runOnce(t, opts))

	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	var prevClocks []float64
	for step := 0; step <= opts.Steps; step++ {
		snap, err := sim.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Step != step {
			t.Fatalf("snapshot at boundary %d reports Step %d", step, snap.Step)
		}
		if snap.Time != float64(step)*opts.Dt {
			t.Fatalf("snapshot Time %v, want %v", snap.Time, float64(step)*opts.Dt)
		}
		measured := step - opts.Warmup
		if measured < 0 {
			measured = 0
		}
		if len(snap.StepPhases) != measured {
			t.Fatalf("snapshot at step %d has %d measured step rows, want %d", step, len(snap.StepPhases), measured)
		}
		if len(snap.Bodies) != opts.Bodies {
			t.Fatalf("snapshot carries %d bodies, want %d", len(snap.Bodies), opts.Bodies)
		}
		if len(snap.Clocks) != 4 {
			t.Fatalf("snapshot carries %d clocks, want 4", len(snap.Clocks))
		}
		for i, c := range snap.Clocks {
			if prevClocks != nil && c < prevClocks[i] {
				t.Fatalf("thread %d clock went backwards: %v -> %v", i, prevClocks[i], c)
			}
		}
		prevClocks = snap.Clocks
		if step < opts.Steps {
			if err := sim.Step(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if fp := resultFingerprint(t, res); fp != refFp {
		t.Fatalf("snapshotted run diverged from plain Run:\n%.300s\nvs\n%.300s", fp, refFp)
	}
	// Snapshot after Finish is still legal: storage is live until
	// Release.
	if _, err := sim.Snapshot(); err != nil {
		t.Fatalf("Snapshot after Finish: %v", err)
	}
}

// TestSnapshotStepZero: a snapshot on a fresh Sim observes the setup-
// distributed initial conditions before any step has run.
func TestSnapshotStepZero(t *testing.T) {
	opts := DefaultOptions(256, 2, LevelMergedBuild)
	opts.Steps, opts.Warmup = 2, 0
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != 0 || snap.Interactions != 0 || len(snap.StepPhases) != 0 {
		t.Fatalf("step-0 snapshot not pristine: %+v", snap)
	}
	for i, b := range snap.Bodies {
		if int(b.ID) != i {
			t.Fatalf("step-0 snapshot bodies not in ID order at %d: %d", i, b.ID)
		}
		if b.Phi != 0 {
			// No force step has run yet.
			t.Fatalf("step-0 snapshot body %d already has potential %v", i, b.Phi)
		}
	}
	// The auto-started session still runs to completion afterwards.
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEarlyFinish: finishing before Options.Steps yields a Result over
// the measured steps completed so far.
func TestEarlyFinish(t *testing.T) {
	opts := DefaultOptions(256, 2, LevelMergedBuild)
	opts.Steps, opts.Warmup = 4, 1
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	if err := sim.Step(3); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StepPhases) != 2 {
		t.Fatalf("early Finish collected %d measured steps, want 2", len(res.StepPhases))
	}
	if len(res.Bodies) != opts.Bodies {
		t.Fatalf("early Finish gathered %d bodies, want %d", len(res.Bodies), opts.Bodies)
	}
}

// TestReleaseIdempotent guards the double-release bug: Release must be
// callable any number of times, from any lifecycle state, without
// returning the same chunks to the recycling pools twice.
func TestReleaseIdempotent(t *testing.T) {
	opts := DefaultOptions(256, 2, LevelMergedBuild)
	opts.Steps, opts.Warmup = 2, 0

	t.Run("after-run", func(t *testing.T) {
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		sim.Release()
		sim.Release()
	})
	t.Run("fresh", func(t *testing.T) {
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		sim.Release()
		sim.Release()
	})
	t.Run("paused", func(t *testing.T) {
		// Release on a paused session terminates the threads first; the
		// Sim can be abandoned mid-run without Finish and without leaking
		// parked goroutines.
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Step(1); err != nil {
			t.Fatal(err)
		}
		sim.Release()
		sim.Release()
		if err := sim.Step(1); err == nil {
			t.Fatal("Step after Release did not fail")
		}
	})
}

// TestSetBodiesAfterStartPanics: setup has already copied the initial
// conditions into the shared heap, so a late SetBodies would be
// silently ignored — it must panic instead.
func TestSetBodiesAfterStartPanics(t *testing.T) {
	opts := DefaultOptions(256, 2, LevelMergedBuild)
	opts.Steps, opts.Warmup = 2, 0
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	if err := sim.Step(1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SetBodies after session start did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "SetBodies") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	sim.SetBodies(make([]nbody.Body, 4))
}

// TestSessionLifecycleErrors pins the misuse error paths of the
// lifecycle API.
func TestSessionLifecycleErrors(t *testing.T) {
	opts := DefaultOptions(256, 2, LevelMergedBuild)
	opts.Steps, opts.Warmup = 3, 0
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()

	if err := sim.Step(0); err == nil {
		t.Fatal("Step(0) did not fail")
	}
	if err := sim.Step(-2); err == nil {
		t.Fatal("Step(-2) did not fail")
	}
	if err := sim.Step(4); err == nil {
		t.Fatal("Step past Options.Steps did not fail")
	}
	if got := sim.StepsDone(); got != 0 {
		t.Fatalf("failed Steps advanced the count to %d", got)
	}
	if err := sim.Step(2); err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(2); err == nil {
		t.Fatal("Step overflowing the remaining budget did not fail")
	}
	if got := sim.StepsDone(); got != 2 {
		t.Fatalf("StepsDone = %d, want 2", got)
	}
	if _, err := sim.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Finish(); err == nil {
		t.Fatal("second Finish did not fail")
	}
	if err := sim.Step(1); err == nil {
		t.Fatal("Step after Finish did not fail")
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("Run after Finish did not fail")
	}
	sim.Release()
	if _, err := sim.Snapshot(); err == nil {
		t.Fatal("Snapshot after Release did not fail")
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("Run after Release did not fail")
	}
}

// TestRunCompletesSteppedSim: Run on a partially-stepped Sim finishes
// the remaining schedule — mixing the two styles is legal and, under
// simulate, still byte-identical to an uninterrupted Run.
func TestRunCompletesSteppedSim(t *testing.T) {
	opts := DefaultOptions(512, 4, LevelMergedBuild)
	opts.Steps, opts.Warmup = 4, 1
	refFp := resultFingerprint(t, runOnce(t, opts))
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	if err := sim.Step(1); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sim.StepsDone() != opts.Steps {
		t.Fatalf("Run left StepsDone at %d, want %d", sim.StepsDone(), opts.Steps)
	}
	if fp := resultFingerprint(t, res); fp != refFp {
		t.Fatalf("Step(1)+Run diverged from plain Run:\n%.300s\nvs\n%.300s", fp, refFp)
	}
}
