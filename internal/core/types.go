// Package core implements the paper's contribution: the distributed
// Barnes-Hut algorithm in the emulated UPC runtime, at every optimization
// level the paper describes (§4-§6), with the SPLASH2 phase structure and
// per-phase simulated timing.
package core

import (
	"encoding/json"
	"fmt"

	"upcbh/internal/machine"
	"upcbh/internal/nbody"
	"upcbh/internal/upc"
)

// Phase identifies one phase of a Barnes-Hut time-step, matching the rows
// of the paper's tables.
type Phase int

// The phases, in execution order.
const (
	PhaseTree Phase = iota // tree building (incl. bounding box; incl. merge/cofm at L4+)
	PhaseCofM              // center-of-mass computation (separate phase at L0-L3 only)
	PhasePartition
	PhaseRedist // body redistribution (L2+)
	PhaseForce
	PhaseAdvance
	NumPhases
)

var phaseNames = [NumPhases]string{
	"Tree-building", "C-of-m Comp.", "Partitioning", "Redistribution",
	"Force Comp.", "Body-adv.",
}

// String returns the paper's row label for the phase.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("Phase(%d)", int(p))
	}
	return phaseNames[p]
}

// PhaseTimes holds seconds per phase: simulated seconds in ModeSimulate,
// measured wall-clock seconds in ModeNative.
type PhaseTimes [NumPhases]float64

// ExecMode selects the execution backend: ModeSimulate charges every UPC
// operation against the LogGP machine model and reports simulated times
// (the paper reproduction); ModeNative runs the same algorithm with real
// goroutine parallelism, real locks and barriers, and reports measured
// wall-clock phase times.
type ExecMode = upc.ExecMode

// Execution backends.
const (
	ModeSimulate = upc.ModeSimulate
	ModeNative   = upc.ModeNative
)

// ParseExecMode maps a mode name ("simulate", "native") to an ExecMode.
func ParseExecMode(s string) (ExecMode, error) { return upc.ParseExecMode(s) }

// ParseScenario validates a workload-scenario name ("" means the
// default "plummer") and returns its generator. See nbody.Scenarios.
func ParseScenario(s string) (nbody.Scenario, error) { return nbody.ParseScenario(s) }

// Total returns the summed time over all phases.
func (pt PhaseTimes) Total() float64 {
	var s float64
	for _, v := range pt {
		s += v
	}
	return s
}

// Add accumulates o into pt.
func (pt *PhaseTimes) Add(o PhaseTimes) {
	for i := range pt {
		pt[i] += o[i]
	}
}

// MaxInto keeps the element-wise maximum of pt and o in pt.
func (pt *PhaseTimes) MaxInto(o PhaseTimes) {
	for i := range pt {
		if o[i] > pt[i] {
			pt[i] = o[i]
		}
	}
}

// Level is a cumulative optimization level from the paper. Each level
// includes all optimizations of the levels below it.
type Level int

// The optimization levels, in the order the paper introduces them.
const (
	// LevelBaseline is the §4 literal SPLASH2 port: shared scalars on
	// thread 0, static block body distribution, fine-grained remote
	// accesses everywhere, lock-based global tree insertion.
	LevelBaseline Level = iota
	// LevelScalars replicates write-once/write-rarely shared scalars
	// (tol, eps, rsize) on every thread (§5.1).
	LevelScalars
	// LevelRedistribute redistributes bodies to their owning threads each
	// time-step with an indexed memget into a double buffer (§5.2).
	LevelRedistribute
	// LevelCacheTree caches remote octree cells on demand in a private
	// local tree during force computation (§5.3).
	LevelCacheTree
	// LevelMergedBuild builds per-thread local trees and merges them into
	// the global octree, folding the center-of-mass computation into the
	// merge (§5.4).
	LevelMergedBuild
	// LevelAsync adds non-blocking communication and message aggregation
	// to the cached force computation (§5.5).
	LevelAsync
	// LevelSubspace replaces tree construction with the cost-based
	// level-by-level subspace algorithm with vector reductions (§6).
	LevelSubspace

	NumLevels
)

var levelNames = [NumLevels]string{
	"baseline", "scalars", "redistribute", "cache", "merged", "async", "subspace",
}

// String returns a short name for the level.
func (l Level) String() string {
	if l < 0 || l >= NumLevels {
		return fmt.Sprintf("Level(%d)", int(l))
	}
	return levelNames[l]
}

// ParseLevel maps a short name back to a Level.
func ParseLevel(s string) (Level, error) {
	for i, n := range levelNames {
		if n == s {
			return Level(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown optimization level %q", s)
}

// MarshalJSON encodes the level as its short name, keeping serialized
// reports readable and stable if the level enumeration is ever reordered.
func (l Level) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.String())
}

// UnmarshalJSON decodes a short name back into a Level.
func (l *Level) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseLevel(s)
	if err != nil {
		return err
	}
	*l = parsed
	return nil
}

// Options configures one simulation run. The JSON field tags are the
// stable serialization contract used by the bench harness's reports.
type Options struct {
	Bodies int `json:"bodies"`
	Steps  int `json:"steps"`  // total time-steps to run
	Warmup int `json:"warmup"` // steps excluded from timing (the paper runs 4, measures the last 2)

	Theta float64 `json:"theta"` // opening criterion (SPLASH2 default 1.0)
	Eps   float64 `json:"eps"`   // potential softening (SPLASH2 default 0.05)
	Dt    float64 `json:"dt"`    // time-step (SPLASH2 default 0.025)
	Seed  uint64  `json:"seed"`

	// Scenario names the initial-condition generator (see
	// nbody.Scenarios): "plummer" (the paper's workload, also the
	// default for ""), "two-plummer", "uniform", "clustered", "disk".
	// Ignored when SetBodies supplies the bodies directly.
	Scenario string `json:"scenario,omitempty"`

	// ExecMode selects the execution backend (default ModeSimulate). The
	// physics is mode-independent; only the timing policy changes.
	ExecMode ExecMode `json:"exec_mode"`

	Level           Level   `json:"level"`
	AliasLocalCells bool    `json:"alias_local_cells"` // §5.3.2: avoid copying cells that are already local
	VectorReduce    bool    `json:"vector_reduce"`     // §6: vector (true) vs per-subspace scalar (false) reductions
	N1              int     `json:"n1"`                // §5.5 async framework parameters (default 4,4,4)
	N2              int     `json:"n2"`
	N3              int     `json:"n3"`
	SubspaceAlpha   float64 `json:"subspace_alpha"`
	// Verify enables per-step structural verification of the global
	// octree (body uniqueness, exact cost sums, additive masses). For
	// tests: it adds an extra barrier per step.
	Verify bool `json:"verify,omitempty"`

	// TransparentCache enables the §8-surveyed MuPC/Berkeley-style
	// runtime software cache (barrier-invalidated, per-thread) for the
	// read-only accesses of the naive force computation and for shared
	// scalars. Only meaningful below LevelCacheTree; the ext-cache
	// experiment compares it against the paper's manual caching.
	TransparentCache bool `json:"transparent_cache,omitempty"`

	// DisableFlat turns off the native backend's flat-octree fast paths
	// (the arena local build and the flat-snapshot force kernel), forcing
	// the pointer/NodeRef walks the Simulate backend models. It exists
	// for differential testing — flat-vs-pointer physics must agree — and
	// has no effect under ModeSimulate, which never takes the flat paths.
	DisableFlat bool `json:"disable_flat,omitempty"`

	// testBufferCap overrides the §5.2 double-buffer capacity; tests use
	// it to exercise the compaction path deterministically.
	testBufferCap int

	// testStepHook, when set, runs on every thread at the end of each
	// time-step (after the advance barrier); the allocation-regression
	// tests use it to sample per-step memory statistics in place.
	testStepHook func(t *upc.Thread, step int)

	Machine *machine.Machine `json:"machine"`
}

// DefaultOptions returns the SPLASH2/paper defaults for n bodies on
// `threads` emulated UPC threads, one per node, at the given level.
func DefaultOptions(n, threads int, level Level) Options {
	return Options{
		Bodies: n,
		Steps:  4,
		Warmup: 2,
		Theta:  1.0,
		Eps:    0.05,
		Dt:     0.025,
		Seed:   123,
		Level:  level,

		VectorReduce:  true,
		N1:            4,
		N2:            4,
		N3:            4,
		SubspaceAlpha: 2.0 / 3.0,

		Machine: machine.Default(threads),
	}
}

func (o *Options) validate() error {
	if o.Bodies < 2 {
		return fmt.Errorf("core: need at least 2 bodies, got %d", o.Bodies)
	}
	if o.Machine == nil {
		return fmt.Errorf("core: Options.Machine is required")
	}
	if o.Steps <= o.Warmup {
		return fmt.Errorf("core: Steps (%d) must exceed Warmup (%d)", o.Steps, o.Warmup)
	}
	if o.Level < 0 || o.Level >= NumLevels {
		return fmt.Errorf("core: invalid level %d", int(o.Level))
	}
	if o.ExecMode != ModeSimulate && o.ExecMode != ModeNative {
		return fmt.Errorf("core: invalid exec mode %d", int(o.ExecMode))
	}
	if o.Theta <= 0 {
		return fmt.Errorf("core: Theta must be positive")
	}
	if _, err := nbody.ParseScenario(o.Scenario); err != nil {
		return err
	}
	if o.Scenario == "" {
		o.Scenario = nbody.DefaultScenario
	}
	if o.N1 <= 0 {
		o.N1 = 4
	}
	if o.N2 <= 0 {
		o.N2 = 4
	}
	if o.N3 <= 0 {
		o.N3 = 4
	}
	if o.SubspaceAlpha <= 0 {
		o.SubspaceAlpha = 2.0 / 3.0
	}
	return nil
}

// ThreadBreakdown reports one thread's timing detail.
type ThreadBreakdown struct {
	Phases PhaseTimes `json:"phases"` // summed over measured steps
	// TreeLocal/TreeMerge split PhaseTree at LevelMergedBuild+ (figure
	// 8): local tree construction vs merging into the global tree.
	TreeLocal float64 `json:"tree_local"`
	TreeMerge float64 `json:"tree_merge"`
	// Interactions this thread computed during measured steps — the
	// load that costzones / the subspace owner assignment balances.
	Interactions uint64 `json:"interactions"`
}

// Result is the outcome of a simulation run. The JSON field tags are the
// stable serialization contract used by the bench harness's reports; the
// raw body state is deliberately excluded from serialization.
type Result struct {
	Level   Level `json:"level"`
	Threads int   `json:"threads"`
	// ExecMode records which backend produced the timings: simulated
	// seconds (ModeSimulate) or measured wall-clock seconds (ModeNative).
	ExecMode ExecMode `json:"exec_mode"`

	// Phases is the per-phase time: max over threads within each measured
	// step, summed over measured steps — the quantity the paper's tables
	// report (simulated in ModeSimulate, wall-clock in ModeNative).
	Phases PhaseTimes `json:"phases"`
	// StepPhases is the same, per measured step.
	StepPhases []PhaseTimes `json:"step_phases,omitempty"`
	// PerThread is each thread's own accumulated phase times.
	PerThread []ThreadBreakdown `json:"per_thread,omitempty"`

	Stats upc.Stats `json:"stats"`
	// Sched counts cooperative-scheduler events (baton handoffs between
	// emulated threads, spin-wait yields) over the whole run — the real
	// synchronization cost the simulate backend paid. Zero in ModeNative.
	Sched upc.SchedStats `json:"sched"`
	// PhaseComm breaks the operation counters down by phase (aggregated
	// over threads, measured steps only) — the communication profile the
	// paper's per-phase analysis reasons about.
	PhaseComm        [NumPhases]upc.Stats `json:"phase_comm,omitempty"`
	Interactions     uint64               `json:"interactions"`
	MigratedFraction float64              `json:"migrated_fraction"` // bodies migrated per step / bodies, averaged over measured steps
	BufferCopies     int                  `json:"buffer_copies"`     // §5.2 double-buffer compactions
	// CellsCopied / CellsAliased count local-tree cache fills that copied
	// a cell vs aliased an already-local cell via a shadow pointer
	// (§5.3.1 vs §5.3.2).
	CellsCopied  uint64 `json:"cells_copied"`
	CellsAliased uint64 `json:"cells_aliased"`

	// Bodies is the final state of all bodies in ID order, for physics
	// validation and the examples. Excluded from JSON reports: at paper
	// scales it dwarfs every other field combined.
	Bodies []nbody.Body `json:"-"`
}

// Total returns the total simulated time over the measured steps.
func (r *Result) Total() float64 { return r.Phases.Total() }
