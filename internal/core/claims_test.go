package core

import (
	"testing"

	"upcbh/internal/machine"
)

// The paper backs its design with several in-text quantitative claims;
// these tests pin the emulation to the same qualitative behaviour.

// §5.3.2: the merged local tree (shadow pointers) "saves some local
// copying but does not affect global communication" — tested on the
// deterministic operation counters rather than contention-noisy
// simulated times.
func TestAliasLocalCellsAblation(t *testing.T) {
	run := func(alias bool) *Result {
		opts := DefaultOptions(4096, 8, LevelCacheTree)
		opts.Steps, opts.Warmup = 2, 1
		opts.AliasLocalCells = alias
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sep, merged := run(false), run(true)
	if merged.CellsAliased == 0 {
		t.Error("shadow-pointer variant aliased no local cells")
	}
	if sep.CellsAliased != 0 {
		t.Errorf("separate-tree variant aliased %d cells", sep.CellsAliased)
	}
	if merged.CellsCopied >= sep.CellsCopied {
		t.Errorf("aliasing did not reduce local copies: %d vs %d", merged.CellsCopied, sep.CellsCopied)
	}
	// The point of §5.3.2: total communication volume is essentially
	// unchanged — only local copying is saved. Which thread allocated
	// each chain cell varies run to run (insertion races), so the remote
	// counters carry a few percent of noise; require them close.
	gets := float64(merged.Stats.RemoteGets) / float64(sep.Stats.RemoteGets)
	if gets < 0.9 || gets > 1.1 {
		t.Errorf("aliasing changed remote gets by %.2fx: %d vs %d", gets, merged.Stats.RemoteGets, sep.Stats.RemoteGets)
	}
	bytes := float64(merged.Stats.Bytes) / float64(sep.Stats.Bytes)
	if bytes < 0.9 || bytes > 1.1 {
		t.Errorf("global communication changed by %.2fx; §5.3.2 expects it unchanged", bytes)
	}
	// And the physics is identical.
	for i := range sep.Bodies {
		if d := sep.Bodies[i].Pos.Sub(merged.Bodies[i].Pos).Len(); d > 1e-12 {
			t.Fatalf("aliasing changed physics at body %d by %g", i, d)
		}
	}
}

// §5.5: most aggregated gather requests touch a single source thread
// (>=93% at 32-64 threads in the paper).
func TestGatherSourceLocality(t *testing.T) {
	opts := DefaultOptions(8192, 16, LevelAsync)
	opts.Steps, opts.Warmup = 3, 1
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	frac := res.Stats.SingleSourceFraction()
	t.Logf("single-source gather fraction: %.1f%% (%d requests)", 100*frac, res.Stats.GatherReqs)
	// The paper reports >=93% at 250K bodies/thread; the fraction is
	// strongly scale-dependent (deeper trees => more of the locally
	// essential tree comes from one neighbouring owner). At 512
	// bodies/thread we only require that clear spatial locality exists.
	if frac < 0.35 {
		t.Errorf("single-source fraction %.2f: no gather source locality at all", frac)
	}
}

// §4.1: multiple processes per node without -pthreads is catastrophically
// slow compared to the threaded runtime (36000s vs 26s in the paper).
func TestLoopbackCatastrophe(t *testing.T) {
	run := func(pthreads bool) float64 {
		m := machine.MustNew(8, 8, pthreads, machine.Power5())
		opts := DefaultOptions(2048, 8, LevelBaseline)
		opts.Steps, opts.Warmup = 2, 1
		opts.Machine = m
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Total()
	}
	threaded, procs := run(true), run(false)
	t.Logf("one node, 8 threads: pthreads %.2fs vs 8 processes %.2fs (%.0fx)", threaded, procs, procs/threaded)
	if procs < 20*threaded {
		t.Errorf("process-per-core on one node should be far slower: %.3f vs %.3f", procs, threaded)
	}
}

// §5.1: at the baseline, force computation is ~97% of total time at
// scale, because tol/eps are remote scalar reads per interaction.
func TestBaselineForceDominates(t *testing.T) {
	opts := DefaultOptions(2048, 8, LevelBaseline)
	opts.Steps, opts.Warmup = 2, 1
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	frac := res.Phases[PhaseForce] / res.Total()
	if frac < 0.85 {
		t.Errorf("baseline force fraction %.2f, paper reports ~0.97", frac)
	}
}

// §5.2: redistribution almost eliminates c-of-m and body-advance time.
func TestRedistributionKillsAdvanceCost(t *testing.T) {
	run := func(level Level) *Result {
		opts := DefaultOptions(4096, 8, level)
		opts.Steps, opts.Warmup = 3, 1
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	before := run(LevelScalars)
	after := run(LevelRedistribute)
	if after.Phases[PhaseAdvance] > before.Phases[PhaseAdvance]/5 {
		t.Errorf("body-advance not reduced enough: %.4f -> %.4f",
			before.Phases[PhaseAdvance], after.Phases[PhaseAdvance])
	}
	if after.Phases[PhaseCofM] > before.Phases[PhaseCofM] {
		t.Errorf("c-of-m got worse: %.4f -> %.4f", before.Phases[PhaseCofM], after.Phases[PhaseCofM])
	}
}

// §6: without vector reduction the subspace build's collective cost
// explodes relative to the vector version at higher thread counts.
func TestVectorReductionMatters(t *testing.T) {
	run := func(vector bool) float64 {
		opts := DefaultOptions(8192, 32, LevelSubspace)
		opts.Steps, opts.Warmup = 2, 1
		opts.VectorReduce = vector
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Phases[PhaseTree]
	}
	withVec, without := run(true), run(false)
	t.Logf("tree-building: vector %.4fs, scalar %.4fs", withVec, without)
	if without < 3*withVec {
		t.Errorf("scalar reductions should inflate tree-building: %.4f vs %.4f", without, withVec)
	}
}

// Figure 8: merge time is imbalanced across threads while local build
// time is not.
func TestMergeImbalance(t *testing.T) {
	opts := DefaultOptions(16384, 16, LevelMergedBuild)
	opts.Steps, opts.Warmup = 2, 1
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	minM, maxM := res.PerThread[0].TreeMerge, res.PerThread[0].TreeMerge
	minL, maxL := res.PerThread[0].TreeLocal, res.PerThread[0].TreeLocal
	for _, tb := range res.PerThread {
		minM = min(minM, tb.TreeMerge)
		maxM = max(maxM, tb.TreeMerge)
		minL = min(minL, tb.TreeLocal)
		maxL = max(maxL, tb.TreeLocal)
	}
	t.Logf("local %.5f..%.5f, merge %.5f..%.5f", minL, maxL, minM, maxM)
	if maxL > 3*minL+1e-6 {
		t.Errorf("local build should be balanced: %.5f..%.5f", minL, maxL)
	}
	if maxM < 2*minM {
		t.Errorf("merge should be imbalanced (winners vs losers): %.5f..%.5f", minM, maxM)
	}
}
