package core

import (
	"runtime"
	"runtime/debug"
	"testing"

	"upcbh/internal/upc"
)

// runNativeFlat runs one native-mode configuration with the flat paths
// on or off.
func runNativeFlat(t *testing.T, n, threads int, level Level, disableFlat bool) *Result {
	t.Helper()
	opts := DefaultOptions(n, threads, level)
	opts.Steps, opts.Warmup = 2, 1
	opts.ExecMode = ModeNative
	opts.DisableFlat = disableFlat
	opts.Verify = true // structural gate on every step's global tree
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestNativeFlatExactSingleThread pins the strongest equivalence claim:
// at one thread (no merge races), the flat local build emits exactly the
// tree the pointer insertion builds, and the flat snapshot kernel
// interacts in exactly forceCached's DFS order — so the entire
// trajectory is bit-identical with the flat paths on or off. This holds
// for the levels whose pointer force path is the plain DFS walk
// (LevelCacheTree, LevelMergedBuild); LevelAsync/LevelSubspace fall back
// to forceAsync, whose frontier scheduling reorders the same interaction
// set, and are covered by the tolerance test below.
func TestNativeFlatExactSingleThread(t *testing.T) {
	for _, level := range []Level{LevelCacheTree, LevelMergedBuild} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			flat := runNativeFlat(t, 1024, 1, level, false)
			ptr := runNativeFlat(t, 1024, 1, level, true)
			if flat.Interactions != ptr.Interactions {
				t.Errorf("interaction counts differ: flat %d pointer %d", flat.Interactions, ptr.Interactions)
			}
			for i := range flat.Bodies {
				fb, pb := flat.Bodies[i], ptr.Bodies[i]
				if fb.Pos != pb.Pos || fb.Vel != pb.Vel || fb.Acc != pb.Acc || fb.Phi != pb.Phi {
					t.Fatalf("body %d state differs:\nflat    %+v\npointer %+v", fb.ID, fb, pb)
				}
			}
		})
	}
}

// TestNativeFlatMatchesPointerThreads checks the multi-thread case,
// where concurrent merges may reorder commutative center-of-mass
// updates in both variants: physics agrees within FP-reordering
// tolerance.
func TestNativeFlatMatchesPointerThreads(t *testing.T) {
	for _, level := range []Level{LevelCacheTree, LevelMergedBuild, LevelAsync, LevelSubspace} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			flat := runNativeFlat(t, 2048, 4, level, false)
			ptr := runNativeFlat(t, 2048, 4, level, true)
			worstPos, worstVel := comparePhysics(t, flat, ptr)
			if worstPos > 1e-9 || worstVel > 1e-9 {
				t.Errorf("flat physics diverges from pointer: pos %g vel %g", worstPos, worstVel)
			}
			if flat.Interactions == 0 {
				t.Error("flat run recorded no interactions")
			}
		})
	}
}

// TestNativeSteadyStateZeroAlloc is the allocation-regression gate for
// steady-state timestep advance: a single-thread native run at the
// merged level (flat local build + flat snapshot force — the full flat
// hot path) must stop allocating once its arenas have warmed up. The
// per-step malloc counts are sampled inside the SPMD thread via the
// step hook, with the GC disabled so background collection cannot
// perturb the counters.
func TestNativeSteadyStateZeroAlloc(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()

	const steps, warm = 8, 1
	mallocs := make([]uint64, 0, steps)
	opts := DefaultOptions(2048, 1, LevelMergedBuild)
	opts.Steps, opts.Warmup = steps, warm
	opts.ExecMode = ModeNative
	opts.testStepHook = func(th *upc.Thread, step int) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mallocs = append(mallocs, ms.Mallocs)
	}
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(mallocs) != steps {
		t.Fatalf("hook ran %d times, want %d", len(mallocs), steps)
	}
	// The first steps may allocate (arena growth, stepPh warmup). The
	// final steps are the steady state the tentpole promises: 0 allocs.
	for i := steps - 3; i < steps; i++ {
		if d := mallocs[i] - mallocs[i-1]; d != 0 {
			t.Errorf("step %d allocated %d objects in steady state, want 0", i, d)
		}
	}
}

// TestNativeFlatSnapshotCoversTree cross-checks the snapshot against the
// global tree it was taken from: every body appears exactly once and the
// root aggregates carry the full mass, for a configuration with
// migration (multi-thread, clustered scenario).
func TestNativeFlatSnapshotCoversTree(t *testing.T) {
	opts := DefaultOptions(1024, 4, LevelMergedBuild)
	opts.Steps, opts.Warmup = 2, 1
	opts.ExecMode = ModeNative
	opts.Scenario = "clustered"
	var snapBodies, snapCells []int
	opts.testStepHook = func(th *upc.Thread, step int) {
		if th.ID() != 0 {
			return
		}
		sim := currentSim
		snapBodies = append(snapBodies, sim.flat.ft.Bodies.Len())
		snapCells = append(snapCells, len(sim.flat.ft.Nodes))
	}
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	currentSim = sim
	defer func() { currentSim = nil }()
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i, nb := range snapBodies {
		if nb != opts.Bodies {
			t.Errorf("step %d: snapshot holds %d bodies, want %d", i, nb, opts.Bodies)
		}
		if snapCells[i] < 1 || snapCells[i] > 2*opts.Bodies {
			t.Errorf("step %d: implausible snapshot cell count %d", i, snapCells[i])
		}
	}
}

// currentSim lets a step hook reach the Sim under test (hooks receive
// only the thread).
var currentSim *Sim
