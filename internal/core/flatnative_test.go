package core

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"unsafe"

	"upcbh/internal/upc"
)

// runNativeFlat runs one native-mode configuration with the flat paths
// on or off.
func runNativeFlat(t *testing.T, n, threads int, level Level, disableFlat bool) *Result {
	t.Helper()
	opts := DefaultOptions(n, threads, level)
	opts.Steps, opts.Warmup = 2, 1
	opts.ExecMode = ModeNative
	opts.DisableFlat = disableFlat
	opts.Verify = true // structural gate on every step's global tree
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestNativeFlatExactSingleThread pins the strongest equivalence claim:
// at one thread (no merge races), the flat local build emits exactly the
// tree the pointer insertion builds, and the flat snapshot kernel
// interacts in exactly forceCached's DFS order — so the entire
// trajectory is bit-identical with the flat paths on or off. This holds
// for the levels whose pointer force path is the plain DFS walk
// (LevelCacheTree, LevelMergedBuild); LevelAsync/LevelSubspace fall back
// to forceAsync, whose frontier scheduling reorders the same interaction
// set, and are covered by the tolerance test below.
func TestNativeFlatExactSingleThread(t *testing.T) {
	for _, level := range []Level{LevelCacheTree, LevelMergedBuild} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			flat := runNativeFlat(t, 1024, 1, level, false)
			ptr := runNativeFlat(t, 1024, 1, level, true)
			if flat.Interactions != ptr.Interactions {
				t.Errorf("interaction counts differ: flat %d pointer %d", flat.Interactions, ptr.Interactions)
			}
			for i := range flat.Bodies {
				fb, pb := flat.Bodies[i], ptr.Bodies[i]
				if fb.Pos != pb.Pos || fb.Vel != pb.Vel || fb.Acc != pb.Acc || fb.Phi != pb.Phi {
					t.Fatalf("body %d state differs:\nflat    %+v\npointer %+v", fb.ID, fb, pb)
				}
			}
		})
	}
}

// TestNativeFlatMatchesPointerThreads checks the multi-thread case,
// where concurrent merges may reorder commutative center-of-mass
// updates in both variants: physics agrees within FP-reordering
// tolerance.
func TestNativeFlatMatchesPointerThreads(t *testing.T) {
	for _, level := range []Level{LevelCacheTree, LevelMergedBuild, LevelAsync, LevelSubspace} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			flat := runNativeFlat(t, 2048, 4, level, false)
			ptr := runNativeFlat(t, 2048, 4, level, true)
			worstPos, worstVel := comparePhysics(t, flat, ptr)
			if worstPos > 1e-9 || worstVel > 1e-9 {
				t.Errorf("flat physics diverges from pointer: pos %g vel %g", worstPos, worstVel)
			}
			if flat.Interactions == 0 {
				t.Error("flat run recorded no interactions")
			}
		})
	}
}

// TestNativeSteadyStateZeroAlloc is the allocation-regression gate for
// steady-state timestep advance: a single-thread native run at the
// merged level (flat local build + flat snapshot force — the full flat
// hot path) must stop allocating once its arenas have warmed up. The
// per-step malloc counts are sampled inside the SPMD thread via the
// step hook, with the GC disabled so background collection cannot
// perturb the counters.
func TestNativeSteadyStateZeroAlloc(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()

	const steps, warm = 8, 1
	mallocs := make([]uint64, 0, steps)
	opts := DefaultOptions(2048, 1, LevelMergedBuild)
	opts.Steps, opts.Warmup = steps, warm
	opts.ExecMode = ModeNative
	opts.testStepHook = func(th *upc.Thread, step int) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mallocs = append(mallocs, ms.Mallocs)
	}
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(mallocs) != steps {
		t.Fatalf("hook ran %d times, want %d", len(mallocs), steps)
	}
	// The first steps may allocate (arena growth, stepPh warmup). The
	// final steps are the steady state the tentpole promises: 0 allocs.
	for i := steps - 3; i < steps; i++ {
		if d := mallocs[i] - mallocs[i-1]; d != 0 {
			t.Errorf("step %d allocated %d objects in steady state, want 0", i, d)
		}
	}

	// Off-heap claim: the flat arenas exist, were consumed, and the hot
	// arrays of the published snapshot live inside the mmap region —
	// GC-invisible — rather than on the Go heap.
	if sim.mem == nil {
		t.Fatal("native sim has no flat arena")
	}
	if sim.mem.Used() == 0 {
		t.Error("global flat arena unused")
	}
	if sim.tmem[0] == nil || sim.tmem[0].Used() == 0 {
		t.Error("thread-local flat arena unused")
	}
	sn := sim.flat.cur.Load()
	if sn == nil {
		t.Fatal("no published flat snapshot after the run")
	}
	mem := sim.mem.Bytes()
	lo := uintptr(unsafe.Pointer(&mem[0]))
	hi := lo + uintptr(len(mem))
	inArena := func(name string, p unsafe.Pointer) {
		if a := uintptr(p); a < lo || a >= hi {
			t.Errorf("snapshot array %s at %#x is outside the arena [%#x,%#x)", name, a, lo, hi)
		}
	}
	inArena("Nodes", unsafe.Pointer(&sn.ft.Nodes[0]))
	inArena("Meta", unsafe.Pointer(&sn.ft.Meta[0]))
	inArena("Kids", unsafe.Pointer(&sn.ft.Kids[0]))
	inArena("PM", unsafe.Pointer(&sn.ft.PM[0]))
	inArena("Bodies.Pos", unsafe.Pointer(&sn.ft.Bodies.Pos[0]))
	inArena("Bodies.Mass", unsafe.Pointer(&sn.ft.Bodies.Mass[0]))
}

// TestNativeFlatSnapshotCoversTree cross-checks the snapshot against the
// global tree it was taken from: every body appears exactly once and the
// root aggregates carry the full mass, for a configuration with
// migration (multi-thread, clustered scenario).
func TestNativeFlatSnapshotCoversTree(t *testing.T) {
	opts := DefaultOptions(1024, 4, LevelMergedBuild)
	opts.Steps, opts.Warmup = 2, 1
	opts.ExecMode = ModeNative
	opts.Scenario = "clustered"
	var snapBodies, snapCells []int
	opts.testStepHook = func(th *upc.Thread, step int) {
		if th.ID() != 0 {
			return
		}
		sn := currentSim.flat.cur.Load()
		if sn == nil {
			t.Error("no snapshot published by end of step")
			return
		}
		snapBodies = append(snapBodies, sn.ft.Bodies.Len())
		snapCells = append(snapCells, len(sn.ft.Nodes))
	}
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	currentSim = sim
	defer func() { currentSim = nil }()
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i, nb := range snapBodies {
		if nb != opts.Bodies {
			t.Errorf("step %d: snapshot holds %d bodies, want %d", i, nb, opts.Bodies)
		}
		if snapCells[i] < 1 || snapCells[i] > 2*opts.Bodies {
			t.Errorf("step %d: implausible snapshot cell count %d", i, snapCells[i])
		}
	}
}

// TestNativeFlatSkipForLeafIdx is the direct unit test of the snapshot's
// self-skip index, in a configuration with real migration (multi-thread,
// clustered): for every owned body, skipFor either names the snapshot
// slot holding exactly that body's stale copy (leaf present at build
// time) or returns -1 (the body migrated this step into a fresh slot the
// snapshot has never seen), and the -1 count per thread is exactly that
// thread's migration count. The >0 leafIdx entries must be a bijection
// onto the snapshot's body slots.
func TestNativeFlatSkipForLeafIdx(t *testing.T) {
	opts := DefaultOptions(1024, 4, LevelMergedBuild)
	opts.Steps, opts.Warmup = 3, 1
	opts.ExecMode = ModeNative
	opts.Scenario = "clustered"
	var mu sync.Mutex
	checked := 0
	opts.testStepHook = func(th *upc.Thread, step int) {
		s := currentSim
		st := s.ts[th.ID()]
		sn := s.flat.cur.Load()
		if sn == nil {
			t.Error("no snapshot published")
			return
		}
		if th.ID() == 0 {
			// Bijection: the nonzero index entries cover each snapshot
			// slot exactly once.
			seen := make([]bool, sn.ft.Bodies.Len())
			nz := 0
			for _, shard := range sn.leafIdx {
				for _, v := range shard {
					if v == 0 {
						continue
					}
					slot := int(v - 1)
					if slot < 0 || slot >= len(seen) || seen[slot] {
						t.Errorf("step %d: leafIdx entry %d out of range or duplicated", step, v)
						continue
					}
					seen[slot] = true
					nz++
				}
			}
			if nz != sn.ft.Bodies.Len() {
				t.Errorf("step %d: %d leafIdx entries for %d snapshot slots", step, nz, sn.ft.Bodies.Len())
			}
			// Refs past the shard's indexed range are never leaves.
			if got := sn.skipFor(upc.Ref{Thr: 0, Idx: 1 << 30}); got != -1 {
				t.Errorf("out-of-range ref: skipFor = %d, want -1", got)
			}
		}
		// Per-thread: every owned body resolves to its own stale copy or
		// to -1, and the -1s are exactly this step's migrations.
		fresh := 0
		for _, br := range st.myBodies {
			slot := sn.skipFor(br)
			if slot < 0 {
				fresh++
				continue
			}
			if want := s.bodies.Raw(br).ID; sn.ft.Bodies.ID[slot] != want {
				t.Errorf("step %d thread %d: skipFor slot %d holds body %d, want %d",
					step, th.ID(), slot, sn.ft.Bodies.ID[slot], want)
			}
		}
		if migrated := len(st.remote[st.stepParity].refs); fresh != migrated {
			t.Errorf("step %d thread %d: %d bodies without snapshot leaf, but %d migrated",
				step, th.ID(), fresh, migrated)
		}
		mu.Lock()
		checked++
		mu.Unlock()
	}
	sim, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	currentSim = sim
	defer func() { currentSim = nil }()
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if want := opts.Steps * 4; checked != want {
		t.Fatalf("hook checked %d thread-steps, want %d", checked, want)
	}
}

// TestNativeFlatRelaxedSyncStress exercises the barrier-free
// redistribute→force boundary hard: no Verify barrier, several steps,
// multiple threads, migration-heavy scenario. Run under -race this is
// the regression gate for the RCU snapshot publication; in any mode it
// cross-checks the relaxed schedule's physics against the fully
// barriered pointer path.
func TestNativeFlatRelaxedSyncStress(t *testing.T) {
	for _, level := range []Level{LevelCacheTree, LevelMergedBuild} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			mk := func(disableFlat bool) *Result {
				opts := DefaultOptions(2048, 4, level)
				opts.Steps, opts.Warmup = 5, 1
				opts.ExecMode = ModeNative
				opts.Scenario = "clustered"
				opts.DisableFlat = disableFlat
				sim, err := New(opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			flat := mk(false)
			ptr := mk(true)
			worstPos, worstVel := comparePhysics(t, flat, ptr)
			if worstPos > 1e-9 || worstVel > 1e-9 {
				t.Errorf("relaxed-sync physics diverges from barriered pointer path: pos %g vel %g", worstPos, worstVel)
			}
		})
	}
}

// currentSim lets a step hook reach the Sim under test (hooks receive
// only the thread).
var currentSim *Sim
