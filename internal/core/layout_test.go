package core

import (
	"testing"
	"unsafe"

	"upcbh/internal/nbody"
)

// The byte-prefix constants in node.go encode struct layouts; these
// assertions fail loudly if a field is moved.
func TestBodyLayout(t *testing.T) {
	var b nbody.Body
	if off := unsafe.Offsetof(b.Pos); off != 0 {
		t.Errorf("Pos offset %d", off)
	}
	if off := unsafe.Offsetof(b.Mass); off != uintptr(bytesBodyPos) {
		t.Errorf("Mass offset %d, want %d", off, bytesBodyPos)
	}
	if off := unsafe.Offsetof(b.Cost); off != uintptr(bytesBodyMass) {
		t.Errorf("Cost offset %d, want %d", off, bytesBodyMass)
	}
	if off := unsafe.Offsetof(b.ID); off != uintptr(bytesBodyCost) {
		t.Errorf("ID offset %d, want %d", off, bytesBodyCost)
	}
	// The force write-back (Acc, Phi, Cost) must not overlap the
	// position/mass prefix concurrent readers fetch.
	if off := unsafe.Offsetof(b.Acc); off < uintptr(bytesBodyMass) {
		t.Errorf("Acc offset %d overlaps the read prefix", off)
	}
	if int(unsafe.Sizeof(b)) != bodyBytes {
		t.Errorf("Body size %d != bodyBytes %d", unsafe.Sizeof(b), bodyBytes)
	}
}

func TestCellLayout(t *testing.T) {
	var c Cell
	if off := unsafe.Offsetof(c.CofM); off != 0 {
		t.Errorf("CofM offset %d", off)
	}
	if off := unsafe.Offsetof(c.Cost); off+16 != uintptr(bytesAgg) {
		t.Errorf("Cost offset %d; bytesAgg %d should cover Cost+NSub+Done", off, bytesAgg)
	}
	if off := unsafe.Offsetof(c.Half); off >= uintptr(bytesCellAccept) {
		t.Errorf("Half offset %d outside acceptance prefix %d", off, bytesCellAccept)
	}
	if off := unsafe.Offsetof(c.Done); off >= uintptr(bytesAgg) {
		t.Errorf("Done offset %d outside aggregate prefix %d", off, bytesAgg)
	}
	if off := unsafe.Offsetof(c.Sub); int(off) >= cellBytes {
		t.Errorf("Sub offset %d outside cell size %d", off, cellBytes)
	}
}
