package core

import "testing"

// §5.5: "results are not very sensitive to that choice, and performance
// is good even with n1 = n2 = n3 = 1."
func TestAsyncParamInsensitivity(t *testing.T) {
	run := func(n1, n2, n3 int) float64 {
		opts := DefaultOptions(4096, 8, LevelAsync)
		opts.Steps, opts.Warmup = 2, 1
		opts.N1, opts.N2, opts.N3 = n1, n2, n3
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Phases[PhaseForce]
	}
	base := run(4, 4, 4)
	for _, cfg := range [][3]int{{1, 1, 1}, {8, 8, 8}, {16, 2, 8}, {2, 16, 1}} {
		got := run(cfg[0], cfg[1], cfg[2])
		t.Logf("n1=%d n2=%d n3=%d: force=%.4fs (base %.4fs)", cfg[0], cfg[1], cfg[2], got, base)
		if got > base*3 || got < base/3 {
			t.Errorf("n=%v force time %.4f deviates wildly from base %.4f", cfg, got, base)
		}
	}
}

// The async framework must produce the same physics as the blocking
// cached walk (same cells, different schedule).
func TestAsyncMatchesBlockingForces(t *testing.T) {
	run := func(level Level) *Result {
		opts := DefaultOptions(2048, 8, level)
		opts.Steps, opts.Warmup = 2, 1
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	blocking := run(LevelMergedBuild)
	async := run(LevelAsync)
	for i := range blocking.Bodies {
		d := blocking.Bodies[i].Pos.Sub(async.Bodies[i].Pos).Len()
		if d > 1e-9 {
			t.Fatalf("body %d diverged by %g between blocking and async force", i, d)
		}
	}
	if async.Interactions != blocking.Interactions {
		t.Errorf("interaction counts differ: async %d vs blocking %d",
			async.Interactions, blocking.Interactions)
	}
}

// Options validation failure injection.
func TestOptionsValidation(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.Bodies = 1 },
		func(o *Options) { o.Machine = nil },
		func(o *Options) { o.Steps = 1; o.Warmup = 1 },
		func(o *Options) { o.Level = NumLevels },
		func(o *Options) { o.Theta = 0 },
	}
	for i, mut := range bad {
		opts := DefaultOptions(256, 2, LevelSubspace)
		mut(&opts)
		if _, err := New(opts); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for level := LevelBaseline; level < NumLevels; level++ {
		got, err := ParseLevel(level.String())
		if err != nil || got != level {
			t.Errorf("round trip failed for %v", level)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Error("bogus level accepted")
	}
}
