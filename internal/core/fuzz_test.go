package core

import (
	"encoding/json"
	"math"
	"testing"

	"upcbh/internal/nbody"
)

// FuzzParseLevel: arbitrary input never panics; accepted names
// round-trip through String.
func FuzzParseLevel(f *testing.F) {
	for l := LevelBaseline; l < NumLevels; l++ {
		f.Add(l.String())
	}
	f.Add("")
	f.Add("Subspace")
	f.Add("subspace ")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ParseLevel(s)
		if err != nil {
			return
		}
		if l < 0 || l >= NumLevels {
			t.Fatalf("ParseLevel(%q) accepted out-of-range level %d", s, int(l))
		}
		if l.String() != s {
			t.Fatalf("ParseLevel(%q) = %v, which prints as %q", s, l, l.String())
		}
	})
}

// FuzzParseScenario: arbitrary input never panics; accepted names
// round-trip through Name, and the generator is usable.
func FuzzParseScenario(f *testing.F) {
	for _, name := range nbody.ScenarioNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("Plummer")
	f.Add("two_plummer")
	f.Fuzz(func(t *testing.T, s string) {
		scn, err := ParseScenario(s)
		if err != nil {
			return
		}
		if s != "" && scn.Name() != s {
			t.Fatalf("ParseScenario(%q).Name() = %q", s, scn.Name())
		}
		if s == "" && scn.Name() != nbody.DefaultScenario {
			t.Fatalf("ParseScenario(\"\") resolved to %q, want the default", scn.Name())
		}
	})
}

// fuzzOptions builds a canonical Options value from fuzzed raw inputs:
// enums are reduced into range, and validate() is required to either
// reject the value or leave behind something Key/JSON can serve.
func fuzzOptions(bodies, steps, warmup, threads int, theta, eps, dt, alpha float64,
	seed uint64, level, scn uint8, native, alias, vecRed, verify, tcache bool) (Options, bool) {
	// Non-finite floats marshal to a JSON error by design; they can
	// never reach a runnable Options value, so skip them here.
	for _, v := range []float64{theta, eps, dt, alpha} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Options{}, false
		}
	}
	if bodies < 0 {
		bodies = -(bodies + 1)
	}
	if threads < 0 {
		threads = -(threads + 1)
	}
	names := nbody.ScenarioNames()
	o := DefaultOptions(2+bodies%4096, 1+threads%16, Level(int(level)%int(NumLevels)))
	o.Steps, o.Warmup = steps, warmup
	o.Theta, o.Eps, o.Dt, o.Seed = theta, eps, dt, seed
	o.Scenario = names[int(scn)%len(names)]
	o.SubspaceAlpha = alpha
	if native {
		o.ExecMode = ModeNative
	}
	o.AliasLocalCells, o.VectorReduce, o.Verify, o.TransparentCache = alias, vecRed, verify, tcache
	if err := o.validate(); err != nil {
		return Options{}, false
	}
	return o, true
}

// FuzzOptionsJSONRoundTrip: every Options value that validates must
// survive marshal/unmarshal with an identical canonical Key and
// identical semantic fields.
func FuzzOptionsJSONRoundTrip(f *testing.F) {
	f.Add(2048, 4, 2, 8, 1.0, 0.05, 0.025, 2.0/3.0, uint64(123), uint8(6), uint8(0), false, false, true, false, false)
	f.Add(256, 2, 1, 4, 0.5, 0.01, 0.1, 0.5, uint64(7), uint8(3), uint8(3), true, true, false, true, true)
	f.Fuzz(func(t *testing.T, bodies, steps, warmup, threads int, theta, eps, dt, alpha float64,
		seed uint64, level, scn uint8, native, alias, vecRed, verify, tcache bool) {
		o, ok := fuzzOptions(bodies, steps, warmup, threads, theta, eps, dt, alpha,
			seed, level, scn, native, alias, vecRed, verify, tcache)
		if !ok {
			return
		}
		raw, err := json.Marshal(o)
		if err != nil {
			t.Fatalf("marshal %+v: %v", o, err)
		}
		var got Options
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if got.Key() != o.Key() {
			t.Fatalf("round-trip changed the canonical key:\n got %s\nwant %s\nvia %s", got.Key(), o.Key(), raw)
		}
		if got.Level != o.Level || got.ExecMode != o.ExecMode || got.Scenario != o.Scenario {
			t.Fatalf("round-trip lost fields: %+v vs %+v", got, o)
		}
	})
}

// FuzzOptionsKeyCollisionFree: two validated Options that differ in any
// semantic field must never share a Key — a collision would make the
// bench Runner silently serve one configuration's results as the
// other's. (The converse — canonically equal values sharing a key — is
// pinned by TestOptionsKeyCanonicalizesDefaults.)
func FuzzOptionsKeyCollisionFree(f *testing.F) {
	f.Add(2048, 4096, uint64(1), uint64(2), uint8(0), uint8(1), uint8(0), uint8(6), 1.0, 0.5, false, true)
	f.Fuzz(func(t *testing.T, bodiesA, bodiesB int, seedA, seedB uint64,
		scnA, scnB, levelA, levelB uint8, thetaA, thetaB float64, nativeA, nativeB bool) {
		a, okA := fuzzOptions(bodiesA, 4, 2, 8, thetaA, 0.05, 0.025, 2.0/3.0, seedA, levelA, scnA, nativeA, false, true, false, false)
		b, okB := fuzzOptions(bodiesB, 4, 2, 8, thetaB, 0.05, 0.025, 2.0/3.0, seedB, levelB, scnB, nativeB, false, true, false, false)
		if !okA || !okB {
			return
		}
		distinct := a.Bodies != b.Bodies || a.Seed != b.Seed || a.Scenario != b.Scenario ||
			a.Level != b.Level || a.Theta != b.Theta || a.ExecMode != b.ExecMode
		if distinct && a.Key() == b.Key() {
			t.Fatalf("distinct options collide on key %s:\n%+v\n%+v", a.Key(), a, b)
		}
		if !distinct && a.Key() != b.Key() {
			t.Fatalf("canonically equal options got different keys:\n%s\n%s", a.Key(), b.Key())
		}
	})
}
