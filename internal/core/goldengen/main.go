// Command goldengen regenerates the Simulate-backend golden phase tables
// embedded in internal/core/golden_test.go. Run it from a tree whose cost
// model is known-good (e.g. before an intentional model change) and paste
// the output into the golden maps:
//
//	go run ./internal/core/goldengen            # 1-thread (exact goldens)
//	go run ./internal/core/goldengen -threads 4 # 4-thread (tolerance goldens)
package main

import (
	"flag"
	"fmt"

	"upcbh/internal/core"
)

func main() {
	threads := flag.Int("threads", 1, "emulated UPC threads")
	n := flag.Int("n", 2048, "bodies")
	scenario := flag.String("scenario", "", "workload scenario (default plummer)")
	flag.Parse()

	for level := core.LevelBaseline; level < core.NumLevels; level++ {
		opts := core.DefaultOptions(*n, *threads, level)
		opts.Scenario = *scenario
		sim, err := core.New(opts)
		if err != nil {
			panic(err)
		}
		res, err := sim.Run()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%q: {", level)
		for p := core.Phase(0); p < core.NumPhases; p++ {
			if p > 0 {
				fmt.Printf(", ")
			}
			fmt.Printf("%.17g", res.Phases[p])
		}
		fmt.Printf("},\n")
	}
}
