package core

import (
	"encoding/json"
	"fmt"
	"io"
	"unsafe"

	"upcbh/internal/arena"
	"upcbh/internal/hostenv"
	"upcbh/internal/upc"
)

// Checkpoint/restore of a paused simulation (DESIGN.md §13).
//
// The state captured here is exactly what persists across a completed
// step gate: the scheduler parks every live thread in its step state
// with the run queue empty, no barrier or collective arrivals counted
// and no lock held, so barrier/collective/lock-protocol state is
// quiescent by construction and only the values below travel. Restore
// reconstructs everything else by re-running the deterministic setup —
// core.New + session start is a pure function of Options, reproducing
// the heap allocation layout ref for ref — and then overwrites the
// mutable state in place while the fresh session is paused. Under the
// simulate backend the continuation is byte-identical to the
// uninterrupted run (clocks, phase tables, scheduler counters and all);
// under the native backend wall-clock timings necessarily differ and
// the guarantee is exact physics.
//
// Checkpoint layout: three regions in the arena checkpoint container.
//
//	"state"  JSON (ckptState): Options, step counts, runtime clocks and
//	         scheduler counters, lock horizon, shared scalars, and every
//	         thread's persistent private state.
//	"heap"   the bodies heap: each shard's allocated bytes [0, n),
//	         concatenated in thread order.
//	"refs"   each thread's owned-body reference list (raw upc.Ref
//	         bytes), concatenated in thread order.

// Region names within the checkpoint container.
const (
	regState = "state"
	regHeap  = "heap"
	regRefs  = "refs"
)

// ckptThread is one thread's persistent private state (the subset of
// tstate that survives a step gate; scratch that every step rebuilds —
// local trees, migration worklists, caches — is reconstructed).
type ckptThread struct {
	Step int `json:"step"`

	// Double-buffer geometry: the buffers' heap refs and occupancy.
	// Captured rather than recomputed because subspace redistribution
	// may have grown the buffers mid-run.
	Buf    [2]upc.Ref `json:"buf"`
	BufCap int        `json:"buf_cap"`
	Cur    int        `json:"cur"`
	CurLen int        `json:"cur_len"`
	NOwned int        `json:"n_owned"` // myBodies length; slices the refs region

	// Replicated scalars.
	Tol  float64  `json:"tol"`
	Eps  float64  `json:"eps"`
	Geom rootGeom `json:"geom"`
	Root NodeRef  `json:"root"`

	// FlatEpoch is the native snapshot epoch this thread expects next
	// (flatnative.go); restoring it keeps the epoch assertions sound.
	FlatEpoch uint64 `json:"flat_epoch,omitempty"`

	// Accumulated counters (measured steps).
	Inter        uint64  `json:"inter"`
	Migrated     int     `json:"migrated"`
	OwnedTot     int     `json:"owned_tot"`
	BufCopies    int     `json:"buf_copies"`
	CellsCopied  uint64  `json:"cells_copied"`
	CellsAliased uint64  `json:"cells_aliased"`
	TreeLocalT   float64 `json:"tree_local_t"`
	TreeMergeT   float64 `json:"tree_merge_t"`

	Phases    PhaseTimes           `json:"phases"`
	StepPh    []PhaseTimes         `json:"step_ph"`
	PhaseComm [NumPhases]upc.Stats `json:"phase_comm"`
}

// ckptState is the JSON "state" region.
type ckptState struct {
	Options   Options          `json:"options"`
	StepsDone int              `json:"steps_done"`
	Runtime   upc.RuntimeState `json:"runtime"`
	Locks     []float64        `json:"locks"`

	// UPC shared scalars (affinity thread 0).
	TolS  float64  `json:"tol_s"`
	EpsS  float64  `json:"eps_s"`
	GeomS rootGeom `json:"geom_s"`
	RootS NodeRef  `json:"root_s"`

	// HeapLens[i] is the element count of bodies shard i; together with
	// the element size it slices the heap region.
	HeapLens []int32 `json:"heap_lens"`

	Threads []ckptThread `json:"threads"`
}

// Checkpoint serializes the paused simulation to w in the versioned
// arena checkpoint format. Legal at any step gate (a fresh Sim is
// started and checkpointed before step 0); a finished or released Sim
// cannot be checkpointed. The simulation is not perturbed: every read
// is a copy taken while the runtime is quiescent.
func (s *Sim) Checkpoint(w io.Writer) error {
	regions, err := s.checkpointRegions()
	if err != nil {
		return err
	}
	return arena.WriteCheckpoint(w, s.o.Key(), s.stepsDone, captureEnv(), regions)
}

// CheckpointFile writes the checkpoint through a file-backed mmap
// (arena.WriteFileCheckpoint): the msync-based zero-copy path,
// byte-identical to what Checkpoint streams.
func (s *Sim) CheckpointFile(path string) error {
	regions, err := s.checkpointRegions()
	if err != nil {
		return err
	}
	return arena.WriteFileCheckpoint(path, s.o.Key(), s.stepsDone, captureEnv(), regions)
}

func captureEnv() json.RawMessage {
	env, err := json.Marshal(hostenv.Capture())
	if err != nil {
		return nil
	}
	return env
}

func (s *Sim) checkpointRegions() ([]arena.NamedRegion, error) {
	switch s.state {
	case simNew:
		s.start()
	case simPaused:
	case simFinished:
		return nil, fmt.Errorf("core: Checkpoint on a finished Sim: %w", ErrFinished)
	case simReleased:
		return nil, fmt.Errorf("core: Checkpoint on a released Sim: %w", ErrReleased)
	}
	p := s.rt.Threads()
	cs := ckptState{
		Options:   s.o,
		StepsDone: s.stepsDone,
		Runtime:   s.rt.CaptureState(),
		Locks:     s.locks.CaptureAvail(),
		TolS:      s.tolS.Peek(),
		EpsS:      s.epsS.Peek(),
		GeomS:     s.geomS.Peek(),
		RootS:     s.rootS.Peek(),
		HeapLens:  make([]int32, p),
		Threads:   make([]ckptThread, p),
	}
	var heap, refs []byte
	for i, st := range s.ts {
		cs.HeapLens[i] = int32(s.bodies.Len(i))
		heap = s.bodies.CaptureShard(i, heap)
		refs = appendRefBytes(refs, st.myBodies)
		cs.Threads[i] = ckptThread{
			Step:         st.step,
			Buf:          st.buf,
			BufCap:       st.bufCap,
			Cur:          st.cur,
			CurLen:       st.curLen,
			NOwned:       len(st.myBodies),
			Tol:          st.tol,
			Eps:          st.eps,
			Geom:         st.geom,
			Root:         st.root,
			FlatEpoch:    st.flatEpoch,
			Inter:        st.inter,
			Migrated:     st.migrated,
			OwnedTot:     st.ownedTot,
			BufCopies:    st.bufCopies,
			CellsCopied:  st.cellsCopied,
			CellsAliased: st.cellsAliased,
			TreeLocalT:   st.treeLocalT,
			TreeMergeT:   st.treeMergeT,
			Phases:       st.phases,
			StepPh:       st.stepPh,
			PhaseComm:    st.phaseComm,
		}
	}
	state, err := json.Marshal(&cs)
	if err != nil {
		return nil, fmt.Errorf("core: encode checkpoint state: %w", err)
	}
	return []arena.NamedRegion{
		{Name: regState, Data: state},
		{Name: regHeap, Data: heap},
		{Name: regRefs, Data: refs},
	}, nil
}

const refBytes = int(unsafe.Sizeof(upc.Ref{}))

func appendRefBytes(buf []byte, refs []upc.Ref) []byte {
	if len(refs) == 0 {
		return buf
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&refs[0])), len(refs)*refBytes)
	return append(buf, b...)
}

// Restore reconstructs a paused simulation from a checkpoint written by
// Checkpoint/CheckpointFile. The returned Sim is paused at the
// checkpointed step: Step, Snapshot, Run, Finish, Release — and another
// Checkpoint — are all legal, and under the simulate backend the
// continuation is byte-identical to the run the checkpoint interrupted.
// Corrupt, truncated or incompatible input yields an error, never a
// partially restored Sim.
func Restore(r io.Reader) (*Sim, error) {
	c, err := arena.ReadCheckpoint(r)
	if err != nil {
		return nil, badCheckpoint(err)
	}
	state, ok := c.Region(regState)
	if !ok {
		return nil, badCheckpoint(fmt.Errorf("core: checkpoint has no %q region", regState))
	}
	var cs ckptState
	if err := json.Unmarshal(state, &cs); err != nil {
		return nil, badCheckpoint(fmt.Errorf("core: corrupt checkpoint state: %w", err))
	}
	if key := cs.Options.Key(); key != c.Header.Key {
		return nil, badCheckpoint(fmt.Errorf("core: checkpoint key mismatch: header says %q, state decodes to %q", c.Header.Key, key))
	}
	if cs.StepsDone != c.Header.Step {
		return nil, badCheckpoint(fmt.Errorf("core: checkpoint step mismatch: header says %d, state says %d", c.Header.Step, cs.StepsDone))
	}
	heap, ok := c.Region(regHeap)
	if !ok {
		return nil, badCheckpoint(fmt.Errorf("core: checkpoint has no %q region", regHeap))
	}
	refs, ok := c.Region(regRefs)
	if !ok {
		return nil, badCheckpoint(fmt.Errorf("core: checkpoint has no %q region", regRefs))
	}
	s, err := New(cs.Options)
	if err != nil {
		if verr := cs.Options.validate(); verr != nil {
			return nil, badCheckpoint(fmt.Errorf("core: checkpoint options rejected: %w", verr))
		}
		return nil, fmt.Errorf("core: construct restore target: %w", err)
	}
	if err := s.restoreState(&cs, heap, refs); err != nil {
		s.Release()
		return nil, badCheckpoint(err)
	}
	return s, nil
}

// PeekCheckpointHeader extracts the key and step a checkpoint
// container claims to capture, validating only the header (magic,
// version, shape) — not the payload. The durable checkpoint store uses
// it to answer "is this key+step already persisted?" without a full
// parse; the claim must still be proven by Restore before anything
// trusts the payload. Malformed input is marked ErrBadCheckpoint.
func PeekCheckpointHeader(data []byte) (key string, step int, err error) {
	h, err := arena.PeekHeader(data)
	if err != nil {
		return "", 0, badCheckpoint(err)
	}
	return h.Key, h.Step, nil
}

// badCheckpoint marks err as the checkpoint container's fault. Callers
// that restore on behalf of someone else (bhserve's POST /sims/restore)
// separate uploader mistakes from server-side construction failures
// with errors.Is(err, ErrBadCheckpoint).
func badCheckpoint(err error) error { return &badCheckpointError{err} }

type badCheckpointError struct{ err error }

func (e *badCheckpointError) Error() string   { return e.err.Error() }
func (e *badCheckpointError) Unwrap() []error { return []error{ErrBadCheckpoint, e.err} }

// restoreState overwrites the freshly constructed Sim's state with the
// captured snapshot. The fresh session has run setup and parked before
// step 0, so the heap allocation layout is the checkpointed run's
// setup-time layout; shards the checkpointed run grew past it are
// extended first, then every mutable byte is replaced.
func (s *Sim) restoreState(cs *ckptState, heap, refs []byte) error {
	p := s.rt.Threads()
	if len(cs.Threads) != p || len(cs.HeapLens) != p {
		return fmt.Errorf("core: checkpoint carries %d thread states for a %d-thread machine", len(cs.Threads), p)
	}
	if cs.StepsDone < 0 || cs.StepsDone > s.o.Steps {
		return fmt.Errorf("core: checkpoint at step %d outside the configured %d-step schedule", cs.StepsDone, s.o.Steps)
	}
	s.start()
	if err := s.rt.RestoreState(cs.Runtime); err != nil {
		return err
	}
	if err := s.locks.RestoreAvail(cs.Locks); err != nil {
		return err
	}
	s.tolS.Poke(cs.TolS)
	s.epsS.Poke(cs.EpsS)
	s.geomS.Poke(cs.GeomS)
	s.rootS.Poke(cs.RootS)

	elem := s.bodies.ElemSize()
	var heapOff, refsOff int
	for i, st := range s.ts {
		tc := &cs.Threads[i]
		n := int(cs.HeapLens[i])
		if cur := s.bodies.Len(i); cur > n {
			return fmt.Errorf("core: checkpoint shard %d holds %d bodies but fresh setup allocated %d — incompatible layout", i, n, cur)
		}
		if err := s.bodies.GrowShard(i, cs.HeapLens[i]); err != nil {
			return err
		}
		nb := n * elem
		if heapOff+nb > len(heap) {
			return fmt.Errorf("core: checkpoint heap region truncated (shard %d needs %d bytes, %d left)", i, nb, len(heap)-heapOff)
		}
		if err := s.bodies.RestoreShard(i, heap[heapOff:heapOff+nb]); err != nil {
			return err
		}
		heapOff += nb

		if tc.NOwned < 0 || tc.NOwned > (len(refs)-refsOff)/refBytes {
			return fmt.Errorf("core: checkpoint refs region truncated (thread %d owns %d bodies)", i, tc.NOwned)
		}
		st.myBodies = st.myBodies[:0]
		for j := 0; j < tc.NOwned; j++ {
			r := *(*upc.Ref)(unsafe.Pointer(&refs[refsOff+j*refBytes]))
			if int(r.Thr) < 0 || int(r.Thr) >= p || r.Idx < 0 || r.Idx >= cs.HeapLens[r.Thr] {
				return fmt.Errorf("core: checkpoint body ref %v out of range", r)
			}
			st.myBodies = append(st.myBodies, r)
		}
		refsOff += tc.NOwned * refBytes

		// The double-buffer geometry is dereferenced unchecked on the
		// hot path (redistribute LocalSlices up to bufCap elements at
		// st.buf[st.cur]), so a CRC-valid but crafted container must
		// not get out-of-range values past this point: a buffer ref
		// must be local to its thread, lie within the restored shard,
		// and fit one allocation chunk (the LocalSlice precondition
		// every genuine Alloc satisfies).
		if tc.Cur != 0 && tc.Cur != 1 {
			return fmt.Errorf("core: checkpoint thread %d current-buffer index %d (want 0 or 1)", i, tc.Cur)
		}
		if tc.BufCap < 1 || tc.CurLen < 0 || tc.CurLen > tc.BufCap {
			return fmt.Errorf("core: checkpoint thread %d buffer occupancy %d of capacity %d out of range", i, tc.CurLen, tc.BufCap)
		}
		bufOK := func(r upc.Ref) bool {
			return int(r.Thr) == i && r.Idx >= 0 &&
				int64(r.Idx)+int64(tc.BufCap) <= int64(cs.HeapLens[i]) &&
				s.bodies.OneChunk(r.Idx, tc.BufCap)
		}
		if !bufOK(tc.Buf[tc.Cur]) {
			return fmt.Errorf("core: checkpoint thread %d current buffer %v (capacity %d) out of range", i, tc.Buf[tc.Cur], tc.BufCap)
		}
		if s.o.Level >= LevelRedistribute {
			if !bufOK(tc.Buf[1-tc.Cur]) {
				return fmt.Errorf("core: checkpoint thread %d alternate buffer %v (capacity %d) out of range", i, tc.Buf[1-tc.Cur], tc.BufCap)
			}
		} else if tc.Cur != 0 || tc.Buf[1] != (upc.Ref{}) {
			// Below LevelRedistribute nothing ever allocates or swaps
			// to the alternate buffer; only the setup-time state is
			// genuine.
			return fmt.Errorf("core: checkpoint thread %d carries an alternate buffer %v at level %v", i, tc.Buf[1], s.o.Level)
		}

		st.step = tc.Step
		st.buf = tc.Buf
		st.bufCap = tc.BufCap
		st.cur = tc.Cur
		st.curLen = tc.CurLen
		st.tol = tc.Tol
		st.eps = tc.Eps
		st.geom = tc.Geom
		st.root = tc.Root
		st.flatEpoch = tc.FlatEpoch
		st.inter = tc.Inter
		st.migrated = tc.Migrated
		st.ownedTot = tc.OwnedTot
		st.bufCopies = tc.BufCopies
		st.cellsCopied = tc.CellsCopied
		st.cellsAliased = tc.CellsAliased
		st.treeLocalT = tc.TreeLocalT
		st.treeMergeT = tc.TreeMergeT
		st.phases = tc.Phases
		st.stepPh = append(st.stepPh[:0], tc.StepPh...)
		st.phaseComm = tc.PhaseComm
	}
	if heapOff != len(heap) {
		return fmt.Errorf("core: checkpoint heap region has %d trailing bytes", len(heap)-heapOff)
	}
	if refsOff != len(refs) {
		return fmt.Errorf("core: checkpoint refs region has %d trailing bytes", len(refs)-refsOff)
	}
	s.stepsDone = cs.StepsDone
	return nil
}
