package core

import "testing"

// The per-phase communication profile must attribute traffic where the
// paper's analysis says it belongs.
func TestPhaseCommProfile(t *testing.T) {
	run := func(level Level) *Result {
		opts := DefaultOptions(2048, 8, level)
		opts.Steps, opts.Warmup = 2, 1
		sim, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := run(LevelBaseline)
	// Baseline: the force phase dominates message counts (per-interaction
	// scalar reads and fine-grained node fetches).
	if base.PhaseComm[PhaseForce].Msgs < base.PhaseComm[PhaseTree].Msgs {
		t.Errorf("baseline force msgs (%d) should exceed tree msgs (%d)",
			base.PhaseComm[PhaseForce].Msgs, base.PhaseComm[PhaseTree].Msgs)
	}
	// Tree building is where the locks are.
	if base.PhaseComm[PhaseTree].LockAcqs == 0 {
		t.Error("baseline tree building acquired no locks")
	}
	if base.PhaseComm[PhaseForce].LockAcqs != 0 {
		t.Errorf("force phase acquired %d locks; it is read-only", base.PhaseComm[PhaseForce].LockAcqs)
	}

	redist := run(LevelRedistribute)
	if redist.PhaseComm[PhaseRedist].Bytes == 0 {
		t.Error("redistribution moved no bytes")
	}

	sub := run(LevelSubspace)
	// Subspace build: no locks anywhere (the lock-free hook is the point).
	var locks uint64
	for p := range sub.PhaseComm {
		locks += sub.PhaseComm[p].LockAcqs
	}
	if locks != 0 {
		t.Errorf("subspace level acquired %d locks; the §6 algorithm is lock-free", locks)
	}
	// Async force: gathers recorded in the force phase.
	if sub.PhaseComm[PhaseForce].GatherReqs == 0 {
		t.Error("async force issued no aggregated gathers")
	}
	// And communication collapses versus the baseline.
	if sub.PhaseComm[PhaseForce].Msgs*10 > base.PhaseComm[PhaseForce].Msgs {
		t.Errorf("optimized force msgs (%d) should be <10%% of baseline (%d)",
			sub.PhaseComm[PhaseForce].Msgs, base.PhaseComm[PhaseForce].Msgs)
	}
}
