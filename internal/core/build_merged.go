package core

import (
	"fmt"

	"upcbh/internal/octree"
	"upcbh/internal/upc"
	"upcbh/internal/vec"
)

// buildMerged is the §5.4 tree construction (LevelMergedBuild and
// LevelAsync): each thread builds a lock-free local octree over its own
// bodies (computing local centers of mass), then merges it into the
// shared global tree. Center-of-mass updates during the merge are
// commutative weighted averages performed under the cell lock, so no
// separate c-of-m phase is needed. The local/merge time split per thread
// is recorded for figure 8.
func (s *Sim) buildMerged(t *upc.Thread, st *tstate, measured bool) {
	g := s.boundingBox(t, st)

	// Sub-phase 1: local tree (sequential, no locks, local pointers). The
	// native backend builds it in the flat Morton-sorted arena and emits
	// the cells in one DFS pass (same tree, same aggregates, contiguous
	// shard layout); the simulate backend keeps the charged insertion.
	t0 := t.Now()
	var lroot upc.Ref
	if s.nativeFlat() {
		lroot = s.buildLocalFlat(t, st, g)
	} else {
		lroot = s.newCell(t, st, g.Center, g.Half)
		for _, br := range st.myBodies {
			pos := s.bodyPos(t, st, br)
			s.insertLocalTree(t, st, lroot, br, pos)
		}
		s.cofmLocalTree(t, lroot)
	}
	if measured {
		st.treeLocalT += t.Now() - t0
	}

	// Global root, created by thread 0; synchronized by the broadcast.
	var rootRef upc.Ref
	if t.ID() == 0 {
		rootRef = s.newCell(t, st, g.Center, g.Half)
	}
	rootRef = upc.Broadcast(t, 0, rootRef)
	st.root = CellRef(rootRef)

	// Sub-phase 2: merge the local tree into the global tree.
	t1 := t.Now()
	s.mergeCell(t, st, rootRef, lroot, g.Center, g.Half)
	if measured {
		st.treeMergeT += t.Now() - t1
	}
}

// insertLocalTree inserts a (local) body into the thread's private local
// tree. All accesses are through cast local pointers: only computation
// costs are charged.
func (s *Sim) insertLocalTree(t *upc.Thread, st *tstate, root upc.Ref, bodyR upc.Ref, pos vec.V3) {
	cur := root
	for depth := 0; ; depth++ {
		if depth > maxDepth {
			panic("core: local tree depth limit exceeded (coincident bodies?)")
		}
		t.Charge(s.par.TreeLevelCost)
		cp := s.cells.Local(t, cur)
		oct := octree.Octant(cp.Center, pos)
		slot := cp.Sub[oct]
		switch {
		case slot.IsNil():
			cp.Sub[oct] = BodyRef(bodyR)
			return
		case slot.IsCell():
			cur = slot.Ref()
		default: // body: split
			oldR := slot.Ref()
			oldPos := s.bodies.Local(t, oldR).Pos
			cc, ch := octree.ChildBounds(cp.Center, cp.Half, oct)
			top := s.buildChain(t, st, cc, ch, oldR, oldPos, bodyR, pos, nil)
			cp.Sub[oct] = CellRef(top)
			return
		}
	}
}

// cofmLocalTree computes aggregates over the thread's private local tree
// bottom-up (recursive, local pointers only).
func (s *Sim) cofmLocalTree(t *upc.Thread, root upc.Ref) {
	var rec func(r upc.Ref)
	rec = func(r upc.Ref) {
		cp := s.cells.Local(t, r)
		var wsum vec.V3
		var mass, cost float64
		var n int32
		for oct := range cp.Sub {
			slot := cp.Sub[oct]
			switch {
			case slot.IsNil():
				continue
			case slot.IsBody():
				b := s.bodies.Local(t, slot.Ref())
				wsum = wsum.AddScaled(b.Pos, b.Mass)
				mass += b.Mass
				c := b.Cost
				if c <= 0 {
					c = 1
				}
				cost += c
				n++
			default:
				rec(slot.Ref())
				ch := s.cells.Local(t, slot.Ref())
				wsum = wsum.AddScaled(ch.CofM, ch.Mass)
				mass += ch.Mass
				cost += ch.Cost
				n += ch.NSub
			}
			t.Charge(s.par.TreeLevelCost)
		}
		cp.Mass, cp.Cost, cp.NSub = mass, cost, n
		if mass > 0 {
			cp.CofM = wsum.Scale(1 / mass)
		} else {
			cp.CofM = cp.Center
		}
		cp.Done = 1
	}
	rec(root)
}

// addAggregate merges a (mass, cofm, cost, count) contribution into a
// shared cell under its lock — the paper's atomic weighted-average
// center-of-mass update, valid in any merge order.
func (s *Sim) addAggregate(t *upc.Thread, cRef upc.Ref, mass float64, cofm vec.V3, cost float64, n int32) {
	lk := s.locks.ForRef(cRef)
	lk.Acquire(t)
	s.cells.Touch(t, cRef, bytesAgg)
	s.cells.TouchPut(t, cRef, bytesAgg)
	cp := s.cells.Raw(cRef)
	tm := cp.Mass + mass
	if tm > 0 {
		cp.CofM = cp.CofM.Scale(cp.Mass/tm).AddScaled(cofm, mass/tm)
	}
	cp.Mass = tm
	cp.Cost += cost
	cp.NSub += n
	cp.Done = 1
	lk.Release(t)
}

// mergeCell merges the caller's local cell lRef into the global cell
// gRef; both cover the cube (center, half). The caller's aggregate is
// folded into the global cell, then children are reconciled slot by
// slot: empty slots are hooked (one pointer update), matching cells
// recurse, and body/cell conflicts replay the insertion protocol — the
// step-by-step remote operations that make the losing thread of a merge
// conflict slow (§6.1, figure 8).
func (s *Sim) mergeCell(t *upc.Thread, st *tstate, gRef, lRef upc.Ref, center vec.V3, half float64) {
	lp := s.cells.Local(t, lRef)
	s.addAggregate(t, gRef, lp.Mass, lp.CofM, lp.Cost, lp.NSub)
	gp := s.cells.Raw(gRef)
	for oct := range lp.Sub {
		lch := lp.Sub[oct]
		if lch.IsNil() {
			continue
		}
		cc, ch := octree.ChildBounds(center, half, oct)
	slotLoop:
		for {
			t.Charge(s.par.TreeLevelCost)
			s.cells.Touch(t, gRef, bytesSlot)
			slot := loadSlot(&gp.Sub[oct])
			switch {
			case slot.IsNil():
				lk := s.locks.ForRef(gRef)
				lk.Acquire(t)
				if loadSlot(&gp.Sub[oct]).IsNil() {
					// Hook the whole local subtree: one pointer update.
					s.cells.TouchPut(t, gRef, bytesSlot)
					storeSlot(&gp.Sub[oct], lch)
					lk.Release(t)
					break slotLoop
				}
				lk.Release(t) // raced; retry

			case slot.IsCell():
				if lch.IsCell() {
					s.mergeCell(t, st, slot.Ref(), lch.Ref(), cc, ch)
					break slotLoop
				}
				// Local child is a body: the global slot was claimed by a
				// cell first. Insert the body step by step, updating
				// aggregates along the path (the loser pays).
				b := s.bodies.Local(t, lch.Ref())
				bc := b.Cost
				if bc <= 0 {
					bc = 1
				}
				s.insertBodyMerge(t, st, slot.Ref(), cc, ch, lch.Ref(), b.Pos, b.Mass, bc)
				break slotLoop

			default: // global slot holds a body
				lk := s.locks.ForRef(gRef)
				lk.Acquire(t)
				if loadSlot(&gp.Sub[oct]) != slot {
					lk.Release(t)
					continue slotLoop
				}
				oldR := slot.Ref()
				old := s.bodies.ReadView(t, oldR, bytesBodyCost)
				oldCost := old.Cost
				if oldCost <= 0 {
					oldCost = 1
				}
				if lch.IsBody() {
					b := s.bodies.Local(t, lch.Ref())
					bc := b.Cost
					if bc <= 0 {
						bc = 1
					}
					chain := s.buildChain(t, st, cc, ch, oldR, old.Pos, lch.Ref(), b.Pos,
						&chainAgg{oldMass: old.Mass, oldCost: oldCost, newMass: b.Mass, newCost: bc})
					s.cells.TouchPut(t, gRef, bytesSlot)
					storeSlot(&gp.Sub[oct], CellRef(chain))
				} else {
					// Mine is a cell: fold the displaced body into my
					// (still private) subtree, then hook it.
					s.insertBodyLocalAgg(t, st, lch.Ref(), oldR, old.Pos, old.Mass, oldCost)
					s.cells.TouchPut(t, gRef, bytesSlot)
					storeSlot(&gp.Sub[oct], lch)
				}
				lk.Release(t)
				break slotLoop
			}
		}
	}
}

// insertBodyMerge inserts a body into a published global subtree during
// the merge, adding its contribution to every cell on the descent path
// and placing it under the usual lock protocol.
func (s *Sim) insertBodyMerge(t *upc.Thread, st *tstate, cur upc.Ref, center vec.V3, half float64,
	bodyR upc.Ref, pos vec.V3, mass, cost float64) {

	aggregated := false // add the contribution exactly once per level
	for depth := 0; ; depth++ {
		if depth > maxDepth {
			panic(fmt.Sprintf("core: merge-insert depth limit exceeded for body %v", bodyR))
		}
		if !aggregated {
			s.addAggregate(t, cur, mass, pos, cost, 1)
			aggregated = true
		}
		t.Charge(s.par.TreeLevelCost)
		cp := s.cells.Raw(cur)
		oct := octree.Octant(center, pos)
		s.cells.Touch(t, cur, bytesSlot)
		slot := loadSlot(&cp.Sub[oct])
		switch {
		case slot.IsCell():
			cur = slot.Ref()
			center, half = octree.ChildBounds(center, half, oct)
			aggregated = false

		case slot.IsNil():
			lk := s.locks.ForRef(cur)
			lk.Acquire(t)
			if loadSlot(&cp.Sub[oct]).IsNil() {
				s.cells.TouchPut(t, cur, bytesSlot)
				storeSlot(&cp.Sub[oct], BodyRef(bodyR))
				lk.Release(t)
				return
			}
			lk.Release(t)

		default:
			lk := s.locks.ForRef(cur)
			lk.Acquire(t)
			if loadSlot(&cp.Sub[oct]) != slot {
				lk.Release(t)
				continue
			}
			oldR := slot.Ref()
			old := s.bodies.ReadView(t, oldR, bytesBodyCost)
			oldCost := old.Cost
			if oldCost <= 0 {
				oldCost = 1
			}
			cc, ch := octree.ChildBounds(center, half, oct)
			chain := s.buildChain(t, st, cc, ch, oldR, old.Pos, bodyR, pos,
				&chainAgg{oldMass: old.Mass, oldCost: oldCost, newMass: mass, newCost: cost})
			s.cells.TouchPut(t, cur, bytesSlot)
			storeSlot(&cp.Sub[oct], CellRef(chain))
			lk.Release(t)
			return
		}
	}
}

// insertBodyLocalAgg inserts a displaced body into the caller's still
// private subtree, updating aggregates along the path. No locks: the
// subtree is unpublished.
func (s *Sim) insertBodyLocalAgg(t *upc.Thread, st *tstate, root upc.Ref, bodyR upc.Ref, pos vec.V3, mass, cost float64) {
	cur := root
	for depth := 0; ; depth++ {
		if depth > maxDepth {
			panic("core: private merge-insert depth limit exceeded")
		}
		t.Charge(s.par.TreeLevelCost)
		cp := s.cells.Local(t, cur)
		// Fold the contribution in (no lock needed; private).
		tm := cp.Mass + mass
		if tm > 0 {
			cp.CofM = cp.CofM.Scale(cp.Mass/tm).AddScaled(pos, mass/tm)
		}
		cp.Mass = tm
		cp.Cost += cost
		cp.NSub++
		oct := octree.Octant(cp.Center, pos)
		slot := cp.Sub[oct]
		switch {
		case slot.IsNil():
			cp.Sub[oct] = BodyRef(bodyR)
			return
		case slot.IsCell():
			cur = slot.Ref()
		default:
			oldR := slot.Ref()
			old := s.bodies.ReadView(t, oldR, bytesBodyCost)
			oldCost := old.Cost
			if oldCost <= 0 {
				oldCost = 1
			}
			cc, ch := octree.ChildBounds(cp.Center, cp.Half, oct)
			chain := s.buildChain(t, st, cc, ch, oldR, old.Pos, bodyR, pos,
				&chainAgg{oldMass: old.Mass, oldCost: oldCost, newMass: mass, newCost: cost})
			cp.Sub[oct] = CellRef(chain)
			return
		}
	}
}
