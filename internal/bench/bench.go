// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation at configurable (scaled-down)
// workload sizes, formatting results in the paper's layout so shapes can
// be compared side by side. See DESIGN.md §4 for the experiment index.
//
// Experiments execute through a shared Runner that memoizes
// configurations by core.Options.Key (configs shared across
// tables/figures simulate once) and runs independent simulate-mode
// configs concurrently; each Experiment.Run returns a structured Report
// that serializes to JSON. See DESIGN.md §5.
package bench

import (
	"fmt"
	"strings"
	"time"

	"upcbh/internal/core"
	"upcbh/internal/machine"
)

// Params controls workload scaling for an experiment run.
type Params struct {
	// Scale multiplies body counts; 1.0 is the harness default workload
	// (a laptop-sized stand-in for the paper's 2M bodies), smaller values
	// suit unit benches.
	Scale float64 `json:"scale"`
	// MaxThreads caps the emulated thread counts (0 = experiment default).
	MaxThreads int `json:"max_threads,omitempty"`
	// Steps/Warmup override the paper's 4/2 when positive.
	Steps  int `json:"steps,omitempty"`
	Warmup int `json:"warmup,omitempty"`
	// Mode selects the execution backend for every experiment run
	// (default ModeSimulate — the paper's tables are simulated-time
	// tables). Experiments whose results only exist in the cost model
	// stay simulated regardless: ext-native always runs both backends,
	// ext-cache/ext-mpi compare simulated costs, and any run with a
	// custom machine (table9, fig12, ...) is pinned by options().
	Mode core.ExecMode `json:"mode"`
	// Scenario selects the workload scenario every experiment runs on
	// ("" = the paper's Plummer sphere). The imbalance experiment
	// sweeps all scenarios itself and ignores this.
	Scenario string `json:"scenario,omitempty"`
	// NativeThreads overrides the scaling experiment's thread-count
	// sweep (default: doubling counts up to the host's CPUs). The CLI
	// rejects counts beyond runtime.NumCPU before it gets here.
	NativeThreads []int `json:"native_threads,omitempty"`
}

// DefaultParams is the full harness configuration.
func DefaultParams() Params { return Params{Scale: 1.0} }

// QuickParams is a reduced configuration for `go test -bench`.
func QuickParams() Params { return Params{Scale: 0.25, MaxThreads: 32} }

// Experiment reproduces one table or figure.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the paper's version shows, for side-by-side
	// comparison in EXPERIMENTS.md.
	Paper string
	// run renders the experiment's paper-layout text, executing every
	// configuration through the Exec so it lands in the Report.
	run func(x *Exec) (string, error)
}

// Run executes the experiment through the shared Runner and returns the
// structured Report: per-config result summaries plus the rendered text.
// Configurations already simulated by r — by this experiment or any
// other — are served from its cache.
func (e Experiment) Run(r *Runner, p Params) (*Report, error) {
	x := &Exec{R: r, P: p}
	start := time.Now()
	text, err := e.run(x)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	return &Report{
		ID:      e.ID,
		Title:   e.Title,
		Paper:   e.Paper,
		Params:  p,
		Env:     CaptureEnv(),
		Configs: x.configs,
		Data:    x.data,
		Text:    text,
		Elapsed: time.Since(start).Seconds(),
	}, nil
}

// strongBodies is the default stand-in for the paper's 2M-body strong
// scaling workload.
const strongBodies = 16384

// weakPerThread is the default stand-in for 250K bodies/thread.
const weakPerThread = 1024

// strongThreads mirrors the paper's node counts.
var strongThreads = []int{1, 2, 4, 8, 16, 32, 64, 96, 112}

func (p Params) threads(def []int) []int {
	max := p.MaxThreads
	if max <= 0 {
		return def
	}
	var out []int
	for _, t := range def {
		if t <= max {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = []int{def[0]}
	}
	return out
}

func (p Params) bodies(def int) int {
	n := int(float64(def) * p.Scale)
	if n < 256 {
		n = 256
	}
	return n
}

func (p Params) steps() (int, int) {
	if p.Steps > 0 {
		return p.Steps, p.Warmup
	}
	return 4, 2
}

// options builds the standard options for an experiment configuration.
func options(p Params, n, threads int, level core.Level, m *machine.Machine) core.Options {
	opts := core.DefaultOptions(n, threads, level)
	opts.Steps, opts.Warmup = p.steps()
	opts.ExecMode = p.Mode
	opts.Scenario = p.Scenario
	if m != nil {
		// A custom machine means the experiment's point is the cost model
		// (node packing, pthreads factor, loopback path) — which the
		// native backend ignores entirely. Pin those runs to simulation so
		// `-mode native` cannot turn their labelled series into identical
		// wall-clock noise.
		opts.ExecMode = core.ModeSimulate
		opts.Machine = m
	}
	return opts
}

// PhaseTable is a paper-style table: one column group per thread count,
// rows per phase with time and percentage.
type PhaseTable struct {
	Title   string
	Threads []int
	Results []*core.Result
}

// phaseRows returns the phases to print for a level (the paper drops the
// c-of-m row from Table 6 on, and redistribution starts at Table 4).
func phaseRows(level core.Level) []core.Phase {
	switch {
	case level >= core.LevelMergedBuild:
		return []core.Phase{core.PhaseTree, core.PhasePartition, core.PhaseRedist, core.PhaseForce, core.PhaseAdvance}
	case level >= core.LevelRedistribute:
		return []core.Phase{core.PhaseTree, core.PhaseCofM, core.PhasePartition, core.PhaseRedist, core.PhaseForce, core.PhaseAdvance}
	default:
		return []core.Phase{core.PhaseTree, core.PhaseCofM, core.PhasePartition, core.PhaseForce, core.PhaseAdvance}
	}
}

// Format renders the table in the paper's layout.
func (pt *PhaseTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", pt.Title)
	level := pt.Results[0].Level
	rows := phaseRows(level)

	fmt.Fprintf(&b, "%-16s", "")
	for _, th := range pt.Threads {
		fmt.Fprintf(&b, "%14d", th)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-16s", "")
	for range pt.Threads {
		fmt.Fprintf(&b, "%9s%5s", "t(s)", "%")
	}
	b.WriteByte('\n')

	for _, ph := range rows {
		fmt.Fprintf(&b, "%-16s", ph.String())
		for _, r := range pt.Results {
			tot := r.Total()
			pct := 0.0
			if tot > 0 {
				pct = 100 * r.Phases[ph] / tot
			}
			fmt.Fprintf(&b, "%9s%5.1f", fmtTime(r.Phases[ph]), pct)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-16s", "Total")
	for _, r := range pt.Results {
		fmt.Fprintf(&b, "%9s%5s", fmtTime(r.Total()), "")
	}
	b.WriteByte('\n')
	return b.String()
}

// CSV renders the table in machine-readable form.
func (pt *PhaseTable) CSV() string {
	var b strings.Builder
	b.WriteString("threads")
	for ph := core.Phase(0); ph < core.NumPhases; ph++ {
		fmt.Fprintf(&b, ",%s", ph)
	}
	b.WriteString(",total\n")
	for i, th := range pt.Threads {
		fmt.Fprintf(&b, "%d", th)
		for ph := core.Phase(0); ph < core.NumPhases; ph++ {
			fmt.Fprintf(&b, ",%.6f", pt.Results[i].Phases[ph])
		}
		fmt.Fprintf(&b, ",%.6f\n", pt.Results[i].Total())
	}
	return b.String()
}

func fmtTime(v float64) string {
	switch {
	case v == 0:
		return "0.0"
	case v < 0.01:
		return fmt.Sprintf("%.4f", v)
	case v < 10:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// strongScalingTable runs one optimization level across the strong
// scaling thread counts; the per-thread-count configurations are
// independent, so they execute concurrently on the Runner's pool.
func strongScalingTable(x *Exec, level core.Level, title string, machineFor func(threads int) *machine.Machine) (*PhaseTable, error) {
	p := x.P
	n := p.bodies(strongBodies)
	threads := p.threads(strongThreads)
	pt := &PhaseTable{Title: title, Threads: threads}
	opts := make([]core.Options, len(threads))
	for i, th := range threads {
		var m *machine.Machine
		if machineFor != nil {
			m = machineFor(th)
		}
		opts[i] = options(p, n, th, level, m)
	}
	results, err := x.runAll(opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", title, err)
	}
	pt.Results = results
	return pt, nil
}

func tableExperiment(id, title, paper string, level core.Level, machineFor func(int) *machine.Machine) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Paper: paper,
		run: func(x *Exec) (string, error) {
			pt, err := strongScalingTable(x, level, title, machineFor)
			if err != nil {
				return "", err
			}
			return pt.Format(), nil
		},
	}
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	exps := []Experiment{
		tableExperiment("table2", "Table 2: baseline UPC BH (strong scaling)",
			"severe slow-down vs 1 thread; force comp ~97% of time; 112-thread total ~16x the 1-thread total", core.LevelBaseline, nil),
		tableExperiment("table3", "Table 3: + replicated shared scalars",
			"total at 112 threads drops ~79%; force comp still dominates", core.LevelScalars, nil),
		tableExperiment("table4", "Table 4: + body redistribution",
			"c-of-m and body-advance nearly eliminated; modest total gain", core.LevelRedistribute, nil),
		tableExperiment("table5", "Table 5: + caching via local tree",
			"force comp cut ~99% at scale, ~25% at 1 thread; first real speedups (~13x at 112)", core.LevelCacheTree, nil),
		tableExperiment("table6", "Table 6: + merged local tree build",
			"tree-building+c-of-m reduced ~74% at 112 threads; total -15%", core.LevelMergedBuild, nil),
		tableExperiment("table7", "Table 7: + non-blocking comm & aggregation",
			"force comp -81% at 112 threads; total -75%; speedup >70", core.LevelAsync, nil),
		tableExperiment("table8", "Table 8: subspace build, strong scaling, 1 process/node",
			"overall best; 1644x faster than baseline at 112 threads", core.LevelSubspace, nil),
		tableExperiment("table9", "Table 9: subspace build, strong scaling, 1 thread/node (-pthreads)",
			"threaded runtime ~1.4-2x slower than process mode at equal thread counts", core.LevelSubspace,
			func(th int) *machine.Machine { return machine.MustNew(th, 1, true, machine.Power5()) }),
	}
	exps = append(exps, figureExperiments()...)
	exps = append(exps, extensionExperiments()...)
	return exps
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (try `bhbench -list`)", id)
}
