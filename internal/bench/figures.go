package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"upcbh/internal/core"
	"upcbh/internal/machine"
)

// weakThreads mirrors the paper's weak-scaling sweep (scaled down: the
// paper goes to 1024-1792 threads on real nodes).
var weakThreads = []int{4, 8, 16, 32, 64, 128}

// allLevels in cumulative order, for figures 5 and 6.
var allLevels = []core.Level{
	core.LevelBaseline, core.LevelScalars, core.LevelRedistribute,
	core.LevelCacheTree, core.LevelMergedBuild, core.LevelAsync, core.LevelSubspace,
}

func figureExperiments() []Experiment {
	return []Experiment{
		{
			ID:    "fig5",
			Title: "Figure 5: speed-up of cumulative optimizations (log scale)",
			Paper: "each added optimization lifts the curve; the full stack reaches ~81x at 112 threads while the baseline never speeds up",
			run:   runFig5,
		},
		{
			ID:    "fig6",
			Title: "Figure 6: time per phase at the maximum thread count, by optimization level",
			Paper: "force computation shrinks from ~3172s to ~1.6s across levels; with everything applied it is ~82% of a much smaller total",
			run:   runFig6,
		},
		{
			ID:    "fig7",
			Title: "Figure 7: weak scaling before the subspace algorithm (merged build + async force)",
			Paper: "all phases scale except tree-building, which grows with threads and dominates beyond ~512 threads",
			run:   runFig7,
		},
		{
			ID:    "fig8",
			Title: "Figure 8: per-thread tree-building time split (local build vs merge)",
			Paper: "local tree building is balanced and cheap (<0.5s); merge time varies 0..26s across threads — the losers of merge conflicts pay",
			run:   runFig8,
		},
		{
			ID:    "fig10",
			Title: "Figure 10: weak scaling, subspace build WITHOUT vector reduction",
			Paper: "per-subspace scalar reductions make tree-building cost blow up as threads grow",
			run: func(x *Exec) (string, error) {
				return runWeakSubspace(x, false)
			},
		},
		{
			ID:    "fig11",
			Title: "Figure 11: weak scaling, subspace build WITH vector reduction",
			Paper: "one vector reduction per level: tree-building scales smoothly",
			run: func(x *Exec) (string, error) {
				return runWeakSubspace(x, true)
			},
		},
		{
			ID:    "fig12",
			Title: "Figure 12: weak scaling with varying threads per node",
			Paper: "fewer nodes for equal threads is slightly better; process mode beats -pthreads by ~50%",
			run:   runFig12,
		},
		{
			ID:    "fig13",
			Title: "Figure 13: strong scaling speed-up, all optimizations",
			Paper: "near-linear speedup with an inflection where bodies/thread drops to ~4K",
			run:   runFig13,
		},
	}
}

// series is one labelled line of a figure.
type series struct {
	label string
	vals  []float64
}

// formatSeries prints labelled series over the x axis, plus a log-scale
// ASCII chart for shape comparison.
func formatSeries(title, yname string, xs []int, ss []series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s", yname+" \\ threads")
	for _, x := range xs {
		fmt.Fprintf(&b, "%10d", x)
	}
	b.WriteByte('\n')
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range ss {
		fmt.Fprintf(&b, "%-28s", s.label)
		for _, v := range s.vals {
			fmt.Fprintf(&b, "%10s", fmtTime(v))
			if v > 0 {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		b.WriteByte('\n')
	}
	if hi > lo {
		b.WriteString("\nlog-scale chart (each # is a factor step; longer = larger):\n")
		for _, s := range ss {
			for i, v := range s.vals {
				bar := 0
				if v > 0 {
					bar = int(40 * (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo)))
				}
				fmt.Fprintf(&b, "%-22s %6d |%s\n", s.label, xs[i], strings.Repeat("#", bar+1))
			}
		}
	}
	return b.String()
}

func runFig5(x *Exec) (string, error) {
	p := x.P
	n := p.bodies(strongBodies)
	threads := p.threads(strongThreads)
	opts := make([]core.Options, 0, len(allLevels)*len(threads))
	for _, level := range allLevels {
		for _, th := range threads {
			opts = append(opts, options(p, n, th, level, nil))
		}
	}
	results, err := x.runAll(opts)
	if err != nil {
		return "", err
	}
	var ss []series
	for li, level := range allLevels {
		row := results[li*len(threads) : (li+1)*len(threads)]
		// Estimated single-thread time (exact when the sweep starts at 1
		// thread, as the defaults do).
		base := row[0].Total() * float64(threads[0])
		s := series{label: level.String()}
		for _, res := range row {
			s.vals = append(s.vals, base/res.Total())
		}
		ss = append(ss, s)
	}
	return formatSeries("Figure 5: speed-up vs same-level single thread", "speedup", threads, ss), nil
}

func runFig6(x *Exec) (string, error) {
	p := x.P
	n := p.bodies(strongBodies)
	threads := p.threads(strongThreads)
	th := threads[len(threads)-1]
	opts := make([]core.Options, len(allLevels))
	for i, level := range allLevels {
		opts[i] = options(p, n, th, level, nil)
	}
	results, err := x.runAll(opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: per-phase simulated time at %d threads, by optimization level\n", th)
	fmt.Fprintf(&b, "%-16s", "phase \\ level")
	for _, level := range allLevels {
		fmt.Fprintf(&b, "%13s", level.String())
	}
	b.WriteByte('\n')
	for ph := core.Phase(0); ph < core.NumPhases; ph++ {
		fmt.Fprintf(&b, "%-16s", ph.String())
		for _, r := range results {
			fmt.Fprintf(&b, "%13s", fmtTime(r.Phases[ph]))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-16s", "Total")
	for _, r := range results {
		fmt.Fprintf(&b, "%13s", fmtTime(r.Total()))
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// weakTable runs a weak-scaling sweep at a fixed level and returns the
// per-phase series over thread counts.
func weakTable(x *Exec, level core.Level, mut func(*core.Options), machineFor func(int) *machine.Machine) ([]int, []*core.Result, error) {
	p := x.P
	per := p.bodies(weakPerThread)
	threads := p.threads(weakThreads)
	opts := make([]core.Options, len(threads))
	for i, th := range threads {
		var m *machine.Machine
		if machineFor != nil {
			m = machineFor(th)
		}
		o := options(p, per*th, th, level, m)
		if mut != nil {
			mut(&o)
		}
		opts[i] = o
	}
	results, err := x.runAll(opts)
	if err != nil {
		return nil, nil, err
	}
	return threads, results, nil
}

func phaseSeries(threads []int, results []*core.Result, phases []core.Phase) []series {
	var ss []series
	for _, ph := range phases {
		s := series{label: ph.String()}
		for _, r := range results {
			s.vals = append(s.vals, r.Phases[ph])
		}
		ss = append(ss, s)
	}
	tot := series{label: "Total"}
	for _, r := range results {
		tot.vals = append(tot.vals, r.Total())
	}
	return append(ss, tot)
}

func runFig7(x *Exec) (string, error) {
	threads, results, err := weakTable(x, core.LevelAsync, nil, nil)
	if err != nil {
		return "", err
	}
	ss := phaseSeries(threads, results, phaseRows(core.LevelAsync))
	return formatSeries(
		fmt.Sprintf("Figure 7: weak scaling, %d bodies/thread, merged build + async force", x.P.bodies(weakPerThread)),
		"t(s)", threads, ss), nil
}

func runFig8(x *Exec) (string, error) {
	p := x.P
	th := 128
	if p.MaxThreads > 0 && th > p.MaxThreads {
		th = p.MaxThreads
	}
	per := p.bodies(weakPerThread)
	res, err := x.runOne(options(p, per*th, th, core.LevelAsync, nil))
	if err != nil {
		return "", err
	}
	local := make([]float64, th)
	merge := make([]float64, th)
	for i, tb := range res.PerThread {
		local[i], merge[i] = tb.TreeLocal, tb.TreeMerge
	}
	sortedM := append([]float64(nil), merge...)
	sort.Float64s(sortedM)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: tree-building time split across %d threads, %d bodies/thread\n", th, per)
	fmt.Fprintf(&b, "local build:  min=%s  median=%s  max=%s  (balanced, cheap)\n",
		fmtTime(minOf(local)), fmtTime(medianOf(local)), fmtTime(maxOf(local)))
	fmt.Fprintf(&b, "tree merge:   min=%s  median=%s  max=%s  (imbalanced: conflict losers pay)\n",
		fmtTime(sortedM[0]), fmtTime(medianOf(merge)), fmtTime(sortedM[len(sortedM)-1]))
	b.WriteString("\nper-thread merge time (sorted, one # per 2% of max):\n")
	mx := sortedM[len(sortedM)-1]
	for i, v := range sortedM {
		if i%8 != 0 && i != len(sortedM)-1 {
			continue // sample every 8th thread to keep output readable
		}
		bar := 0
		if mx > 0 {
			bar = int(50 * v / mx)
		}
		fmt.Fprintf(&b, "%4d %10s |%s\n", i, fmtTime(v), strings.Repeat("#", bar+1))
	}
	return b.String(), nil
}

func runWeakSubspace(x *Exec, vectorReduce bool) (string, error) {
	threads, results, err := weakTable(x, core.LevelSubspace,
		func(o *core.Options) { o.VectorReduce = vectorReduce }, nil)
	if err != nil {
		return "", err
	}
	ss := phaseSeries(threads, results, phaseRows(core.LevelSubspace))
	mode := "with"
	fig := "Figure 11"
	if !vectorReduce {
		mode = "WITHOUT"
		fig = "Figure 10"
	}
	return formatSeries(
		fmt.Sprintf("%s: weak scaling, subspace build %s vector reduction, %d bodies/thread",
			fig, mode, x.P.bodies(weakPerThread)),
		"t(s)", threads, ss), nil
}

func runFig12(x *Exec) (string, error) {
	configs := []struct {
		label    string
		perNode  int
		pthreads bool
	}{
		{"1 thread/node (pthreads)", 1, true},
		{"4 threads/node (pthreads)", 4, true},
		{"8 threads/node (pthreads)", 8, true},
		{"16 threads/node (pthreads)", 16, true},
		{"1 process/node (no pthreads)", 1, false},
	}
	p := x.P
	per := p.bodies(weakPerThread)
	threads := p.threads(weakThreads)
	opts := make([]core.Options, 0, len(configs)*len(threads))
	for _, cfg := range configs {
		for _, th := range threads {
			perNode := cfg.perNode
			if perNode > th {
				perNode = th
			}
			m := machine.MustNew(th, perNode, cfg.pthreads, machine.Power5())
			opts = append(opts, options(p, per*th, th, core.LevelSubspace, m))
		}
	}
	results, err := x.runAll(opts)
	if err != nil {
		return "", err
	}
	var ss []series
	for ci, cfg := range configs {
		s := series{label: cfg.label}
		for _, res := range results[ci*len(threads) : (ci+1)*len(threads)] {
			s.vals = append(s.vals, res.Total())
		}
		ss = append(ss, s)
	}
	return formatSeries(
		fmt.Sprintf("Figure 12: weak scaling by threads per node, %d bodies/thread", per),
		"t(s)", threads, ss), nil
}

func runFig13(x *Exec) (string, error) {
	p := x.P
	n := p.bodies(4 * strongBodies) // larger problem so the inflection is visible
	threads := p.threads(strongThreads)
	opts := make([]core.Options, len(threads))
	for i, th := range threads {
		opts[i] = options(p, n, th, core.LevelSubspace, nil)
	}
	results, err := x.runAll(opts)
	if err != nil {
		return "", err
	}
	base := results[0].Total() * float64(threads[0])
	s := series{label: "subspace (all opts)"}
	ideal := series{label: "ideal"}
	for i, res := range results {
		s.vals = append(s.vals, base/res.Total())
		ideal.vals = append(ideal.vals, float64(threads[i]))
	}
	out := formatSeries(
		fmt.Sprintf("Figure 13: strong scaling speed-up, %d bodies (inflection expected near %d bodies/thread)", n, 4096),
		"speedup", threads, []series{s, ideal})
	return out, nil
}

func minOf(v []float64) float64 {
	m := math.Inf(1)
	for _, x := range v {
		m = math.Min(m, x)
	}
	return m
}

func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		m = math.Max(m, x)
	}
	return m
}

func medianOf(v []float64) float64 {
	c := append([]float64(nil), v...)
	sort.Float64s(c)
	return c[len(c)/2]
}
