package bench

import (
	"fmt"
	"runtime"
	"sync"

	"upcbh/internal/core"
)

// Runner executes simulation configurations for the experiment harness
// with two properties the naive per-experiment loop lacks:
//
//   - Memoization: configurations are canonicalized via Options.Key, and
//     each unique configuration simulates exactly once no matter how many
//     tables/figures request it (the strong-scaling tables and the
//     speedup/efficiency figures largely share configs). Concurrent
//     requests for the same key coalesce onto one execution.
//   - Bounded parallelism: independent ModeSimulate configurations run
//     concurrently on a worker pool sized to the host's cores. Under the
//     cooperative virtual-time scheduler each simulate run executes on
//     exactly one OS thread at a time (emulated threads park on their
//     gates), so a pool of NumCPU workers saturates the host without
//     goroutine oversubscription even at 512+ emulated threads per run —
//     the old goroutine-per-thread backend put workers × THREADS runnable
//     goroutines on the scheduler. ModeNative configurations measure real
//     wall-clock phase times, so they take the pool exclusively — no
//     simulation may co-run and pollute the timing.
//
// A Runner is safe for concurrent use and is normally shared across every
// experiment of a bhbench invocation.
type Runner struct {
	sem chan struct{} // worker-pool slots for simulate-mode runs
	// excl is held shared by simulate runs and exclusively by native
	// runs, serializing wall-clock measurements against everything else.
	excl sync.RWMutex

	// Progress, if non-nil, receives one streamed line per cache event
	// (miss/start, hit). Set it before the first Run call.
	Progress func(format string, args ...any)

	// KeepBodies retains Result.Bodies in cached results. Experiments
	// never read the body state, so by default it is dropped before a
	// result enters the cache (at full scale it dwarfs every timing
	// field combined); the physics-verification harness flips this on
	// to differentially test the final state. Set before the first Run
	// call, and treat cached Bodies as read-only — results are shared.
	KeepBodies bool

	mu    sync.Mutex
	cache map[string]*cacheEntry
	stats RunnerStats

	// exec performs one uncached run; tests substitute a counting stub.
	exec func(core.Options) (*core.Result, error)
}

// RunnerStats reports the cache effectiveness of a Runner.
type RunnerStats struct {
	Runs       int `json:"runs"`        // unique configurations executed
	Hits       int `json:"cache_hits"`  // requests served from the cache (incl. coalesced in-flight)
	NativeRuns int `json:"native_runs"` // subset of Runs executed exclusively in ModeNative
	Evictions  int `json:"evictions"`   // error results evicted so the key can re-execute

	// Memoize outcomes: externally produced results (stepwise runs, the
	// session service) offered to the cache. Memoized counts those that
	// landed; MemoizeDropped those that found the key already occupied —
	// racing stepwise runs of one configuration, or a run the cache
	// already completed. A dropped feed is normal, but the split makes
	// the cache's provenance auditable instead of silently discarded.
	Memoized       int `json:"memoized"`
	MemoizeDropped int `json:"memoize_dropped"`
}

// Requests returns the total number of Run calls the stats describe.
func (s RunnerStats) Requests() int { return s.Runs + s.Hits }

// DedupFraction returns the fraction of requests served without a new
// simulation (0 when nothing has run).
func (s RunnerStats) DedupFraction() float64 {
	if s.Requests() == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests())
}

type cacheEntry struct {
	done chan struct{} // closed when res/err are valid
	res  *core.Result
	err  error
}

// NewRunner builds a Runner with the given worker-pool width; workers <= 0
// means one worker per host core.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		sem:   make(chan struct{}, workers),
		cache: make(map[string]*cacheEntry),
		exec:  execRun,
	}
}

// execRun is the real execution path: build the simulation and run it.
// Run drops the final body state before the result enters the cache
// unless KeepBodies is set.
func execRun(opts core.Options) (*core.Result, error) {
	sim, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run()
	// The Result copies all state out of the Sim, so the heap storage
	// can go back to the recycling pools for the next configuration.
	sim.Release()
	return res, err
}

// Workers returns the worker-pool width.
func (r *Runner) Workers() int { return cap(r.sem) }

// Stats returns a snapshot of the cache counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func (r *Runner) logf(format string, args ...any) {
	if r.Progress != nil {
		r.Progress(format, args...)
	}
}

// describe renders a configuration for progress lines and error context.
// Nil machines are tolerated: exec surfaces the validation error.
func describe(opts core.Options) string {
	threads := 0
	if opts.Machine != nil {
		threads = opts.Machine.Threads
	}
	return fmt.Sprintf("n=%d threads=%d level=%s mode=%s", opts.Bodies, threads, opts.Level, opts.ExecMode)
}

// Run executes one configuration, deduplicating against every
// configuration this Runner has already seen. The returned hit flag
// reports whether the result came from the cache (including coalescing
// onto a concurrently in-flight execution of the same key). Only
// successes are memoized: a failed execution propagates its error to
// every request coalesced onto it, then leaves the cache, so the next
// request for the key executes afresh.
func (r *Runner) Run(opts core.Options) (res *core.Result, hit bool, err error) {
	key := opts.Key()
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.stats.Hits++
		r.mu.Unlock()
		r.logf("cache hit: %s", describe(opts))
		<-e.done
		return e.res, true, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.stats.Runs++
	if opts.ExecMode == core.ModeNative {
		r.stats.NativeRuns++
	}
	r.mu.Unlock()

	if opts.ExecMode == core.ModeNative {
		// Exclusive: wait out all in-flight simulations, admit no new ones,
		// so the measured wall-clock phases see an otherwise idle host.
		r.excl.Lock()
		r.logf("run (native, exclusive): %s", describe(opts))
		e.res, e.err = r.exec(opts)
		r.excl.Unlock()
	} else {
		r.excl.RLock()
		r.sem <- struct{}{}
		r.logf("run: %s", describe(opts))
		e.res, e.err = r.exec(opts)
		<-r.sem
		r.excl.RUnlock()
	}
	if e.res != nil && !r.KeepBodies {
		e.res.Bodies = nil
	}
	close(e.done)
	if e.err != nil {
		// Do not memoize failures: a transient error (a native run hitting
		// a resource limit, say) would otherwise be replayed to every
		// later request for the key, forever. Evict after close(done) so
		// waiters already coalesced onto this entry still observe the
		// error; the next request for the key re-executes.
		r.mu.Lock()
		if cur, ok := r.cache[key]; ok && cur == e {
			delete(r.cache, key)
			r.stats.Evictions++
		}
		r.mu.Unlock()
	}
	return e.res, false, e.err
}

// Lookup peeks at the memoization cache: it returns the completed,
// successful Result stored under opts' key, or reports a miss. It never
// blocks — an in-flight execution is a miss, not something to wait on —
// and never triggers an execution. A successful peek counts as a cache
// hit in the stats. The returned Result is shared: treat it as read-only.
func (r *Runner) Lookup(opts core.Options) (*core.Result, bool) {
	key := opts.Key()
	r.mu.Lock()
	e, ok := r.cache[key]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
	default:
		return nil, false // still executing
	}
	if e.err != nil || e.res == nil {
		return nil, false
	}
	r.mu.Lock()
	r.stats.Hits++
	r.mu.Unlock()
	return e.res, true
}

// Memoize stores an externally produced Result under opts' key, so later
// Run/Lookup calls for the configuration hit without executing. Sessions
// driven outside the Runner (the bhserve service steps its own Sims) use
// it to land their completed runs in the shared cache. An entry that
// already exists — completed or in flight — is left untouched, mirroring
// RunStepwise's feed semantics; the stored copy follows the KeepBodies
// policy. Reports whether the result was stored.
func (r *Runner) Memoize(opts core.Options, res *core.Result) bool {
	cached := *res
	if !r.KeepBodies {
		cached.Bodies = nil
	}
	key := opts.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cache[key]; ok {
		r.stats.MemoizeDropped++
		return false
	}
	e := &cacheEntry{done: make(chan struct{}), res: &cached}
	close(e.done)
	r.cache[key] = e
	r.stats.Memoized++
	return true
}

// RunStepwise executes one configuration through the steppable session
// engine: the observer first receives the step-0 Snapshot (the initial
// conditions as distributed — the same stream contract bhrun -stream
// honours), then one Snapshot every `every` steps (the last interval is
// truncated to the schedule). It always performs a live execution —
// snapshots must be observed as the run unfolds, so a cached Result
// cannot serve a stepwise request — but it respects the Runner's pool
// discipline (native runs still take the pool exclusively) and it feeds
// the memoization cache: on success the Result is stored under
// Options.Key if no entry exists yet, so later Run calls hit; an entry
// that already exists is left untouched. A non-nil error from observe
// aborts the run after releasing the simulation.
func (r *Runner) RunStepwise(opts core.Options, every int, observe func(*core.Snapshot) error) (*core.Result, error) {
	if every <= 0 {
		return nil, fmt.Errorf("bench: RunStepwise needs every > 0, got %d", every)
	}
	r.mu.Lock()
	r.stats.Runs++
	if opts.ExecMode == core.ModeNative {
		r.stats.NativeRuns++
	}
	r.mu.Unlock()

	run := func() (*core.Result, error) {
		sim, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		defer sim.Release()
		if observe != nil {
			// Step-0 snapshot first: the observer sees the distributed
			// initial conditions before any stepping, exactly as a
			// bhrun -stream consumer does.
			snap, err := sim.Snapshot()
			if err != nil {
				return nil, err
			}
			if err := observe(snap); err != nil {
				return nil, fmt.Errorf("bench: stepped run aborted by observer at step 0: %w", err)
			}
		}
		for done := 0; done < opts.Steps; {
			k := every
			if rem := opts.Steps - done; k > rem {
				k = rem
			}
			if err := sim.Step(k); err != nil {
				return nil, err
			}
			done += k
			if observe != nil {
				snap, err := sim.Snapshot()
				if err != nil {
					return nil, err
				}
				if err := observe(snap); err != nil {
					return nil, fmt.Errorf("bench: stepped run aborted by observer at step %d: %w", done, err)
				}
			}
		}
		return sim.Finish()
	}

	var res *core.Result
	var err error
	if opts.ExecMode == core.ModeNative {
		r.excl.Lock()
		r.logf("stepped run (native, exclusive): %s", describe(opts))
		res, err = run()
		r.excl.Unlock()
	} else {
		r.excl.RLock()
		r.sem <- struct{}{}
		r.logf("stepped run: %s", describe(opts))
		res, err = run()
		<-r.sem
		r.excl.RUnlock()
	}
	if err != nil {
		return nil, err
	}

	// Feed the cache without disturbing existing entries. The cached copy
	// follows the KeepBodies policy; the caller's Result keeps its bodies
	// either way. The outcome lands in RunnerStats (Memoized vs
	// MemoizeDropped) so a feed lost to a racing run is visible.
	if r.Memoize(opts, res) {
		r.logf("stepped run memoized: %s", describe(opts))
	}
	return res, nil
}

// RunAll executes a batch of independent configurations concurrently
// (each bounded by the worker pool and deduplicated via the cache) and
// returns the results in input order, with the per-config hit flags. The
// first error wins, but all runs are waited for.
func (r *Runner) RunAll(opts []core.Options) ([]*core.Result, []bool, error) {
	results := make([]*core.Result, len(opts))
	hits := make([]bool, len(opts))
	errs := make([]error, len(opts))
	var wg sync.WaitGroup
	for i := range opts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], hits[i], errs[i] = r.Run(opts[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", describe(opts[i]), err)
		}
	}
	return results, hits, nil
}
