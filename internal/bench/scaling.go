package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"upcbh/internal/core"
)

// scalingExperiment is the native strong-scaling wall: it sweeps real
// thread counts on the host hardware (ModeNative — goroutines, real
// barriers, wall-clock phase timers) and records per-phase scaling and
// parallel efficiency into a structured report that CI uploads as
// BENCH_scaling.json. This is the measurement the paper's tables make on
// the InfiniBand cluster and the simulate backend can only model; every
// point carries the Env machine stamp so a 1-core container's numbers
// can never masquerade as a scaling result.
//
// Methodology: each (scenario, n, threads) point is run min-of-K —
// K fresh simulations, keeping the minimum of each phase's summed
// measured-step wall clock — with GOMAXPROCS pinned to the thread count
// so the Go scheduler cannot lend idle cores to a low-thread
// configuration. Points are run directly through core.New/Run, not the
// memoizing Runner (repeat rounds must re-measure, not hit the cache),
// and strictly sequentially (a concurrent native run would steal cores
// from the one being timed).
func scalingExperiment() Experiment {
	return Experiment{
		ID:    "scaling",
		Title: "Extension: native multi-core strong-scaling wall",
		Paper: "Tables 5-8 measure strong scaling in simulated time on the modelled cluster; this extension measures the real thing: wall-clock per-phase strong scaling of the native backend on the host's cores",
		run:   runScaling,
	}
}

// scalingRounds is the min-of-K round count per point.
const scalingRounds = 3

// ScalingPoint is one (threads) measurement within a series: per-phase
// minima over the rounds, in seconds of wall clock summed over the
// measured steps.
type ScalingPoint struct {
	Threads    int `json:"threads"`
	Gomaxprocs int `json:"gomaxprocs"`
	// Oversubscribed marks points with more threads than host CPUs:
	// they measure scheduler timesharing, not parallel scaling, and are
	// excluded from efficiency interpretation (printed for completeness
	// on small hosts so the wall always has >= 2 thread counts).
	Oversubscribed bool    `json:"oversubscribed,omitempty"`
	Rounds         int     `json:"rounds"`
	TreeSec        float64 `json:"tree_sec"`
	CofmSec        float64 `json:"cofm_sec"`
	PartitionSec   float64 `json:"partition_sec"`
	RedistSec      float64 `json:"redist_sec"`
	ForceSec       float64 `json:"force_sec"`
	AdvanceSec     float64 `json:"advance_sec"`
	TotalSec       float64 `json:"total_sec"`
	// Parallel efficiencies t(1) / (T * t(T)) against the series'
	// 1-thread point (1.0 = perfect linear scaling).
	ForceEff float64 `json:"force_eff,omitempty"`
	TotalEff float64 `json:"total_eff,omitempty"`

	Interactions uint64 `json:"interactions"`
}

// ScalingSeries is the scaling wall of one workload: thread counts swept
// at fixed scenario and body count.
type ScalingSeries struct {
	Scenario string         `json:"scenario"`
	Bodies   int            `json:"bodies"`
	Level    string         `json:"level"`
	Points   []ScalingPoint `json:"points"`
}

// ScalingReport is the structured Data of the scaling experiment (the
// payload of BENCH_scaling.json; the machine stamp rides on the
// enclosing Report's Env).
type ScalingReport struct {
	Env    Env             `json:"env"`
	Rounds int             `json:"rounds"`
	Series []ScalingSeries `json:"series"`
}

// scalingThreads returns the thread counts to sweep: an explicit
// -threads list verbatim, or doubling counts 1,2,4,... capped to the
// host's CPUs (always including NumCPU itself). A host too small for two
// in-budget counts gets a 2-thread oversubscribed point instead — the
// wall must always have >= 2 thread counts to say anything at all.
func scalingThreads(p Params) []int {
	if len(p.NativeThreads) > 0 {
		return append([]int(nil), p.NativeThreads...)
	}
	max := runtime.NumCPU()
	if p.MaxThreads > 0 && p.MaxThreads < max {
		max = p.MaxThreads
	}
	var out []int
	for th := 1; th < max; th *= 2 {
		out = append(out, th)
	}
	out = append(out, max)
	if len(out) == 1 {
		out = append(out, 2*max)
	}
	return out
}

func runScaling(x *Exec) (string, error) {
	p := x.P
	env := CaptureEnv()
	threads := scalingThreads(p)
	level := core.LevelMergedBuild // the full native flat pipeline

	type workload struct {
		scenario string
		bodies   int
	}
	var workloads []workload
	scenarios := []string{"plummer", "clustered"}
	if p.Scenario != "" {
		scenarios = []string{p.Scenario}
	}
	for _, sc := range scenarios {
		for _, n := range []int{p.bodies(16384), p.bodies(65536)} {
			workloads = append(workloads, workload{sc, n})
		}
	}

	rep := &ScalingReport{Env: env, Rounds: scalingRounds}
	var b strings.Builder
	fmt.Fprintf(&b, "Native strong-scaling wall: %d CPUs (%s), level %s, min of %d rounds\n",
		env.NumCPU, env.CPUModel, level, scalingRounds)

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, w := range workloads {
		series := ScalingSeries{Scenario: w.scenario, Bodies: w.bodies, Level: level.String()}
		for _, th := range threads {
			pt, err := scalingMeasure(p, w.scenario, w.bodies, th, level)
			if err != nil {
				return "", err
			}
			pt.Oversubscribed = th > env.NumCPU
			series.Points = append(series.Points, pt)
		}
		// Efficiency against the series' 1-thread point when present.
		if base := series.Points[0]; base.Threads == 1 {
			for i := range series.Points {
				pt := &series.Points[i]
				if pt.ForceSec > 0 {
					pt.ForceEff = base.ForceSec / (float64(pt.Threads) * pt.ForceSec)
				}
				if pt.TotalSec > 0 {
					pt.TotalEff = base.TotalSec / (float64(pt.Threads) * pt.TotalSec)
				}
			}
		}
		rep.Series = append(rep.Series, series)

		fmt.Fprintf(&b, "\n%s, n=%d:\n", w.scenario, w.bodies)
		fmt.Fprintf(&b, "%8s %10s %10s %10s %10s %10s %10s %9s %9s\n",
			"threads", "tree", "cofm+part", "redist", "force", "advance", "total", "force-eff", "total-eff")
		for _, pt := range series.Points {
			mark := ""
			if pt.Oversubscribed {
				mark = "*"
			}
			fmt.Fprintf(&b, "%7d%1s %10s %10s %10s %10s %10s %10s %9s %9s\n",
				pt.Threads, mark,
				fmtTime(pt.TreeSec), fmtTime(pt.CofmSec+pt.PartitionSec), fmtTime(pt.RedistSec),
				fmtTime(pt.ForceSec), fmtTime(pt.AdvanceSec), fmtTime(pt.TotalSec),
				fmtEff(pt.ForceEff), fmtEff(pt.TotalEff))
		}
	}
	if anyOversubscribed(rep) {
		b.WriteString("\n(* oversubscribed: more threads than host CPUs — timesharing, not scaling)\n")
	}
	x.SetData(rep)
	return b.String(), nil
}

func fmtEff(e float64) string {
	if e == 0 || math.IsInf(e, 0) || math.IsNaN(e) {
		return "-"
	}
	return fmt.Sprintf("%.2f", e)
}

func anyOversubscribed(rep *ScalingReport) bool {
	for _, s := range rep.Series {
		for _, pt := range s.Points {
			if pt.Oversubscribed {
				return true
			}
		}
	}
	return false
}

// scalingMeasure runs one (scenario, n, threads) point: scalingRounds
// fresh native simulations with GOMAXPROCS pinned to the thread count,
// keeping the per-phase minimum of the measured-step wall clock.
func scalingMeasure(p Params, scenario string, n, threads int, level core.Level) (ScalingPoint, error) {
	opts := options(p, n, threads, level, nil)
	opts.ExecMode = core.ModeNative
	opts.Scenario = scenario

	prev := runtime.GOMAXPROCS(threads)
	defer runtime.GOMAXPROCS(prev)

	pt := ScalingPoint{Threads: threads, Gomaxprocs: threads, Rounds: scalingRounds}
	var minPh core.PhaseTimes
	for i := range minPh {
		minPh[i] = math.Inf(1)
	}
	minTotal := math.Inf(1)
	for r := 0; r < scalingRounds; r++ {
		sim, err := core.New(opts)
		if err != nil {
			return pt, err
		}
		res, err := sim.Run()
		sim.Release()
		if err != nil {
			return pt, err
		}
		for i, v := range res.Phases {
			if v < minPh[i] {
				minPh[i] = v
			}
		}
		if t := res.Total(); t < minTotal {
			minTotal = t
		}
		pt.Interactions = res.Interactions
	}
	pt.TreeSec = minPh[core.PhaseTree]
	pt.CofmSec = minPh[core.PhaseCofM]
	pt.PartitionSec = minPh[core.PhasePartition]
	pt.RedistSec = minPh[core.PhaseRedist]
	pt.ForceSec = minPh[core.PhaseForce]
	pt.AdvanceSec = minPh[core.PhaseAdvance]
	pt.TotalSec = minTotal
	return pt, nil
}
