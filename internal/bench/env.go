package bench

import "upcbh/internal/hostenv"

// Env is the machine stamp attached to every Report and Trajectory: the
// facts needed to judge whether a native-mode wall-clock number means
// anything (a 1-core container cannot show multi-core scaling — the
// DESIGN.md §9 caveat, made machine-checkable). It now lives in
// internal/hostenv (checkpoint headers stamp it too); this alias keeps
// the bench API unchanged.
type Env = hostenv.Env

// CaptureEnv samples the current process environment. The
// /proc/cpuinfo parse is computed once per process (hostenv caches it
// via sync.OnceValue); GOMAXPROCS/NumCPU stay live reads.
func CaptureEnv() Env { return hostenv.Capture() }
