package bench

import (
	"os"
	"runtime"
	"strings"
)

// Env is the machine stamp attached to every Report and Trajectory: the
// facts needed to judge whether a native-mode wall-clock number means
// anything (a 1-core container cannot show multi-core scaling — the
// DESIGN.md §9 caveat, made machine-checkable).
type Env struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	// CPUModel is the "model name" line of /proc/cpuinfo, best-effort:
	// empty on hosts without procfs.
	CPUModel string `json:"cpu_model,omitempty"`
}

// CaptureEnv samples the current process environment.
func CaptureEnv() Env {
	return Env{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		CPUModel:   cpuModel(),
	}
}

// cpuModel extracts the first "model name" entry from /proc/cpuinfo.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}
