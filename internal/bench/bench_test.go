package bench

import (
	"strings"
	"testing"

	"upcbh/internal/core"
)

// tinyParams keeps harness tests fast.
func tinyParams() Params {
	return Params{Scale: 0.05, MaxThreads: 8, Steps: 2, Warmup: 1}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
		"fig5", "fig6", "fig7", "fig8", "fig10", "fig11", "fig12", "fig13",
		"ext-cache", "ext-mpi", "ext-native",
	}
	got := map[string]bool{}
	for _, e := range All() {
		got[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(got), len(want))
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("table5"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("table99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableExperimentRuns(t *testing.T) {
	e, err := ByID("table5")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"Tree-building", "Force Comp.", "Total"} {
		if !strings.Contains(out, phase) {
			t.Errorf("output missing row %q:\n%s", phase, out)
		}
	}
	// Paper layout: the c-of-m row exists for table 5 but not table 8.
	if !strings.Contains(out, "C-of-m") {
		t.Errorf("table5 should include the c-of-m row")
	}
	e8, _ := ByID("table8")
	out8, err := e8.Run(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out8, "C-of-m") {
		t.Errorf("table8 should drop the c-of-m row (merged into tree building)")
	}
	if !strings.Contains(out8, "Redistribution") {
		t.Errorf("table8 should include redistribution")
	}
}

func TestFigureExperimentsRun(t *testing.T) {
	p := tinyParams()
	for _, id := range []string{"fig8", "fig10", "fig11", "fig12"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short:\n%s", id, out)
		}
	}
}

// TestEveryRunnerExecutes smokes every remaining registry entry at a
// minimal workload, so a broken runner cannot hide until bench time.
func TestEveryRunnerExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs every experiment")
	}
	p := Params{Scale: 0.02, MaxThreads: 4, Steps: 2, Warmup: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) < 50 {
				t.Errorf("output suspiciously short:\n%s", out)
			}
		})
	}
}

// TestModeComparisonExperiment: the ext-native experiment must print
// both backends' per-phase columns for the same configuration.
func TestModeComparisonExperiment(t *testing.T) {
	e, err := ByID("ext-native")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim t(s)", "wall t(s)", "Force Comp.", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseTableCSV(t *testing.T) {
	pt, err := strongScalingTable(tinyParams(), core.LevelSubspace, "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	csv := pt.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(pt.Threads)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(pt.Threads)+1)
	}
	if !strings.HasPrefix(lines[0], "threads,") {
		t.Errorf("CSV header: %s", lines[0])
	}
}

func TestParamsScaling(t *testing.T) {
	p := Params{Scale: 0.5, MaxThreads: 16}
	if n := p.bodies(16384); n != 8192 {
		t.Errorf("bodies = %d", n)
	}
	th := p.threads([]int{1, 2, 4, 8, 16, 32, 64})
	if th[len(th)-1] != 16 {
		t.Errorf("threads capped wrong: %v", th)
	}
	if n := (Params{Scale: 0.0001}).bodies(16384); n != 256 {
		t.Errorf("bodies floor = %d", n)
	}
}
