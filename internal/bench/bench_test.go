package bench

import (
	"strings"
	"testing"

	"upcbh/internal/core"
)

// tinyParams keeps harness tests fast.
func tinyParams() Params {
	return Params{Scale: 0.05, MaxThreads: 8, Steps: 2, Warmup: 1}
}

// runText executes one experiment on a fresh Runner and returns the
// rendered text, for tests that only care about the layout.
func runText(t *testing.T, e Experiment, p Params) string {
	t.Helper()
	rep, err := e.Run(NewRunner(0), p)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Text
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
		"fig5", "fig6", "fig7", "fig8", "fig10", "fig11", "fig12", "fig13",
		"ext-cache", "ext-mpi", "ext-native", "imbalance", "layout", "sched",
		"scaling",
	}
	got := map[string]bool{}
	for _, e := range All() {
		got[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(got), len(want))
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("table5"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("table99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableExperimentRuns(t *testing.T) {
	e, err := ByID("table5")
	if err != nil {
		t.Fatal(err)
	}
	out := runText(t, e, tinyParams())
	for _, phase := range []string{"Tree-building", "Force Comp.", "Total"} {
		if !strings.Contains(out, phase) {
			t.Errorf("output missing row %q:\n%s", phase, out)
		}
	}
	// Paper layout: the c-of-m row exists for table 5 but not table 8.
	if !strings.Contains(out, "C-of-m") {
		t.Errorf("table5 should include the c-of-m row")
	}
	e8, _ := ByID("table8")
	out8 := runText(t, e8, tinyParams())
	if strings.Contains(out8, "C-of-m") {
		t.Errorf("table8 should drop the c-of-m row (merged into tree building)")
	}
	if !strings.Contains(out8, "Redistribution") {
		t.Errorf("table8 should include redistribution")
	}
}

func TestFigureExperimentsRun(t *testing.T) {
	p := tinyParams()
	r := NewRunner(0)
	for _, id := range []string{"fig8", "fig10", "fig11", "fig12"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(r, p)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Text) < 100 {
			t.Errorf("%s output suspiciously short:\n%s", id, rep.Text)
		}
		if len(rep.Configs) == 0 {
			t.Errorf("%s report records no configs", id)
		}
	}
}

// TestEveryRunnerExecutes smokes every remaining registry entry at a
// minimal workload, so a broken experiment cannot hide until bench time.
// All experiments share one Runner, exactly as bhbench -exp all does.
func TestEveryRunnerExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs every experiment")
	}
	p := Params{Scale: 0.02, MaxThreads: 4, Steps: 2, Warmup: 1}
	r := NewRunner(0)
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(r, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Text) < 50 {
				t.Errorf("output suspiciously short:\n%s", rep.Text)
			}
		})
	}
	s := r.Stats()
	if s.Hits == 0 {
		t.Errorf("no cache hits across the full registry: %+v", s)
	}
	t.Logf("runner stats over all experiments: %d runs, %d hits (%.0f%% dedup)",
		s.Runs, s.Hits, 100*s.DedupFraction())
}

// TestModeComparisonExperiment: the ext-native experiment must print
// both backends' per-phase columns for the same configuration.
func TestModeComparisonExperiment(t *testing.T) {
	e, err := ByID("ext-native")
	if err != nil {
		t.Fatal(err)
	}
	out := runText(t, e, tinyParams())
	for _, want := range []string{"sim t(s)", "wall t(s)", "Force Comp.", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLayoutExperiment runs the flat-vs-pointer layout comparison at a
// tiny scale and checks both halves of its report: structured kernel
// points with coherent speedups, and the two native configs (flat on and
// off) with positive wall-clock phase times.
func TestLayoutExperiment(t *testing.T) {
	e, err := ByID("layout")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(NewRunner(1), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	lr, ok := rep.Data.(*LayoutReport)
	if !ok {
		t.Fatalf("report data is %T, want *LayoutReport", rep.Data)
	}
	if len(lr.Points) == 0 {
		t.Fatal("no layout points measured")
	}
	for _, pt := range lr.Points {
		if pt.Pointer.ForceSec <= 0 || pt.Flat.ForceSec <= 0 ||
			pt.Pointer.BuildSec <= 0 || pt.Flat.BuildSec <= 0 {
			t.Errorf("n=%d: non-positive phase time: %+v", pt.Bodies, pt)
		}
		if pt.ForceSpeedup <= 0 || pt.BuildSpeedup <= 0 {
			t.Errorf("n=%d: non-positive speedup: %+v", pt.Bodies, pt)
		}
	}
	if len(rep.Configs) != 2 {
		t.Fatalf("expected 2 native configs, got %d", len(rep.Configs))
	}
	var sawFlat, sawPtr bool
	for _, c := range rep.Configs {
		if c.Options.DisableFlat {
			sawPtr = true
		} else {
			sawFlat = true
		}
		if c.Total <= 0 {
			t.Errorf("config %s has non-positive wall total", c.Key)
		}
	}
	if !sawFlat || !sawPtr {
		t.Errorf("expected one flat and one pointer native config")
	}
	for _, want := range []string{"flat build", "force x", "native force-phase speedup"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("layout text missing %q:\n%s", want, rep.Text)
		}
	}
}

func TestPhaseTableCSV(t *testing.T) {
	x := &Exec{R: NewRunner(0), P: tinyParams()}
	pt, err := strongScalingTable(x, core.LevelSubspace, "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	csv := pt.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(pt.Threads)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(pt.Threads)+1)
	}
	if !strings.HasPrefix(lines[0], "threads,") {
		t.Errorf("CSV header: %s", lines[0])
	}
	// Each data row: threads + NumPhases + total columns, and the row's
	// total must be the sum the Format() table prints.
	for i, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 2+int(core.NumPhases) {
			t.Errorf("row %d has %d columns, want %d: %s", i, len(cols), 2+int(core.NumPhases), line)
		}
	}
}

func TestParamsScaling(t *testing.T) {
	p := Params{Scale: 0.5, MaxThreads: 16}
	if n := p.bodies(16384); n != 8192 {
		t.Errorf("bodies = %d", n)
	}
	th := p.threads([]int{1, 2, 4, 8, 16, 32, 64})
	if th[len(th)-1] != 16 {
		t.Errorf("threads capped wrong: %v", th)
	}
	if n := (Params{Scale: 0.0001}).bodies(16384); n != 256 {
		t.Errorf("bodies floor = %d", n)
	}
}
