package bench

import (
	"fmt"
	"strings"
	"time"

	"upcbh/internal/core"
)

// schedExperiment measures the cooperative virtual-time scheduler (the
// ModeSimulate execution engine, internal/upc/sched.go) at and beyond
// the paper's scale: the paper's sweeps stop at THREADS=112, which the
// old goroutine-per-thread backend made painful to exceed; the
// run-to-completion scheduler makes 256/512 emulated threads routine.
// For each configuration it reports the simulated time (the model's
// output, byte-stable across runs) next to the real wall-clock cost the
// harness paid to compute it, plus the scheduler's own event counters —
// baton handoffs are the only kernel synchronization left in a simulate
// run. CI uploads the structured report as BENCH_sched.json, the perf
// trajectory for scheduler work.
func schedExperiment() Experiment {
	return Experiment{
		ID:    "sched",
		Title: "Extension: cooperative virtual-time scheduler at beyond-paper scale",
		Paper: "§5-§7 sweep to 112 threads; this extension runs the simulate engine at 112/256/512 emulated threads and reports the harness's real cost per simulated run (see DESIGN.md §9)",
		run:   runSched,
	}
}

// SchedRow is one configuration's scheduler measurement.
type SchedRow struct {
	Threads      int     `json:"threads"`
	Bodies       int     `json:"bodies"`
	Level        string  `json:"level"`
	SimSeconds   float64 `json:"sim_seconds"`  // modelled time (deterministic)
	WallSeconds  float64 `json:"wall_seconds"` // real harness cost (cache-miss run)
	Interactions uint64  `json:"interactions"`
	Handoffs     uint64  `json:"handoffs"`
	SpinYields   uint64  `json:"spin_yields"`
	CacheHit     bool    `json:"cache_hit"`
}

// SchedReport is the structured Data of the sched experiment.
type SchedReport struct {
	Rows []SchedRow `json:"rows"`
}

func runSched(x *Exec) (string, error) {
	p := x.P
	n := p.bodies(16384)
	// Honor -maxthreads strictly: Params.threads falls back to the first
	// default when every entry exceeds the cap, which would sneak
	// 112-thread runs into a capped smoke invocation. A capped run
	// measures the scheduler at the cap instead.
	threads := []int{112, 256, 512}
	if p.MaxThreads > 0 {
		capped := threads[:0]
		for _, th := range threads {
			if th <= p.MaxThreads {
				capped = append(capped, th)
			}
		}
		threads = capped
		if len(threads) == 0 {
			threads = []int{p.MaxThreads}
		}
	}
	levels := []core.Level{core.LevelBaseline, core.LevelSubspace}

	rep := &SchedReport{}
	var b strings.Builder
	fmt.Fprintf(&b, "cooperative virtual-time scheduler: simulated vs real cost, n=%d\n", n)
	fmt.Fprintf(&b, "%-10s %-9s %12s %12s %14s %12s %12s\n",
		"level", "threads", "sim t(s)", "wall t(s)", "interactions", "handoffs", "spin-yields")
	for _, level := range levels {
		for _, th := range threads {
			o := options(p, n, th, level, nil)
			o.ExecMode = core.ModeSimulate // the scheduler is the subject
			start := time.Now()
			res, err := x.runOne(o)
			if err != nil {
				return "", err
			}
			wall := time.Since(start).Seconds()
			row := SchedRow{
				Threads:      th,
				Bodies:       n,
				Level:        level.String(),
				SimSeconds:   res.Total(),
				WallSeconds:  wall,
				Interactions: res.Interactions,
				Handoffs:     res.Sched.Handoffs,
				SpinYields:   res.Sched.SpinYields,
				CacheHit:     len(x.configs) > 0 && x.configs[len(x.configs)-1].CacheHit,
			}
			rep.Rows = append(rep.Rows, row)
			fmt.Fprintf(&b, "%-10s %-9d %12.6f %12.3f %14d %12d %12d\n",
				row.Level, row.Threads, row.SimSeconds, row.WallSeconds,
				row.Interactions, row.Handoffs, row.SpinYields)
		}
	}
	b.WriteString("\n(simulated times are byte-stable across runs and -parallel settings;\n" +
		" wall times are this host's real cost and include a cache-hit flag when\n" +
		" the memoized Runner served the configuration without re-running it)\n")
	x.SetData(rep)
	return b.String(), nil
}
