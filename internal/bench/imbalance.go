package bench

import (
	"fmt"
	"strings"

	"upcbh/internal/core"
	"upcbh/internal/nbody"
	"upcbh/internal/octree"
)

// imbalanceExperiment extends the paper's §5.2/§6 load-balance story to
// nonuniform inputs: the paper only ever measures a Plummer sphere, but
// costzones and the subspace owner assignment exist precisely because
// irregular spatial distributions put unequal interaction counts on
// equal body counts. This experiment sweeps every registered workload
// scenario and reports per-thread interaction-count skew (max/mean;
// 1.0 = perfect) under three ownership policies — the static block
// distribution of the §4 baseline (computed from the sequential
// reference tree, since costzones runs at every optimization level of
// the parallel code), costzones over the merged tree (§5.4), and the
// subspace owner assignment (§6) — plus the per-step migrated fraction
// the two balancers pay for that balance.
func imbalanceExperiment() Experiment {
	return Experiment{
		ID:    "imbalance",
		Title: "Extension: load balance across workload scenarios",
		Paper: "the paper evaluates only a Plummer sphere; §5.2 (redistribution) and §6 (subspace owner assignment) are motivated by irregular distributions — this sweep measures how much imbalance each scenario actually induces and how well the balancers remove it",
		run:   runImbalance,
	}
}

// staticBlockSkew computes the interaction skew the §4 baseline layout
// would suffer with no load balancing at all: bodies in ID order are
// split into `threads` equal blocks and each block's Barnes-Hut
// interaction count is measured on the sequential reference tree.
func staticBlockSkew(bodies []nbody.Body, threads int, theta, eps float64) float64 {
	tr := octree.Build(bodies)
	tr.ComputeCofM()
	n := len(bodies)
	per := make([]uint64, threads)
	var total uint64
	for i := range bodies {
		_, _, inter := tr.ForceOn(&bodies[i], theta, eps)
		blk := i * threads / n
		per[blk] += uint64(inter)
		total += uint64(inter)
	}
	if total == 0 {
		return 0
	}
	var max uint64
	for _, v := range per {
		if v > max {
			max = v
		}
	}
	return float64(max) / (float64(total) / float64(threads))
}

// imbalanceBalancers are the two ownership policies the parallel code
// can actually run: costzones over the merged tree and the subspace
// owner assignment.
var imbalanceBalancers = []core.Level{core.LevelMergedBuild, core.LevelSubspace}

func runImbalance(x *Exec) (string, error) {
	p := x.P
	n := p.bodies(strongBodies / 2)
	threads := 16
	if p.MaxThreads > 0 && p.MaxThreads < threads {
		threads = p.MaxThreads
	}
	scenarios := nbody.ScenarioNames()

	opts := make([]core.Options, 0, len(scenarios)*len(imbalanceBalancers))
	for _, scn := range scenarios {
		for _, level := range imbalanceBalancers {
			o := options(p, n, threads, level, nil)
			o.Scenario = scn
			opts = append(opts, o)
		}
	}
	results, err := x.runAll(opts)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Load imbalance by scenario: %d bodies, %d threads (skew = max/mean per-thread interactions; 1.00 = balanced)\n\n", n, threads)
	fmt.Fprintf(&b, "%-14s%12s", "scenario", "static skew")
	for _, level := range imbalanceBalancers {
		fmt.Fprintf(&b, "%14s%10s", level.String()+" skew", "migr%")
	}
	b.WriteByte('\n')
	i := 0
	for _, scn := range scenarios {
		ic, err := nbody.GenerateScenario(scn, n, opts[0].Seed)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-14s%12.2f", scn, staticBlockSkew(ic, threads, opts[0].Theta, opts[0].Eps))
		for range imbalanceBalancers {
			res := results[i]
			i++
			fmt.Fprintf(&b, "%14.2f%9.1f%%", interactionSkew(res), 100*res.MigratedFraction)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nstatic = §4 block ownership in ID order, measured on the sequential reference tree\n")
	b.WriteString("(no balancing); merged = costzones over the merged tree (§5.4); subspace = cost-based\n")
	b.WriteString("subspace owner assignment (§6), which trades some balance for faster tree builds.\n")
	b.WriteString("migr% = bodies changing owner per step — the churn the balancer pays for balance.\n")
	return b.String(), nil
}
