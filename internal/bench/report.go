package bench

import (
	"encoding/json"
	"sync"

	"upcbh/internal/core"
)

// ConfigRun records one executed configuration inside a Report: the full
// options (the stable core JSON contract), a summary of the core.Result,
// and whether the Runner served it from its memoization cache.
type ConfigRun struct {
	Key      string          `json:"key"`
	Options  core.Options    `json:"options"`
	CacheHit bool            `json:"cache_hit"`
	Phases   core.PhaseTimes `json:"phases"`
	Total    float64         `json:"total"`
	// Summary metrics lifted from core.Result (the full per-thread and
	// per-step detail stays in memory only).
	Interactions     uint64  `json:"interactions"`
	MigratedFraction float64 `json:"migrated_fraction"`
	Msgs             uint64  `json:"msgs"`
	Bytes            uint64  `json:"bytes"`
	// InteractionSkew is max/mean per-thread interaction count over the
	// measured steps (1.0 = perfectly balanced force work; the paper's
	// §5.2/§6 balancers exist to push this toward 1). Omitted for
	// single-thread runs, where it is 1 by construction.
	InteractionSkew float64 `json:"interaction_skew,omitempty"`
}

// interactionSkew returns max/mean of the per-thread interaction counts
// (0 when the result carries no per-thread detail or no interactions).
func interactionSkew(res *core.Result) float64 {
	if len(res.PerThread) < 2 || res.Interactions == 0 {
		return 0
	}
	var max uint64
	for _, tb := range res.PerThread {
		if tb.Interactions > max {
			max = tb.Interactions
		}
	}
	mean := float64(res.Interactions) / float64(len(res.PerThread))
	return float64(max) / mean
}

func newConfigRun(opts core.Options, res *core.Result, hit bool) ConfigRun {
	return ConfigRun{
		Key:              opts.Key(),
		Options:          opts,
		CacheHit:         hit,
		Phases:           res.Phases,
		Total:            res.Total(),
		Interactions:     res.Interactions,
		MigratedFraction: res.MigratedFraction,
		Msgs:             res.Stats.Msgs,
		Bytes:            res.Stats.Bytes,
		InteractionSkew:  interactionSkew(res),
	}
}

// Report is the structured outcome of one experiment: identification,
// the workload parameters it ran at, every configuration it executed
// (in execution order), and the rendered paper-layout text.
type Report struct {
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Paper   string      `json:"paper,omitempty"`
	Params  Params      `json:"params"`
	Env     Env         `json:"env"`
	Configs []ConfigRun `json:"configs,omitempty"`
	// Data carries experiment-specific structured results that do not
	// come from core.Sim runs (e.g. the layout experiment's kernel
	// measurements); its concrete type is owned by the experiment.
	Data any    `json:"data,omitempty"`
	Text string `json:"text"`
	// Elapsed is the harness wall-clock time for the experiment in
	// seconds (not simulated time; cache hits make this shrink).
	Elapsed float64 `json:"elapsed_seconds"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Trajectory is the top-level document of a BENCH_results.json file: one
// bhbench invocation's reports plus the Runner's cache statistics, the
// machine-readable trail a perf trajectory is built from.
type Trajectory struct {
	Generated string      `json:"generated,omitempty"` // RFC3339, filled by the CLI
	GoVersion string      `json:"go_version,omitempty"`
	Params    Params      `json:"params"`
	Env       Env         `json:"env"`
	Runner    RunnerStats `json:"runner"`
	Reports   []*Report   `json:"reports"`
}

// JSON renders the trajectory as indented JSON.
func (t *Trajectory) JSON() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// Exec is the context one experiment body runs in: the shared Runner,
// the workload Params, and the accumulating per-config record that
// Experiment.Run folds into the Report. Its run helpers are safe for
// concurrent use (figures fan out configurations).
type Exec struct {
	R *Runner
	P Params

	mu      sync.Mutex
	configs []ConfigRun
	data    any
}

// SetData attaches experiment-specific structured results to the Report.
func (x *Exec) SetData(v any) {
	x.mu.Lock()
	x.data = v
	x.mu.Unlock()
}

// runOne executes a single configuration through the shared Runner and
// records it in the report.
func (x *Exec) runOne(opts core.Options) (*core.Result, error) {
	res, hit, err := x.R.Run(opts)
	if err != nil {
		return nil, err
	}
	x.mu.Lock()
	x.configs = append(x.configs, newConfigRun(opts, res, hit))
	x.mu.Unlock()
	return res, nil
}

// runAll executes a batch of independent configurations concurrently on
// the Runner's worker pool and records them in input order.
func (x *Exec) runAll(opts []core.Options) ([]*core.Result, error) {
	results, hits, err := x.R.RunAll(opts)
	if err != nil {
		return nil, err
	}
	x.mu.Lock()
	for i := range opts {
		x.configs = append(x.configs, newConfigRun(opts[i], results[i], hits[i]))
	}
	x.mu.Unlock()
	return results, nil
}
