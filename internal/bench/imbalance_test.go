package bench

import (
	"strings"
	"testing"

	"upcbh/internal/core"
	"upcbh/internal/nbody"
)

func TestInteractionSkew(t *testing.T) {
	res := &core.Result{
		Interactions: 400,
		PerThread: []core.ThreadBreakdown{
			{Interactions: 100}, {Interactions: 100}, {Interactions: 100}, {Interactions: 100},
		},
	}
	if got := interactionSkew(res); got != 1.0 {
		t.Errorf("balanced skew = %g, want 1.0", got)
	}
	res.PerThread[0].Interactions = 250
	res.PerThread[1].Interactions = 50
	res.PerThread[2].Interactions = 50
	res.PerThread[3].Interactions = 50
	if got := interactionSkew(res); got != 2.5 {
		t.Errorf("skew = %g, want 2.5", got)
	}
	if got := interactionSkew(&core.Result{PerThread: []core.ThreadBreakdown{{Interactions: 5}}}); got != 0 {
		t.Errorf("single-thread skew = %g, want 0 (omitted)", got)
	}
}

func TestStaticBlockSkewClustered(t *testing.T) {
	// The clustered scenario exists to induce imbalance; the uniform
	// scenario exists not to. Static block ownership must rank them.
	uni := staticBlockSkew(nbody.Uniform(2048, 1), 16, 1.0, 0.05)
	clu := staticBlockSkew(nbody.Clustered(2048, 1, 8, 0.6), 16, 1.0, 0.05)
	if uni <= 0 || clu <= 0 {
		t.Fatalf("skews must be positive: uniform %g clustered %g", uni, clu)
	}
	if clu <= uni {
		t.Errorf("clustered static skew %g not above uniform %g", clu, uni)
	}
}

func TestImbalanceExperiment(t *testing.T) {
	e, err := ByID("imbalance")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(NewRunner(0), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, scn := range nbody.ScenarioNames() {
		if !strings.Contains(rep.Text, scn) {
			t.Errorf("imbalance table missing scenario row %q:\n%s", scn, rep.Text)
		}
	}
	// The JSON side of the acceptance criterion: every executed config
	// records its scenario (via Options) and its interaction skew.
	if len(rep.Configs) == 0 {
		t.Fatal("no configs recorded")
	}
	for _, c := range rep.Configs {
		if c.Options.Scenario == "" {
			t.Errorf("config %s has no scenario recorded", c.Key)
		}
		if c.InteractionSkew < 1 {
			t.Errorf("config %s has interaction skew %g < 1", c.Key, c.InteractionSkew)
		}
	}
}
