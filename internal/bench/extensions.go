package bench

import (
	"fmt"

	"upcbh/internal/core"
	"upcbh/internal/mpibh"
)

// extensionExperiments go beyond the paper's evaluation: ablations and
// follow-ups the paper proposes in §7-§9.
func extensionExperiments() []Experiment {
	return []Experiment{
		{
			ID:    "ext-cache",
			Title: "Extension: transparent runtime cache vs manual caching (§8)",
			Paper: "the paper suspects MuPC/Berkeley-style transparent caching 'is unlikely to help the performance of more complex UPC codes'; this ablation quantifies the gap to §5.3 manual caching",
			run:   runExtCache,
		},
		{
			ID:    "ext-mpi",
			Title: "Extension: MPI locally-essential-tree code vs fully optimized UPC (§9)",
			Paper: "§9 future work: 'We suspect that, with all these changes, the UPC code is as efficient as a similar MPI code' — the comparison the authors planned",
			run:   runExtMPI,
		},
		{
			ID:    "ext-native",
			Title: "Extension: Simulate vs Native backend, same configuration",
			Paper: "beyond the paper: the same UPC Barnes-Hut code run as a real parallel program on this host (ModeNative) vs the simulated Power5 cluster (ModeSimulate); per-phase simulated and wall-clock times side by side",
			run:   runModeComparison,
		},
		imbalanceExperiment(),
		layoutExperiment(),
		schedExperiment(),
		scalingExperiment(),
	}
}

func runExtCache(x *Exec) (string, error) {
	p := x.P
	n := p.bodies(strongBodies)
	threads := p.threads([]int{1, 2, 4, 8, 16, 32, 64})
	configs := []struct {
		label string
		mut   func(*core.Options)
	}{
		{"no caching (L2)", func(o *core.Options) { o.Level = core.LevelRedistribute }},
		{"transparent runtime cache", func(o *core.Options) {
			o.Level = core.LevelRedistribute
			o.TransparentCache = true
		}},
		{"manual caching (L3, §5.3)", func(o *core.Options) { o.Level = core.LevelCacheTree }},
	}
	opts := make([]core.Options, 0, len(configs)*len(threads))
	for _, cfg := range configs {
		for _, th := range threads {
			o := options(p, n, th, core.LevelRedistribute, nil)
			// The transparent cache's effect is entirely simulated-cost
			// savings, so this ablation is simulate-only (as is ext-mpi).
			o.ExecMode = core.ModeSimulate
			cfg.mut(&o)
			opts = append(opts, o)
		}
	}
	results, err := x.runAll(opts)
	if err != nil {
		return "", err
	}
	var ss []series
	for ci, cfg := range configs {
		s := series{label: cfg.label}
		for _, res := range results[ci*len(threads) : (ci+1)*len(threads)] {
			s.vals = append(s.vals, res.Phases[core.PhaseForce])
		}
		ss = append(ss, s)
	}
	out := formatSeries(
		fmt.Sprintf("Extension: force-computation time, %d bodies — transparent vs manual caching", n),
		"t(s)", threads, ss)
	return out, nil
}

func runExtMPI(x *Exec) (string, error) {
	p := x.P
	n := p.bodies(strongBodies)
	threads := p.threads([]int{1, 2, 4, 8, 16, 32, 64})
	steps, warmup := p.steps()
	opts := make([]core.Options, len(threads))
	for i, th := range threads {
		o := options(p, n, th, core.LevelSubspace, nil)
		// The MPI emulation is simulate-only, so pin the UPC side to the
		// same backend regardless of Params.Mode — mixing wall-clock and
		// simulated columns would be meaningless.
		o.ExecMode = core.ModeSimulate
		opts[i] = o
	}
	results, err := x.runAll(opts)
	if err != nil {
		return "", err
	}
	upcS := series{label: "UPC, all optimizations (L6)"}
	mpiS := series{label: "MPI, locally essential trees"}
	for i, th := range threads {
		upcS.vals = append(upcS.vals, results[i].Total())

		// The MPI side runs its own emulated runtime outside the Runner's
		// core.Options cache; it is cheap relative to the UPC sweep.
		mres, err := mpibh.Run(mpibh.Options{
			Bodies: n, Ranks: th, Steps: steps, Warmup: warmup,
			Theta: 1.0, Eps: 0.05, Dt: 0.025, Seed: 123,
		})
		if err != nil {
			return "", err
		}
		mpiS.vals = append(mpiS.vals, mres.Total)
	}
	out := formatSeries(
		fmt.Sprintf("Extension: total simulated time, %d bodies — UPC vs MPI", n),
		"t(s)", threads, []series{upcS, mpiS})
	return out, nil
}
