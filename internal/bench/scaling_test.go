package bench

import (
	"runtime"
	"strings"
	"testing"
)

// TestScalingExperiment runs the native scaling wall at a tiny scale and
// checks the structural acceptance contract of BENCH_scaling.json: at
// least two thread counts per series, per-phase wall-clock data, an Env
// machine stamp, and efficiency normalized to 1.0 at one thread.
func TestScalingExperiment(t *testing.T) {
	e, err := ByID("scaling")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Scale: 0.02, Steps: 2, Warmup: 1, Scenario: "plummer"}
	rep, err := e.Run(NewRunner(0), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Env.NumCPU < 1 || rep.Env.GoVersion == "" {
		t.Errorf("report env not stamped: %+v", rep.Env)
	}
	data, ok := rep.Data.(*ScalingReport)
	if !ok {
		t.Fatalf("report data is %T, want *ScalingReport", rep.Data)
	}
	if data.Env.NumCPU != runtime.NumCPU() {
		t.Errorf("data env NumCPU = %d, want %d", data.Env.NumCPU, runtime.NumCPU())
	}
	if len(data.Series) == 0 {
		t.Fatal("no scaling series")
	}
	for _, s := range data.Series {
		if len(s.Points) < 2 {
			t.Fatalf("series %s/%d has %d thread counts, want >= 2", s.Scenario, s.Bodies, len(s.Points))
		}
		for _, pt := range s.Points {
			if pt.ForceSec <= 0 || pt.TotalSec <= 0 {
				t.Errorf("series %s/%d threads %d: non-positive phase times %+v", s.Scenario, s.Bodies, pt.Threads, pt)
			}
			if pt.Gomaxprocs != pt.Threads {
				t.Errorf("threads %d ran with GOMAXPROCS %d", pt.Threads, pt.Gomaxprocs)
			}
			if pt.Oversubscribed != (pt.Threads > runtime.NumCPU()) {
				t.Errorf("threads %d: oversubscribed flag %v on a %d-CPU host", pt.Threads, pt.Oversubscribed, runtime.NumCPU())
			}
		}
		if base := s.Points[0]; base.Threads == 1 && (base.ForceEff != 1 || base.TotalEff != 1) {
			t.Errorf("1-thread efficiency = %g/%g, want 1/1", base.ForceEff, base.TotalEff)
		}
	}
	if !strings.Contains(rep.Text, "strong-scaling wall") {
		t.Errorf("text header missing:\n%s", rep.Text)
	}
}

// TestScalingThreadsSweep pins the sweep construction: explicit lists
// pass through verbatim, defaults double up to the CPU budget, and a
// 1-CPU host still gets two counts (the second flagged oversubscribed by
// the experiment).
func TestScalingThreadsSweep(t *testing.T) {
	if got := scalingThreads(Params{NativeThreads: []int{3, 1}}); len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("explicit list not passed through: %v", got)
	}
	def := scalingThreads(Params{})
	if len(def) < 2 {
		t.Errorf("default sweep %v has fewer than 2 counts", def)
	}
	if def[0] != 1 {
		t.Errorf("default sweep %v does not start at 1 thread", def)
	}
	capped := scalingThreads(Params{MaxThreads: 1})
	if len(capped) != 2 || capped[0] != 1 || capped[1] != 2 {
		t.Errorf("capped 1-CPU-style sweep = %v, want [1 2]", capped)
	}
}
