package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"upcbh/internal/core"
	"upcbh/internal/nbody"
	"upcbh/internal/octree"
)

// The layout experiment quantifies this PR's tentpole: the flat,
// arena-backed Morton-ordered octree versus the pointer tree, per phase,
// in wall-clock time on the host. It has two parts:
//
//  1. Kernel measurements (LayoutReport): the sequential build and
//     full-force-sweep phases of both representations, interleaved
//     round-robin (noise on a shared host hits both sides alike) with
//     the per-phase minimum over rounds reported.
//  2. Native Sim runs (Configs): the distributed merged-build pipeline
//     under ModeNative with the flat paths on vs off (DisableFlat),
//     whose per-phase wall-clock tables land in the Report's configs.
//
// The PR's acceptance bar — flat force kernel >= 1.5x over the pointer
// walk at n >= 16k on Plummer — is read directly off ForceSpeedup.

// LayoutPhases is one representation's measured phase times in seconds.
type LayoutPhases struct {
	BuildSec float64 `json:"build_sec"` // tree construction (+aggregates)
	ForceSec float64 `json:"force_sec"` // full force sweep over all bodies
}

// LayoutPoint compares the two layouts at one workload size.
type LayoutPoint struct {
	Bodies       int          `json:"bodies"`
	Scenario     string       `json:"scenario"`
	Pointer      LayoutPhases `json:"pointer"`
	Flat         LayoutPhases `json:"flat"`
	BuildSpeedup float64      `json:"build_speedup"`
	ForceSpeedup float64      `json:"force_speedup"`
	TotalSpeedup float64      `json:"total_speedup"`
}

// LayoutReport is the structured kernel-measurement document embedded in
// the layout experiment's Report (and hence in BENCH_layout.json).
type LayoutReport struct {
	Theta  float64       `json:"theta"`
	Eps    float64       `json:"eps"`
	Rounds int           `json:"rounds"`
	Points []LayoutPoint `json:"points"`
}

func layoutExperiment() Experiment {
	return Experiment{
		ID:    "layout",
		Title: "Extension: pointer vs flat (arena/Morton/SoA) octree, per phase",
		Paper: "beyond the paper: its locality argument (§5.3-§6) applied within one node — contiguous Morton-ordered arenas vs heap-of-pointers traversal; acceptance bar >= 1.5x force speedup at n >= 16k",
		run:   runLayout,
	}
}

func runLayout(x *Exec) (string, error) {
	p := x.P
	scenario := p.Scenario
	if scenario == "" {
		scenario = nbody.DefaultScenario
	}
	const theta, eps = 1.0, 0.05
	rounds := 3

	lr := &LayoutReport{Theta: theta, Eps: eps, Rounds: rounds}
	for _, base := range []int{strongBodies, 2 * strongBodies} {
		n := p.bodies(base)
		pt, err := layoutMeasure(scenario, n, theta, eps, rounds)
		if err != nil {
			return "", err
		}
		lr.Points = append(lr.Points, pt)
	}
	x.SetData(lr)

	// Native end-to-end: the merged-build pipeline with the flat paths
	// on vs off. Native runs execute exclusively on the Runner, so the
	// wall-clock phase tables are clean. Threads are clamped to the host
	// core count: native phase times are per-thread wall windows, and
	// oversubscribing goroutines onto fewer cores staggers the windows
	// (time-slicing), which under-reports barrier-less phases and makes
	// cross-variant comparison meaningless.
	threads := runtime.NumCPU()
	if threads > 8 {
		threads = 8
	}
	if p.MaxThreads > 0 && p.MaxThreads < threads {
		threads = p.MaxThreads
	}
	nSim := p.bodies(strongBodies)
	flatOpts := options(p, nSim, threads, core.LevelMergedBuild, nil)
	flatOpts.ExecMode = core.ModeNative
	flatOpts.Scenario = scenario
	ptrOpts := flatOpts
	ptrOpts.DisableFlat = true
	results, err := x.runAll([]core.Options{ptrOpts, flatOpts})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Sequential kernels, %s scenario, theta=%g eps=%g (min of %d interleaved rounds):\n\n",
		scenario, theta, eps, rounds)
	fmt.Fprintf(&b, "%10s %12s %12s %12s %12s %9s %9s\n",
		"bodies", "ptr build", "flat build", "ptr force", "flat force", "build x", "force x")
	for _, pt := range lr.Points {
		fmt.Fprintf(&b, "%10d %12s %12s %12s %12s %8.2fx %8.2fx\n",
			pt.Bodies,
			fmtTime(pt.Pointer.BuildSec), fmtTime(pt.Flat.BuildSec),
			fmtTime(pt.Pointer.ForceSec), fmtTime(pt.Flat.ForceSec),
			pt.BuildSpeedup, pt.ForceSpeedup)
	}
	fmt.Fprintf(&b, "\nNative %s pipeline, %d bodies, %d threads (wall-clock per phase):\n\n",
		core.LevelMergedBuild, nSim, threads)
	table := &PhaseTable{
		Title:   "pointer (DisableFlat) vs flat",
		Threads: []int{threads, threads},
		Results: results,
	}
	b.WriteString(table.Format())
	pr, fr := results[0], results[1]
	speed := func(ptr, flat float64) string {
		if flat <= 0 {
			return "n/a" // wall-clock resolution too coarse at this scale
		}
		return fmt.Sprintf("%.2fx", ptr/flat)
	}
	fmt.Fprintf(&b, "\nnative force-phase speedup: %s; tree-phase speedup: %s\n",
		speed(pr.Phases[core.PhaseForce], fr.Phases[core.PhaseForce]),
		speed(pr.Phases[core.PhaseTree], fr.Phases[core.PhaseTree]))
	return b.String(), nil
}

// layoutMeasure times both representations at one size, interleaving
// rounds and keeping per-phase minima.
func layoutMeasure(scenario string, n int, theta, eps float64, rounds int) (LayoutPoint, error) {
	bodies, err := nbody.GenerateScenario(scenario, n, 1)
	if err != nil {
		return LayoutPoint{}, err
	}
	pt := LayoutPoint{Bodies: n, Scenario: scenario}
	inf := math.Inf(1)
	pt.Pointer = LayoutPhases{BuildSec: inf, ForceSec: inf}
	pt.Flat = LayoutPhases{BuildSec: inf, ForceSec: inf}
	ft := &octree.FlatTree{}
	minIn := func(dst *float64, d time.Duration) {
		s := d.Seconds()
		if s < 1e-9 {
			s = 1e-9 // clock-resolution floor: keeps speedup ratios finite
		}
		if s < *dst {
			*dst = s
		}
	}
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		tree := octree.Build(bodies)
		minIn(&pt.Pointer.BuildSec, time.Since(t0))

		t0 = time.Now()
		for i := range bodies {
			acc, phi, inter := tree.ForceOn(&bodies[i], theta, eps)
			bodies[i].Acc, bodies[i].Phi, bodies[i].Cost = acc, phi, float64(inter)
		}
		minIn(&pt.Pointer.ForceSec, time.Since(t0))

		t0 = time.Now()
		ft.Rebuild(bodies)
		minIn(&pt.Flat.BuildSec, time.Since(t0))

		t0 = time.Now()
		ft.SolveInto(bodies, theta, eps)
		minIn(&pt.Flat.ForceSec, time.Since(t0))
	}
	pt.BuildSpeedup = pt.Pointer.BuildSec / pt.Flat.BuildSec
	pt.ForceSpeedup = pt.Pointer.ForceSec / pt.Flat.ForceSec
	pt.TotalSpeedup = (pt.Pointer.BuildSec + pt.Pointer.ForceSec) /
		(pt.Flat.BuildSec + pt.Flat.ForceSec)
	return pt, nil
}
