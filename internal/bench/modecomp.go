package bench

import (
	"fmt"
	"strings"

	"upcbh/internal/core"
)

// runModeComparison runs the same configuration under both execution
// backends and prints simulated vs measured wall-clock per-phase times
// side by side: the Simulate column is the paper's modelled Power5
// cluster, the Native column is this machine running the identical
// algorithm at hardware speed.
func runModeComparison(x *Exec) (string, error) {
	p := x.P
	n := p.bodies(strongBodies)
	threads := p.threads([]int{1, 2, 4, 8})
	level := core.LevelSubspace

	var b strings.Builder
	fmt.Fprintf(&b, "Extension: Simulate (modelled Power5 cluster) vs Native (this host), %d bodies, level %s\n\n", n, level)

	for _, th := range threads {
		// The pairs run sequentially on purpose: the Runner serializes
		// each native run exclusively anyway, so batching would only
		// reorder the simulate halves.
		simOpts := options(p, n, th, level, nil)
		simOpts.ExecMode = core.ModeSimulate
		simRes, err := x.runOne(simOpts)
		if err != nil {
			return "", fmt.Errorf("simulate at %d threads: %w", th, err)
		}
		natOpts := options(p, n, th, level, nil)
		natOpts.ExecMode = core.ModeNative
		natRes, err := x.runOne(natOpts)
		if err != nil {
			return "", fmt.Errorf("native at %d threads: %w", th, err)
		}

		fmt.Fprintf(&b, "%d thread(s):\n", th)
		fmt.Fprintf(&b, "  %-16s %12s %12s %10s\n", "phase", "sim t(s)", "wall t(s)", "sim/wall")
		for _, ph := range phaseRows(level) {
			sim, wall := simRes.Phases[ph], natRes.Phases[ph]
			ratio := "-"
			if wall > 0 {
				ratio = fmt.Sprintf("%.1fx", sim/wall)
			}
			fmt.Fprintf(&b, "  %-16s %12.6f %12.6f %10s\n", ph, sim, wall, ratio)
		}
		simT, wallT := simRes.Total(), natRes.Total()
		ratio := "-"
		if wallT > 0 {
			ratio = fmt.Sprintf("%.1fx", simT/wallT)
		}
		fmt.Fprintf(&b, "  %-16s %12.6f %12.6f %10s\n\n", "Total", simT, wallT, ratio)
	}
	b.WriteString("(physics is identical between the columns; only the timing policy differs)\n")
	return b.String(), nil
}
