package bench

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"upcbh/internal/core"
	"upcbh/internal/nbody"
)

// stubExec installs a fast fake execution path that fabricates a Result
// from the options and counts real executions per key.
func stubExec(r *Runner) *atomic.Int64 {
	var execs atomic.Int64
	r.exec = func(o core.Options) (*core.Result, error) {
		execs.Add(1)
		res := &core.Result{Level: o.Level, Threads: o.Machine.Threads, ExecMode: o.ExecMode}
		// Nonzero, option-dependent phases so figure math (speedups) works.
		res.Phases[core.PhaseForce] = float64(o.Bodies) / float64(o.Machine.Threads)
		res.Phases[core.PhaseTree] = 0.01
		res.PerThread = make([]core.ThreadBreakdown, o.Machine.Threads)
		return res, nil
	}
	return &execs
}

// TestRunnerDedupsAcrossExperiments is the core cache property: configs
// shared between experiments (the strong-scaling tables and the speedup
// figures overlap heavily) simulate exactly once per unique key.
func TestRunnerDedupsAcrossExperiments(t *testing.T) {
	r := NewRunner(4)
	execs := stubExec(r)
	p := DefaultParams()

	// table2..table8 all sweep the same (bodies, threads) grid at one
	// level each; fig5 sweeps every level over the same grid and fig6
	// repeats the max-thread column. Everything fig5/fig6 needs is
	// already cached by the tables.
	ids := []string{"table2", "table3", "table4", "table5", "table6", "table7", "table8", "fig5", "fig6"}
	uniq := map[string]bool{}
	requests := 0
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(r, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range rep.Configs {
			uniq[c.Key] = true
			requests++
		}
	}
	s := r.Stats()
	if got := int(execs.Load()); got != len(uniq) {
		t.Errorf("executed %d simulations for %d unique configs", got, len(uniq))
	}
	if s.Runs != len(uniq) {
		t.Errorf("stats.Runs = %d, want %d unique configs", s.Runs, len(uniq))
	}
	if s.Hits != requests-len(uniq) {
		t.Errorf("stats.Hits = %d, want %d", s.Hits, requests-len(uniq))
	}
	// fig5 and fig6 alone re-request every tabled config: dedup must be
	// substantial, not incidental.
	if s.DedupFraction() < 0.3 {
		t.Errorf("dedup fraction %.2f below 0.3 (%d runs, %d hits)", s.DedupFraction(), s.Runs, s.Hits)
	}
}

// TestRunnerCoalescesInFlight: concurrent requests for the same key must
// share one execution, not race to run it twice.
func TestRunnerCoalescesInFlight(t *testing.T) {
	r := NewRunner(8)
	execs := stubExec(r)
	inner := r.exec
	r.exec = func(o core.Options) (*core.Result, error) {
		time.Sleep(10 * time.Millisecond) // hold the entry in flight
		return inner(o)
	}
	opts := make([]core.Options, 16)
	for i := range opts {
		opts[i] = core.DefaultOptions(2048, 2, core.LevelAsync) // identical key
	}
	results, hits, err := r.RunAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("%d executions for 16 identical requests", got)
	}
	misses := 0
	for i, h := range hits {
		if !h {
			misses++
		}
		if results[i] != results[0] {
			t.Errorf("request %d got a different result object", i)
		}
	}
	if misses != 1 {
		t.Errorf("%d cache misses, want exactly 1", misses)
	}
}

// TestRunnerNativeExclusive: a ModeNative run must never overlap a
// simulate-mode run (its wall-clock phase timings would be polluted).
func TestRunnerNativeExclusive(t *testing.T) {
	r := NewRunner(8)
	var simInFlight, violations atomic.Int64
	r.exec = func(o core.Options) (*core.Result, error) {
		if o.ExecMode == core.ModeNative {
			if simInFlight.Load() != 0 {
				violations.Add(1)
			}
		} else {
			simInFlight.Add(1)
			defer simInFlight.Add(-1)
		}
		time.Sleep(2 * time.Millisecond)
		return &core.Result{Level: o.Level, Threads: o.Machine.Threads, ExecMode: o.ExecMode}, nil
	}
	var opts []core.Options
	for n := 0; n < 24; n++ {
		o := core.DefaultOptions(256+n, 2, core.LevelAsync) // unique keys
		if n%4 == 0 {
			o.ExecMode = core.ModeNative
		}
		opts = append(opts, o)
	}
	if _, _, err := r.RunAll(opts); err != nil {
		t.Fatal(err)
	}
	if v := violations.Load(); v != 0 {
		t.Errorf("%d native runs overlapped a simulation", v)
	}
	if s := r.Stats(); s.NativeRuns != 6 {
		t.Errorf("NativeRuns = %d, want 6", s.NativeRuns)
	}
}

// TestParallelMatchesSerial: parallel harness execution must not change
// simulate-mode results. Single-UPC-thread simulations are bit-exact
// deterministic (no lock or NIC races — the property the 1-thread
// goldens rely on), so their rendered tables must be byte-identical
// between a 1-worker and a many-worker Runner.
func TestParallelMatchesSerial(t *testing.T) {
	render := func(workers int) string {
		r := NewRunner(workers)
		x := &Exec{R: r, P: Params{Scale: 1}}
		var opts []core.Options
		for level := core.LevelBaseline; level < core.NumLevels; level++ {
			o := core.DefaultOptions(512, 1, level)
			o.Steps, o.Warmup = 2, 1
			opts = append(opts, o)
		}
		results, err := x.runAll(opts)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i, res := range results {
			pt := PhaseTable{Title: core.Level(i).String(), Threads: []int{1}, Results: []*core.Result{res}}
			b.WriteString(pt.Format())
			b.WriteString(pt.CSV())
		}
		return b.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("parallel tables differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestParallelMatchesSerial112 extends the parallel-vs-serial pin to
// multi-thread configurations: under the cooperative virtual-time
// scheduler EVERY simulate run is bit-exact deterministic (the old
// goroutine backend only guaranteed this at one UPC thread), so a
// 112-thread table must also be byte-identical between a 1-worker and a
// many-worker Runner — the `-parallel` flag must never change output.
func TestParallelMatchesSerial112(t *testing.T) {
	render := func(workers int) string {
		r := NewRunner(workers)
		x := &Exec{R: r, P: Params{Scale: 1}}
		var opts []core.Options
		for _, scen := range []string{"plummer", "clustered"} {
			for _, level := range []core.Level{core.LevelBaseline, core.LevelSubspace} {
				o := core.DefaultOptions(768, 112, level)
				o.Scenario = scen
				o.Steps, o.Warmup = 2, 1
				opts = append(opts, o)
			}
		}
		results, err := x.runAll(opts)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i, res := range results {
			pt := PhaseTable{Title: opts[i].Key(), Threads: []int{112}, Results: []*core.Result{res}}
			b.WriteString(pt.Format())
			b.WriteString(pt.CSV())
		}
		return b.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("112-thread parallel tables differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestReportJSONRoundTrip: the -json serialization contract. A report
// marshals, unmarshals, and preserves identification, config keys, and
// phase times exactly (float64s survive via Go's shortest-round-trip
// encoding).
func TestReportJSONRoundTrip(t *testing.T) {
	e, err := ByID("table4")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(0)
	rep, err := e.Run(r, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.ID != rep.ID || got.Title != rep.Title || got.Text != rep.Text {
		t.Errorf("identification lost in round trip")
	}
	if len(got.Configs) != len(rep.Configs) {
		t.Fatalf("configs: %d != %d", len(got.Configs), len(rep.Configs))
	}
	for i := range got.Configs {
		if got.Configs[i].Key != rep.Configs[i].Key {
			t.Errorf("config %d key changed", i)
		}
		if got.Configs[i].Options.Key() != rep.Configs[i].Key {
			t.Errorf("config %d options no longer reproduce their key", i)
		}
		if got.Configs[i].Phases != rep.Configs[i].Phases {
			t.Errorf("config %d phases drifted: %v != %v", i, got.Configs[i].Phases, rep.Configs[i].Phases)
		}
	}

	// And the whole trajectory document round-trips too.
	traj := &Trajectory{Params: rep.Params, Runner: r.Stats(), Reports: []*Report{rep}}
	raw, err = traj.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var gt Trajectory
	if err := json.Unmarshal(raw, &gt); err != nil {
		t.Fatalf("trajectory unmarshal: %v", err)
	}
	if gt.Runner != traj.Runner || len(gt.Reports) != 1 || gt.Reports[0].ID != rep.ID {
		t.Errorf("trajectory round trip lost data")
	}
}

// TestRunnerKeepBodies: by default the body state is dropped before a
// result enters the cache; with KeepBodies the verification harness
// gets the physics back.
func TestRunnerKeepBodies(t *testing.T) {
	mkRunner := func(keep bool) *Runner {
		r := NewRunner(2)
		r.KeepBodies = keep
		r.exec = func(o core.Options) (*core.Result, error) {
			res := &core.Result{Level: o.Level}
			res.Bodies = make([]nbody.Body, o.Bodies)
			return res, nil
		}
		return r
	}
	opts := core.DefaultOptions(256, 2, core.LevelSubspace)

	res, _, err := mkRunner(false).Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bodies != nil {
		t.Errorf("default runner kept %d bodies; cache should drop them", len(res.Bodies))
	}

	res, _, err = mkRunner(true).Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bodies) != opts.Bodies {
		t.Errorf("KeepBodies runner returned %d bodies, want %d", len(res.Bodies), opts.Bodies)
	}
}

// stepwiseOpts is a configuration small enough for real (non-stubbed)
// stepped executions in tests.
func stepwiseOpts() core.Options {
	opts := core.DefaultOptions(256, 2, core.LevelMergedBuild)
	opts.Steps, opts.Warmup = 4, 1
	return opts
}

// TestRunStepwiseMatchesRun: the stepped execution path must produce the
// same Result as the plain cached path — under simulate, byte-identical —
// while delivering one snapshot per interval, monotone in step index.
func TestRunStepwiseMatchesRun(t *testing.T) {
	opts := stepwiseOpts()
	ref, _, err := NewRunner(2).Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	refRaw, _ := json.Marshal(ref)

	r := NewRunner(2)
	var steps []int
	res, err := r.RunStepwise(opts, 3, func(s *core.Snapshot) error {
		steps = append(steps, s.Step)
		if len(s.Bodies) != opts.Bodies {
			t.Errorf("snapshot at step %d carries %d bodies, want %d", s.Step, len(s.Bodies), opts.Bodies)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Step-0 snapshot first, then every=3 over 4 steps: boundaries at 3
	// and 4 (truncated tail).
	if len(steps) != 3 || steps[0] != 0 || steps[1] != 3 || steps[2] != 4 {
		t.Fatalf("observed boundaries %v, want [0 3 4]", steps)
	}
	gotRaw, _ := json.Marshal(res)
	if string(gotRaw) != string(refRaw) {
		t.Fatalf("stepped result diverged from Run:\n%.300s\nvs\n%.300s", gotRaw, refRaw)
	}
}

// TestRunStepwisePopulatesCache: a stepped run feeds the memoization
// cache, so a later Run of the same configuration hits.
func TestRunStepwisePopulatesCache(t *testing.T) {
	r := NewRunner(2)
	opts := stepwiseOpts()
	res, err := r.RunStepwise(opts, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bodies == nil {
		t.Error("stepped run dropped the caller's bodies; only the cached copy should")
	}
	cached, hit, err := r.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("Run after RunStepwise missed the cache")
	}
	if cached.Bodies != nil {
		t.Error("cached result kept bodies despite KeepBodies=false")
	}
	s := r.Stats()
	if s.Runs != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 1 run and 1 hit", s)
	}
}

// TestRunStepwiseLeavesExistingEntry: a cache entry that predates the
// stepped run is left untouched — later Runs keep returning it.
func TestRunStepwiseLeavesExistingEntry(t *testing.T) {
	r := NewRunner(2)
	stubExec(r) // Run goes through the stub; RunStepwise executes for real
	opts := stepwiseOpts()
	orig, _, err := r.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunStepwise(opts, 2, nil); err != nil {
		t.Fatal(err)
	}
	again, hit, err := r.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || again != orig {
		t.Fatalf("stepped run disturbed the existing cache entry (hit=%v, same=%v)", hit, again == orig)
	}
}

// TestRunStepwiseObserverAbort: an observer error aborts the run,
// surfaces wrapped, and leaves the cache unpopulated for the key.
func TestRunStepwiseObserverAbort(t *testing.T) {
	r := NewRunner(2)
	opts := stepwiseOpts()
	sentinel := errors.New("enough")
	_, err := r.RunStepwise(opts, 1, func(s *core.Snapshot) error {
		if s.Step >= 2 {
			return sentinel
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "enough") {
		t.Fatalf("observer error not surfaced: %v", err)
	}
	stubExec(r)
	if _, hit, err := r.Run(opts); err != nil || hit {
		t.Fatalf("aborted stepped run left a cache entry (hit=%v, err=%v)", hit, err)
	}
}

// TestRunStepwiseBadEvery: interval validation.
func TestRunStepwiseBadEvery(t *testing.T) {
	r := NewRunner(2)
	if _, err := r.RunStepwise(stepwiseOpts(), 0, nil); err == nil {
		t.Fatal("every=0 did not fail")
	}
}

// TestRunStepwiseInitialSnapshot pins the stream contract both stepped
// entry points share: the observer's first snapshot is step 0 (the
// distributed initial conditions), before any stepping.
func TestRunStepwiseInitialSnapshot(t *testing.T) {
	r := NewRunner(2)
	opts := stepwiseOpts()
	var first *core.Snapshot
	_, err := r.RunStepwise(opts, 2, func(s *core.Snapshot) error {
		if first == nil {
			first = s
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("observer never called")
	}
	if first.Step != 0 {
		t.Fatalf("first observed snapshot at step %d, want 0", first.Step)
	}
	if len(first.Bodies) != opts.Bodies {
		t.Fatalf("step-0 snapshot carries %d bodies, want %d", len(first.Bodies), opts.Bodies)
	}
	if first.Time != 0 {
		t.Fatalf("step-0 snapshot at simulated time %v, want 0", first.Time)
	}
}

// TestRunnerEvictsErrorEntry: the cache-poisoning regression. A config
// whose execution fails transiently must not have the failure memoized —
// the next request for the same key re-executes and can succeed.
func TestRunnerEvictsErrorEntry(t *testing.T) {
	r := NewRunner(2)
	var execs atomic.Int64
	r.exec = func(o core.Options) (*core.Result, error) {
		if execs.Add(1) == 1 {
			return nil, errors.New("transient native failure")
		}
		return &core.Result{Level: o.Level, Threads: o.Machine.Threads}, nil
	}
	opts := core.DefaultOptions(512, 2, core.LevelAsync)

	if _, _, err := r.Run(opts); err == nil {
		t.Fatal("first run should have failed")
	}
	res, hit, err := r.Run(opts)
	if err != nil {
		t.Fatalf("retry after transient failure still errors: %v", err)
	}
	if hit {
		t.Fatal("retry was served from the cache — the error entry was not evicted")
	}
	if res == nil {
		t.Fatal("retry returned no result")
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("executed %d times, want 2 (fail, then retry)", got)
	}
	// And success memoization is intact: a third request hits.
	if _, hit, err := r.Run(opts); err != nil || !hit {
		t.Fatalf("third request: hit=%v err=%v, want a cache hit", hit, err)
	}
	s := r.Stats()
	if s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions)
	}
	if s.Runs != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 2 runs / 1 hit", s)
	}
}

// TestRunnerErrorCoalescedWaiters: requests coalesced onto an in-flight
// execution that fails must all observe the failure (the entry is only
// evicted after done closes); requests arriving after the eviction
// re-execute.
func TestRunnerErrorCoalescedWaiters(t *testing.T) {
	r := NewRunner(8)
	var execs atomic.Int64
	release := make(chan struct{})
	r.exec = func(o core.Options) (*core.Result, error) {
		if execs.Add(1) == 1 {
			<-release // hold the failing run in flight while waiters pile up
			return nil, errors.New("boom")
		}
		return &core.Result{Level: o.Level}, nil
	}
	opts := core.DefaultOptions(1024, 2, core.LevelAsync)

	const waiters = 8
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, _, err := r.Run(opts)
			errs <- err
		}()
	}
	// Wait until every request has either started the execution or
	// coalesced onto it, then let the failure land.
	for r.Stats().Hits < waiters-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < waiters; i++ {
		if err := <-errs; err == nil {
			t.Fatal("a coalesced waiter missed the in-flight error")
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions while failing, want 1", got)
	}
	// The failure must not have stuck: the key re-executes and succeeds.
	if _, hit, err := r.Run(opts); err != nil || hit {
		t.Fatalf("post-eviction request: hit=%v err=%v, want a fresh successful run", hit, err)
	}
}

// TestRunnerConcurrentRunAndStepwise races Run against RunStepwise on
// the same key: whatever interleaving wins, the cache must end with
// exactly one coherent (successful, completed) entry and every request
// must return an equivalent Result.
func TestRunnerConcurrentRunAndStepwise(t *testing.T) {
	opts := stepwiseOpts()
	ref, _, err := NewRunner(2).Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	refRaw, _ := json.Marshal(ref)

	r := NewRunner(4)
	const each = 4
	var wg sync.WaitGroup
	results := make([]*core.Result, 2*each)
	errs := make([]error, 2*each)
	for i := 0; i < each; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = r.Run(opts)
		}(i)
		go func(i int) {
			defer wg.Done()
			results[each+i], errs[each+i] = r.RunStepwise(opts, 2, nil)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		raw, _ := json.Marshal(results[i])
		if string(raw) != string(refRaw) {
			t.Fatalf("request %d diverged from the reference result", i)
		}
	}

	// Exactly one coherent cache entry for the key.
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.cache) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(r.cache))
	}
	e, ok := r.cache[opts.Key()]
	if !ok {
		t.Fatal("cache entry is under the wrong key")
	}
	select {
	case <-e.done:
	default:
		t.Fatal("cache entry still marked in-flight")
	}
	if e.err != nil || e.res == nil {
		t.Fatalf("cache entry incoherent: res=%v err=%v", e.res, e.err)
	}
}

// TestRunnerLookupAndMemoize: the serve-layer cache seam. Lookup peeks
// without blocking or executing; Memoize lands an externally produced
// result, dropping bodies per KeepBodies, and never clobbers an
// existing entry.
func TestRunnerLookupAndMemoize(t *testing.T) {
	r := NewRunner(2)
	execs := stubExec(r)
	opts := core.DefaultOptions(2048, 2, core.LevelSubspace)

	if _, ok := r.Lookup(opts); ok {
		t.Fatal("Lookup hit an empty cache")
	}
	ext := &core.Result{Level: opts.Level, Threads: 2}
	ext.Bodies = make([]nbody.Body, opts.Bodies)
	if !r.Memoize(opts, ext) {
		t.Fatal("Memoize refused an empty slot")
	}
	got, ok := r.Lookup(opts)
	if !ok {
		t.Fatal("Lookup missed a memoized entry")
	}
	if got.Bodies != nil {
		t.Error("memoized copy kept bodies despite KeepBodies=false")
	}
	if ext.Bodies == nil {
		t.Error("Memoize stripped the caller's bodies; only the cached copy should drop them")
	}
	if r.Memoize(opts, &core.Result{}) {
		t.Fatal("Memoize overwrote an existing entry")
	}
	if again, ok := r.Lookup(opts); !ok || again != got {
		t.Fatal("second Lookup did not return the original entry")
	}
	// Run is served from the memoized entry without executing.
	if _, hit, err := r.Run(opts); err != nil || !hit {
		t.Fatalf("Run after Memoize: hit=%v err=%v", hit, err)
	}
	if execs.Load() != 0 {
		t.Fatalf("Run executed despite a memoized result")
	}
	if s := r.Stats(); s.Hits != 3 { // two Lookups + one Run
		t.Errorf("Hits = %d, want 3", s.Hits)
	}

	// An in-flight entry is a Lookup miss, not a block.
	slow := core.DefaultOptions(4096, 2, core.LevelAsync)
	started, unblock := make(chan struct{}), make(chan struct{})
	r.exec = func(o core.Options) (*core.Result, error) {
		close(started)
		<-unblock
		return &core.Result{}, nil
	}
	go r.Run(slow) //nolint:errcheck
	<-started
	if _, ok := r.Lookup(slow); ok {
		t.Error("Lookup returned an in-flight entry")
	}
	close(unblock)
}

// TestMemoizeOutcomeStats pins the cache-provenance accounting: every
// Memoize outcome is visible in RunnerStats, so a cache that silently
// dropped an externally produced result (the old RunStepwise behaviour —
// the return value was ignored) can no longer hide. Concurrent Memoize
// calls for one key land exactly one entry and drop the rest.
func TestMemoizeOutcomeStats(t *testing.T) {
	r := NewRunner(4)
	opts := core.DefaultOptions(2048, 2, core.LevelCacheTree)

	const callers = 16
	var wg sync.WaitGroup
	var landed atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r.Memoize(opts, &core.Result{Level: opts.Level, Threads: 2}) {
				landed.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := landed.Load(); got != 1 {
		t.Fatalf("%d Memoize calls landed, want exactly 1", got)
	}
	s := r.Stats()
	if s.Memoized != 1 || s.MemoizeDropped != callers-1 {
		t.Fatalf("stats Memoized=%d MemoizeDropped=%d, want 1 and %d", s.Memoized, s.MemoizeDropped, callers-1)
	}
	if _, ok := r.Lookup(opts); !ok {
		t.Fatal("no entry survived the concurrent Memoize storm")
	}

	// The stepped path reports through the same counters: a stepped run
	// over a key that is already cached drops its feed (the entry is left
	// untouched), and one over a fresh key lands it.
	if _, err := r.RunStepwise(opts, 2, nil); err != nil {
		t.Fatal(err)
	}
	s = r.Stats()
	if s.Memoized != 1 || s.MemoizeDropped != callers {
		t.Fatalf("after stepped run on cached key: Memoized=%d MemoizeDropped=%d, want 1 and %d",
			s.Memoized, s.MemoizeDropped, callers)
	}
	fresh := stepwiseOpts()
	if _, err := r.RunStepwise(fresh, 2, nil); err != nil {
		t.Fatal(err)
	}
	s = r.Stats()
	if s.Memoized != 2 || s.MemoizeDropped != callers {
		t.Fatalf("after stepped run on fresh key: Memoized=%d MemoizeDropped=%d, want 2 and %d",
			s.Memoized, s.MemoizeDropped, callers)
	}
	if _, hit, err := r.Run(fresh); err != nil || !hit {
		t.Fatalf("Run after stepped feed: hit=%v err=%v, want a cache hit", hit, err)
	}
}
