package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upcbh/internal/arena"
)

// container builds a small but fully valid checkpoint container for
// key at step: lookups validate with arena.ReadCheckpoint, so test
// entries must pass the real format checks.
func container(t *testing.T, key string, step int) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := arena.WriteCheckpoint(&buf, key, step, nil, []arena.NamedRegion{
		{Name: "state", Data: []byte(fmt.Sprintf(`{"key":%q,"step":%d}`, key, step))},
		{Name: "heap", Data: bytes.Repeat([]byte{0xAB}, 100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openTest(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	if o.Logf == nil {
		o.Logf = t.Logf
	}
	s, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// listDir returns the store directory's file names (non-recursive).
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestPutGetNewest: the round trip — entries come back byte-identical,
// Newest picks the highest step, Get demands the exact step.
func TestPutGetNewest(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Keep: 10})
	const key = "n=512;steps=8;test-key"
	c2, c5 := container(t, key, 2), container(t, key, 5)
	if err := s.Put(key, 2, c2); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, 5, c5); err != nil {
		t.Fatal(err)
	}

	got, step, err := s.Newest(key)
	if err != nil {
		t.Fatal(err)
	}
	if step != 5 || !bytes.Equal(got, c5) {
		t.Fatalf("Newest = step %d (%d bytes), want step 5 byte-identical", step, len(got))
	}
	if got, err := s.Get(key, 2); err != nil || !bytes.Equal(got, c2) {
		t.Fatalf("Get(2) = %v", err)
	}
	if !s.Has(key, 2) || s.Has(key, 3) {
		t.Fatalf("Has: got (2)=%v (3)=%v", s.Has(key, 2), s.Has(key, 3))
	}
	if _, err := s.Get(key, 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(3) = %v, want ErrNotFound", err)
	}
	if _, _, err := s.Newest("some-other-key"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Newest(other) = %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.Writes != 2 || st.Keys != 1 || st.Entries != 2 || st.Degraded {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRetentionGC: Put keeps the newest Keep entries per key and
// removes the rest from disk.
func TestRetentionGC(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Keep: 2})
	const key = "gc-key"
	for step := 1; step <= 5; step++ {
		if err := s.Put(key, step, container(t, key, step)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Entries != 2 || st.GCRemoved != 3 {
		t.Fatalf("after 5 puts with Keep=2: %+v", st)
	}
	if _, _, err := s.Newest(key); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GC'd entry still served: %v", err)
	}
	names := listDir(t, dir)
	if len(names) != 2 {
		t.Fatalf("directory holds %v, want exactly the 2 retained entries", names)
	}
}

// TestReopenIndexes: a fresh Open over an existing directory serves
// the entries a previous Store published.
func TestReopenIndexes(t *testing.T) {
	dir := t.TempDir()
	const keyA, keyB = "key-a", "key-b"
	s1 := openTest(t, dir, Options{})
	for _, put := range []struct {
		key  string
		step int
	}{{keyA, 3}, {keyA, 6}, {keyB, 1}} {
		if err := s1.Put(put.key, put.step, container(t, put.key, put.step)); err != nil {
			t.Fatal(err)
		}
	}

	s2 := openTest(t, dir, Options{})
	if _, step, err := s2.Newest(keyA); err != nil || step != 6 {
		t.Fatalf("reopened Newest(keyA) = step %d, %v", step, err)
	}
	all := s2.NewestAll()
	if len(all) != 2 {
		t.Fatalf("NewestAll = %d entries, want 2", len(all))
	}
	if all[0].Key != keyA || all[0].Step != 6 || all[1].Key != keyB || all[1].Step != 1 {
		t.Fatalf("NewestAll = [{%s %d} {%s %d}]", all[0].Key, all[0].Step, all[1].Key, all[1].Step)
	}
}

// TestCorruptEntryQuarantined: a torn/corrupt final file (the state a
// crash leaves when a non-atomic writer was interrupted, or bit rot)
// is quarantined at lookup and the next-newest valid entry is served.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Keep: 10})
	const key = "quarantine-key"
	good := container(t, key, 2)
	if err := s.Put(key, 2, good); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, 7, container(t, key, 7)); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest entry in place: flip a payload byte (CRC breaks)
	// on one run of the test, truncate on a second pattern.
	name := entryName(keyHash(key), 7)
	path := filepath.Join(dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, corrupt := range [][]byte{
		append(append([]byte{}, raw[:len(raw)-1]...), raw[len(raw)-1]^0xFF),
		raw[:len(raw)/2],
	} {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		// Re-open so the index includes step 7 again after the first
		// quarantine pass.
		s := openTest(t, dir, Options{Keep: 10})
		data, step, err := s.Newest(key)
		if err != nil {
			t.Fatal(err)
		}
		if step != 2 || !bytes.Equal(data, good) {
			t.Fatalf("Newest after corruption = step %d, want fallback to 2", step)
		}
		if s.Stats().Quarantined != 1 {
			t.Fatalf("stats = %+v, want 1 quarantined", s.Stats())
		}
		// The corrupt file is preserved under quarantine/, not deleted.
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, name)); err != nil {
			t.Fatalf("quarantined file missing: %v", err)
		}
		// Put the corrupt bytes back at the final name for round two.
		if err := os.Remove(filepath.Join(dir, quarantineDir, name)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKeyMismatchQuarantined: an entry whose header carries a key that
// doesn't hash to its name (a renamed or crafted file) never serves.
func TestKeyMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	const key = "honest-key"
	if err := s.Put(key, 4, container(t, key, 4)); err != nil {
		t.Fatal(err)
	}
	// Rename the entry so its name claims a different key.
	const otherKey = "claimed-key"
	if err := os.Rename(
		filepath.Join(dir, entryName(keyHash(key), 4)),
		filepath.Join(dir, entryName(keyHash(otherKey), 4)),
	); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{})
	if _, _, err := s2.Newest(otherKey); !errors.Is(err, ErrNotFound) {
		t.Fatalf("renamed entry served under the wrong key: %v", err)
	}
	if s2.Stats().Quarantined != 1 {
		t.Fatalf("stats = %+v", s2.Stats())
	}
}

// TestTmpSweep: temp files from a crashed writer are deleted at Open
// and never visible to lookups.
func TestTmpSweep(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"deadbeef-0000000001-1"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{})
	if st := s.Stats(); st.TmpSwept != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for _, name := range listDir(t, dir) {
		if strings.HasPrefix(name, tmpPrefix) {
			t.Fatalf("temp file %s survived the sweep", name)
		}
	}
}

// TestForeignFilesIgnored: unrelated files in the store directory are
// left alone and never parsed as entries.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{})
	if st := s.Stats(); st.Entries != 0 || st.TmpSwept != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file was removed: %v", err)
	}
}

// TestQuarantineAPI: the explicit Quarantine hook (used when
// core.Restore rejects a format-valid container) removes the entry
// from circulation.
func TestQuarantineAPI(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	const key = "deep-reject"
	if err := s.Put(key, 3, container(t, key, 3)); err != nil {
		t.Fatal(err)
	}
	s.Quarantine(key, 3)
	if _, _, err := s.Newest(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("quarantined entry still served: %v", err)
	}
	s.Quarantine(key, 3) // idempotent on a missing entry
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestParseEntryName(t *testing.T) {
	kh := keyHash("some key")
	name := entryName(kh, 42)
	gkh, step, ok := parseEntryName(name)
	if !ok || gkh != kh || step != 42 {
		t.Fatalf("parseEntryName(%q) = %q %d %v", name, gkh, step, ok)
	}
	for _, bad := range []string{
		"", "x.ckpt", "short-1.ckpt",
		kh + "-x.ckpt", kh + "-.ckpt", kh + "--1.ckpt",
		strings.Repeat("Z", keyHashLen) + "-0000000001.ckpt", // non-hex hash
		name + ".bak",
	} {
		if _, _, ok := parseEntryName(bad); ok {
			t.Fatalf("parseEntryName(%q) accepted", bad)
		}
	}
}

// TestConcurrentPutLookup: the store serializes internally — parallel
// writers and readers over overlapping keys race cleanly (run with
// -race).
func TestConcurrentPutLookup(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Keep: 2, Logf: func(string, ...any) {}})
	containers := make(map[string][][]byte)
	for g := 0; g < 2; g++ {
		key := fmt.Sprintf("key-%d", g)
		for step := 1; step <= 10; step++ {
			containers[key] = append(containers[key], container(t, key, step))
		}
	}
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			key := fmt.Sprintf("key-%d", g%2)
			var err error
			for step := 1; step <= 10 && err == nil; step++ {
				err = s.Put(key, step, containers[key][step-1])
			}
			done <- err
		}(g)
		go func(g int) {
			key := fmt.Sprintf("key-%d", g%2)
			for i := 0; i < 20; i++ {
				s.Newest(key)
				s.Stats()
			}
			done <- nil
		}(g)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Newest("key-0"); err != nil {
		t.Fatal(err)
	}
}
