// Package store is the durable, content-addressed checkpoint store
// behind bhserve's crash safety (DESIGN.md §14). Entries are checkpoint
// containers (internal/arena format) keyed by the simulation's
// canonical Options.Key() plus the step they capture; the newest valid
// entry per key is what startup recovery restores.
//
// Durability argument, in order:
//
//  1. Put writes the container to a hidden temp name in the store
//     directory, fsyncs the file, then renames it to its final name and
//     fsyncs the directory. A crash at any point leaves either the
//     previous state or the complete new entry — never a torn container
//     at a final name reachable by lookup.
//  2. Temp files left by a crash mid-write are swept (deleted) when the
//     store is next opened; they were never visible to lookups.
//  3. Lookups validate every candidate with arena.ReadCheckpoint
//     (magic, version, header shape, region bounds, payload CRC) and
//     check the header's key/step against the entry's name before
//     returning it. An entry that fails validation — a torn file from a
//     crashed fsync-less writer, bit rot, a crafted container — is
//     quarantined (moved aside, never deleted) and the next-newest
//     entry is tried: corruption degrades recovery by one checkpoint
//     interval, it never crashes the server or hides older good state.
//  4. Retention: Put keeps the newest Keep entries per key and removes
//     the rest, so a long-running session's periodic checkpoints don't
//     grow the store without bound.
//
// The Store serializes all mutation internally; Put/lookup/GC are safe
// from any goroutine.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"upcbh/internal/arena"
)

// ErrNotFound reports that no valid entry exists for the requested key
// (or key+step).
var ErrNotFound = errors.New("store: no valid checkpoint")

const (
	entrySuffix   = ".ckpt"
	tmpPrefix     = ".tmp-"
	quarantineDir = "quarantine"
	keyHashLen    = 32 // hex chars of the sha256 key digest in entry names
)

// Options configures a Store. Zero values mean defaults.
type Options struct {
	// FS is the filesystem seam (default OSFS). Tests inject faults here.
	FS FS
	// Keep is how many newest entries are retained per key (default 2):
	// the newest is what recovery wants, one older survives as a fallback
	// should the newest be quarantined.
	Keep int
	// Logf receives sweep/quarantine/GC notices; nil silences them.
	Logf func(format string, args ...any)
}

// Store is a durable checkpoint store rooted at one directory.
type Store struct {
	dir  string
	fs   FS
	keep int
	logf func(string, ...any)

	mu    sync.Mutex
	index map[string][]int // key hash -> steps present, ascending
	seq   uint64           // temp-name uniquifier

	writes      uint64
	writeFails  uint64
	gcRemoved   uint64
	quarantined uint64
	tmpSwept    uint64
	degraded    bool
	lastErr     string
}

// Entry is one recoverable checkpoint: the newest valid container of
// one key, as returned by NewestAll.
type Entry struct {
	Key  string
	Step int
	Data []byte
}

// Stats is the store's observability snapshot (surfaced in bhserve's
// GET /stats).
type Stats struct {
	Dir           string `json:"dir"`
	Keys          int    `json:"keys"`
	Entries       int    `json:"entries"`
	Writes        uint64 `json:"writes"`
	WriteFailures uint64 `json:"write_failures"`
	GCRemoved     uint64 `json:"gc_removed"`
	Quarantined   uint64 `json:"quarantined"`
	TmpSwept      uint64 `json:"tmp_swept"`
	Degraded      bool   `json:"degraded"`
	LastError     string `json:"last_error,omitempty"`
}

// Open opens (creating if needed) the store rooted at dir, sweeping
// temp files a previous process left behind mid-write and indexing the
// entries present.
func Open(dir string, o Options) (*Store, error) {
	if o.FS == nil {
		o.FS = OSFS
	}
	if o.Keep <= 0 {
		o.Keep = 2
	}
	if err := o.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Store{dir: dir, fs: o.FS, keep: o.Keep, logf: o.Logf, index: make(map[string][]int)}
	ents, err := o.FS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case e.IsDir():
			// quarantine/ (or anything else): not an entry.
		case strings.HasPrefix(name, tmpPrefix):
			// A crash mid-Put: the temp was never renamed, so no lookup
			// ever saw it. Delete it.
			if err := o.FS.Remove(filepath.Join(dir, name)); err == nil {
				s.tmpSwept++
				s.log("swept temp file %s", name)
			}
		default:
			kh, step, ok := parseEntryName(name)
			if !ok {
				s.log("ignoring foreign file %s", name)
				continue
			}
			s.index[kh] = append(s.index[kh], step)
		}
	}
	for kh := range s.index {
		sort.Ints(s.index[kh])
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) log(format string, args ...any) {
	if s.logf != nil {
		s.logf("store: "+format, args...)
	}
}

func keyHash(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])[:keyHashLen]
}

func entryName(kh string, step int) string {
	return fmt.Sprintf("%s-%010d%s", kh, step, entrySuffix)
}

func parseEntryName(name string) (kh string, step int, ok bool) {
	base, found := strings.CutSuffix(name, entrySuffix)
	if !found || len(base) < keyHashLen+2 || base[keyHashLen] != '-' {
		return "", 0, false
	}
	kh = base[:keyHashLen]
	for _, c := range kh {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return "", 0, false
		}
	}
	n, err := strconv.Atoi(base[keyHashLen+1:])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return kh, n, true
}

// Put publishes one checkpoint container for key at step: temp file,
// data fsync, rename to the final name, directory fsync — atomic
// against crashes at every point. On success superseded entries beyond
// the retention horizon are garbage-collected and a previously degraded
// store is marked healthy again; on failure the temp file is removed
// (best effort) and the store's previous entries are untouched.
func (s *Store) Put(key string, step int, data []byte) error {
	if step < 0 {
		return fmt.Errorf("store: negative step %d", step)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kh := keyHash(key)
	s.seq++
	tmp := filepath.Join(s.dir, fmt.Sprintf("%s%s-%010d-%d", tmpPrefix, kh, step, s.seq))
	if err := s.writeTmp(tmp, data); err != nil {
		return s.failLocked(err)
	}
	final := filepath.Join(s.dir, entryName(kh, step))
	if err := s.fs.Rename(tmp, final); err != nil {
		_ = s.fs.Remove(tmp)
		return s.failLocked(fmt.Errorf("store: publish %s: %w", final, err))
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		// The entry is visible but its directory entry may not survive a
		// power loss; the write is not durable, so report it as failed.
		return s.failLocked(fmt.Errorf("store: sync dir after publishing %s: %w", final, err))
	}
	steps := s.index[kh]
	if i := sort.SearchInts(steps, step); i == len(steps) || steps[i] != step {
		steps = append(steps, 0)
		copy(steps[i+1:], steps[i:])
		steps[i] = step
		s.index[kh] = steps
	}
	s.writes++
	s.degraded = false
	s.lastErr = ""
	s.gcLocked(kh)
	return nil
}

func (s *Store) writeTmp(tmp string, data []byte) error {
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create temp %s: %w", tmp, err)
	}
	n, werr := f.Write(data)
	if werr == nil && n < len(data) {
		werr = fmt.Errorf("short write (%d of %d bytes)", n, len(data))
	}
	serr := f.Sync()
	cerr := f.Close()
	if werr == nil {
		werr = serr
	}
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: write temp %s: %w", tmp, werr)
	}
	return nil
}

// failLocked records a write failure without marking the store
// degraded: degradation (give-up after retries) is the caller's call —
// the persister distinguishes transient from persistent failures.
func (s *Store) failLocked(err error) error {
	s.writeFails++
	s.lastErr = err.Error()
	return err
}

// SetDegraded marks the store degraded (persistent write failure:
// checkpoints are being dropped but sessions keep running in-memory).
// The next successful Put clears it.
func (s *Store) SetDegraded(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.degraded = true
	if err != nil {
		s.lastErr = err.Error()
	}
}

// Degraded reports whether the store is in degraded mode.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// gcLocked enforces retention for one key: the newest keep entries
// stay, older ones are removed. Removal failures are logged and
// retried implicitly on the next Put.
func (s *Store) gcLocked(kh string) {
	steps := s.index[kh]
	for len(steps) > s.keep {
		victim := steps[0]
		path := filepath.Join(s.dir, entryName(kh, victim))
		if err := s.fs.Remove(path); err != nil {
			s.log("gc of %s failed: %v", path, err)
			return
		}
		steps = steps[1:]
		s.gcRemoved++
	}
	s.index[kh] = steps
}

// Has reports whether an entry for key at step exists (by name only —
// no validation; use Get to both check and read).
func (s *Store) Has(key string, step int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	steps := s.index[keyHash(key)]
	i := sort.SearchInts(steps, step)
	return i < len(steps) && steps[i] == step
}

// Get returns the validated container for key at exactly step, or
// ErrNotFound. An entry that fails validation is quarantined.
func (s *Store) Get(key string, step int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kh := keyHash(key)
	steps := s.index[kh]
	if i := sort.SearchInts(steps, step); i < len(steps) && steps[i] == step {
		if data, ok := s.readValidLocked(kh, step, key); ok {
			return data, nil
		}
	}
	return nil, fmt.Errorf("%w for key %q at step %d", ErrNotFound, key, step)
}

// Newest returns the newest valid container for key and the step it
// captures, or ErrNotFound. Invalid candidates are quarantined and
// older entries tried — corruption costs one checkpoint interval, not
// the session.
func (s *Store) Newest(key string) ([]byte, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kh := keyHash(key)
	for {
		steps := s.index[kh]
		if len(steps) == 0 {
			return nil, 0, fmt.Errorf("%w for key %q", ErrNotFound, key)
		}
		step := steps[len(steps)-1]
		if data, ok := s.readValidLocked(kh, step, key); ok {
			return data, step, nil
		}
	}
}

// NewestAll returns the newest valid container of every key in the
// store (the startup-recovery set), sorted by key for deterministic
// admission order. Keys whose every entry fails validation contribute
// nothing (each failure is quarantined).
func (s *Store) NewestAll() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for kh := range s.index {
		for {
			steps := s.index[kh]
			if len(steps) == 0 {
				break
			}
			step := steps[len(steps)-1]
			data, key, ok := s.readAnyKeyLocked(kh, step)
			if ok {
				out = append(out, Entry{Key: key, Step: step, Data: data})
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Quarantine moves the entry for key at step aside (e.g. after a
// deeper validation layer — core.Restore — rejected a container the
// format-level checks accepted). Missing entries are a no-op.
func (s *Store) Quarantine(key string, step int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quarantineLocked(keyHash(key), step)
}

// readValidLocked reads and validates one entry, checking that the
// container's header names exactly the key the caller asked about.
// Invalid entries are quarantined and (false) returned.
func (s *Store) readValidLocked(kh string, step int, key string) ([]byte, bool) {
	data, gotKey, ok := s.readAnyKeyLocked(kh, step)
	if !ok {
		return nil, false
	}
	if gotKey != key {
		// Hash-prefix collision or a renamed entry: not the caller's run.
		s.log("entry %s carries key %q, wanted %q: quarantining", entryName(kh, step), gotKey, key)
		s.quarantineLocked(kh, step)
		return nil, false
	}
	return data, true
}

// readAnyKeyLocked reads and validates one entry, returning the key its
// header carries (which must hash to the entry's name). Invalid entries
// are quarantined.
func (s *Store) readAnyKeyLocked(kh string, step int) (data []byte, key string, ok bool) {
	name := entryName(kh, step)
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		s.log("read %s: %v: quarantining", name, err)
		s.quarantineLocked(kh, step)
		return nil, "", false
	}
	c, err := arena.ReadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		s.log("validate %s: %v: quarantining", name, err)
		s.quarantineLocked(kh, step)
		return nil, "", false
	}
	if c.Header.Step != step || keyHash(c.Header.Key) != kh {
		s.log("entry %s header says key %q step %d: quarantining", name, c.Header.Key, c.Header.Step)
		s.quarantineLocked(kh, step)
		return nil, "", false
	}
	return raw, c.Header.Key, true
}

// quarantineLocked moves one entry into quarantine/ (falling back to
// removal if the move fails) and drops it from the index.
func (s *Store) quarantineLocked(kh string, step int) {
	steps := s.index[kh]
	i := sort.SearchInts(steps, step)
	if i == len(steps) || steps[i] != step {
		return
	}
	s.index[kh] = append(steps[:i], steps[i+1:]...)
	name := entryName(kh, step)
	src := filepath.Join(s.dir, name)
	moved := false
	if err := s.fs.MkdirAll(filepath.Join(s.dir, quarantineDir), 0o755); err == nil {
		moved = s.fs.Rename(src, filepath.Join(s.dir, quarantineDir, name)) == nil
	}
	if !moved {
		_ = s.fs.Remove(src)
	}
	s.quarantined++
	s.log("quarantined %s", name)
}

// Stats returns the store's observability snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := 0
	for _, steps := range s.index {
		entries += len(steps)
	}
	return Stats{
		Dir:           s.dir,
		Keys:          len(s.index),
		Entries:       entries,
		Writes:        s.writes,
		WriteFailures: s.writeFails,
		GCRemoved:     s.gcRemoved,
		Quarantined:   s.quarantined,
		TmpSwept:      s.tmpSwept,
		Degraded:      s.degraded,
		LastError:     s.lastErr,
	}
}
