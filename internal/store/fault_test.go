package store

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
)

// faultFS wraps OSFS with deterministic, programmable failures: the
// fault-injection seam the ISSUE's acceptance criteria name. Every
// fault mode models a real storage failure:
//
//   - writeErr: Write returns it (EIO: failing device; ENOSPC: full disk)
//   - tornAfter: Write persists only the first tornAfter bytes, then
//     errors — a torn write
//   - failCreate / failRename / failSyncDir: the corresponding call errors
//   - crashBeforeRename: Rename does nothing and reports errCrashed —
//     the process "died" after writing the temp but before publishing it
type faultFS struct {
	mu                sync.Mutex
	writeErr          error
	tornAfter         int // -1 = disabled
	failCreate        error
	failRename        error
	failSyncDir       error
	crashBeforeRename bool

	writes  int
	renames int
}

var errCrashed = errors.New("faultfs: crashed before rename")

func newFaultFS() *faultFS { return &faultFS{tornAfter: -1} }

func (f *faultFS) set(mut func(*faultFS)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mut(f)
}

func (f *faultFS) MkdirAll(dir string, perm os.FileMode) error { return OSFS.MkdirAll(dir, perm) }
func (f *faultFS) ReadFile(path string) ([]byte, error)        { return OSFS.ReadFile(path) }
func (f *faultFS) Remove(path string) error                    { return OSFS.Remove(path) }
func (f *faultFS) ReadDir(dir string) ([]fs.DirEntry, error)   { return OSFS.ReadDir(dir) }

func (f *faultFS) Create(path string) (File, error) {
	f.mu.Lock()
	err := f.failCreate
	f.mu.Unlock()
	if err != nil {
		return nil, &os.PathError{Op: "create", Path: path, Err: err}
	}
	real, ferr := OSFS.Create(path)
	if ferr != nil {
		return nil, ferr
	}
	return &faultFile{fs: f, f: real, path: path}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	crash, err := f.crashBeforeRename, f.failRename
	f.mu.Unlock()
	if crash {
		// The "crash": the temp file stays on disk, the final name never
		// appears. The caller's process would be gone; the test observes
		// the on-disk state a restart would find.
		return errCrashed
	}
	if err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return OSFS.Rename(oldpath, newpath)
}

func (f *faultFS) SyncDir(dir string) error {
	f.mu.Lock()
	err := f.failSyncDir
	f.mu.Unlock()
	if err != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	return OSFS.SyncDir(dir)
}

type faultFile struct {
	fs   *faultFS
	f    File
	path string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	ff.fs.writes++
	werr, torn := ff.fs.writeErr, ff.fs.tornAfter
	ff.fs.mu.Unlock()
	if werr != nil {
		return 0, &os.PathError{Op: "write", Path: ff.path, Err: werr}
	}
	if torn >= 0 && torn < len(p) {
		n, _ := ff.f.Write(p[:torn])
		return n, &os.PathError{Op: "write", Path: ff.path, Err: syscall.EIO}
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error  { return ff.f.Sync() }
func (ff *faultFile) Close() error { return ff.f.Close() }

// putOK seeds one good entry so fault tests can prove prior state
// survives every failure mode.
func putOK(t *testing.T, s *Store, key string, step int, data []byte) {
	t.Helper()
	if err := s.Put(key, step, data); err != nil {
		t.Fatal(err)
	}
}

// checkIntact asserts the store still serves exactly the seeded entry —
// the "store stays readable after every fault" half of the acceptance
// criteria.
func checkIntact(t *testing.T, s *Store, key string, step int, data []byte) {
	t.Helper()
	got, gotStep, err := s.Newest(key)
	if err != nil {
		t.Fatalf("store unreadable after fault: %v", err)
	}
	if gotStep != step || !bytes.Equal(got, data) {
		t.Fatalf("fault perturbed existing entry: got step %d, want %d", gotStep, step)
	}
}

// checkNoTmp asserts no temp file leaked past a failed Put.
func checkNoTmp(t *testing.T, dir string) {
	t.Helper()
	for _, name := range listDir(t, dir) {
		if strings.HasPrefix(name, tmpPrefix) {
			t.Fatalf("failed Put leaked temp file %s", name)
		}
	}
}

// TestPutENOSPC: a full disk fails the Put with ENOSPC surfaced in the
// error chain (the persister keys degraded mode off it), leaves no temp
// file, and does not disturb existing entries.
func TestPutENOSPC(t *testing.T) {
	ffs := newFaultFS()
	dir := t.TempDir()
	s := openTest(t, dir, Options{FS: ffs})
	const key = "enospc-key"
	good := container(t, key, 1)
	putOK(t, s, key, 1, good)

	ffs.set(func(f *faultFS) { f.writeErr = syscall.ENOSPC })
	err := s.Put(key, 2, container(t, key, 2))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put under ENOSPC = %v, want ENOSPC in the chain", err)
	}
	ffs.set(func(f *faultFS) { f.writeErr = nil })
	checkIntact(t, s, key, 1, good)
	checkNoTmp(t, dir)
	if st := s.Stats(); st.WriteFailures != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// The disk recovers: the next Put succeeds and supersedes.
	putOK(t, s, key, 3, container(t, key, 3))
	if _, step, err := s.Newest(key); err != nil || step != 3 {
		t.Fatalf("post-recovery Newest = %d, %v", step, err)
	}
}

// TestPutEIO: a failing device errors the Put (transient per the
// persister's policy); the store remains intact and retryable.
func TestPutEIO(t *testing.T) {
	ffs := newFaultFS()
	dir := t.TempDir()
	s := openTest(t, dir, Options{FS: ffs})
	const key = "eio-key"
	good := container(t, key, 1)
	putOK(t, s, key, 1, good)

	ffs.set(func(f *faultFS) { f.writeErr = syscall.EIO })
	if err := s.Put(key, 2, container(t, key, 2)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put under EIO = %v", err)
	}
	ffs.set(func(f *faultFS) { f.writeErr = nil })
	checkIntact(t, s, key, 1, good)
	checkNoTmp(t, dir)
	// Retry after the transient clears.
	putOK(t, s, key, 2, container(t, key, 2))
}

// TestPutTornWrite: a write that persists only a prefix fails the Put;
// the torn bytes never reach a final name, so lookups are unaffected.
func TestPutTornWrite(t *testing.T) {
	ffs := newFaultFS()
	dir := t.TempDir()
	s := openTest(t, dir, Options{FS: ffs})
	const key = "torn-key"
	good := container(t, key, 1)
	putOK(t, s, key, 1, good)

	ffs.set(func(f *faultFS) { f.tornAfter = 16 })
	if err := s.Put(key, 2, container(t, key, 2)); err == nil {
		t.Fatal("torn write reported success")
	}
	ffs.set(func(f *faultFS) { f.tornAfter = -1 })
	checkIntact(t, s, key, 1, good)
	checkNoTmp(t, dir)
}

// TestPutCrashBeforeRename: the writer "dies" after the temp write but
// before publication. The final name never appears, the previous entry
// still serves, and a restart (re-Open) sweeps the orphaned temp.
func TestPutCrashBeforeRename(t *testing.T) {
	ffs := newFaultFS()
	dir := t.TempDir()
	s := openTest(t, dir, Options{FS: ffs})
	const key = "crash-key"
	good := container(t, key, 1)
	putOK(t, s, key, 1, good)

	ffs.set(func(f *faultFS) { f.crashBeforeRename = true })
	if err := s.Put(key, 2, container(t, key, 2)); !errors.Is(err, errCrashed) {
		t.Fatalf("Put = %v, want crash sentinel", err)
	}
	ffs.set(func(f *faultFS) { f.crashBeforeRename = false })
	checkIntact(t, s, key, 1, good)
	if s.Has(key, 2) {
		t.Fatal("unpublished entry visible in the index")
	}

	// The crashed Put's Remove cleanup also "didn't run" in a real crash;
	// simulate the worst case by planting a temp file, then prove restart
	// sweeps it and recovery sees only the published entry.
	if err := os.WriteFile(dir+"/"+tmpPrefix+"orphan-1", []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{})
	if st := s2.Stats(); st.TmpSwept == 0 {
		t.Fatalf("restart did not sweep the orphaned temp: %+v", st)
	}
	checkIntact(t, s2, key, 1, good)
	checkNoTmp(t, dir)
}

// TestPutRenameFailure: a failing rename is a failed Put with the temp
// cleaned up.
func TestPutRenameFailure(t *testing.T) {
	ffs := newFaultFS()
	dir := t.TempDir()
	s := openTest(t, dir, Options{FS: ffs})
	const key = "rename-key"
	good := container(t, key, 1)
	putOK(t, s, key, 1, good)
	ffs.set(func(f *faultFS) { f.failRename = syscall.EIO })
	if err := s.Put(key, 2, container(t, key, 2)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put = %v", err)
	}
	ffs.set(func(f *faultFS) { f.failRename = nil })
	checkIntact(t, s, key, 1, good)
	checkNoTmp(t, dir)
}

// TestPutSyncDirFailure: when the directory fsync fails the entry may
// exist but is not durable — Put reports failure so the persister does
// not count the checkpoint as safe.
func TestPutSyncDirFailure(t *testing.T) {
	ffs := newFaultFS()
	s := openTest(t, t.TempDir(), Options{FS: ffs})
	const key = "syncdir-key"
	ffs.set(func(f *faultFS) { f.failSyncDir = syscall.EIO })
	if err := s.Put(key, 1, container(t, key, 1)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put = %v", err)
	}
	if st := s.Stats(); st.Writes != 0 || st.WriteFailures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDegradedLifecycle: SetDegraded flips the flag (and Stats), and
// the next successful Put clears it — the ENOSPC-recovers story.
func TestDegradedLifecycle(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	if s.Degraded() {
		t.Fatal("fresh store degraded")
	}
	s.SetDegraded(syscall.ENOSPC)
	if !s.Degraded() {
		t.Fatal("SetDegraded did not stick")
	}
	if st := s.Stats(); !st.Degraded || st.LastError == "" {
		t.Fatalf("stats = %+v", st)
	}
	const key = "heal-key"
	putOK(t, s, key, 1, container(t, key, 1))
	if s.Degraded() {
		t.Fatal("successful Put did not clear degraded mode")
	}
}

// TestCreateFailure: Create failing (e.g. the directory vanished)
// fails the Put cleanly.
func TestCreateFailure(t *testing.T) {
	ffs := newFaultFS()
	s := openTest(t, t.TempDir(), Options{FS: ffs})
	ffs.set(func(f *faultFS) { f.failCreate = syscall.EACCES })
	if err := s.Put("k", 1, container(t, "k", 1)); !errors.Is(err, syscall.EACCES) {
		t.Fatalf("Put = %v", err)
	}
}
