package store

import (
	"io"
	"io/fs"
	"os"
)

// FS is the narrow filesystem surface the Store writes through. Every
// disk operation the durability argument depends on — temp-file
// creation, data fsync, atomic rename, directory fsync — goes through
// this interface, so tests can inject EIO/ENOSPC, truncate writes, or
// "crash" between any two calls and prove the store's invariants hold
// (DESIGN.md §14). Production uses OSFS.
type FS interface {
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string, perm os.FileMode) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists dir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory itself, making completed renames and
	// removals durable (data fsync alone does not persist the directory
	// entry pointing at it).
	SyncDir(dir string) error
}

// File is one writable file handle handed out by FS.Create.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	Close() error
}

// OSFS is the production FS: the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
