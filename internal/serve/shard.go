package serve

import (
	"errors"
	"hash/fnv"
	"sync"
)

// Backpressure sentinels: the HTTP layer maps errBusy to 429 (the
// shard's bounded queue is full — retry) and errDraining to 503 (the
// server is shutting down — go elsewhere). Explicit rejection instead of
// blocking is the whole point of the bounded queues: a burst against one
// shard sheds load instead of tying up handler goroutines.
var (
	errBusy     = errors.New("serve: shard queue full")
	errDraining = errors.New("serve: server draining")
)

// task is one unit of work executed on a shard loop. fn runs on the
// shard's goroutine with exclusive access to every session owned by the
// shard; done closes when it has run. Results travel through variables
// the closure captures — the submitter reads them only after <-done.
type task struct {
	fn   func()
	done chan struct{}
}

// shard is one worker: a goroutine-owned loop draining a bounded task
// queue. Sessions are hashed onto shards by ID and every operation on a
// session executes on its shard's loop, so session state needs no locks —
// the shard loop is the session's single writer (the same ownership
// discipline the orchestrate/buffer pipelines in slog-agent use).
type shard struct {
	id     int
	tasks  chan *task
	stop   chan struct{} // closed by Shutdown after the last submission
	exited chan struct{} // closed by the loop on exit

	// mu orders trySubmit's enqueue against the loop's exit: the loop
	// sets closed under mu before its final queue drain, so every
	// trySubmit either lands its task before that drain or is rejected —
	// no task can slip into the channel after the loop stops reading it
	// (which would strand the submitter on <-t.done forever).
	mu     sync.Mutex
	closed bool
}

func newShard(id, depth int) *shard {
	return &shard{
		id:     id,
		tasks:  make(chan *task, depth),
		stop:   make(chan struct{}),
		exited: make(chan struct{}),
	}
}

// run is the shard loop. After stop closes it drains whatever is already
// queued (Shutdown guarantees no further submissions) and exits.
func (sh *shard) run(logf func(string, ...any)) {
	runOne := func(t *task) {
		defer close(t.done)
		defer func() {
			if r := recover(); r != nil && logf != nil {
				// A panicking task (a poisoned simulation session) must
				// not take the shard loop down with it: every other
				// session on the shard would hang.
				logf("shard %d: task panic: %v", sh.id, r)
			}
		}()
		t.fn()
	}
	for {
		select {
		case t := <-sh.tasks:
			runOne(t)
		case <-sh.stop:
			// Refuse further trySubmits before the final drain: any
			// enqueue serialized before this flag flipped is already in
			// the buffered channel, so the drain below runs it; any
			// after sees closed and gets errDraining.
			sh.mu.Lock()
			sh.closed = true
			sh.mu.Unlock()
			for {
				select {
				case t := <-sh.tasks:
					runOne(t)
				default:
					close(sh.exited)
					return
				}
			}
		}
	}
}

// trySubmit enqueues fn without blocking; a full queue is an immediate
// errBusy, never a wait — the caller turns it into a backpressure status.
// Once the shard loop has stopped it returns errDraining: holding mu
// across the enqueue guarantees the loop's final drain sees every task
// accepted here.
func (sh *shard) trySubmit(fn func()) (*task, error) {
	t := &task{fn: fn, done: make(chan struct{})}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return nil, errDraining
	}
	select {
	case sh.tasks <- t:
		return t, nil
	default:
		return nil, errBusy
	}
}

// shardFor hashes a session ID onto one of n shards (FNV-1a): the
// assignment is stable for the session's lifetime, so all its operations
// serialize on one loop.
func shardFor(id string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}
