package serve

import (
	"bytes"
	"errors"
	"fmt"
	"syscall"
	"time"

	"upcbh/internal/core"
)

// Crash safety (DESIGN.md §14): periodic auto-checkpoints of live
// sessions into the durable store, and startup recovery from it.
//
// The split that keeps stepping off the disk: *capture* runs on the
// session's shard loop (the only place the paused Sim may be read) into
// a memory buffer — cheap, bounded, no I/O — while *persistence* runs
// on one dedicated persister goroutine that drains a bounded queue.
// A slow or failing disk therefore backlogs the persister, never the
// stepper: when the queue is full the capture is dropped (counted),
// the session keeps running in-memory, and the next due tick recaptures
// fresher state anyway.
//
// Persistence failures follow the transient/persistent split: transient
// errors (EIO and friends) get bounded retries with exponential
// backoff; ENOSPC — retrying onto a full disk is noise — and exhausted
// retries mark the store degraded (visible in /stats and /healthz) and
// drop the capture. The next successful Put heals the store.

// ckptJob is one captured checkpoint container awaiting persistence.
type ckptJob struct {
	key  string
	step int
	data []byte
}

// CkptStats counts the auto-checkpoint pipeline (GET /stats).
type CkptStats struct {
	// Captured checkpoints were serialized on a shard loop.
	Captured uint64 `json:"captured"`
	// Persisted made it durably into the store.
	Persisted uint64 `json:"persisted"`
	// Dropped were discarded because the persister queue was full —
	// stepping never waits for disk.
	Dropped uint64 `json:"dropped"`
	// Failed exhausted the retry budget (or hit ENOSPC); the store is
	// degraded until a later write succeeds.
	Failed uint64 `json:"failed"`
	// Retries counts individual retry attempts after transient errors.
	Retries uint64 `json:"retries"`
}

// persistQueueDepth bounds captures awaiting persistence. Deep enough
// to ride out a transient disk stall across many sessions, small
// enough that a dead disk cannot accumulate unbounded snapshots.
const persistQueueDepth = 16

// maybeAutoCheckpointLocked captures the session's paused state when a
// checkpoint is due — every CkptEvery steps and/or every CkptInterval
// of wall clock, whichever fires first (the interval is evaluated at
// step boundaries: a session nobody is stepping isn't changing, so
// there is nothing new to capture). Must run on the session's shard
// loop with the session live and unfinished. The capture lands in a
// memory buffer and is handed to the persister; this function never
// touches the disk.
func (s *Server) maybeAutoCheckpointLocked(sess *session) {
	if s.cfg.Store == nil || sess.sim == nil || sess.finished || sess.released {
		return
	}
	every, interval := s.cfg.CkptEvery, s.cfg.CkptInterval
	if every <= 0 && interval <= 0 {
		return
	}
	done := sess.sim.StepsDone()
	due := (every > 0 && done-sess.lastCkptStep >= every) ||
		(interval > 0 && time.Since(sess.lastCkptTime) >= interval)
	if !due {
		return
	}
	// Advance the cadence before knowing the outcome: a capture or
	// enqueue failure must not turn into a capture attempt on every
	// subsequent step.
	sess.lastCkptStep = done
	sess.lastCkptTime = time.Now()
	var buf bytes.Buffer
	if err := sess.sim.Checkpoint(&buf); err != nil {
		s.logf("session %s: auto-checkpoint capture at step %d: %v", sess.id, done, err)
		return
	}
	s.enqueueCkptLocked(ckptJob{key: sess.key, step: done, data: buf.Bytes()})
}

// enqueueCkptLocked hands a captured container to the persister without
// blocking: a full queue drops the capture (the stepper's latency is
// sacrosanct; durability degrades by one checkpoint interval). Must run
// on a shard loop — Shutdown closes the queue only after every shard
// loop has exited, so a send from a shard task can never hit a closed
// channel.
func (s *Server) enqueueCkptLocked(j ckptJob) {
	s.mu.Lock()
	s.ckpt.Captured++
	s.mu.Unlock()
	select {
	case s.persistCh <- j:
	default:
		s.mu.Lock()
		s.ckpt.Dropped++
		s.mu.Unlock()
		s.logf("checkpoint persister backlogged: dropped step-%d capture of %s", j.step, j.key)
	}
}

// persister is the single off-shard writer: it drains captured
// containers into the store until Shutdown closes the queue.
func (s *Server) persister() {
	defer close(s.persistDone)
	for j := range s.persistCh {
		s.persistOne(j)
	}
}

// persistOne writes one container with the transient/persistent retry
// policy. Only this goroutine runs it, so backoff sleeps stall at most
// the checkpoint pipeline — never a session.
func (s *Server) persistOne(j ckptJob) {
	backoff := s.cfg.CkptBackoff
	var err error
	for attempt := 0; ; attempt++ {
		err = s.cfg.Store.Put(j.key, j.step, j.data)
		if err == nil {
			s.mu.Lock()
			s.ckpt.Persisted++
			s.mu.Unlock()
			return
		}
		if errors.Is(err, syscall.ENOSPC) || attempt >= s.cfg.CkptRetries {
			break
		}
		s.mu.Lock()
		s.ckpt.Retries++
		s.mu.Unlock()
		time.Sleep(backoff)
		backoff *= 2
	}
	s.mu.Lock()
	s.ckpt.Failed++
	s.mu.Unlock()
	s.cfg.Store.SetDegraded(err)
	s.logf("checkpoint persist for %s step %d failed permanently: %v (store degraded; sessions continue in-memory)",
		j.key, j.step, err)
}

// recoverSessions re-admits every recoverable session from the store at
// boot: each key's newest valid container is restored into a live,
// paused session ready to step/stream/finish exactly where the crashed
// process left it. A container that passes the store's format
// validation but fails core.Restore's deeper checks is quarantined and
// the key's next-newest entry tried — recovery never aborts on one bad
// entry. Runs from New before the listener exists, so no task races.
func (s *Server) recoverSessions() {
	st := s.cfg.Store
	for _, e := range st.NewestAll() {
		for {
			sim, err := core.Restore(bytes.NewReader(e.Data))
			if err == nil {
				s.admitRecovered(e.Key, sim)
				break
			}
			s.logf("recovery: restore %q step %d: %v (quarantining)", e.Key, e.Step, err)
			st.Quarantine(e.Key, e.Step)
			data, step, nerr := st.Newest(e.Key)
			if nerr != nil {
				break
			}
			e.Data, e.Step = data, step
		}
	}
}

// admitRecovered registers one boot-recovered session. The session's
// shard-owned fields are initialized before it is published in the
// registry (registration under mu is the happens-before edge to every
// later shard task).
func (s *Server) admitRecovered(key string, sim *core.Sim) {
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	s.mu.Unlock()
	sess := &session{
		id:        id,
		key:       key,
		shard:     s.shards[shardFor(id, len(s.shards))],
		hub:       newHub(),
		opts:      sim.Options(),
		created:   time.Now(),
		recovered: true,
		sim:       sim,
	}
	sess.lastCkptStep = sim.StepsDone()
	sess.lastCkptTime = time.Now()
	s.mu.Lock()
	s.sessions[id] = sess
	s.created++
	s.recovered++
	s.mu.Unlock()
	s.logf("session %s: recovered from store at step %d of %d (%s)",
		id, sim.StepsDone(), sess.opts.Steps, key)
}
