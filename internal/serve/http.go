package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"upcbh/internal/core"
	"upcbh/internal/machine"
)

// createRequest is the POST /sims body. Options (raw core.Options JSON)
// overlays the documented defaults, so a client only names what it
// changes; the machine shorthand fields configure the cluster shape
// without spelling out the full machine model.
type createRequest struct {
	Options  json.RawMessage `json:"options"`
	Threads  int             `json:"threads"`
	PerNode  int             `json:"per_node"`
	Pthreads bool            `json:"pthreads"`
}

// sessionInfo is the JSON shape of a session in responses.
type sessionInfo struct {
	ID        string `json:"id"`
	Key       string `json:"key"`
	Shard     int    `json:"shard"`
	Steps     int    `json:"steps"`
	Done      int    `json:"steps_done"`
	Finished  bool   `json:"finished"`
	CacheHit  bool   `json:"cache_hit"`
	Recovered bool   `json:"recovered,omitempty"`  // re-admitted from the store at boot
	FromStore bool   `json:"from_store,omitempty"` // restore answered from the store
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP mux:
//
//	POST   /sims            create a session (cache-aware)
//	POST   /sims/restore    create a session from a checkpoint container
//	GET    /sims            list sessions (recovery discovery)
//	GET    /sims/{id}       session status
//	POST   /sims/{id}/step  advance ?k= steps (default 1), return the snapshot
//	POST   /sims/{id}/checkpoint  serialize the paused state (octet-stream)
//	GET    /sims/{id}/snapshot  current state (?bodies=1 to include bodies)
//	GET    /sims/{id}/stream    NDJSON snapshot stream (?every=, ?bodies=1)
//	GET    /sims/{id}/result    final Result (finishing the session if paused)
//	DELETE /sims/{id}       finish and release
//	GET    /stats           service observability snapshot
//	GET    /healthz         liveness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sims", s.handleCreate)
	mux.HandleFunc("POST /sims/restore", s.handleRestore)
	mux.HandleFunc("GET /sims", s.handleList)
	mux.HandleFunc("GET /sims/{id}", s.handleStatus)
	mux.HandleFunc("POST /sims/{id}/step", s.handleStep)
	mux.HandleFunc("POST /sims/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /sims/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /sims/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /sims/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /sims/{id}", s.handleDelete)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// httpStatus maps service and lifecycle errors onto statuses: the
// session state machine's sentinels become conflict codes, the
// backpressure sentinels become retryable server codes, anything else is
// the client's fault at creation time or ours at run time.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests // 429: bounded queue full, retry
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable // 503: shutting down
	case errors.Is(err, core.ErrReleased):
		return http.StatusGone // 410: session torn down
	case errors.Is(err, core.ErrFinished), errors.Is(err, core.ErrSchedule):
		return http.StatusConflict // 409: lifecycle forbids the transition
	default:
		return http.StatusInternalServerError
	}
}

func writeErr(w http.ResponseWriter, err error) {
	code := httpStatus(err)
	if code == http.StatusTooManyRequests {
		// The queue is bounded and the work is short; a prompt retry is
		// the right client behavior.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// info snapshots a session's status on its shard loop.
func (s *Server) info(sess *session) (sessionInfo, error) {
	var si sessionInfo
	t, err := s.submit(sess.shard, func() {
		si = sessionInfo{
			ID:        sess.id,
			Key:       sess.key,
			Shard:     sess.shard.id,
			Steps:     sess.opts.Steps,
			Finished:  sess.finished,
			CacheHit:  sess.cacheHit,
			Recovered: sess.recovered,
			FromStore: sess.fromStore,
		}
		if sess.finished {
			si.Done = sess.opts.Steps
		} else if sess.sim != nil {
			si.Done = sess.sim.StepsDone()
		}
	})
	if err != nil {
		return si, err
	}
	<-t.done
	return si, nil
}

// handleList enumerates the registry: how a client discovers sessions
// it did not create — in particular, sessions re-admitted by startup
// recovery after a crash (flagged recovered). Each status is captured
// on its session's shard loop; a session whose shard rejects the probe
// (backpressure) is skipped rather than failing the listing.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	infos := make([]sessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		si, err := s.info(sess)
		if err != nil {
			continue
		}
		infos = append(infos, si)
	}
	sort.Slice(infos, func(i, j int) bool {
		return sessionOrd(infos[i].ID) < sessionOrd(infos[j].ID)
	})
	writeJSON(w, http.StatusOK, map[string][]sessionInfo{"sessions": infos})
}

// sessionOrd orders "s-<n>" IDs by admission number.
func sessionOrd(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "s-"))
	return n
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	opts, err := buildOptions(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// createSession captures the sessionInfo inside its one shard task:
	// no follow-up submission that backpressure could reject after the
	// session is already registered.
	_, si, err := s.createSession(opts)
	if err != nil {
		if errors.Is(err, errBusy) || errors.Is(err, errDraining) {
			writeErr(w, err)
		} else {
			// core.New rejected the configuration.
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusCreated, si)
}

// buildOptions merges a createRequest onto the CLI defaults: the same
// starting point as bhrun (4096 bodies, 4 threads, subspace level),
// overlaid by the raw options JSON, then the machine shorthands.
func buildOptions(req createRequest) (core.Options, error) {
	threads := req.Threads
	if threads <= 0 {
		threads = 4
	}
	opts := core.DefaultOptions(4096, threads, core.LevelSubspace)
	if len(req.Options) > 0 {
		if err := json.Unmarshal(req.Options, &opts); err != nil {
			return opts, fmt.Errorf("bad options: %w", err)
		}
	}
	if req.Threads > 0 || req.PerNode > 0 || req.Pthreads {
		perNode := req.PerNode
		if perNode <= 0 {
			perNode = 1
		}
		m, err := machine.New(opts.Machine.Threads, perNode, req.Pthreads, machine.Power5())
		if err != nil {
			return opts, err
		}
		opts.Machine = m
	}
	return opts, nil
}

// session resolves {id} or writes 404.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	sess, ok := s.lookup(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such session: " + id})
	}
	return sess, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	si, err := s.info(sess)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, si)
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	k := 1
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "k must be a positive integer"})
			return
		}
		k = n
	}
	wantBodies := r.URL.Query().Get("bodies") != ""
	var (
		snap    *core.Snapshot
		stepErr error
	)
	t, err := s.submit(sess.shard, func() {
		snap, stepErr = s.stepLocked(sess, k, wantBodies)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	<-t.done
	if stepErr != nil {
		writeErr(w, stepErr)
		return
	}
	// snap was published to the session's hub: stream subscribers may be
	// encoding it concurrently, so strip bodies on a copy, never in place.
	// (A subscriber-free step took the bodies-less SnapshotMeta path and
	// has nothing to strip.)
	if !wantBodies && snap.Bodies != nil {
		c := *snap
		c.Bodies = nil
		snap = &c
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleCheckpoint serializes a live session's paused state as one
// checkpoint container (application/octet-stream). The capture runs on
// the session's shard loop — the same serialization domain as stepping,
// so the state is quiescent — into a memory buffer, so a slow client
// never holds the shard. Cache-hit and finished sessions have no live
// paused simulation to capture and answer 409.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var (
		buf     bytes.Buffer
		step    int
		ckptErr error
	)
	t, err := s.submit(sess.shard, func() {
		switch {
		case sess.released:
			ckptErr = core.ErrReleased
		case sess.sim == nil:
			ckptErr = fmt.Errorf("session %s was served from cache and has no live simulation: %w",
				sess.id, core.ErrFinished)
		default:
			step = sess.sim.StepsDone()
			ckptErr = sess.sim.Checkpoint(&buf)
		}
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	<-t.done
	if ckptErr != nil {
		writeErr(w, ckptErr)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Checkpoint-Step", strconv.Itoa(step))
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

// handleRestore creates a session from a checkpoint container uploaded
// as the request body: the restored simulation resumes at its captured
// step and then behaves like any live session (step, stream, result,
// checkpoint again). A malformed, corrupted, or mismatched container is
// the client's fault — core.Restore marks those core.ErrBadCheckpoint
// and they answer 400 — while a server-side failure constructing the
// restore target stays a 500.
//
// The body is capped at Config.MaxRestoreBytes (-max-restore-bytes;
// default 1 GiB — a checkpoint is dominated by the body heap at ~200 B
// per body, so the default admits far larger simulations than the
// service would ever step while keeping a hostile upload from
// exhausting memory). An oversized upload answers 413.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRestoreBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
				Error: fmt.Sprintf("checkpoint exceeds the %d-byte upload cap", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad checkpoint body: " + err.Error()})
		return
	}
	_, si, err := s.restoreSession(data)
	if err != nil {
		if errors.Is(err, core.ErrBadCheckpoint) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		} else {
			writeErr(w, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, si)
}

// snapshotOf captures a session's current state on its shard loop,
// synthesizing the terminal snapshot for completed sessions (which may
// have no live simulation to ask).
func (s *Server) snapshotOf(sess *session) (*core.Snapshot, error) {
	var (
		snap    *core.Snapshot
		snapErr error
	)
	t, err := s.submit(sess.shard, func() {
		switch {
		case sess.released:
			snapErr = core.ErrReleased
		case sess.sim != nil:
			snap, snapErr = sess.sim.Snapshot()
		case sess.result != nil:
			snap = synthSnapshot(sess.opts, sess.result)
		default:
			snapErr = core.ErrReleased
		}
	})
	if err != nil {
		return nil, err
	}
	<-t.done
	return snap, snapErr
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	snap, err := s.snapshotOf(sess)
	if err != nil {
		writeErr(w, err)
		return
	}
	if r.URL.Query().Get("bodies") == "" {
		snap.Bodies = nil
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var (
		res    *core.Result
		runErr error
	)
	t, err := s.submit(sess.shard, func() {
		if sess.released {
			runErr = core.ErrReleased
			return
		}
		if !sess.finished {
			// Finish collects the result of whatever has run so far; a
			// partial schedule is a legitimate result but is not memoized.
			if runErr = s.finalizeLocked(sess); runErr != nil {
				return
			}
		}
		res = sess.result
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	<-t.done
	if runErr != nil {
		writeErr(w, runErr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	t, err := s.submit(sess.shard, func() {
		s.releaseLocked(sess)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	<-t.done
	w.WriteHeader(http.StatusNoContent)
}

// handleStream serves the NDJSON snapshot stream: subscribe to the
// session's hub, start the (single) stepper if nobody is driving the
// session yet, then relay snapshots until the hub closes (session
// finished or released) or the client goes away. The first frame is the
// session's current state, so a subscriber always sees where it joined —
// a fresh session streams from step 0, matching bhrun -stream.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	every := s.cfg.StreamEvery
	if v := r.URL.Query().Get("every"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "every must be a positive integer"})
			return
		}
		every = n
	}
	withBodies := r.URL.Query().Get("bodies") != ""

	// First frame + subscription + stepper start execute as one shard
	// task, so no published snapshot can fall between the current state
	// and the subscription.
	var (
		first   *core.Snapshot
		sub     *subscriber
		snapErr error
	)
	t, err := s.submit(sess.shard, func() {
		switch {
		case sess.released:
			snapErr = core.ErrReleased
			return
		case sess.sim != nil:
			first, snapErr = sess.sim.Snapshot()
		case sess.result != nil:
			first = synthSnapshot(sess.opts, sess.result)
		default:
			snapErr = core.ErrReleased
			return
		}
		if snapErr != nil {
			return
		}
		sub = sess.hub.subscribe(s.cfg.SubBuffer) // nil if already finished: stream is just the terminal frame
		s.ensureStepperLocked(sess, every)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	<-t.done
	if snapErr != nil {
		writeErr(w, snapErr)
		return
	}
	if sub != nil {
		defer sess.hub.unsubscribe(sub)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(snap *core.Snapshot) bool {
		if !withBodies {
			c := *snap
			c.Bodies = nil
			snap = &c
		}
		if err := enc.Encode(snap); err != nil {
			return false // client went away; unsubscribe via defer
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(first) {
		return
	}
	if sub == nil {
		return
	}
	last := first.Step
	for {
		select {
		case snap, ok := <-sub.ch:
			if !ok {
				return // hub closed: session finished or released
			}
			if snap.Step <= last {
				continue // stale relative to the first frame we chose
			}
			last = snap.Step
			if !emit(snap) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is liveness plus the store's durability state: 503 only
// while draining. A degraded store (persistent checkpoint-write
// failures, e.g. a full disk) stays 200 — sessions keep running
// in-memory and the service is still doing useful work — but the body
// flips to "degraded" so operators can alert on lost durability.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	body := map[string]string{"status": "ok"}
	if st := s.cfg.Store; st != nil {
		if st.Degraded() {
			body["status"] = "degraded"
			body["store"] = "degraded"
		} else {
			body["store"] = "ok"
		}
	}
	writeJSON(w, http.StatusOK, body)
}
