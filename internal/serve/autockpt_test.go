package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"upcbh/internal/core"
	"upcbh/internal/store"
)

func openTestStore(t *testing.T, dir string, fs store.FS) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{FS: fs, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// stepOne advances a session one step on its shard loop.
func stepOne(t *testing.T, s *Server, sess *session) {
	t.Helper()
	var stepErr error
	tk, err := s.submit(sess.shard, func() { _, stepErr = s.stepLocked(sess, 1, false) })
	if err != nil {
		t.Fatal(err)
	}
	<-tk.done
	if stepErr != nil {
		t.Fatal(stepErr)
	}
}

// waitFor polls cond until it holds or the deadline expires — the
// persistence pipeline is asynchronous by design, so tests observe it
// converging rather than assuming when.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// noTmpFiles asserts the store directory holds no orphaned temp files.
func noTmpFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("orphaned temp file %s in store", e.Name())
		}
	}
}

// TestAutoCheckpointEveryK: with -ckpt-every 2, a stepped session lands
// durable checkpoints at steps 2 and 4 but not at its final step (the
// completed Result goes to the cache instead), and the newest entry
// restores to a live sim at the captured step.
func TestAutoCheckpointEveryK(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, nil)
	s := newTestServer(t, Config{Shards: 2, Store: st, CkptEvery: 2})
	opts := testOpts(6)
	sess, _, err := s.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		stepOne(t, s, sess)
	}
	key := opts.Key()
	// The persister writes in capture order, so step 4 landing implies
	// step 2 landed (or was GC'd, which Keep=2 forbids here).
	waitFor(t, "step-4 checkpoint", func() bool { return st.Has(key, 4) })
	if !st.Has(key, 2) {
		t.Fatal("step-2 checkpoint missing")
	}
	if st.Has(key, 6) {
		t.Fatal("auto-checkpoint captured the final step")
	}

	data, step, err := st.Newest(key)
	if err != nil || step != 4 {
		t.Fatalf("Newest = step %d, %v; want 4", step, err)
	}
	sim, err := core.Restore(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if sim.StepsDone() != 4 {
		t.Fatalf("restored sim at step %d, want 4", sim.StepsDone())
	}
	sim.Release()

	if ck := s.Stats().Checkpoints; ck == nil || ck.Captured < 2 || ck.Persisted < 2 {
		t.Fatalf("checkpoint stats = %+v", ck)
	}
	noTmpFiles(t, dir)
}

// TestAutoCheckpointInterval: the wall-clock cadence fires at step
// boundaries once the interval has elapsed since the last capture.
func TestAutoCheckpointInterval(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, nil)
	s := newTestServer(t, Config{Shards: 1, Store: st, CkptInterval: time.Millisecond})
	opts := testOpts(4)
	sess, _, err := s.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the interval elapse
	stepOne(t, s, sess)
	waitFor(t, "interval checkpoint", func() bool { return st.Has(opts.Key(), 1) })
}

// blockFS stalls every Create until released: the "disk has hung"
// fault. Only the persister goroutine ever touches it, so a stalled
// store must not stall stepping.
type blockFS struct {
	store.FS
	gate    chan struct{}
	release sync.Once
}

func newBlockFS() *blockFS {
	return &blockFS{FS: store.OSFS, gate: make(chan struct{})}
}

func (b *blockFS) open() { b.release.Do(func() { close(b.gate) }) }
func (b *blockFS) Create(path string) (store.File, error) {
	<-b.gate
	return b.FS.Create(path)
}

// TestAutoCheckpointNeverBlocksStepper: with the persister wedged on a
// hung disk, every step still completes promptly; overflow captures are
// dropped (counted), not queued unboundedly, and nothing deadlocks at
// shutdown once the disk recovers.
func TestAutoCheckpointNeverBlocksStepper(t *testing.T) {
	bfs := newBlockFS()
	st := openTestStore(t, t.TempDir(), bfs)
	s := newTestServer(t, Config{Shards: 1, Store: st, CkptEvery: 1})
	// Unblock the disk before the server's Shutdown cleanup runs
	// (cleanups are LIFO), or Shutdown would wait on the wedged persister.
	t.Cleanup(bfs.open)

	opts := testOpts(30)
	sess, _, err := s.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 29; i++ { // stop short of finishing: every step captures
		stepOne(t, s, sess)
	}
	elapsed := time.Since(start)
	// 29 captures against a queue of 16 with a wedged persister: at least
	// one capture must have been dropped rather than waited for.
	s.mu.Lock()
	ck := s.ckpt
	s.mu.Unlock()
	if ck.Captured < 29 {
		t.Fatalf("captured %d, want 29", ck.Captured)
	}
	if ck.Dropped == 0 {
		t.Fatalf("no drops with a wedged persister (stats %+v, %v elapsed)", ck, elapsed)
	}
	if ck.Persisted != 0 {
		t.Fatalf("persisted %d through a wedged disk", ck.Persisted)
	}
}

// enospcFS fails every file write with ENOSPC while full is set.
type enospcFS struct {
	store.FS
	mu   sync.Mutex
	full bool
}

func (e *enospcFS) setFull(v bool) {
	e.mu.Lock()
	e.full = v
	e.mu.Unlock()
}

func (e *enospcFS) Create(path string) (store.File, error) {
	e.mu.Lock()
	full := e.full
	e.mu.Unlock()
	if full {
		return nil, &os.PathError{Op: "create", Path: path, Err: syscall.ENOSPC}
	}
	return e.FS.Create(path)
}

// TestAutoCheckpointDegradedENOSPC: a full disk degrades the store —
// sessions keep stepping, /healthz and /stats surface it — and the
// first successful persist after space frees heals it.
func TestAutoCheckpointDegradedENOSPC(t *testing.T) {
	efs := &enospcFS{FS: store.OSFS}
	st := openTestStore(t, t.TempDir(), efs)
	s := newTestServer(t, Config{
		Shards: 1, Store: st, CkptEvery: 1,
		CkptBackoff: time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	efs.setFull(true)
	opts := testOpts(40)
	sess, _, err := s.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	stepOne(t, s, sess) // capture at step 1 fails against the full disk
	waitFor(t, "store degraded", st.Degraded)

	// Stepping continues through the degradation.
	stepOne(t, s, sess)

	stats := s.Stats()
	if stats.Store == nil || !stats.Store.Degraded {
		t.Fatalf("stats.Store = %+v, want degraded", stats.Store)
	}
	if stats.Checkpoints.Failed == 0 {
		t.Fatalf("checkpoint stats = %+v, want failures", stats.Checkpoints)
	}
	var health map[string]string
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "degraded" || health["store"] != "degraded" {
		t.Fatalf("healthz while degraded: %d %v", resp.StatusCode, health)
	}

	// Space frees: the next due capture persists and heals the store.
	efs.setFull(false)
	for i := 0; i < 5 && st.Degraded(); i++ {
		stepOne(t, s, sess)
		time.Sleep(10 * time.Millisecond)
	}
	waitFor(t, "store healed", func() bool { return !st.Degraded() })
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["store"] != "ok" {
		t.Fatalf("healthz after heal: %v", health)
	}
}

// TestAutoCheckpointLifecycleRaces: sessions being stepped, streamed,
// released, and auto-checkpointed concurrently — a checkpoint tick on a
// finishing, draining, or released session must be a clean no-op. Run
// under -race (the CI durability lane adds -cpu 2,4); the assertions
// here are "no panic, no orphaned temp file, registry consistent".
func TestAutoCheckpointLifecycleRaces(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, nil)
	s := newTestServer(t, Config{Shards: 2, Store: st, CkptEvery: 1, CkptInterval: time.Millisecond})

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		opts := testOpts(12)
		opts.Warmup = 1 + i%2 // distinct keys so sessions don't cache-hit
		sess, _, err := s.createSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		// Stepper: drive toward completion, tolerating lifecycle errors —
		// the releaser races it on purpose.
		go func(sess *session) {
			defer wg.Done()
			for j := 0; j < 12; j++ {
				tk, err := s.submit(sess.shard, func() { _, _ = s.stepLocked(sess, 1, false) })
				if err != nil {
					return
				}
				<-tk.done
			}
		}(sess)
		// Releaser: tear the session down mid-flight; ticks after this
		// must no-op.
		go func(sess *session, delay time.Duration) {
			defer wg.Done()
			time.Sleep(delay)
			tk, err := s.submit(sess.shard, func() { s.releaseLocked(sess) })
			if err != nil {
				return
			}
			<-tk.done
			// A tick on the released session is a clean no-op.
			tk, err = s.submit(sess.shard, func() { s.maybeAutoCheckpointLocked(sess) })
			if err != nil {
				return
			}
			<-tk.done
		}(sess, time.Duration(i)*2*time.Millisecond)
	}
	wg.Wait()
	s.Shutdown() // drain persister before inspecting the directory
	noTmpFiles(t, dir)
}

// TestStartupRecovery: a second server opened on the first server's
// store re-admits its unfinished session at the newest checkpoint, and
// finishing the recovered session yields a result byte-identical to an
// uninterrupted run — the crash-consistency contract, minus the crash
// (the CI kill-9 e2e supplies the real SIGKILL).
func TestStartupRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(6)
	key := opts.Key()

	st1 := openTestStore(t, dir, nil)
	s1 := New(Config{Shards: 2, Store: st1, CkptEvery: 2, Logf: t.Logf})
	sess, _, err := s1.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		stepOne(t, s1, sess)
	}
	waitFor(t, "step-4 checkpoint", func() bool { return st1.Has(key, 4) })
	s1.Shutdown()

	// "Restart": a fresh store handle and server over the same directory.
	st2 := openTestStore(t, dir, nil)
	s2 := newTestServer(t, Config{Shards: 2, Store: st2, CkptEvery: 2})
	if got := s2.Stats().Sessions.Recovered; got != 1 {
		t.Fatalf("recovered %d sessions, want 1", got)
	}
	s2.mu.Lock()
	var rec *session
	for _, sess := range s2.sessions {
		rec = sess
	}
	s2.mu.Unlock()
	if rec == nil {
		t.Fatal("recovered session not in registry")
	}
	si, err := s2.info(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !si.Recovered || si.Done != 4 || si.Key != key || si.Finished {
		t.Fatalf("recovered session info = %+v", si)
	}

	// Finish the recovered session and compare against an uninterrupted
	// reference run.
	for i := 0; i < 2; i++ {
		stepOne(t, s2, rec)
	}
	var res *core.Result
	tk, err := s2.submit(rec.shard, func() { res = rec.result })
	if err != nil {
		t.Fatal(err)
	}
	<-tk.done
	if res == nil {
		t.Fatal("recovered session did not finalize")
	}

	refSim, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refSim.Run()
	if err != nil {
		t.Fatal(err)
	}
	refSim.Release()
	got, _ := json.Marshal(res)
	want, _ := json.Marshal(ref)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered result diverged:\n got %s\nwant %s", got, want)
	}
}

// TestRecoverySkipsCorruptNewest: a torn newest entry is quarantined at
// recovery and the session comes back from the older valid checkpoint.
func TestRecoverySkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(8)
	key := opts.Key()

	st1 := openTestStore(t, dir, nil)
	s1 := New(Config{Shards: 1, Store: st1, CkptEvery: 2, Logf: t.Logf})
	sess, _, err := s1.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		stepOne(t, s1, sess)
	}
	waitFor(t, "step-4 checkpoint", func() bool { return st1.Has(key, 4) })
	s1.Shutdown()

	// Corrupt the newest entry the way a torn disk would: truncate it.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), "-0000000004.ckpt") {
			newest = dir + "/" + e.Name()
		}
	}
	if newest == "" {
		t.Fatal("step-4 entry not on disk")
	}
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, nil)
	s2 := newTestServer(t, Config{Shards: 1, Store: st2, CkptEvery: 2})
	if got := s2.Stats().Sessions.Recovered; got != 1 {
		t.Fatalf("recovered %d sessions, want 1", got)
	}
	s2.mu.Lock()
	var rec *session
	for _, sess := range s2.sessions {
		rec = sess
	}
	s2.mu.Unlock()
	if si, err := s2.info(rec); err != nil || si.Done != 2 {
		t.Fatalf("recovered at step %d (%v), want 2 from the older entry", si.Done, err)
	}
	if st2.Stats().Quarantined == 0 {
		t.Fatal("torn entry was not quarantined")
	}
}

// TestRestoreAnswersFromStore: POST /sims/restore of a container whose
// (key, step) is already durably stored answers from the store
// (from_store), while a novel upload restores from the body and is then
// persisted so it too survives a crash.
func TestRestoreAnswersFromStore(t *testing.T) {
	st := openTestStore(t, t.TempDir(), nil)
	s := newTestServer(t, Config{Shards: 2, Store: st, CkptEvery: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	opts := testOpts(8)
	sess, _, err := s.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	key := opts.Key()
	stepOne(t, s, sess)
	stepOne(t, s, sess) // auto-checkpoint at step 2
	waitFor(t, "step-2 checkpoint", func() bool { return st.Has(key, 2) })

	capture := func() []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+"/sims/"+sess.id+"/checkpoint", "application/octet-stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("checkpoint: %d %v", resp.StatusCode, err)
		}
		return raw
	}
	restore := func(body []byte) sessionInfo {
		t.Helper()
		resp, err := http.Post(ts.URL+"/sims/restore", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ri sessionInfo
		if err := json.NewDecoder(resp.Body).Decode(&ri); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("restore: %d %+v", resp.StatusCode, ri)
		}
		return ri
	}

	// Same (key, step) as the stored auto-checkpoint: answered from disk.
	if ri := restore(capture()); !ri.FromStore || ri.Done != 2 {
		t.Fatalf("restore of stored step = %+v, want from_store at step 2", ri)
	}

	// A novel step: restored from the upload, then persisted.
	stepOne(t, s, sess) // step 3: not an auto-checkpoint boundary
	if st.Has(key, 3) {
		t.Fatal("step 3 unexpectedly already stored")
	}
	if ri := restore(capture()); ri.FromStore || ri.Done != 3 {
		t.Fatalf("restore of novel step = %+v, want from upload at step 3", ri)
	}
	waitFor(t, "uploaded container persisted", func() bool { return st.Has(key, 3) })
}

// TestRestoreOversized413: an upload beyond -max-restore-bytes answers
// 413, and the cap is configurable.
func TestRestoreOversized413(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, MaxRestoreBytes: 1024})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	big := bytes.Repeat([]byte{0xAB}, 4096)
	resp, err := http.Post(ts.URL+"/sims/restore", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized restore: %d %s, want 413", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "1024") {
		t.Fatalf("413 body %q should name the cap", body)
	}

	// At (not beyond) the cap the request proceeds to validation: a
	// garbage container is the client's fault, not a size rejection.
	resp, err = http.Post(ts.URL+"/sims/restore", "application/octet-stream",
		bytes.NewReader(bytes.Repeat([]byte{0xCD}, 1024)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("at-cap garbage restore: %d, want 400", resp.StatusCode)
	}
}

// TestListSessions: GET /sims enumerates the registry in admission
// order — the discovery surface recovery clients depend on.
func TestListSessions(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		opts := testOpts(4 + i) // distinct keys
		if _, _, err := s.createSession(opts); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/sims")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Sessions []sessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Sessions) != 3 {
		t.Fatalf("listed %d sessions, want 3", len(out.Sessions))
	}
	for i, si := range out.Sessions {
		if want := "s-" + string(rune('1'+i)); si.ID != want {
			t.Fatalf("session %d listed as %s, want %s", i, si.ID, want)
		}
	}
}
