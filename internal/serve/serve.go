// Package serve is the multi-tenant simulation service: it exposes the
// steppable session lifecycle of internal/core (create / step / snapshot
// / stream / finish) over HTTP, multiplexing many concurrent sessions
// onto a fixed set of worker shards.
//
// Architecture (DESIGN.md §12):
//
//   - Sessions are hashed by ID onto shards. Each shard is one
//     goroutine-owned loop with a bounded request queue; every operation
//     on a session executes on its shard's loop, so session state is
//     single-writer and lock-free.
//   - A full shard queue rejects immediately (HTTP 429 with Retry-After)
//     instead of blocking the handler: explicit backpressure.
//   - Each session has a fan-out hub: one stepper drives the simulation,
//     N subscribers each consume a private buffered snapshot channel with
//     a drop-oldest policy for slow consumers.
//   - Completed runs land in a shared bench.Runner cache keyed by
//     Options.Key(): an identical later create is served from cache
//     without re-simulating (the create response carries cache_hit).
//   - Shutdown drains gracefully: admissions stop (503), steppers park,
//     in-flight queued requests finish, and every live session is
//     Finish()ed and Release()d.
package serve

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"time"

	"upcbh/internal/bench"
	"upcbh/internal/core"
	"upcbh/internal/store"
)

// Config sizes the service. Zero values mean defaults.
type Config struct {
	// Shards is the number of worker shards (default: GOMAXPROCS).
	Shards int
	// QueueDepth bounds each shard's request queue (default 64). When a
	// shard's queue is full, requests are rejected with a backpressure
	// status instead of blocking.
	QueueDepth int
	// SubBuffer is the per-subscriber snapshot buffer of the fan-out hub
	// (default 8). A subscriber that falls more than SubBuffer snapshots
	// behind starts losing its oldest frames.
	SubBuffer int
	// StreamEvery is the default stepping interval of the stream
	// endpoint (default 1): the stepper pauses and publishes a snapshot
	// every StreamEvery time-steps.
	StreamEvery int
	// Runner is the shared result cache (and its worker-pool discipline
	// for anything the service runs through it). A fresh one is created
	// when nil.
	Runner *bench.Runner
	// Logf receives progress lines (cache hits, drains, stepper faults);
	// nil silences them.
	Logf func(format string, args ...any)

	// Store is the durable checkpoint store (DESIGN.md §14). Nil disables
	// durability: no auto-checkpoints, no startup recovery, and restores
	// never consult disk.
	Store *store.Store
	// CkptEvery auto-checkpoints each live session every time it advances
	// this many steps (0 = disabled).
	CkptEvery int
	// CkptInterval auto-checkpoints a live session when this much
	// wall clock has passed since its last capture. Evaluated at step
	// boundaries — an idle session's state isn't changing, so there is
	// nothing new to capture (0 = disabled).
	CkptInterval time.Duration
	// CkptRetries bounds the persister's retries after a transient write
	// failure (default 3; ENOSPC never retries).
	CkptRetries int
	// CkptBackoff is the persister's initial retry backoff, doubling per
	// attempt (default 50ms).
	CkptBackoff time.Duration
	// MaxRestoreBytes caps the POST /sims/restore upload body
	// (default 1 GiB); larger uploads get 413.
	MaxRestoreBytes int64
}

func (c *Config) fillDefaults() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SubBuffer <= 0 {
		c.SubBuffer = 8
	}
	if c.StreamEvery <= 0 {
		c.StreamEvery = 1
	}
	if c.Runner == nil {
		c.Runner = bench.NewRunner(0)
	}
	if c.CkptRetries <= 0 {
		c.CkptRetries = 3
	}
	if c.CkptBackoff <= 0 {
		c.CkptBackoff = 50 * time.Millisecond
	}
	if c.MaxRestoreBytes <= 0 {
		c.MaxRestoreBytes = 1 << 30
	}
}

// session is one live (or completed) simulation owned by a shard. All
// fields below the hub are owned by the shard loop: they are only read
// or written from tasks executing on session.shard.
type session struct {
	id    string
	key   string
	shard *shard
	hub   *hub

	opts      core.Options
	created   time.Time
	cacheHit  bool // born completed from the Options.Key() cache
	recovered bool // re-admitted from the store at boot
	fromStore bool // restore answered from the store, not the upload

	// Shard-loop-owned state.
	sim      *core.Sim    // nil for cache-hit sessions
	result   *core.Result // set once finished
	finished bool
	released bool
	stepping bool // a stream stepper is driving this session

	// Auto-checkpoint cadence (shard-loop-owned).
	lastCkptStep int
	lastCkptTime time.Time
}

// Server is the session service. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	cfg    Config
	runner *bench.Runner
	shards []*shard

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
	draining bool
	drainCh  chan struct{} // closed when draining starts

	steppers sync.WaitGroup

	// Checkpoint persistence pipeline (nil when cfg.Store is nil).
	persistCh   chan ckptJob
	persistDone chan struct{}

	// Counters (mu-guarded; small and cold).
	created     uint64
	cacheHits   uint64
	released    uint64
	rejected    uint64
	recovered   uint64
	snapDropped uint64 // fan-out drops of released sessions: keeps SnapshotsDropped monotone
	ckpt        CkptStats
}

// New builds and starts a Server: the shard loops are running on return.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:      cfg,
		runner:   cfg.Runner,
		sessions: make(map[string]*session),
		drainCh:  make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(i, cfg.QueueDepth)
		s.shards = append(s.shards, sh)
		go sh.run(cfg.Logf)
	}
	if cfg.Store != nil {
		s.persistCh = make(chan ckptJob, persistQueueDepth)
		s.persistDone = make(chan struct{})
		go s.persister()
		// Startup recovery: re-admit every recoverable session before the
		// caller wires up the HTTP listener.
		s.recoverSessions()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// submit routes fn to sh with admission control: draining beats busy,
// and a full queue is an immediate rejection. The caller waits on the
// returned task's done channel before reading fn's outputs.
func (s *Server) submit(sh *shard, fn func()) (*task, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	s.mu.Unlock()
	t, err := sh.trySubmit(fn)
	if err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
	}
	return t, err
}

// lookup finds a session by ID.
func (s *Server) lookup(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// createSession admits one new session: assigns an ID, hashes it onto a
// shard, and — on that shard's loop — either serves it from the
// Options.Key() cache (no simulation is built) or constructs the live
// core.Sim. The sessionInfo is captured on the shard loop in the same
// task, so creation is a single submission and the response payload
// cannot be lost to a later backpressure rejection. The returned session
// is registered; err reports admission (backpressure/draining) or
// construction (invalid options) failures.
func (s *Server) createSession(opts core.Options) (*session, sessionInfo, error) {
	var si sessionInfo
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, si, errDraining
	}
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	s.mu.Unlock()

	sess := &session{
		id:      id,
		key:     opts.Key(),
		shard:   s.shards[shardFor(id, len(s.shards))],
		hub:     newHub(),
		opts:    opts,
		created: time.Now(),
	}
	// Interval cadence counts from admission, not the zero time.
	sess.lastCkptTime = sess.created
	var buildErr error
	t, err := s.submit(sess.shard, func() {
		// Content-addressed reuse: an identical completed run serves
		// this session without building (or stepping) a simulation.
		if res, ok := s.runner.Lookup(opts); ok {
			sess.cacheHit = true
			sess.result = res
			sess.finished = true
			sess.hub.close()
			s.logf("session %s: cache hit for %s", id, sess.key)
		} else {
			sim, err := core.New(opts)
			if err != nil {
				buildErr = err
				return
			}
			sess.sim = sim
		}
		si = sessionInfo{
			ID:       sess.id,
			Key:      sess.key,
			Shard:    sess.shard.id,
			Steps:    opts.Steps,
			Finished: sess.finished,
			CacheHit: sess.cacheHit,
		}
		if sess.finished {
			si.Done = opts.Steps
		}
	})
	if err != nil {
		return nil, si, err
	}
	<-t.done
	if buildErr != nil {
		return nil, si, buildErr
	}

	// Register atomically with the draining check: Shutdown flips
	// draining under mu before sweeping, so either this session lands in
	// the registry in time for the sweep, or we observe draining here and
	// tear it down ourselves — unregistered and unreturned, this
	// goroutine is its only owner, so no shard task is needed.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		if sess.sim != nil {
			sess.sim.Release()
		}
		sess.hub.close()
		return nil, si, errDraining
	}
	s.sessions[id] = sess
	s.created++
	if sess.cacheHit {
		s.cacheHits++
	}
	s.mu.Unlock()
	return sess, si, nil
}

// restoreSession admits a session rebuilt from a checkpoint container
// (POST /sims/restore): core.Restore reconstructs the paused core.Sim at
// its captured step on the shard loop, and the session resumes exactly
// where the checkpointed run paused — stepping, streaming, and the final
// Result are byte-identical to the uninterrupted run. Restores never
// consult the result cache: the point of restoring is the live,
// resumable simulation (its completed Result still feeds the cache
// through the ordinary finalize path).
//
// With a store configured the restore is durability-aware in both
// directions: an upload whose (key, step) is already stored is answered
// from the store's validated copy (from_store in the response), and a
// novel valid upload is persisted asynchronously so a crash right after
// the restore can still recover the session.
func (s *Server) restoreSession(upload []byte) (*session, sessionInfo, error) {
	var si sessionInfo
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, si, errDraining
	}
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	s.mu.Unlock()

	data := upload
	fromStore := false
	var peekKey string
	var peekStep int
	if st := s.cfg.Store; st != nil {
		if k, step, err := core.PeekCheckpointHeader(upload); err == nil {
			peekKey, peekStep = k, step
			if stored, serr := st.Get(k, step); serr == nil {
				data = stored
				fromStore = true
			}
		}
	}

	sess := &session{
		id:      id,
		shard:   s.shards[shardFor(id, len(s.shards))],
		hub:     newHub(),
		created: time.Now(),
	}
	var buildErr error
	t, err := s.submit(sess.shard, func() {
		sim, err := core.Restore(bytes.NewReader(data))
		if err != nil && fromStore {
			// The store's copy passed format validation but failed the
			// deeper restore checks: quarantine it and fall back to the
			// client's own upload.
			s.cfg.Store.Quarantine(peekKey, peekStep)
			fromStore = false
			sim, err = core.Restore(bytes.NewReader(upload))
		}
		if err != nil {
			buildErr = err
			return
		}
		sess.sim = sim
		sess.fromStore = fromStore
		sess.opts = sim.Options()
		sess.key = sess.opts.Key()
		sess.lastCkptStep = sim.StepsDone()
		sess.lastCkptTime = time.Now()
		if s.cfg.Store != nil && !fromStore {
			s.enqueueCkptLocked(ckptJob{key: sess.key, step: sim.StepsDone(), data: upload})
		}
		s.logf("session %s: restored at step %d (%s)", id, sim.StepsDone(), sess.key)
		si = sessionInfo{
			ID:        sess.id,
			Key:       sess.key,
			Shard:     sess.shard.id,
			Steps:     sess.opts.Steps,
			Done:      sim.StepsDone(),
			FromStore: fromStore,
		}
	})
	if err != nil {
		return nil, si, err
	}
	<-t.done
	if buildErr != nil {
		return nil, si, buildErr
	}

	// Same registration race as createSession: either the session lands
	// in the registry before Shutdown's sweep, or we observe draining and
	// tear down the unregistered Sim ourselves.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		sess.sim.Release()
		sess.hub.close()
		return nil, si, errDraining
	}
	s.sessions[id] = sess
	s.created++
	s.mu.Unlock()
	return sess, si, nil
}

// finalizeLocked completes a session whose schedule has run out (or a
// cache-hit session's live twin): collects the Result, feeds the shared
// cache, and closes the fan-out hub so every subscriber's stream ends.
// Must run on the session's shard loop. Only a full-schedule result is
// memoized — a partial (drained) run covers fewer steps than the key
// promises and would poison the cache.
func (s *Server) finalizeLocked(sess *session) error {
	if sess.finished || sess.sim == nil {
		return nil
	}
	full := sess.sim.StepsDone() == sess.opts.Steps
	res, err := sess.sim.Finish()
	if err != nil {
		return err
	}
	sess.result = res
	sess.finished = true
	if full {
		s.runner.Memoize(sess.opts, res)
	}
	sess.hub.close()
	return nil
}

// stepLocked advances a session k steps and publishes the resulting
// snapshot to its hub; when the schedule completes it finalizes the
// session (feeding the cache). Must run on the session's shard loop.
// The snapshot's cost tracks demand: the full body gather is the
// O(n log n) bulk of a Snapshot, so it runs only when this caller asked
// for bodies or a stream subscriber is listening (subscriptions are
// taken on this shard loop, so the count cannot change under us);
// otherwise the bodies-free SnapshotMeta path serves both the step
// response and the hub publication.
func (s *Server) stepLocked(sess *session, k int, wantBodies bool) (*core.Snapshot, error) {
	if sess.released {
		return nil, core.ErrReleased
	}
	if sess.finished {
		return nil, core.ErrFinished
	}
	if err := sess.sim.Step(k); err != nil {
		return nil, err
	}
	var (
		snap *core.Snapshot
		err  error
	)
	if wantBodies || sess.hub.subscriberCount() > 0 {
		snap, err = sess.sim.Snapshot()
	} else {
		snap, err = sess.sim.SnapshotMeta()
	}
	if err != nil {
		return nil, err
	}
	sess.hub.publish(snap)
	if sess.sim.StepsDone() >= sess.opts.Steps {
		if err := s.finalizeLocked(sess); err != nil {
			return nil, err
		}
	} else {
		// Crash safety: capture a durable checkpoint when one is due.
		// Completed runs are skipped — their Result lands in the cache and
		// the store's retention will age their entries out.
		s.maybeAutoCheckpointLocked(sess)
	}
	return snap, nil
}

// ensureStepperLocked starts the session's stream stepper if none is
// driving it yet: one goroutine that repeatedly submits "advance every
// steps and publish" tasks to the session's shard until the schedule
// completes or the server drains. One stepper per session, however many
// stream subscribers attach. Must run on the session's shard loop.
func (s *Server) ensureStepperLocked(sess *session, every int) {
	if sess.stepping || sess.finished || sess.released {
		return
	}
	sess.stepping = true
	s.steppers.Add(1)
	go s.stepperLoop(sess, every)
}

// stepperLoop drives one session to completion from a dedicated
// goroutine. The loop blocks on the shard queue (internal work yields to
// external requests only through queue order) but aborts promptly when
// the server starts draining — Shutdown finishes the session instead.
func (s *Server) stepperLoop(sess *session, every int) {
	defer s.steppers.Done()
	for {
		select {
		case <-s.drainCh:
			return
		default:
		}
		var done bool
		t := &task{done: make(chan struct{})}
		t.fn = func() {
			if sess.released || sess.finished {
				done = true
				return
			}
			k := every
			if rem := sess.opts.Steps - sess.sim.StepsDone(); k > rem {
				k = rem
			}
			if _, err := s.stepLocked(sess, k, false); err != nil {
				s.logf("session %s: stepper stopped: %v", sess.id, err)
				done = true
				return
			}
			done = sess.finished
		}
		select {
		case sess.shard.tasks <- t:
		case <-s.drainCh:
			s.clearStepping(sess)
			return
		}
		<-t.done
		if done {
			s.clearStepping(sess)
			return
		}
	}
}

// clearStepping marks the session as no longer driven, on its shard loop
// if it is still accepting work (post-drain the flag no longer matters).
func (s *Server) clearStepping(sess *session) {
	t, err := sess.shard.trySubmit(func() { sess.stepping = false })
	if err == nil {
		<-t.done
	}
}

// release tears one session down on its shard loop: Finish (collecting
// whatever steps ran; feeding the cache only on a complete schedule),
// Release, hub close, deregistration. remove is idempotent per session.
func (s *Server) releaseLocked(sess *session) {
	if !sess.released {
		if sess.sim != nil {
			if err := s.finalizeLocked(sess); err != nil {
				s.logf("session %s: finish on release: %v", sess.id, err)
			}
			sess.sim.Release()
		}
		sess.released = true
		sess.hub.close()
	}
	s.mu.Lock()
	if _, ok := s.sessions[sess.id]; ok {
		delete(s.sessions, sess.id)
		s.released++
		// The hub is closed above, so its drop count is final: fold it
		// into the service-wide counter so Stats stays monotone after
		// the session leaves the registry.
		s.snapDropped += sess.hub.droppedCount()
	}
	s.mu.Unlock()
}

// Shutdown drains the service: new admissions are rejected (503),
// stream steppers stop, requests already queued on every shard finish,
// and every live session is finished and released. It is safe to call
// once; the HTTP server should be shut down after it so closing hubs
// can end the open stream responses.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	close(s.drainCh)
	s.mu.Unlock()

	// Steppers park at their next drain check; their in-flight shard
	// tasks complete first (the shard loops keep running).
	s.steppers.Wait()

	// Per shard: behind everything already queued, tear down the shard's
	// sessions. Blocking send is safe — admissions are closed, so the
	// queue can only drain.
	for _, sh := range s.shards {
		s.mu.Lock()
		var mine []*session
		for _, sess := range s.sessions {
			if sess.shard == sh {
				mine = append(mine, sess)
			}
		}
		s.mu.Unlock()
		t := &task{done: make(chan struct{})}
		t.fn = func() {
			for _, sess := range mine {
				s.releaseLocked(sess)
			}
		}
		sh.tasks <- t
		<-t.done
	}
	for _, sh := range s.shards {
		close(sh.stop)
	}
	for _, sh := range s.shards {
		<-sh.exited
	}

	// Every shard loop has exited, so no capture can enqueue anymore:
	// close the persistence queue and wait for queued checkpoints to land
	// (bounded: queue depth × retry budget).
	if s.persistCh != nil {
		close(s.persistCh)
		<-s.persistDone
	}
	s.logf("drained: %d sessions released", s.Stats().Sessions.Released)
}

// SessionStats summarizes the session registry.
type SessionStats struct {
	Live      int    `json:"live"`
	Created   uint64 `json:"created"`
	CacheHits uint64 `json:"cache_hits"` // creates served from the Options.Key() cache
	Released  uint64 `json:"released"`
	Rejected  uint64 `json:"rejected"`  // requests shed by backpressure
	Recovered uint64 `json:"recovered"` // sessions re-admitted from the store at boot
}

// ShardStats reports one shard's instantaneous load.
type ShardStats struct {
	ID       int `json:"id"`
	Queue    int `json:"queue"`    // requests waiting
	Capacity int `json:"capacity"` // bounded queue depth
	Sessions int `json:"sessions"` // live sessions hashed here
}

// Stats is the service-wide observability snapshot (GET /stats).
type Stats struct {
	Sessions         SessionStats      `json:"sessions"`
	Shards           []ShardStats      `json:"shards"`
	Runner           bench.RunnerStats `json:"runner"`
	SnapshotsDropped uint64            `json:"snapshots_dropped"` // fan-out slow-consumer drops
	Draining         bool              `json:"draining"`
	Store            *store.Stats      `json:"store,omitempty"`       // nil without -store
	Checkpoints      *CkptStats        `json:"checkpoints,omitempty"` // nil without -store
}

// Stats assembles the observability snapshot. It takes no shard tasks —
// it must answer even when every queue is full.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Sessions: SessionStats{
			Live:      len(s.sessions),
			Created:   s.created,
			CacheHits: s.cacheHits,
			Released:  s.released,
			Rejected:  s.rejected,
			Recovered: s.recovered,
		},
		Draining: s.draining,
	}
	if s.cfg.Store != nil {
		ck := s.ckpt
		st.Checkpoints = &ck
	}
	perShard := make(map[*shard]int)
	dropped := s.snapDropped // drops of already-released sessions
	for _, sess := range s.sessions {
		perShard[sess.shard]++
		dropped += sess.hub.droppedCount()
	}
	s.mu.Unlock()
	for _, sh := range s.shards {
		st.Shards = append(st.Shards, ShardStats{
			ID:       sh.id,
			Queue:    len(sh.tasks),
			Capacity: cap(sh.tasks),
			Sessions: perShard[sh],
		})
	}
	st.SnapshotsDropped = dropped
	st.Runner = s.runner.Stats()
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		st.Store = &ss
	}
	return st
}

// synthSnapshot fabricates the terminal Snapshot of a completed run from
// its cached Result: cache-hit sessions have no live Sim to ask. Bodies
// are absent — the cache drops them (bench.Runner KeepBodies policy).
func synthSnapshot(opts core.Options, res *core.Result) *core.Snapshot {
	return &core.Snapshot{
		Step:         opts.Steps,
		Steps:        opts.Steps,
		Warmup:       opts.Warmup,
		Level:        res.Level,
		ExecMode:     res.ExecMode,
		Threads:      res.Threads,
		Scenario:     opts.Scenario,
		Time:         float64(opts.Steps) * opts.Dt,
		Clocks:       make([]float64, res.Threads),
		Phases:       res.Phases,
		StepPhases:   res.StepPhases,
		Interactions: res.Interactions,
		Bodies:       res.Bodies,
	}
}
