package serve

import (
	"sync"

	"upcbh/internal/core"
)

// hub fans one session's snapshot stream out to many subscribers: one
// stepper publishes, N subscribers each drain a private buffered channel.
// A slow consumer never blocks the stepper (which would stall every
// session on the shard): when a subscriber's buffer is full, publish
// drops that subscriber's oldest queued snapshot and enqueues the new
// one. The consumer lags to the freshest frames — step indices it
// observes stay strictly monotone, it always eventually sees the
// terminal snapshot, and the drop is counted.
type hub struct {
	// mu guards everything below. publish and close run on the shard
	// loop; subscribe/unsubscribe run on HTTP handler goroutines.
	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	closed  bool
	dropped uint64
}

// subscriber is one stream consumer's view of a hub.
type subscriber struct {
	ch      chan *core.Snapshot
	dropped uint64 // snapshots this subscriber lost to the drop policy (guarded by hub.mu)
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// subscribe attaches a consumer with a private buffer of `buf`
// snapshots. On a closed hub (the session already finished) it returns
// nil: the caller serves the terminal state and ends the stream.
func (h *hub) subscribe(buf int) *subscriber {
	if buf < 1 {
		buf = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	sub := &subscriber{ch: make(chan *core.Snapshot, buf)}
	h.subs[sub] = struct{}{}
	return sub
}

// unsubscribe detaches a consumer (idempotent; safe after close).
func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		close(sub.ch)
	}
}

// publish delivers snap to every subscriber, applying the
// drop-oldest-when-full policy per subscriber. Never blocks on a
// consumer.
func (h *hub) publish(snap *core.Snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for sub := range h.subs {
		for {
			select {
			case sub.ch <- snap:
			default:
				// Buffer full: evict the subscriber's oldest queued
				// snapshot and retry. The inner default covers the race
				// where the consumer drained between our two selects.
				select {
				case <-sub.ch:
					sub.dropped++
					h.dropped++
				default:
				}
				continue
			}
			break
		}
	}
}

// close ends the stream: every subscriber's channel closes after the
// snapshots already buffered, and later subscribe calls return nil.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		delete(h.subs, sub)
		close(sub.ch)
	}
}

// subscriberCount reports the number of attached consumers. Stream
// subscriptions are taken on the session's shard loop, so a shard task
// that checks the count and then publishes sees a stable value.
func (h *hub) subscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// droppedCount returns the total snapshots lost to the drop policy.
func (h *hub) droppedCount() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}
