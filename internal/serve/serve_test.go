package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"upcbh/internal/arena"
	"upcbh/internal/core"
)

// testOpts is a fast session configuration: small body count, few steps.
func testOpts(steps int) core.Options {
	opts := core.DefaultOptions(256, 2, core.LevelMergedBuild)
	opts.Steps, opts.Warmup = steps, 1
	return opts
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s := New(cfg)
	t.Cleanup(s.Shutdown)
	return s
}

// TestShardAssignmentStable: shardFor is deterministic and in-range, so
// a session's every operation lands on the same loop for its lifetime.
func TestShardAssignmentStable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16} {
		for i := 0; i < 100; i++ {
			id := fmt.Sprintf("s-%d", i)
			a, b := shardFor(id, n), shardFor(id, n)
			if a != b {
				t.Fatalf("shardFor(%q, %d) unstable: %d vs %d", id, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("shardFor(%q, %d) = %d out of range", id, n, a)
			}
		}
	}
	// Sessions spread: with 8 shards and 100 IDs at least 2 shards are hit.
	hit := map[int]bool{}
	for i := 0; i < 100; i++ {
		hit[shardFor(fmt.Sprintf("s-%d", i), 8)] = true
	}
	if len(hit) < 2 {
		t.Fatalf("100 sessions all hashed onto one of 8 shards")
	}
}

// TestSessionLifecycle: create → step to completion → result, with the
// lifecycle sentinels surfacing on post-finish steps.
func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	sess, _, err := s.createSession(testOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var snap *core.Snapshot
		var stepErr error
		tk, err := s.submit(sess.shard, func() { snap, stepErr = s.stepLocked(sess, 1, false) })
		if err != nil {
			t.Fatal(err)
		}
		<-tk.done
		if stepErr != nil {
			t.Fatal(stepErr)
		}
		if snap.Step != i+1 {
			t.Fatalf("step %d: snapshot at step %d", i+1, snap.Step)
		}
	}
	// Schedule complete: the session auto-finalized and further steps
	// are lifecycle conflicts.
	var stepErr error
	tk, err := s.submit(sess.shard, func() { _, stepErr = s.stepLocked(sess, 1, false) })
	if err != nil {
		t.Fatal(err)
	}
	<-tk.done
	if stepErr == nil || httpStatus(stepErr) != http.StatusConflict {
		t.Fatalf("step after completion: err=%v status=%d, want 409", stepErr, httpStatus(stepErr))
	}
	if !sess.finished || sess.result == nil {
		t.Fatal("completed session not finalized")
	}
}

// TestCreateCacheHit: a completed run's result is reused for an
// identical later create — no simulation is built, the session is born
// finished, and the synthesized terminal snapshot matches the schedule.
func TestCreateCacheHit(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	opts := testOpts(3)

	first, _, err := s.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.submit(first.shard, func() {
		if _, err := s.stepLocked(first, 3, false); err != nil {
			t.Errorf("run to completion: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-tk.done

	second, _, err := s.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.cacheHit {
		t.Fatal("identical create after completion was not a cache hit")
	}
	if second.sim != nil {
		t.Fatal("cache-hit session built a simulation")
	}
	snap, err := s.snapshotOf(second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != opts.Steps {
		t.Fatalf("cache-hit snapshot at step %d, want terminal %d", snap.Step, opts.Steps)
	}
	if st := s.Stats(); st.Sessions.CacheHits != 1 {
		t.Fatalf("stats cache_hits = %d, want 1", st.Sessions.CacheHits)
	}

	// A partial run must NOT poison the cache: drain a half-stepped
	// session and re-create — the key promises the full schedule.
	partialOpts := testOpts(4)
	partialOpts.Seed = 999 // distinct key from the runs above
	p1, _, err := s.createSession(partialOpts)
	if err != nil {
		t.Fatal(err)
	}
	tk, err = s.submit(p1.shard, func() {
		if _, err := s.stepLocked(p1, 2, false); err != nil {
			t.Errorf("partial step: %v", err)
		}
		s.releaseLocked(p1) // finishes at step 2 of 4: partial result
	})
	if err != nil {
		t.Fatal(err)
	}
	<-tk.done
	p2, _, err := s.createSession(partialOpts)
	if err != nil {
		t.Fatal(err)
	}
	if p2.cacheHit {
		t.Fatal("partial (drained) result was memoized: cache poisoned")
	}
}

// TestBackpressureQueueFull: a full shard queue rejects immediately with
// errBusy (HTTP 429), and clears once the queue drains.
func TestBackpressureQueueFull(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, QueueDepth: 1})
	sh := s.shards[0]

	// Occupy the loop, then fill the single queue slot.
	block := make(chan struct{})
	running := make(chan struct{})
	if _, err := sh.trySubmit(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running
	if _, err := sh.trySubmit(func() {}); err != nil {
		t.Fatal(err)
	}

	// Queue full: submissions shed load instead of blocking.
	_, err := s.submit(sh, func() {})
	if err == nil {
		t.Fatal("full queue accepted a task")
	}
	if httpStatus(err) != http.StatusTooManyRequests {
		t.Fatalf("full queue error %v maps to %d, want 429", err, httpStatus(err))
	}
	if st := s.Stats(); st.Sessions.Rejected != 1 {
		t.Fatalf("stats rejected = %d, want 1", st.Sessions.Rejected)
	}

	close(block)
	// The queue drains; submissions succeed again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tk, err := s.submit(sh, func() {})
		if err == nil {
			<-tk.done
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFanOutSubscribers: one stepper, several subscribers — including a
// slow one with a tiny buffer. Every subscriber sees strictly monotone
// step indices and the terminal snapshot; the slow one may lose
// intermediate frames (counted), never ordering or the final state.
func TestFanOutSubscribers(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, SubBuffer: 2})
	steps := 6
	sess, _, err := s.createSession(testOpts(steps))
	if err != nil {
		t.Fatal(err)
	}

	const nSubs = 4 // subscriber 0 is deliberately slow
	subs := make([]*subscriber, nSubs)
	tk, err := s.submit(sess.shard, func() {
		for i := range subs {
			buf := s.cfg.SubBuffer
			if i == 0 {
				buf = 1
			}
			subs[i] = sess.hub.subscribe(buf)
		}
		s.ensureStepperLocked(sess, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-tk.done

	var wg sync.WaitGroup
	got := make([][]int, nSubs)
	for i, sub := range subs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for snap := range sub.ch {
				if i == 0 {
					time.Sleep(5 * time.Millisecond) // lag behind the stepper
				}
				got[i] = append(got[i], snap.Step)
			}
		}()
	}
	wg.Wait()

	for i, seq := range got {
		if len(seq) == 0 {
			t.Fatalf("subscriber %d saw no snapshots", i)
		}
		for k := 1; k < len(seq); k++ {
			if seq[k] <= seq[k-1] {
				t.Fatalf("subscriber %d: non-monotone steps %v", i, seq)
			}
		}
		if seq[len(seq)-1] != steps {
			t.Fatalf("subscriber %d missed the terminal snapshot: %v", i, seq)
		}
	}
	// The fast subscribers with ample buffers saw every frame.
	if full := got[1]; len(full) != steps {
		t.Logf("subscriber 1 saw %v (drops allowed under -race scheduling)", full)
	}
}

// TestGracefulDrain: Shutdown stops admissions, parks steppers, and
// releases every session — none leak, and post-drain requests map to 503.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Shards: 2, Logf: t.Logf})
	var sessions []*session
	for i := 0; i < 6; i++ {
		sess, _, err := s.createSession(testOpts(50)) // long schedule: drain cuts it short
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
	}
	// Put steppers on half of them so drain has live drivers to park.
	for _, sess := range sessions[:3] {
		tk, err := s.submit(sess.shard, func() { s.ensureStepperLocked(sess, 1) })
		if err != nil {
			t.Fatal(err)
		}
		<-tk.done
	}

	s.Shutdown()

	st := s.Stats()
	if st.Sessions.Live != 0 {
		t.Fatalf("%d sessions leaked past drain", st.Sessions.Live)
	}
	if st.Sessions.Released != 6 {
		t.Fatalf("released %d sessions, want 6", st.Sessions.Released)
	}
	for _, sess := range sessions {
		if !sess.released {
			t.Fatalf("session %s not released by drain", sess.id)
		}
	}
	if _, _, err := s.createSession(testOpts(3)); err == nil || httpStatus(err) != http.StatusServiceUnavailable {
		t.Fatalf("post-drain create: err=%v, want 503 mapping", err)
	}
	s.Shutdown() // idempotent
}

// TestHTTPEndToEnd drives the full HTTP surface: create, status, step,
// snapshot, stream (NDJSON, monotone, terminal), result, delete, stats,
// and the 404/409/410 mappings.
func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("{}")
		} else {
			rd = strings.NewReader(body)
		}
		resp, err := http.Post(ts.URL+path, "application/json", rd)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := bufio.NewReader(resp.Body).WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return resp, []byte(buf.String())
	}

	// Create with an options overlay.
	resp, body := post("/sims", `{"options":{"bodies":256,"steps":4,"warmup":1,"level":"merged","machine":{"threads":2}}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var si sessionInfo
	if err := json.Unmarshal(body, &si); err != nil {
		t.Fatal(err)
	}
	if si.Steps != 4 || si.Done != 0 || si.Finished || si.CacheHit {
		t.Fatalf("fresh session info: %+v", si)
	}

	// Step twice.
	resp, body = post("/sims/"+si.ID+"/step?k=2", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: %d %s", resp.StatusCode, body)
	}
	var snap core.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Step != 2 {
		t.Fatalf("after step k=2: snapshot at %d", snap.Step)
	}
	if len(snap.Bodies) != 0 {
		t.Fatal("step response includes bodies without ?bodies=1")
	}

	// Snapshot endpoint agrees.
	resp, err := http.Get(ts.URL + "/sims/" + si.ID + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Step != 2 {
		t.Fatalf("snapshot at %d, want 2", snap.Step)
	}

	// Stream the rest: strictly monotone from the current state to the
	// terminal step.
	resp, err = http.Get(ts.URL + "/sims/" + si.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type %q", ct)
	}
	var streamed []int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var sn core.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &sn); err != nil {
			t.Fatalf("bad NDJSON: %v", err)
		}
		streamed = append(streamed, sn.Step)
	}
	resp.Body.Close()
	if len(streamed) == 0 || streamed[0] != 2 || streamed[len(streamed)-1] != 4 {
		t.Fatalf("streamed steps %v, want 2..4", streamed)
	}
	for k := 1; k < len(streamed); k++ {
		if streamed[k] <= streamed[k-1] {
			t.Fatalf("non-monotone stream %v", streamed)
		}
	}

	// The schedule completed during the stream: further steps are 409.
	resp, body = post("/sims/"+si.ID+"/step", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("step after completion: %d %s, want 409", resp.StatusCode, body)
	}

	// Result is available.
	resp, err = http.Get(ts.URL + "/sims/" + si.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res core.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Threads != 2 || res.Phases.Total() <= 0 {
		t.Fatalf("result: threads=%d total=%v", res.Threads, res.Phases.Total())
	}

	// An identical create is a cache hit, born finished.
	resp, body = post("/sims", `{"options":{"bodies":256,"steps":4,"warmup":1,"level":"merged","machine":{"threads":2}}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second create: %d %s", resp.StatusCode, body)
	}
	var si2 sessionInfo
	if err := json.Unmarshal(body, &si2); err != nil {
		t.Fatal(err)
	}
	if !si2.CacheHit || !si2.Finished || si2.Done != 4 {
		t.Fatalf("identical create not served from cache: %+v", si2)
	}

	// Delete; the session is then gone (404), and deleting again 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sims/"+si.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/sims/" + si.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status after delete: %d, want 404", resp.StatusCode)
	}

	// Bad create bodies are 400.
	resp, body = post("/sims", `{"options":{"bodies":1}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid options: %d %s, want 400", resp.StatusCode, body)
	}

	// Stats reflect the traffic.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Sessions.Created != 2 || st.Sessions.CacheHits != 1 {
		t.Fatalf("stats: %+v", st.Sessions)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("stats shards: %+v", st.Shards)
	}
}

// TestStepDoesNotMutateStreamedSnapshot: /step without ?bodies must not
// strip Bodies from the hub-published snapshot a stream subscriber is
// concurrently encoding — the handler strips on a copy. The subscriber
// here encodes every published frame exactly as the stream endpoint's
// ?bodies=1 path does; under -race the old in-place mutation is a
// reported data race, and functionally every frame must keep its bodies.
func TestStepDoesNotMutateStreamedSnapshot(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, SubBuffer: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	opts := core.DefaultOptions(1024, 2, core.LevelMergedBuild)
	opts.Steps, opts.Warmup = 20, 1
	sess, _, err := s.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	var sub *subscriber
	tk, err := s.submit(sess.shard, func() { sub = sess.hub.subscribe(s.cfg.SubBuffer) })
	if err != nil {
		t.Fatal(err)
	}
	<-tk.done

	done := make(chan struct{})
	go func() {
		defer close(done)
		for snap := range sub.ch {
			b, err := json.Marshal(snap) // shares the published pointer with the /step handler
			if err != nil {
				t.Errorf("encode frame: %v", err)
				return
			}
			var sn core.Snapshot
			if err := json.Unmarshal(b, &sn); err != nil {
				t.Errorf("decode frame: %v", err)
				return
			}
			if len(sn.Bodies) == 0 {
				t.Errorf("streamed frame %d lost its bodies to /step", sn.Step)
			}
		}
	}()

	// Drive the whole schedule via body-less /step requests racing the
	// subscriber's encoder; 429 under queue pressure is a retry.
	deadline := time.Now().Add(30 * time.Second)
	for stepped := 0; stepped < opts.Steps && time.Now().Before(deadline); {
		resp, err := http.Post(ts.URL+"/sims/"+sess.id+"/step", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			stepped++
		}
	}
	<-done // finalize closed the hub after the last step
}

// TestSnapshotsDroppedMonotone: releasing a session whose subscribers
// lost frames must not shrink the service-wide drop counter — released
// sessions' drops fold into a server accumulator.
func TestSnapshotsDroppedMonotone(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	sess, _, err := s.createSession(testOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	// A subscriber with a one-deep buffer that never drains: every
	// publish past the first evicts its oldest frame.
	tk, err := s.submit(sess.shard, func() {
		sess.hub.subscribe(1)
		if _, err := s.stepLocked(sess, 1, false); err != nil {
			t.Errorf("step: %v", err)
			return
		}
		if _, err := s.stepLocked(sess, 1, false); err != nil {
			t.Errorf("step: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-tk.done
	before := s.Stats().SnapshotsDropped
	if before == 0 {
		t.Fatal("slow subscriber produced no drops")
	}
	tk, err = s.submit(sess.shard, func() { s.releaseLocked(sess) })
	if err != nil {
		t.Fatal(err)
	}
	<-tk.done
	if after := s.Stats().SnapshotsDropped; after < before {
		t.Fatalf("SnapshotsDropped shrank on release: %d -> %d", before, after)
	}
}

// TestTrySubmitAfterShutdown: once the shard loops have exited, a
// straggling trySubmit must be rejected with errDraining rather than
// enqueueing a task nobody will run (which would hang the caller on
// <-t.done forever).
func TestTrySubmitAfterShutdown(t *testing.T) {
	s := New(Config{Shards: 1, Logf: t.Logf})
	s.Shutdown()
	if _, err := s.shards[0].trySubmit(func() {}); !errors.Is(err, errDraining) {
		t.Fatalf("trySubmit on a stopped shard: err=%v, want errDraining", err)
	}
}

// TestStreamFromFinishedSession: streaming a completed (cache-hit)
// session yields exactly the terminal snapshot and a closed stream.
func TestStreamFromFinishedSession(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	opts := testOpts(2)
	sess, _, err := s.createSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.submit(sess.shard, func() {
		if _, err := s.stepLocked(sess, 2, false); err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-tk.done

	resp, err := http.Get(ts.URL + "/sims/" + sess.id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 1 {
		t.Fatalf("finished-session stream emitted %d frames, want 1", len(lines))
	}
	var sn core.Snapshot
	if err := json.Unmarshal([]byte(lines[0]), &sn); err != nil {
		t.Fatal(err)
	}
	if sn.Step != 2 {
		t.Fatalf("terminal frame at step %d, want 2", sn.Step)
	}
}

// TestHTTPCheckpointRestore drives the persistence surface end to end:
// checkpoint a live session mid-run over HTTP, restore the container as
// a fresh session, and the restored run's remaining trajectory and final
// Result are byte-identical to the uninterrupted original. Corrupted
// containers and sessions with no live simulation map to clean client
// errors, never a crash.
func TestHTTPCheckpointRestore(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const optsJSON = `{"options":{"bodies":256,"steps":4,"warmup":1,"level":"merged","machine":{"threads":2}}}`
	resp, err := http.Post(ts.URL+"/sims", "application/json", strings.NewReader(optsJSON))
	if err != nil {
		t.Fatal(err)
	}
	var si sessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&si); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Advance to step 2 and capture the container.
	resp, err = http.Post(ts.URL+"/sims/"+si.ID+"/step?k=2", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/sims/"+si.ID+"/checkpoint", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, ckpt)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("checkpoint content-type %q", ct)
	}
	if step := resp.Header.Get("X-Checkpoint-Step"); step != "2" {
		t.Fatalf("X-Checkpoint-Step %q, want 2", step)
	}

	// Restore the container as a new session: it resumes at step 2.
	resp, err = http.Post(ts.URL+"/sims/restore", "application/octet-stream", bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	var ri sessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&ri); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("restore: %d", resp.StatusCode)
	}
	if ri.Done != 2 || ri.Steps != 4 || ri.Key != si.Key || ri.Finished {
		t.Fatalf("restored session info: %+v", ri)
	}

	// Run both to completion; the results must be byte-identical.
	finalResult := func(id string) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+"/sims/"+id+"/step?k=2", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %s to completion: %d", id, resp.StatusCode)
		}
		resp, err = http.Get(ts.URL + "/sims/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: %d %s", id, resp.StatusCode, raw)
		}
		return raw
	}
	ref := finalResult(si.ID)
	got := finalResult(ri.ID)
	if !bytes.Equal(ref, got) {
		t.Fatalf("restored run's result diverged from the original:\n%.300s\nvs\n%.300s", got, ref)
	}

	// A finished session has no paused state to capture: 409.
	resp, err = http.Post(ts.URL+"/sims/"+si.ID+"/checkpoint", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint of finished session: %d, want 409", resp.StatusCode)
	}

	// A cache-hit session never had a live simulation: 409.
	resp, err = http.Post(ts.URL+"/sims", "application/json", strings.NewReader(optsJSON))
	if err != nil {
		t.Fatal(err)
	}
	var ci sessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&ci); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ci.CacheHit {
		t.Fatalf("expected a cache hit: %+v", ci)
	}
	resp, err = http.Post(ts.URL+"/sims/"+ci.ID+"/checkpoint", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint of cache-hit session: %d, want 409", resp.StatusCode)
	}

	// Corrupted and garbage containers are the client's fault: 400 with
	// the validation error, and no session is created. That includes a
	// CRC-valid container whose state region smuggles out-of-range
	// double-buffer geometry — accepted, it would panic the whole
	// process on the restored session's next step.
	before := s.Stats().Sessions.Created
	bad := append([]byte(nil), ckpt...)
	bad[len(bad)-1] ^= 0x40 // payload corruption: CRC mismatch
	crafted := func() []byte {
		c, err := arena.ReadCheckpoint(bytes.NewReader(ckpt))
		if err != nil {
			t.Fatal(err)
		}
		state, _ := c.Region("state")
		var m map[string]any
		if err := json.Unmarshal(state, &m); err != nil {
			t.Fatal(err)
		}
		th0 := m["threads"].([]any)[0].(map[string]any)
		th0["cur"] = 9
		th0["buf"] = []any{map[string]any{"Thr": 0, "Idx": 1 << 30}, map[string]any{"Thr": 0, "Idx": 0}}
		enc, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		heap, _ := c.Region("heap")
		refs, _ := c.Region("refs")
		var buf bytes.Buffer
		err = arena.WriteCheckpoint(&buf, c.Header.Key, c.Header.Step, nil, []arena.NamedRegion{
			{Name: "state", Data: enc},
			{Name: "heap", Data: heap},
			{Name: "refs", Data: refs},
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	for _, body := range [][]byte{bad, []byte("not a checkpoint"), nil, crafted} {
		resp, err = http.Post(ts.URL+"/sims/restore", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("restore of bad container: %d %s, want 400", resp.StatusCode, raw)
		}
	}
	if after := s.Stats().Sessions.Created; after != before {
		t.Fatalf("bad restores created %d sessions", after-before)
	}
}
