package octree

import (
	"testing"

	"upcbh/internal/nbody"
)

func BenchmarkInsert(b *testing.B) {
	bodies := nbody.Plummer(16384, 1)
	lo, hi := nbody.BoundingBox(bodies)
	center, half := nbody.RootCell(lo, hi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := New(center, half)
		for j := range bodies {
			t.Insert(&bodies[j])
		}
	}
	b.ReportMetric(float64(len(bodies)), "bodies/op")
}

func BenchmarkComputeCofM(b *testing.B) {
	bodies := nbody.Plummer(16384, 1)
	t := Build(bodies)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.ComputeCofM()
	}
}

func BenchmarkForceOn(b *testing.B) {
	bodies := nbody.Plummer(16384, 1)
	t := Build(bodies)
	b.ResetTimer()
	var inter int
	for i := 0; i < b.N; i++ {
		_, _, k := t.ForceOn(&bodies[i%len(bodies)], 1.0, 0.05)
		inter = k
	}
	b.ReportMetric(float64(inter), "interactions/body")
}

func BenchmarkMorton(b *testing.B) {
	bodies := nbody.Plummer(4096, 1)
	lo, hi := nbody.BoundingBox(bodies)
	center, half := nbody.RootCell(lo, hi)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Morton(bodies[i%len(bodies)].Pos, center, half)
	}
	_ = sink
}
