package octree

import (
	"testing"

	"upcbh/internal/nbody"
)

func BenchmarkInsert(b *testing.B) {
	bodies := nbody.Plummer(16384, 1)
	lo, hi := nbody.BoundingBox(bodies)
	center, half := nbody.RootCell(lo, hi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := New(center, half)
		for j := range bodies {
			t.Insert(&bodies[j])
		}
	}
	b.ReportMetric(float64(len(bodies)), "bodies/op")
}

func BenchmarkComputeCofM(b *testing.B) {
	bodies := nbody.Plummer(16384, 1)
	t := Build(bodies)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.ComputeCofM()
	}
}

func benchmarkForceOnPointer(b *testing.B, n int) {
	bodies := nbody.Plummer(n, 1)
	t := Build(bodies)
	b.ResetTimer()
	var inter int
	for i := 0; i < b.N; i++ {
		_, _, k := t.ForceOn(&bodies[i%len(bodies)], 1.0, 0.05)
		inter = k
	}
	b.ReportMetric(float64(inter), "interactions/body")
}

func BenchmarkForceOn(b *testing.B)    { benchmarkForceOnPointer(b, 16384) }
func BenchmarkForceOn32k(b *testing.B) { benchmarkForceOnPointer(b, 32768) }

// BenchmarkForceOnFlat is the flat counterpart of BenchmarkForceOn: same
// Plummer workload, same theta/eps, walking the arena tree one body per
// call. The layout experiment (`bhbench -exp layout`) and the CI
// benchmark step track the pointer/flat ratio; the PR's acceptance bar
// is >= 1.5x for the batched kernel the hot path runs.
func benchmarkForceOnFlat(b *testing.B, n int) {
	bodies := nbody.Plummer(n, 1)
	ft := BuildFlat(bodies)
	b.ResetTimer()
	var inter int
	for i := 0; i < b.N; i++ {
		_, _, k := ft.ForceOn(int32(i%ft.Bodies.Len()), 1.0, 0.05)
		inter = k
	}
	b.ReportMetric(float64(inter), "interactions/body")
}

func BenchmarkForceOnFlat(b *testing.B)    { benchmarkForceOnFlat(b, 16384) }
func BenchmarkForceOnFlat32k(b *testing.B) { benchmarkForceOnFlat(b, 32768) }

// BenchmarkForceOnFlatBatch is the batched kernel the flat hot path
// actually runs: FlatBatchWidth Morton-adjacent bodies per traversal.
// Divide ns/op by the reported bodies/op for the per-body cost.
func benchmarkForceOnFlatBatch(b *testing.B, n int) {
	bodies := nbody.Plummer(n, 1)
	ft := BuildFlat(bodies)
	nb := ft.Bodies.Len()
	var fb FlatBatch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := (i * FlatBatchWidth) % (nb - FlatBatchWidth + 1)
		fb.N = FlatBatchWidth
		for lane := 0; lane < FlatBatchWidth; lane++ {
			fb.Pos[lane] = ft.Bodies.Pos[j+lane]
			fb.Skip[lane] = int32(j + lane)
		}
		ft.walker.ForceBatch(ft, &fb, 1.0, 0.05)
	}
	b.ReportMetric(FlatBatchWidth, "bodies/op")
}

func BenchmarkForceOnFlatBatch(b *testing.B)    { benchmarkForceOnFlatBatch(b, 16384) }
func BenchmarkForceOnFlatBatch32k(b *testing.B) { benchmarkForceOnFlatBatch(b, 32768) }

// BenchmarkSolve/BenchmarkSolveFlat time a full build+force sweep in each
// layout (the steady-state per-timestep work of the native hot path).
func BenchmarkSolve(b *testing.B) {
	bodies := nbody.Plummer(16384, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(bodies, 1.0, 0.05)
	}
}

func BenchmarkSolveFlat(b *testing.B) {
	bodies := nbody.Plummer(16384, 1)
	ft := &FlatTree{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Rebuild(bodies)
		ft.SolveInto(bodies, 1.0, 0.05)
	}
}

func BenchmarkBuildFlat(b *testing.B) {
	bodies := nbody.Plummer(16384, 1)
	ft := &FlatTree{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Rebuild(bodies)
	}
	b.ReportMetric(float64(len(bodies)), "bodies/op")
}

func BenchmarkMorton(b *testing.B) {
	bodies := nbody.Plummer(4096, 1)
	lo, hi := nbody.BoundingBox(bodies)
	center, half := nbody.RootCell(lo, hi)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Morton(bodies[i%len(bodies)].Pos, center, half)
	}
	_ = sink
}
