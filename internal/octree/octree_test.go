package octree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"upcbh/internal/nbody"
	"upcbh/internal/vec"
)

func TestOctantAndChildBounds(t *testing.T) {
	c := vec.V3{}
	cases := []struct {
		p    vec.V3
		want int
	}{
		{vec.V3{X: -1, Y: -1, Z: -1}, 0},
		{vec.V3{X: 1, Y: -1, Z: -1}, 1},
		{vec.V3{X: -1, Y: 1, Z: -1}, 2},
		{vec.V3{X: 1, Y: 1, Z: 1}, 7},
	}
	for _, tc := range cases {
		if got := Octant(c, tc.p); got != tc.want {
			t.Errorf("Octant(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	// Every child cube must contain exactly the points of its octant.
	for oct := 0; oct < 8; oct++ {
		cc, half := ChildBounds(c, 2, oct)
		if half != 1 {
			t.Errorf("child half = %v", half)
		}
		if Octant(c, cc) != oct {
			t.Errorf("child center of octant %d maps to octant %d", oct, Octant(c, cc))
		}
	}
}

// Property: a point is always inside the child cube its octant selects.
func TestQuickOctantContainment(t *testing.T) {
	f := func(px, py, pz float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 2) - 1 }
		p := vec.V3{X: norm(px), Y: norm(py), Z: norm(pz)}
		center, half := vec.V3{}, 1.0
		for level := 0; level < 8; level++ {
			if !Contains(center, half, p) {
				return false
			}
			center, half = ChildBounds(center, half, Octant(center, p))
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccept(t *testing.T) {
	pos := vec.V3{}
	cofm := vec.V3{X: 10}
	// Cell of side 2 at distance 10: l/d = 0.2.
	if !Accept(pos, cofm, 1, 0.5) {
		t.Error("distant small cell rejected at theta=0.5")
	}
	if Accept(pos, cofm, 10, 1.0) {
		t.Error("huge nearby cell accepted at theta=1.0")
	}
}

func TestMortonOrderMatchesDFS(t *testing.T) {
	// Sorting bodies by Morton code must enumerate octree leaves in
	// depth-first order — the invariant costzones and the subspace
	// builder rely on.
	bodies := nbody.Plummer(512, 8)
	tree := Build(bodies)

	var dfsOrder []int32
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			dfsOrder = append(dfsOrder, n.Body.ID)
			return
		}
		for _, ch := range n.Child {
			if ch != nil {
				walk(ch)
			}
		}
	}
	walk(tree.Root)

	type bm struct {
		id   int32
		code uint64
	}
	codes := make([]bm, len(bodies))
	for i := range bodies {
		codes[i] = bm{bodies[i].ID, Morton(bodies[i].Pos, tree.Root.Center, tree.Root.Half)}
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i].code < codes[j].code })
	if len(dfsOrder) != len(codes) {
		t.Fatalf("leaf count %d != body count %d", len(dfsOrder), len(codes))
	}
	for i := range codes {
		if codes[i].id != dfsOrder[i] {
			t.Fatalf("Morton order diverges from DFS at position %d", i)
		}
	}
}

func TestBuildInvariants(t *testing.T) {
	bodies := nbody.Plummer(2048, 3)
	tree := Build(bodies)
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
	if tree.Root.N != len(bodies) {
		t.Errorf("root body count %d, want %d", tree.Root.N, len(bodies))
	}
	if math.Abs(tree.Root.Mass-nbody.TotalMass(bodies)) > 1e-9 {
		t.Errorf("root mass %v, want %v", tree.Root.Mass, nbody.TotalMass(bodies))
	}
	if tree.Leaf != len(bodies) {
		t.Errorf("leaf count %d, want %d", tree.Leaf, len(bodies))
	}
}

// Property: trees over random small body sets always satisfy invariants.
func TestQuickTreeInvariants(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		n := int(nRaw)%60 + 4
		bodies := nbody.Plummer(n, uint64(seed)+1)
		tree := Build(bodies)
		return tree.Verify() == nil && tree.Root.N == n
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestForceAccuracyVsDirect(t *testing.T) {
	bodies := nbody.Plummer(512, 6)
	ref := append([]nbody.Body(nil), bodies...)
	nbody.Direct(ref, 0.05)

	// Bounds are on the WORST single body (mean error is far smaller).
	for _, tc := range []struct {
		theta  float64
		maxErr float64
	}{
		{0.3, 0.03},
		{0.8, 0.25},
		{1.2, 0.60},
	} {
		cp := append([]nbody.Body(nil), bodies...)
		Solve(cp, tc.theta, 0.05)
		worst := nbody.MaxAccError(cp, ref)
		if worst > tc.maxErr {
			t.Errorf("theta=%.1f: worst acc error %.4f > %.4f", tc.theta, worst, tc.maxErr)
		}
	}
}

func TestForceErrorDecreasesWithTheta(t *testing.T) {
	bodies := nbody.Plummer(512, 12)
	ref := append([]nbody.Body(nil), bodies...)
	nbody.Direct(ref, 0.05)
	var prev float64 = -1
	for _, theta := range []float64{1.5, 1.0, 0.5, 0.25} {
		cp := append([]nbody.Body(nil), bodies...)
		Solve(cp, theta, 0.05)
		e := nbody.MaxAccError(cp, ref)
		if prev >= 0 && e > prev*1.2 { // allow slight noise
			t.Errorf("error did not shrink with theta: theta=%.2f err=%.5f prev=%.5f", theta, e, prev)
		}
		prev = e
	}
}

func TestInsertSplitsCoincidentOctants(t *testing.T) {
	// Two bodies in the same octant chain force multi-level splits.
	tree := New(vec.V3{}, 8)
	b1 := &nbody.Body{Pos: vec.V3{X: 1.0, Y: 1.0, Z: 1.0}, Mass: 1, ID: 0, Cost: 1}
	b2 := &nbody.Body{Pos: vec.V3{X: 1.1, Y: 1.1, Z: 1.1}, Mass: 1, ID: 1, Cost: 1}
	tree.Insert(b1)
	tree.Insert(b2)
	tree.ComputeCofM()
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
	if tree.Root.N != 2 {
		t.Errorf("root N = %d", tree.Root.N)
	}
}

func TestCofMAdditivity(t *testing.T) {
	// Property: parent cofm equals mass-weighted child aggregate, at
	// every node (checked by Verify) and at the root against the bodies.
	bodies := nbody.Plummer(1024, 14)
	tree := Build(bodies)
	var wsum vec.V3
	for i := range bodies {
		wsum = wsum.AddScaled(bodies[i].Pos, bodies[i].Mass)
	}
	want := wsum.Scale(1 / nbody.TotalMass(bodies))
	if d := tree.Root.CofM.Sub(want).Len(); d > 1e-9 {
		t.Errorf("root cofm off by %v", d)
	}
}
