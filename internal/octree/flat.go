package octree

import (
	"fmt"
	"math"
	"math/bits"

	"upcbh/internal/arena"
	"upcbh/internal/nbody"
	"upcbh/internal/vec"
)

// This file implements the flat, arena-backed octree: the same canonical
// Barnes-Hut tree as the pointer representation (Tree/Node), stored as
// contiguous slices addressed by int32 indices, over bodies held in
// Morton-sorted structure-of-arrays views. The layout turns the force
// walk's pointer-chasing into mostly-sequential index arithmetic — the
// single-node analogue of the paper's locality theme (§5.3 caching, §5.4
// merged local builds, §6 subspaces all exist to replace scattered
// remote access with contiguous local access).
//
// Structural contract: for a given body set and root cube, the flat tree
// is node-for-node identical to the pointer tree Build produces (the
// Barnes-Hut octree is canonical — a cube is a cell iff it holds >= 2
// bodies — and both builders split with the same Octant/ChildBounds
// arithmetic), nodes appear in DFS preorder with children visited in
// octant order, and the aggregates are computed with the same operation
// order as ComputeCofM, so CofM/Mass agree bit for bit. The fuzz and
// property tests in flat_test.go pin this equivalence.

// flatMaxDepth bounds the flat build's recursion; exceeding it means
// (near-)coincident bodies the octree cannot separate, matching the
// pointer builder's panic.
const flatMaxDepth = 64

// FlatNode is the hot record of one cell: exactly the fields the force
// walk reads, packed into 48 bytes so the acceptance test streams
// through a dense array (a 16K-body tree's nodes fit in L2, where the
// 152-byte pointer Nodes do not). Everything the walk does not read
// (Center, Half, Cost, N) lives in the parallel FlatMeta array.
//
// LSq stores 4*Half*Half, the squared cell side: the acceptance test
// l*l < theta^2*d^2 becomes one load and one compare. In binary floating
// point (2h)*(2h) rounds to exactly 4*(h*h) — scaling by 4 commutes with
// rounding — so precomputing it preserves bit-identical accept decisions
// with the pointer walk's Accept.
//
// A cell's children occupy Kids[First : First+Count], in octant order.
type FlatNode struct {
	CofM  vec.V3
	Mass  float64
	LSq   float64 // (2*Half)^2, the squared side length
	First int32   // first child entry in Kids
	Count int32   // number of children (non-empty octants)
}

// FlatMeta is the cold per-cell record: build, partitioning and
// verification data the force walk never touches.
type FlatMeta struct {
	Center vec.V3
	Half   float64
	Cost   float64
	N      int32 // bodies in subtree
	_      int32
}

// PosMass is the packed per-leaf interaction record: position and mass
// in one 32-byte line-friendly struct, derived from the SoA views when a
// build finishes so a leaf interaction touches a single cache line.
type PosMass struct {
	Pos  vec.V3
	Mass float64
}

// Kid entries are tagged int32 values: a non-negative value is the index
// of a child cell in Nodes, a negative value v is a body leaf with SoA
// index -(v+1). (Node 0 is the root and is never a child, but kid slots
// are never empty either — only non-empty octants get entries — so the
// non-negative range is unambiguous.)

// FlatLeaf encodes a body index as a kid-entry value.
func FlatLeaf(body int32) int32 { return -(body + 1) }

// FlatLeafBody decodes a negative kid entry back to a body index.
func FlatLeafBody(v int32) int32 { return -v - 1 }

// FlatTree is an arena-backed octree: hot cell records in Nodes (Nodes[0]
// is the root, DFS preorder), child indices in Kids (per-cell contiguous,
// octant order), cold cell data in Meta, and bodies in the SoA view in
// DFS leaf order (= Morton order over the root cube, since Morton order
// equals child-index order). All backing arrays — nodes, kids, body
// views, sort and partition scratch, the walk stack — are retained across
// Rebuild calls, so a tree rebuilt every time-step reaches a steady state
// with zero allocations.
type FlatTree struct {
	Center vec.V3
	Half   float64

	Nodes []FlatNode
	Meta  []FlatMeta
	Kids  []int32

	// Bodies holds the body inputs in tree (DFS/Morton) order;
	// Bodies.ID[i] is the index of slot i in the slice Rebuild was given
	// (or the Body.ID when the tree was converted with FromTree).
	Bodies nbody.SoA

	// PM mirrors Bodies.Pos/Bodies.Mass as packed interaction records;
	// refreshed by PackPM after a build/conversion.
	PM []PosMass

	// Rebuild scratch, retained across steps.
	keys    []uint64
	keyTmp  []uint64
	perm    []int32
	permTmp []int32
	scatter nbody.SoA

	// Tree-owned walker for the convenience ForceOn/ForceAt entry points
	// (which are therefore not safe for concurrent use on one FlatTree —
	// concurrent walkers keep their own FlatWalker).
	walker FlatWalker

	// mem, when set via SetArena, backs all array growth: node records,
	// kid entries, packed PM records, Morton scratch and the SoA body
	// views all land in off-heap mmap memory, invisible to the GC. Every
	// element type here is pointer-free by construction.
	mem *arena.Arena
}

// SetArena directs all future growth of the tree's arrays onto a.
// Existing contents are preserved (each array migrates on its next
// growth). A nil arena reverts to Go-heap growth.
func (ft *FlatTree) SetArena(a *arena.Arena) {
	ft.mem = a
	ft.Bodies.SetArena(a)
	ft.scatter.SetArena(a)
}

// BuildFlat constructs a flat tree over bodies with the root cube derived
// from their bounding box, exactly as Build does for the pointer tree.
func BuildFlat(bodies []nbody.Body) *FlatTree {
	ft := &FlatTree{}
	ft.Rebuild(bodies)
	return ft
}

// Rebuild reconstructs the tree over bodies, reusing all arenas, and
// packs the PM interaction records for force walks.
func (ft *FlatTree) Rebuild(bodies []nbody.Body) {
	lo, hi := nbody.BoundingBox(bodies)
	center, half := nbody.RootCell(lo, hi)
	ft.RebuildWithRoot(bodies, center, half)
	ft.PackPM()
}

// RebuildWithRoot reconstructs the tree over bodies inside the given root
// cube (which must contain them), reusing all arenas. An empty body set
// yields a lone empty root cell.
//
// It does NOT refresh the packed PM records — callers that will run
// force walks must call PackPM() afterwards (Rebuild does); builders
// that only read the structure (e.g. the native merged build, which
// emits heap cells and discards the arena view) skip that pass.
func (ft *FlatTree) RebuildWithRoot(bodies []nbody.Body, center vec.V3, half float64) {
	n := len(bodies)
	ft.Center, ft.Half = center, half
	ft.Nodes = ft.Nodes[:0]
	ft.Meta = ft.Meta[:0]
	ft.Kids = ft.Kids[:0]

	// Morton-sort a permutation of the input, then gather the SoA views
	// in sorted order: the build below then streams over (nearly) final
	// memory, and the finished SoA enumerates leaves in DFS order.
	ft.ensureScratch(n)
	for i := range bodies {
		ft.keys[i] = Morton(bodies[i].Pos, center, half)
		ft.perm[i] = int32(i)
	}
	radixSortByKey(ft.keys, ft.perm, ft.keyTmp, ft.permTmp)
	ft.Bodies.Resize(n)
	for j := 0; j < n; j++ {
		i := ft.perm[j]
		b := &bodies[i]
		ft.Bodies.Set(j, b.Pos, b.Mass, b.Cost, i)
	}

	root := ft.newNode(center, half)
	ft.buildRange(root, 0, int32(n), 0)
}

// PackPM derives the packed PM interaction records from the (final) SoA
// order; the force kernels read PM, so it must run after any rebuild or
// conversion and before the first walk.
func (ft *FlatTree) PackPM() {
	n := ft.Bodies.Len()
	if cap(ft.PM) < n {
		ft.PM = arena.MakeSlice[PosMass](ft.mem, n, n)
	}
	ft.PM = ft.PM[:n]
	for i := 0; i < n; i++ {
		ft.PM[i] = PosMass{Pos: ft.Bodies.Pos[i], Mass: ft.Bodies.Mass[i]}
	}
}

func (ft *FlatTree) ensureScratch(n int) {
	if cap(ft.keys) < n {
		ft.keys = arena.MakeSlice[uint64](ft.mem, n, n)
		ft.keyTmp = arena.MakeSlice[uint64](ft.mem, n, n)
		ft.perm = arena.MakeSlice[int32](ft.mem, n, n)
		ft.permTmp = arena.MakeSlice[int32](ft.mem, n, n)
	}
	ft.keys = ft.keys[:n]
	ft.keyTmp = ft.keyTmp[:n]
	ft.perm = ft.perm[:n]
	ft.permTmp = ft.permTmp[:n]
	ft.scatter.Resize(n)
}

func (ft *FlatTree) newNode(center vec.V3, half float64) int32 {
	l := 2 * half
	ft.Nodes = arena.Append(ft.mem, ft.Nodes, FlatNode{LSq: l * l})
	ft.Meta = arena.Append(ft.mem, ft.Meta, FlatMeta{Center: center, Half: half})
	return int32(len(ft.Nodes) - 1)
}

// buildRange subdivides the body range [lo, hi) under node idx (whose
// Center/Half are set) and fills its children and aggregates. The range
// is partitioned by the same Octant test the pointer builder uses —
// Morton order already groups octants except for float-rounding edge
// cases near cell boundaries, so the stable scatter fallback almost
// never runs, but it keeps the structure exactly canonical when the
// quantized Morton grid and the geometric test disagree.
//
// Cells recurse in octant order immediately after their kid slot is
// reserved, which makes the node arena DFS preorder and each cell's kid
// entries contiguous.
func (ft *FlatTree) buildRange(idx, lo, hi int32, depth int) {
	if depth > flatMaxDepth {
		panic("octree: flat build depth limit exceeded (coincident bodies?)")
	}
	center := ft.Meta[idx].Center
	half := ft.Meta[idx].Half

	var count [8]int32
	inOrder := true
	prev := -1
	for i := lo; i < hi; i++ {
		o := Octant(center, ft.Bodies.Pos[i])
		count[o]++
		if o < prev {
			inOrder = false
		}
		prev = o
	}
	if !inOrder {
		ft.scatterRange(lo, hi, center, count)
	}

	// Reserve this cell's kid slots before recursing so they stay
	// contiguous while grandchildren append theirs.
	first := int32(len(ft.Kids))
	nkids := int32(0)
	for oct := 0; oct < 8; oct++ {
		if count[oct] > 0 {
			nkids++
		}
	}
	for k := int32(0); k < nkids; k++ {
		ft.Kids = arena.Append(ft.mem, ft.Kids, 0)
	}
	ft.Nodes[idx].First = first
	ft.Nodes[idx].Count = nkids

	ki := first
	start := lo
	for oct := 0; oct < 8; oct++ {
		cnt := count[oct]
		switch {
		case cnt == 0:
			continue
		case cnt == 1:
			ft.Kids[ki] = FlatLeaf(start)
		default:
			cc, ch := ChildBounds(center, half, oct)
			if ch <= 0 || math.IsNaN(ch) {
				panic("octree: cannot split further (coincident bodies?)")
			}
			ci := ft.newNode(cc, ch)
			ft.Kids[ki] = ci
			ft.buildRange(ci, start, start+cnt, depth+1)
		}
		ki++
		start += cnt
	}

	// Aggregate in octant order — the identical operation sequence as
	// computeCofM on the pointer tree, so the values agree bit for bit.
	var wsum vec.V3
	var mass, cost float64
	var nb int32
	for k := first; k < first+nkids; k++ {
		c := ft.Kids[k]
		if c < 0 {
			bi := FlatLeafBody(c)
			m := ft.Bodies.Mass[bi]
			wsum = wsum.AddScaled(ft.Bodies.Pos[bi], m)
			mass += m
			cost += ft.Bodies.Cost[bi]
			nb++
			continue
		}
		ch := &ft.Nodes[c]
		wsum = wsum.AddScaled(ch.CofM, ch.Mass)
		mass += ch.Mass
		cost += ft.Meta[c].Cost
		nb += ft.Meta[c].N
	}
	cofm := center
	if mass > 0 {
		cofm = wsum.Scale(1 / mass)
	}
	nd := &ft.Nodes[idx]
	nd.CofM, nd.Mass = cofm, mass
	mt := &ft.Meta[idx]
	mt.Cost, mt.N = cost, nb
}

// scatterRange stably reorders the SoA range [lo, hi) into octant groups
// (counting scatter through the scratch view, then copy back).
func (ft *FlatTree) scatterRange(lo, hi int32, center vec.V3, count [8]int32) {
	var at [8]int32
	sum := int32(0)
	for oct := 0; oct < 8; oct++ {
		at[oct] = sum
		sum += count[oct]
	}
	for i := lo; i < hi; i++ {
		o := Octant(center, ft.Bodies.Pos[i])
		ft.scatter.CopySlot(int(at[o]), &ft.Bodies, int(i))
		at[o]++
	}
	for i := lo; i < hi; i++ {
		ft.Bodies.CopySlot(int(i), &ft.scatter, int(i-lo))
	}
}

// radixSortByKey sorts (keys, perm) pairs by key: LSD radix, 8-bit
// digits, constant-byte passes skipped. Scratch slices must match the
// input length; no allocations.
func radixSortByKey(keys []uint64, perm []int32, keyTmp []uint64, permTmp []int32) {
	n := len(keys)
	if n < 2 {
		return
	}
	var count [256]int32
	src, dst := keys, keyTmp
	psrc, pdst := perm, permTmp
	swapped := false
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range src {
			count[(k>>shift)&0xff]++
		}
		if count[(src[0]>>shift)&0xff] == int32(n) {
			continue // all keys share this byte
		}
		sum := int32(0)
		for i := 0; i < 256; i++ {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for i, k := range src {
			b := (k >> shift) & 0xff
			j := count[b]
			count[b]++
			dst[j] = k
			pdst[j] = psrc[i]
		}
		src, dst = dst, src
		psrc, pdst = pdst, psrc
		swapped = !swapped
	}
	if swapped {
		copy(keys, src)
		copy(perm, psrc)
	}
}

// FlatBatchWidth is the number of bodies that share one tree traversal
// in the batched force kernel. Morton-adjacent bodies have almost
// identical walks, so one descent amortizes the node loads, kid scans
// and stack traffic across the lanes while each lane keeps its exact
// solo interaction sequence.
const FlatBatchWidth = 8

// FlatWalker is the per-walker scratch of the force kernel: the
// traversal stack and the gathered per-lane interaction lists. Many
// walkers (one per thread) can traverse one read-only FlatTree
// concurrently, each with its own FlatWalker; all buffers are retained,
// so steady-state walks perform zero allocations.
type FlatWalker struct {
	stack []kidRange
	list  [FlatBatchWidth][]PosMass
}

// kidRange is one suspended DFS frame: the kid entries [k, e) still to
// visit in some cell, and the mask of batch lanes active there. Opening
// a cell pushes the remainder of the current frame and continues into
// the child's range — one push per opened cell instead of one per child.
type kidRange struct {
	k, e int32
	mask uint32
}

// FlatBatch carries up to FlatBatchWidth force queries through one
// shared traversal: fill N, Pos and Skip, call FlatWalker.ForceBatch,
// read Acc/Phi/Inter.
type FlatBatch struct {
	N     int
	Pos   [FlatBatchWidth]vec.V3
	Skip  [FlatBatchWidth]int32 // SoA slot to exclude per lane (-1: none)
	Acc   [FlatBatchWidth]vec.V3
	Phi   [FlatBatchWidth]float64
	Inter [FlatBatchWidth]int
}

// ForceOn computes the Barnes-Hut force on the body in SoA slot `body`
// (skipping it), mirroring Tree.ForceOn: same acceptance test, same
// interaction kernel, same DFS child order, so for equal trees the
// results agree bit for bit. Zero allocations once the internal walker
// has warmed up.
func (ft *FlatTree) ForceOn(body int32, theta, eps float64) (acc vec.V3, phi float64, inter int) {
	return ft.walker.Force(ft, ft.Bodies.Pos[body], body, theta, eps)
}

// ForceAt computes the force at an arbitrary position; skip is the SoA
// slot to exclude (-1 for none). Uses the tree-owned walker; for
// concurrent walks over one tree give each goroutine its own FlatWalker.
func (ft *FlatTree) ForceAt(pos vec.V3, skip int32, theta, eps float64) (acc vec.V3, phi float64, inter int) {
	return ft.walker.Force(ft, pos, skip, theta, eps)
}

// Force is the single-body entry point: a one-lane batch.
func (w *FlatWalker) Force(ft *FlatTree, pos vec.V3, skip int32, theta, eps float64) (acc vec.V3, phi float64, inter int) {
	var b FlatBatch
	b.N = 1
	b.Pos[0] = pos
	b.Skip[0] = skip
	w.ForceBatch(ft, &b, theta, eps)
	return b.Acc[0], b.Phi[0], b.Inter[0]
}

// ForceBatch is the two-phase, batched force kernel.
//
// Phase 1 walks the tree once for all lanes with an explicit stack of
// (kid range, active-lane mask) frames, gathering each lane's accepted
// (position, mass) interaction records. A lane that accepts a cell is
// masked out of that cell's subtree only, so every lane's record list is
// exactly — in content and order — what its solo recursive walk would
// interact with; Morton-adjacent lanes share almost their whole descent,
// so node loads, kid scans and stack traffic amortize across the batch.
//
// Phase 2 streams each lane's contiguous list through the shared
// Interact kernel. Splitting the phases takes the sqrt/divide chain out
// of the shadow of the walk's data-dependent branches; because the list
// preserves the visit order, the accumulated result is bit-identical to
// the recursive pointer walk's.
func (w *FlatWalker) ForceBatch(ft *FlatTree, b *FlatBatch, theta, eps float64) {
	thetaSq := theta * theta
	nodes := ft.Nodes
	kids := ft.Kids
	pm := ft.PM
	n := b.N
	for lane := 0; lane < n; lane++ {
		b.Acc[lane] = vec.V3{}
		b.Phi[lane] = 0
		b.Inter[lane] = 0
	}
	if len(nodes) == 0 || len(kids) == 0 || n == 0 {
		return // empty tree or batch: nothing to do
	}
	epsSq := eps * eps
	pos := b.Pos // stack copy: keeps the per-node mask loop off &b
	for lane := 0; lane < n; lane++ {
		w.list[lane] = w.list[lane][:0]
	}

	// The root gets the same acceptance test the recursive walk applies
	// to it; descents below run range-at-a-time.
	root := &nodes[0]
	rem := uint32(0)
	for lane := 0; lane < n; lane++ {
		if d2 := pos[lane].Dist2(root.CofM); root.LSq < thetaSq*d2 {
			w.list[lane] = append(w.list[lane], PosMass{Pos: root.CofM, Mass: root.Mass})
		} else {
			rem |= 1 << uint(lane)
		}
	}
	if rem != 0 {
		stack := w.stack[:0]
		cur := kidRange{root.First, root.First + root.Count, rem}
		for {
			if cur.k >= cur.e {
				if len(stack) == 0 {
					break
				}
				cur = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				continue
			}
			c := kids[cur.k]
			cur.k++
			if c < 0 {
				bi := FlatLeafBody(c)
				p := pm[bi]
				for m := cur.mask; m != 0; m &= m - 1 {
					lane := bits.TrailingZeros32(m)
					if bi == b.Skip[lane] {
						continue
					}
					w.list[lane] = append(w.list[lane], p)
				}
				continue
			}
			nd := &nodes[c]
			// Inlined Accept per lane: l*l < theta^2 * d^2, in squared
			// form, with l*l precomputed as LSq. Accepting masks the lane
			// out of this subtree only — siblings keep the frame's mask.
			open := uint32(0)
			for m := cur.mask; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				d2 := pos[lane].Dist2(nd.CofM)
				if nd.LSq < thetaSq*d2 {
					w.list[lane] = append(w.list[lane], PosMass{Pos: nd.CofM, Mass: nd.Mass})
				} else {
					open |= 1 << uint(lane)
				}
			}
			if open == 0 {
				continue
			}
			// Open the cell: suspend the rest of this frame, continue in
			// the child's kid range — exactly the recursive DFS order.
			if cur.k < cur.e {
				stack = append(stack, cur)
			}
			cur = kidRange{nd.First, nd.First + nd.Count, open}
		}
		w.stack = stack[:0]
	}

	// Phase 2: stream each lane's contiguous list through the interaction
	// kernel. Phase 1 already hoisted every data-dependent branch (accept
	// tests, self-skip) out of this loop, so the body is straight-line
	// float code over packed 32-byte PosMass records: unrolled four wide
	// with scalar component accumulators, the four sqrt/divide chains per
	// iteration are independent and overlap in the hardware pipelines,
	// and nothing here needs the branch predictor. Each accumulator is
	// updated strictly in list order with the exact operation shapes of
	// nbody.InteractAccum (dx*dx+dy*dy+dz*dz+epsSq; 1/sqrt; m*inv³), so
	// the sums stay bit-identical to the recursive pointer walk's —
	// unrolling only reorders operations across *independent* chains,
	// never within an accumulator's dependency chain.
	for lane := 0; lane < n; lane++ {
		list := w.list[lane]
		p := pos[lane]
		px, py, pz := p.X, p.Y, p.Z
		var accX, accY, accZ, phi float64
		i := 0
		for ; i+4 <= len(list); i += 4 {
			q0, q1, q2, q3 := &list[i], &list[i+1], &list[i+2], &list[i+3]
			dx0, dy0, dz0 := q0.Pos.X-px, q0.Pos.Y-py, q0.Pos.Z-pz
			dx1, dy1, dz1 := q1.Pos.X-px, q1.Pos.Y-py, q1.Pos.Z-pz
			dx2, dy2, dz2 := q2.Pos.X-px, q2.Pos.Y-py, q2.Pos.Z-pz
			dx3, dy3, dz3 := q3.Pos.X-px, q3.Pos.Y-py, q3.Pos.Z-pz
			inv0 := 1 / math.Sqrt(dx0*dx0+dy0*dy0+dz0*dz0+epsSq)
			inv1 := 1 / math.Sqrt(dx1*dx1+dy1*dy1+dz1*dz1+epsSq)
			inv2 := 1 / math.Sqrt(dx2*dx2+dy2*dy2+dz2*dz2+epsSq)
			inv3 := 1 / math.Sqrt(dx3*dx3+dy3*dy3+dz3*dz3+epsSq)
			s0 := q0.Mass * inv0 * inv0 * inv0
			s1 := q1.Mass * inv1 * inv1 * inv1
			s2 := q2.Mass * inv2 * inv2 * inv2
			s3 := q3.Mass * inv3 * inv3 * inv3
			accX += dx0 * s0
			accY += dy0 * s0
			accZ += dz0 * s0
			phi += -q0.Mass * inv0
			accX += dx1 * s1
			accY += dy1 * s1
			accZ += dz1 * s1
			phi += -q1.Mass * inv1
			accX += dx2 * s2
			accY += dy2 * s2
			accZ += dz2 * s2
			phi += -q2.Mass * inv2
			accX += dx3 * s3
			accY += dy3 * s3
			accZ += dz3 * s3
			phi += -q3.Mass * inv3
		}
		for ; i < len(list); i++ {
			q := &list[i]
			dx, dy, dz := q.Pos.X-px, q.Pos.Y-py, q.Pos.Z-pz
			inv := 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+epsSq)
			s := q.Mass * inv * inv * inv
			accX += dx * s
			accY += dy * s
			accZ += dz * s
			phi += -q.Mass * inv
		}
		b.Acc[lane] = vec.V3{X: accX, Y: accY, Z: accZ}
		b.Phi[lane] = phi
		b.Inter[lane] = len(list)
	}
}

// SolveInto runs the full flat Barnes-Hut force computation and scatters
// Acc, Phi and Cost (interaction counts) back to bodies — the flat
// counterpart of Solve. The tree must have been built over bodies (so
// Bodies.ID indexes into it). Bodies are walked in Morton order in
// batches of FlatBatchWidth, so consecutive lanes share their descent.
func (ft *FlatTree) SolveInto(bodies []nbody.Body, theta, eps float64) {
	var fb FlatBatch
	n := ft.Bodies.Len()
	for j := 0; j < n; j += FlatBatchWidth {
		wdt := FlatBatchWidth
		if n-j < wdt {
			wdt = n - j
		}
		fb.N = wdt
		for lane := 0; lane < wdt; lane++ {
			fb.Pos[lane] = ft.Bodies.Pos[j+lane]
			fb.Skip[lane] = int32(j + lane)
		}
		ft.walker.ForceBatch(ft, &fb, theta, eps)
		for lane := 0; lane < wdt; lane++ {
			b := &bodies[ft.Bodies.ID[j+lane]]
			b.Acc = fb.Acc[lane]
			b.Phi = fb.Phi[lane]
			b.Cost = float64(fb.Inter[lane])
		}
	}
}

// SolveFlat is the drop-in flat equivalent of Solve: build a flat tree
// over bodies and write forces in place.
func SolveFlat(bodies []nbody.Body, theta, eps float64) {
	ft := BuildFlat(bodies)
	ft.SolveInto(bodies, theta, eps)
}

// KidOctant derives which octant of parent cell p a kid entry occupies
// (kid geometry determines it: a cell child's center, a leaf's position).
func (ft *FlatTree) KidOctant(p int32, kid int32) int {
	if kid < 0 {
		return Octant(ft.Meta[p].Center, ft.Bodies.Pos[FlatLeafBody(kid)])
	}
	return Octant(ft.Meta[p].Center, ft.Meta[kid].Center)
}

// FlatFromTree converts a pointer tree (with aggregates computed) into a
// fresh flat tree: DFS preorder, octant child order, aggregate values
// copied verbatim. Bodies.ID carries each leaf's Body.ID.
func FlatFromTree(t *Tree) *FlatTree {
	ft := &FlatTree{}
	ft.FromTree(t)
	return ft
}

// FromTree rebuilds ft from a pointer tree, reusing arenas.
func (ft *FlatTree) FromTree(t *Tree) {
	ft.Center, ft.Half = t.Root.Center, t.Root.Half
	ft.Nodes = ft.Nodes[:0]
	ft.Meta = ft.Meta[:0]
	ft.Kids = ft.Kids[:0]
	ft.Bodies.Resize(0)
	ft.convCell(t.Root)
	ft.PackPM()
}

func (ft *FlatTree) convCell(n *Node) int32 {
	idx := ft.newNode(n.Center, n.Half)
	first := int32(len(ft.Kids))
	nkids := int32(0)
	for _, ch := range n.Child {
		if ch != nil {
			nkids++
		}
	}
	for k := int32(0); k < nkids; k++ {
		ft.Kids = arena.Append(ft.mem, ft.Kids, 0)
	}
	ft.Nodes[idx].First = first
	ft.Nodes[idx].Count = nkids
	ki := first
	for _, ch := range n.Child {
		if ch == nil {
			continue
		}
		if ch.IsLeaf() {
			b := ch.Body
			bi := ft.Bodies.Len()
			ft.Bodies.Resize(bi + 1)
			ft.Bodies.Set(bi, b.Pos, b.Mass, b.Cost, b.ID)
			ft.Kids[ki] = FlatLeaf(int32(bi))
		} else {
			ft.Kids[ki] = ft.convCell(ch)
		}
		ki++
	}
	nd := &ft.Nodes[idx]
	nd.CofM, nd.Mass = n.CofM, n.Mass
	mt := &ft.Meta[idx]
	mt.Cost, mt.N = n.Cost, int32(n.N)
	return idx
}

// ToTree converts the flat tree back into a pointer tree with freshly
// allocated nodes and body records (Pos/Mass/Cost/ID populated from the
// SoA views); aggregates are copied verbatim. The result satisfies
// Tree.Verify for any structurally valid flat tree.
func (ft *FlatTree) ToTree() *Tree {
	bodies := make([]nbody.Body, ft.Bodies.Len())
	for i := range bodies {
		bodies[i] = nbody.Body{
			Pos:  ft.Bodies.Pos[i],
			Mass: ft.Bodies.Mass[i],
			Cost: ft.Bodies.Cost[i],
			ID:   ft.Bodies.ID[i],
		}
	}
	t := &Tree{Leaf: len(bodies)}
	t.Root = ft.convNode(0, bodies)
	t.Cells = len(ft.Nodes)
	return t
}

func (ft *FlatTree) convNode(idx int32, bodies []nbody.Body) *Node {
	fn := &ft.Nodes[idx]
	mt := &ft.Meta[idx]
	n := &Node{
		Center: mt.Center, Half: mt.Half,
		CofM: fn.CofM, Mass: fn.Mass, Cost: mt.Cost, N: int(mt.N),
	}
	for k := fn.First; k < fn.First+fn.Count; k++ {
		c := ft.Kids[k]
		oct := ft.KidOctant(idx, c)
		if c < 0 {
			b := &bodies[FlatLeafBody(c)]
			n.Child[oct] = &Node{
				Body: b, CofM: b.Pos, Mass: b.Mass, Cost: b.Cost, N: 1,
			}
		} else {
			n.Child[oct] = ft.convNode(c, bodies)
		}
	}
	return n
}

// Verify checks the flat tree's structural invariants and returns the
// first violation: DFS-preorder node layout, contiguous per-cell kid
// ranges in strictly increasing octant order, leaves numbered in DFS
// order, child cube nesting, body containment, additive aggregates, and
// full single-visit coverage of all three arenas.
func (ft *FlatTree) Verify() error {
	if len(ft.Nodes) == 0 {
		return fmt.Errorf("flat octree: no root node")
	}
	if len(ft.Nodes) != len(ft.Meta) {
		return fmt.Errorf("flat octree: %d nodes but %d meta records", len(ft.Nodes), len(ft.Meta))
	}
	if ft.Meta[0].Center != ft.Center || ft.Meta[0].Half != ft.Half {
		return fmt.Errorf("flat octree: root cube (%v,%g) != tree cube (%v,%g)",
			ft.Meta[0].Center, ft.Meta[0].Half, ft.Center, ft.Half)
	}
	nextNode := int32(1)
	nextBody := int32(0)
	kidsSeen := int32(0)
	var walk func(idx int32) error
	walk = func(idx int32) error {
		nd := &ft.Nodes[idx]
		mt := &ft.Meta[idx]
		if nd.Count < 0 || int(nd.First+nd.Count) > len(ft.Kids) {
			return fmt.Errorf("flat octree: cell %d kid range [%d,%d) out of bounds", idx, nd.First, nd.First+nd.Count)
		}
		kidsSeen += nd.Count
		var mass, cost float64
		var count int32
		var wsum vec.V3
		prevOct := -1
		for k := nd.First; k < nd.First+nd.Count; k++ {
			c := ft.Kids[k]
			oct := ft.KidOctant(idx, c)
			if oct <= prevOct {
				return fmt.Errorf("flat octree: cell %d kids not in strictly increasing octant order", idx)
			}
			prevOct = oct
			cc, chalf := ChildBounds(mt.Center, mt.Half, oct)
			if c < 0 {
				bi := FlatLeafBody(c)
				if bi != nextBody {
					return fmt.Errorf("flat octree: leaf body %d out of DFS order (want %d)", bi, nextBody)
				}
				nextBody++
				if !Contains(cc, chalf, ft.Bodies.Pos[bi]) {
					return fmt.Errorf("flat octree: body %d outside its octant", bi)
				}
				mass += ft.Bodies.Mass[bi]
				cost += ft.Bodies.Cost[bi]
				count++
				wsum = wsum.AddScaled(ft.Bodies.Pos[bi], ft.Bodies.Mass[bi])
				continue
			}
			if c != nextNode {
				return fmt.Errorf("flat octree: cell %d out of DFS order (want %d)", c, nextNode)
			}
			nextNode++
			ch := &ft.Nodes[c]
			cm := &ft.Meta[c]
			if cm.Center != cc || cm.Half != chalf {
				return fmt.Errorf("flat octree: child %d bounds mismatch: got (%v,%g) want (%v,%g)",
					oct, cm.Center, cm.Half, cc, chalf)
			}
			if l := 2 * cm.Half; ch.LSq != l*l {
				return fmt.Errorf("flat octree: child %d LSq %g != (2*half)^2 %g", oct, ch.LSq, l*l)
			}
			if cm.N < 2 {
				return fmt.Errorf("flat octree: non-root cell %d holds %d bodies (canonical cells hold >= 2)", c, cm.N)
			}
			if err := walk(c); err != nil {
				return err
			}
			mass += ch.Mass
			cost += cm.Cost
			count += cm.N
			wsum = wsum.AddScaled(ch.CofM, ch.Mass)
		}
		if mt.N != count {
			return fmt.Errorf("flat octree: cell %d body count %d != children sum %d", idx, mt.N, count)
		}
		if relDiff(mass, nd.Mass) > 1e-12 {
			return fmt.Errorf("flat octree: cell %d mass %g != children sum %g", idx, nd.Mass, mass)
		}
		if relDiff(cost, mt.Cost) > 1e-12 {
			return fmt.Errorf("flat octree: cell %d cost %g != children sum %g", idx, mt.Cost, cost)
		}
		if nd.Mass > 0 {
			cofm := wsum.Scale(1 / nd.Mass)
			if cofm.Sub(nd.CofM).Len() > 1e-9*(1+nd.CofM.Len()) {
				return fmt.Errorf("flat octree: cell %d cofm %v != children aggregate %v", idx, nd.CofM, cofm)
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return err
	}
	if int(nextNode) != len(ft.Nodes) {
		return fmt.Errorf("flat octree: %d of %d cells reachable", nextNode, len(ft.Nodes))
	}
	if int(nextBody) != ft.Bodies.Len() {
		return fmt.Errorf("flat octree: %d of %d bodies reachable", nextBody, ft.Bodies.Len())
	}
	if int(kidsSeen) != len(ft.Kids) {
		return fmt.Errorf("flat octree: %d of %d kid entries reachable", kidsSeen, len(ft.Kids))
	}
	return nil
}
