package octree

import (
	"math"
	"testing"

	"upcbh/internal/nbody"
	"upcbh/internal/rng"
	"upcbh/internal/vec"
)

// ulpTol is the "1 ulp-scale" relative tolerance for aggregate
// comparisons. Build paths are constructed to use the identical
// operation order, so the expected divergence is exactly zero; the
// tolerance only shields against FMA-contraction differences between
// inlined copies of the same expressions on some architectures.
const ulpTol = 1e-15

func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*(1+m)
}

func vecClose(a, b vec.V3, tol float64) bool {
	return a.Sub(b).Len() <= tol*(1+b.Len())
}

// assertFlatMatchesPointer checks full structural + aggregate equivalence
// between a flat tree and a pointer tree over the same bodies: same DFS
// node sequence, same octant child shapes, same leaf (Morton/DFS) order,
// and bit-scale-identical aggregates.
func assertFlatMatchesPointer(t *testing.T, ft *FlatTree, pt *Tree, bodies []nbody.Body) {
	t.Helper()
	if err := ft.Verify(); err != nil {
		t.Fatalf("flat Verify: %v", err)
	}
	if err := pt.Verify(); err != nil {
		t.Fatalf("pointer Verify: %v", err)
	}
	if len(ft.Nodes) != pt.Cells {
		t.Fatalf("cell count: flat %d, pointer %d", len(ft.Nodes), pt.Cells)
	}
	if ft.Bodies.Len() != pt.Leaf {
		t.Fatalf("leaf count: flat %d, pointer %d", ft.Bodies.Len(), pt.Leaf)
	}

	nextNode := int32(0)
	nextBody := int32(0)
	var walk func(pn *Node)
	walk = func(pn *Node) {
		idx := nextNode
		nextNode++
		fn := &ft.Nodes[idx]
		mt := &ft.Meta[idx]
		if mt.Center != pn.Center || mt.Half != pn.Half {
			t.Fatalf("node %d cube mismatch: flat (%v,%g) pointer (%v,%g)",
				idx, mt.Center, mt.Half, pn.Center, pn.Half)
		}
		if l := 2 * pn.Half; fn.LSq != l*l {
			t.Fatalf("node %d LSq %g != (2*half)^2 %g", idx, fn.LSq, l*l)
		}
		if !vecClose(fn.CofM, pn.CofM, ulpTol) || !relClose(fn.Mass, pn.Mass, ulpTol) ||
			!relClose(mt.Cost, pn.Cost, ulpTol) || int(mt.N) != pn.N {
			t.Fatalf("node %d aggregates mismatch: flat {cofm %v m %v c %v n %d} pointer {cofm %v m %v c %v n %d}",
				idx, fn.CofM, fn.Mass, mt.Cost, mt.N, pn.CofM, pn.Mass, pn.Cost, pn.N)
		}
		k := fn.First
		end := fn.First + fn.Count
		for oct, pch := range pn.Child {
			if pch == nil {
				continue
			}
			if k >= end {
				t.Fatalf("node %d: pointer has a child in oct %d beyond flat kid range", idx, oct)
			}
			fc := ft.Kids[k]
			if got := ft.KidOctant(idx, fc); got != oct {
				t.Fatalf("node %d kid %d: flat octant %d, pointer octant %d", idx, k, got, oct)
			}
			k++
			if pch.IsLeaf() {
				if fc >= 0 {
					t.Fatalf("node %d oct %d: flat child %d is not a leaf", idx, oct, fc)
				}
				bi := FlatLeafBody(fc)
				if bi != nextBody {
					t.Fatalf("leaf order: flat body %d, expected DFS position %d", bi, nextBody)
				}
				nextBody++
				if ft.Bodies.Pos[bi] != pch.Body.Pos || ft.Bodies.Mass[bi] != pch.Body.Mass {
					t.Fatalf("leaf %d body mismatch", bi)
				}
				// The flat leaf must refer back to the same input body.
				orig := ft.Bodies.ID[bi]
				if bodies != nil && &bodies[orig] != pch.Body {
					t.Fatalf("leaf %d maps to input body %d, pointer leaf holds a different body", bi, orig)
				}
				continue
			}
			if fc < 0 {
				t.Fatalf("node %d oct %d: flat child %d is not a cell", idx, oct, fc)
			}
			walk(pch)
		}
		if k != end {
			t.Fatalf("node %d: flat has %d extra kids beyond the pointer children", idx, end-k)
		}
	}
	walk(pt.Root)
	if int(nextNode) != len(ft.Nodes) {
		t.Fatalf("visited %d of %d flat cells", nextNode, len(ft.Nodes))
	}
}

func TestFlatMatchesPointerScenarios(t *testing.T) {
	for _, scn := range nbody.ScenarioNames() {
		for _, n := range []int{1, 2, 3, 17, 256, 2048} {
			bodies, err := nbody.GenerateScenario(scn, n, 7)
			if err != nil {
				t.Fatal(err)
			}
			pt := Build(bodies)
			ft := BuildFlat(bodies)
			t.Run(scn, func(t *testing.T) { assertFlatMatchesPointer(t, ft, pt, bodies) })
		}
	}
}

// TestFlatForceMatchesPointer pins the walk-order contract: for equal
// trees the flat kernel's accumulation sequence is identical to the
// recursive pointer walk, so forces agree to ulp scale for every body.
func TestFlatForceMatchesPointer(t *testing.T) {
	bodies := nbody.Plummer(1024, 3)
	pt := Build(bodies)
	ft := BuildFlat(bodies)
	for _, theta := range []float64{0.3, 1.0, 1.8} {
		for j := 0; j < ft.Bodies.Len(); j++ {
			orig := ft.Bodies.ID[j]
			pacc, pphi, pinter := pt.ForceOn(&bodies[orig], theta, 0.05)
			facc, fphi, finter := ft.ForceOn(int32(j), theta, 0.05)
			if finter != pinter {
				t.Fatalf("theta=%g body %d: interaction count flat %d pointer %d", theta, orig, finter, pinter)
			}
			if !vecClose(facc, pacc, ulpTol) || !relClose(fphi, pphi, ulpTol) {
				t.Fatalf("theta=%g body %d: acc flat %v pointer %v, phi flat %g pointer %g",
					theta, orig, facc, pacc, fphi, pphi)
			}
		}
	}
}

func TestSolveFlatMatchesSolve(t *testing.T) {
	ref := nbody.Plummer(512, 11)
	flat := nbody.Plummer(512, 11)
	Solve(ref, 1.0, 0.05)
	SolveFlat(flat, 1.0, 0.05)
	for i := range ref {
		if !vecClose(flat[i].Acc, ref[i].Acc, ulpTol) || !relClose(flat[i].Phi, ref[i].Phi, ulpTol) ||
			flat[i].Cost != ref[i].Cost {
			t.Fatalf("body %d: flat {acc %v phi %g cost %g} ref {acc %v phi %g cost %g}",
				i, flat[i].Acc, flat[i].Phi, flat[i].Cost, ref[i].Acc, ref[i].Phi, ref[i].Cost)
		}
	}
}

// TestFlatConversionsRoundTrip exercises FromTree/ToTree: a flat tree
// built from a pointer tree is equivalent to the directly built one, and
// converting back yields a tree that passes pointer verification with
// identical aggregates.
func TestFlatConversionsRoundTrip(t *testing.T) {
	bodies := nbody.Plummer(777, 5)
	pt := Build(bodies)
	ft := FlatFromTree(pt)
	assertFlatMatchesPointer(t, ft, pt, nil)

	back := ft.ToTree()
	if err := back.Verify(); err != nil {
		t.Fatalf("round-tripped tree Verify: %v", err)
	}
	if back.Cells != pt.Cells || back.Leaf != pt.Leaf {
		t.Fatalf("round-trip counts: got (%d,%d) want (%d,%d)", back.Cells, back.Leaf, pt.Cells, pt.Leaf)
	}
	// And the direct build equals the conversion (same canonical tree).
	ft2 := BuildFlat(bodies)
	assertFlatMatchesPointer(t, ft2, back, nil)
}

// TestFlatRebuildReusesArenas pins the arena contract: rebuilding over a
// same-sized body set allocates nothing.
func TestFlatRebuildReusesArenas(t *testing.T) {
	bodies := nbody.Plummer(2048, 9)
	ft := BuildFlat(bodies)
	allocs := testing.AllocsPerRun(10, func() {
		// Jitter positions so every rebuild does real work.
		for i := range bodies {
			bodies[i].Pos = bodies[i].Pos.AddScaled(bodies[i].Vel, 1e-3)
		}
		ft.Rebuild(bodies)
	})
	if allocs > 0 {
		t.Errorf("Rebuild allocated %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestFlatForceOnZeroAlloc is the allocation-regression gate for the hot
// kernel: after stack warmup, ForceOn performs zero allocations.
func TestFlatForceOnZeroAlloc(t *testing.T) {
	bodies := nbody.Plummer(4096, 1)
	ft := BuildFlat(bodies)
	ft.ForceOn(0, 1.0, 0.05) // warm the walk stack
	j := int32(0)
	allocs := testing.AllocsPerRun(100, func() {
		ft.ForceOn(j%int32(ft.Bodies.Len()), 1.0, 0.05)
		j++
	})
	if allocs > 0 {
		t.Errorf("flat ForceOn allocated %.1f objects/op, want 0", allocs)
	}
}

func TestRadixSortByKey(t *testing.T) {
	r := rng.New(42)
	for _, n := range []int{0, 1, 2, 3, 100, 4096} {
		keys := make([]uint64, n)
		perm := make([]int32, n)
		orig := make([]uint64, n)
		for i := range keys {
			keys[i] = r.Uint64() >> (r.Uint64() % 40) // mixed magnitudes
			orig[i] = keys[i]
			perm[i] = int32(i)
		}
		radixSortByKey(keys, perm, make([]uint64, n), make([]int32, n))
		for i := 1; i < n; i++ {
			if keys[i-1] > keys[i] {
				t.Fatalf("n=%d: keys[%d]=%d > keys[%d]=%d", n, i-1, keys[i-1], i, keys[i])
			}
		}
		for i := 0; i < n; i++ {
			if orig[perm[i]] != keys[i] {
				t.Fatalf("n=%d: perm[%d] inconsistent", n, i)
			}
		}
	}
}

// FuzzFlatEquivalence drives the property through arbitrary body sets:
// for any (separable) positions, the arena tree is structurally
// equivalent to the pointer tree, passes both verifiers, and produces
// ulp-identical forces.
func FuzzFlatEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(8), int64(0))
	f.Add(uint64(99), uint16(100), int64(1<<40))
	f.Add(uint64(7), uint16(2), int64(-12345))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16, rawBits int64) {
		n := int(nRaw)%200 + 2
		r := rng.New(seed ^ 0x9e3779b97f4a7c15)
		bodies := make([]nbody.Body, n)
		for i := range bodies {
			// Mix smooth random positions with a fuzz-controlled raw
			// coordinate to probe cell-boundary rounding.
			bodies[i].Pos = vec.V3{X: r.Range(-8, 8), Y: r.Range(-8, 8), Z: r.Range(-8, 8)}
			bodies[i].Mass = r.Range(0.1, 2)
			bodies[i].Cost = float64(r.Intn(5))
			bodies[i].ID = int32(i)
		}
		fv := math.Float64frombits(uint64(rawBits))
		if !math.IsNaN(fv) && !math.IsInf(fv, 0) && math.Abs(fv) < 8 {
			bodies[0].Pos.X = fv
		}
		// Reject coincident positions (both builders panic on them, by
		// contract).
		seen := map[vec.V3]bool{}
		for i := range bodies {
			for seen[bodies[i].Pos] {
				bodies[i].Pos.X += 1e-9 * (1 + math.Abs(bodies[i].Pos.X))
			}
			seen[bodies[i].Pos] = true
		}
		pt := Build(bodies)
		ft := BuildFlat(bodies)
		assertFlatMatchesPointer(t, ft, pt, bodies)

		// Spot-check forces on a few bodies.
		for j := 0; j < ft.Bodies.Len(); j += 17 {
			orig := ft.Bodies.ID[j]
			pacc, pphi, pinter := pt.ForceOn(&bodies[orig], 0.8, 0.05)
			facc, fphi, finter := ft.ForceOn(int32(j), 0.8, 0.05)
			if finter != pinter || !vecClose(facc, pacc, ulpTol) || !relClose(fphi, pphi, ulpTol) {
				t.Fatalf("body %d: flat force {%v %g %d} != pointer {%v %g %d}",
					orig, facc, fphi, finter, pacc, pphi, pinter)
			}
		}
	})
}

// TestForceBatchUnrollReferenceStream pins the widened phase-2 loop
// against the canonical interaction kernel: after a batch walk,
// re-streaming each lane's gathered interaction list through
// nbody.InteractAccum in list order must reproduce Acc/Phi to within
// ulpTol. The body counts and thetas sweep list lengths across the
// 4-wide unroll boundary, so every remainder 0..3 is exercised.
//
// The comparison uses ulpTol rather than exact == for the reason the
// file header documents: a reference loop compiled here is a separate
// inlined copy of the same expressions, and copies can differ by an ulp
// even though the kernel itself is deterministic. The hard bit-identity
// contract of the unroll — that it reproduces the recursive pointer
// walk exactly — is enforced by TestFlatVsPointerPerScenario and
// FuzzFlatEquivalence, which compare package-compiled code paths.
func TestForceBatchUnrollReferenceStream(t *testing.T) {
	const eps = 0.05
	epsSq := eps * eps
	for _, n := range []int{2, 3, 4, 5, 6, 7, 9, 16, 33, 257} {
		bodies := nbody.Plummer(n, uint64(n))
		ft := BuildFlat(bodies)
		var w FlatWalker
		var b FlatBatch
		for _, theta := range []float64{0.5, 1.0, 1.8} {
			for base := 0; base < ft.Bodies.Len(); base += FlatBatchWidth {
				wd := FlatBatchWidth
				if ft.Bodies.Len()-base < wd {
					wd = ft.Bodies.Len() - base
				}
				b.N = wd
				for lane := 0; lane < wd; lane++ {
					b.Pos[lane] = ft.Bodies.Pos[base+lane]
					b.Skip[lane] = int32(base + lane)
				}
				w.ForceBatch(ft, &b, theta, eps)
				// The walker retains each lane's gathered list after the
				// call; the unrolled loop must have consumed it exactly as
				// the straight-line reference stream would.
				for lane := 0; lane < wd; lane++ {
					var acc vec.V3
					var phi float64
					for _, q := range w.list[lane] {
						nbody.InteractAccum(&acc, &phi, b.Pos[lane], q.Pos, q.Mass, epsSq)
					}
					if !vecClose(b.Acc[lane], acc, ulpTol) || !relClose(b.Phi[lane], phi, ulpTol) {
						t.Fatalf("n=%d theta=%g lane %d (list len %d): batch {%v %g} != reference {%v %g}",
							n, theta, lane, len(w.list[lane]), b.Acc[lane], b.Phi[lane], acc, phi)
					}
				}
			}
		}
	}
}
