// Package octree implements the sequential Barnes-Hut octree: geometry
// helpers shared with the distributed variants (octant selection, child
// bounds, the theta acceptance test, Morton codes) plus a plain
// pointer-based tree used for local trees, reference force computation
// and invariant checking.
package octree

import (
	"fmt"
	"math"

	"upcbh/internal/nbody"
	"upcbh/internal/vec"
)

// Octant returns which of the 8 children of a cell centered at `center`
// contains point p. Bit 0 is x, bit 1 is y, bit 2 is z.
func Octant(center, p vec.V3) int {
	oct := 0
	if p.X >= center.X {
		oct |= 1
	}
	if p.Y >= center.Y {
		oct |= 2
	}
	if p.Z >= center.Z {
		oct |= 4
	}
	return oct
}

// ChildBounds returns the center and half-side of child `oct` of the cell
// (center, half).
func ChildBounds(center vec.V3, half float64, oct int) (vec.V3, float64) {
	q := half / 2
	c := center
	if oct&1 != 0 {
		c.X += q
	} else {
		c.X -= q
	}
	if oct&2 != 0 {
		c.Y += q
	} else {
		c.Y -= q
	}
	if oct&4 != 0 {
		c.Z += q
	} else {
		c.Z -= q
	}
	return c, q
}

// Accept reports whether a cell of side l = 2*half whose center of mass
// is at `cofm` is "far enough" from a body at `pos` to be used as a
// single point mass: l/d < theta, compared in squared form as SPLASH2's
// subdivp does.
func Accept(pos, cofm vec.V3, half, theta float64) bool {
	d2 := pos.Dist2(cofm)
	l := 2 * half
	return l*l < theta*theta*d2
}

// Contains reports whether p lies in the half-open cube of the cell.
func Contains(center vec.V3, half float64, p vec.V3) bool {
	return p.X >= center.X-half && p.X < center.X+half &&
		p.Y >= center.Y-half && p.Y < center.Y+half &&
		p.Z >= center.Z-half && p.Z < center.Z+half
}

// Morton returns the 63-bit Morton (Z-order) code of p within the root
// cube (center, half): 21 bits per dimension, interleaved x,y,z from the
// most significant level down. Bodies sorted by Morton code enumerate
// octree leaves in depth-first order, which is what the costzones
// partitioner and the subspace leaf ordering rely on.
func Morton(p, center vec.V3, half float64) uint64 {
	norm := func(v, c float64) uint64 {
		// Map [c-half, c+half) to [0, 2^21).
		f := (v - (c - half)) / (2 * half)
		if f < 0 {
			f = 0
		}
		if f >= 1 {
			f = math.Nextafter(1, 0)
		}
		return uint64(f * (1 << 21))
	}
	return interleave3(norm(p.X, center.X), norm(p.Y, center.Y), norm(p.Z, center.Z))
}

// interleave3 interleaves the low 21 bits of x, y, z into a 63-bit code
// with x in the least significant position of each triple, matching
// Octant's bit assignment so that Morton order equals child-index order.
func interleave3(x, y, z uint64) uint64 {
	return spread(x) | spread(y)<<1 | spread(z)<<2
}

// spread spaces the low 21 bits of v three apart (magic-number dilation).
func spread(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// Node is one node of the sequential octree: either an internal cell
// (Body == nil) or a leaf holding exactly one body.
type Node struct {
	Center vec.V3
	Half   float64
	CofM   vec.V3
	Mass   float64
	Cost   float64
	N      int
	Body   *nbody.Body
	Child  [8]*Node
}

// IsLeaf reports whether the node is a single-body leaf.
func (n *Node) IsLeaf() bool { return n.Body != nil }

// Tree is a sequential Barnes-Hut octree over a root cube.
type Tree struct {
	Root  *Node
	Cells int // number of internal cells
	Leaf  int // number of body leaves
}

// New creates an empty tree with the given root cube.
func New(center vec.V3, half float64) *Tree {
	return &Tree{Root: &Node{Center: center, Half: half}, Cells: 1}
}

// Build constructs a tree over bodies with the root cube derived from
// their bounding box.
func Build(bodies []nbody.Body) *Tree {
	lo, hi := nbody.BoundingBox(bodies)
	center, half := nbody.RootCell(lo, hi)
	t := New(center, half)
	for i := range bodies {
		t.Insert(&bodies[i])
	}
	t.ComputeCofM()
	return t
}

// Insert adds one body, splitting leaves as needed. Levels reports how
// many levels were descended (the distributed variants charge per-level
// costs from it).
func (t *Tree) Insert(b *nbody.Body) (levels int) {
	n := t.Root
	for {
		levels++
		oct := Octant(n.Center, b.Pos)
		ch := n.Child[oct]
		if ch == nil {
			n.Child[oct] = &Node{Body: b}
			t.Leaf++
			return levels
		}
		if !ch.IsLeaf() {
			n = ch
			continue
		}
		// Split the leaf: replace it with a cell and reinsert both bodies.
		old := ch.Body
		cc, chalf := ChildBounds(n.Center, n.Half, oct)
		if chalf <= 0 || math.IsNaN(chalf) {
			panic("octree: cannot split further (coincident bodies?)")
		}
		cell := &Node{Center: cc, Half: chalf}
		t.Cells++
		cell.Child[Octant(cc, old.Pos)] = ch
		n.Child[oct] = cell
		n = cell
	}
}

// ComputeCofM fills Mass, CofM, Cost and N bottom-up.
func (t *Tree) ComputeCofM() { computeCofM(t.Root) }

func computeCofM(n *Node) {
	if n.IsLeaf() {
		n.Mass = n.Body.Mass
		n.CofM = n.Body.Pos
		n.Cost = n.Body.Cost
		n.N = 1
		return
	}
	var wsum vec.V3
	n.Mass, n.Cost, n.N = 0, 0, 0
	for _, ch := range n.Child {
		if ch == nil {
			continue
		}
		computeCofM(ch)
		n.Mass += ch.Mass
		n.Cost += ch.Cost
		n.N += ch.N
		wsum = wsum.AddScaled(ch.CofM, ch.Mass)
	}
	if n.Mass > 0 {
		n.CofM = wsum.Scale(1 / n.Mass)
	} else {
		n.CofM = n.Center
	}
}

// ForceOn computes the Barnes-Hut force on body b (skipping b itself),
// returning acceleration, potential, and the number of interactions.
func (t *Tree) ForceOn(b *nbody.Body, theta, eps float64) (acc vec.V3, phi float64, inter int) {
	epsSq := eps * eps
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.N == 0 && !n.IsLeaf() {
			return
		}
		if n.IsLeaf() {
			if n.Body == b {
				return
			}
			da, dp := nbody.Interact(b.Pos, n.Body.Pos, n.Body.Mass, epsSq)
			acc = acc.Add(da)
			phi += dp
			inter++
			return
		}
		if Accept(b.Pos, n.CofM, n.Half, theta) {
			da, dp := nbody.Interact(b.Pos, n.CofM, n.Mass, epsSq)
			acc = acc.Add(da)
			phi += dp
			inter++
			return
		}
		for _, ch := range n.Child {
			if ch != nil {
				walk(ch)
			}
		}
	}
	walk(t.Root)
	return acc, phi, inter
}

// Solve runs a full reference Barnes-Hut force computation over bodies,
// writing Acc, Phi and Cost (interaction counts) in place.
func Solve(bodies []nbody.Body, theta, eps float64) {
	t := Build(bodies)
	for i := range bodies {
		acc, phi, inter := t.ForceOn(&bodies[i], theta, eps)
		bodies[i].Acc = acc
		bodies[i].Phi = phi
		bodies[i].Cost = float64(inter)
	}
}

// Verify checks structural invariants and returns the first violation:
// child cubes nest correctly, every body lies in its enclosing cells,
// masses and body counts are additive, and leaves hold exactly one body.
func (t *Tree) Verify() error { return verify(t.Root, true) }

func verify(n *Node, isRoot bool) error {
	if n.IsLeaf() {
		for _, ch := range n.Child {
			if ch != nil {
				return fmt.Errorf("octree: leaf with children")
			}
		}
		return nil
	}
	var mass float64
	var count int
	var wsum vec.V3
	for oct, ch := range n.Child {
		if ch == nil {
			continue
		}
		cc, chalf := ChildBounds(n.Center, n.Half, oct)
		if !ch.IsLeaf() {
			if ch.Center != cc || ch.Half != chalf {
				return fmt.Errorf("octree: child %d bounds mismatch: got (%v,%g) want (%v,%g)",
					oct, ch.Center, ch.Half, cc, chalf)
			}
		} else if !Contains(cc, chalf, ch.Body.Pos) {
			return fmt.Errorf("octree: body %d outside its octant", ch.Body.ID)
		}
		if err := verify(ch, false); err != nil {
			return err
		}
		mass += ch.Mass
		count += ch.N
		wsum = wsum.AddScaled(ch.CofM, ch.Mass)
	}
	if n.N != count {
		return fmt.Errorf("octree: cell body count %d != children sum %d", n.N, count)
	}
	if relDiff(mass, n.Mass) > 1e-12 {
		return fmt.Errorf("octree: cell mass %g != children sum %g", n.Mass, mass)
	}
	if n.Mass > 0 {
		cofm := wsum.Scale(1 / n.Mass)
		if cofm.Sub(n.CofM).Len() > 1e-9*(1+n.CofM.Len()) {
			return fmt.Errorf("octree: cell cofm %v != children aggregate %v", n.CofM, cofm)
		}
	}
	_ = isRoot
	return nil
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}
