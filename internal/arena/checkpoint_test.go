package arena

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func sampleRegions() []NamedRegion {
	return []NamedRegion{
		{Name: "state", Data: []byte(`{"step":3}`)}, // 10 bytes: forces padding
		{Name: "heap", Data: bytes.Repeat([]byte{0xab}, 1000)},
		{Name: "refs", Data: []byte{}},
		{Name: "tail", Data: []byte{1, 2, 3}},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	env := json.RawMessage(`{"goos":"linux"}`)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, "key=abc", 3, env, sampleRegions()); err != nil {
		t.Fatal(err)
	}
	c, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c.Header.Key != "key=abc" || c.Header.Step != 3 || c.Header.Version != Version {
		t.Fatalf("header mismatch: %+v", c.Header)
	}
	if string(c.Header.Env) != `{"goos":"linux"}` {
		t.Fatalf("env mismatch: %s", c.Header.Env)
	}
	for _, want := range sampleRegions() {
		got, ok := c.Region(want.Name)
		if !ok {
			t.Fatalf("region %q missing", want.Name)
		}
		if !bytes.Equal(got, want.Data) {
			t.Fatalf("region %q: got %d bytes, want %d", want.Name, len(got), len(want.Data))
		}
	}
	// Region offsets must be 8-aligned.
	for _, r := range c.Header.Regions {
		if r.Off%8 != 0 {
			t.Fatalf("region %q offset %d not 8-aligned", r.Name, r.Off)
		}
	}
}

// TestFileCheckpointByteIdentical pins the tentpole contract: the
// streaming writer and the mmap/msync writer produce the same bytes.
func TestFileCheckpointByteIdentical(t *testing.T) {
	env := json.RawMessage(`{"goos":"linux"}`)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, "k", 7, env, sampleRegions()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := WriteFileCheckpoint(path, "k", 7, env, sampleRegions()); err != nil {
		t.Fatal(err)
	}
	fileBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), fileBytes) {
		t.Fatalf("stream (%d bytes) and mmap (%d bytes) checkpoints differ", buf.Len(), len(fileBytes))
	}
	if _, err := ReadCheckpoint(bytes.NewReader(fileBytes)); err != nil {
		t.Fatal(err)
	}
}

func corruptCase(t *testing.T, mutate func([]byte) []byte, wantSub string) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, "k", 1, nil, sampleRegions()); err != nil {
		t.Fatal(err)
	}
	_, err := ReadCheckpoint(bytes.NewReader(mutate(buf.Bytes())))
	if err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestCheckpointRejectsBadMagic(t *testing.T) {
	corruptCase(t, func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic")
}

func TestCheckpointRejectsVersionMismatch(t *testing.T) {
	corruptCase(t, func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], Version+1)
		return b
	}, "unsupported checkpoint version")
}

func TestCheckpointRejectsTruncation(t *testing.T) {
	corruptCase(t, func(b []byte) []byte { return b[:len(b)-5] }, "truncated")
	corruptCase(t, func(b []byte) []byte { return b[:10] }, "truncated")
	corruptCase(t, func(b []byte) []byte { return b[:20] }, "truncated")
}

func TestCheckpointRejectsPayloadCorruption(t *testing.T) {
	corruptCase(t, func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, "CRC")
}

func TestCheckpointRejectsImplausibleHeaderLen(t *testing.T) {
	corruptCase(t, func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[12:], maxHeaderLen+1)
		return b
	}, "header length")
}

func TestCheckpointRejectsGarbageHeader(t *testing.T) {
	corruptCase(t, func(b []byte) []byte {
		for i := preambleLen; i < preambleLen+8; i++ {
			b[i] = 0xfe
		}
		return b
	}, "corrupt checkpoint header")
}

func TestCheckpointEmptyInput(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestCheckpointHugePayloadLenNoUpfrontAlloc pins the defense against a
// tiny crafted header advertising an enormous payload: the reader must
// fail with a truncation error after reading only what was actually
// sent, not allocate the advertised length up front (which could OOM
// the process before the first payload byte is read).
func TestCheckpointHugePayloadLenNoUpfrontAlloc(t *testing.T) {
	craft := func(payloadLen int64) []byte {
		hdr, err := json.Marshal(Header{Version: Version, Key: "k", PayloadLen: payloadLen})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.WriteString(Magic)
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], Version)
		buf.Write(u32[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(len(hdr)))
		buf.Write(u32[:])
		buf.Write(hdr)
		buf.Write(make([]byte, roundUp(buf.Len(), 8)-buf.Len()))
		return buf.Bytes()
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err := ReadCheckpoint(bytes.NewReader(craft(maxPayloadLen)))
	runtime.ReadMemStats(&after)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("huge advertised payload: got %v, want truncation error", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Errorf("reader allocated %d bytes for a header-only input", grew)
	}

	if _, err := ReadCheckpoint(bytes.NewReader(craft(maxPayloadLen + 1))); err == nil ||
		!strings.Contains(err.Error(), "implausible") {
		t.Fatalf("over-limit payload length: got %v, want implausible-length error", err)
	}
	if _, err := ReadCheckpoint(bytes.NewReader(craft(-1))); err == nil ||
		!strings.Contains(err.Error(), "implausible") {
		t.Fatalf("negative payload length: got %v, want implausible-length error", err)
	}
}

// TestFileCheckpointAtomic pins the durability contract's visible
// half: a successful write leaves no temp file behind, and overwriting
// an existing container goes through rename (the old contents are
// never truncated in place — at every instant the path holds one
// complete container).
func TestFileCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := WriteFileCheckpoint(path, "k", 1, nil, sampleRegions()); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a different step: must succeed and replace.
	if err := WriteFileCheckpoint(path, "k", 2, nil, sampleRegions()); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after a successful write", e.Name())
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := ReadCheckpoint(f)
	if err != nil {
		t.Fatal(err)
	}
	if c.Header.Step != 2 {
		t.Fatalf("replaced container carries step %d, want 2", c.Header.Step)
	}
}

// TestFileCheckpointFailureKeepsPrevious: when the write cannot
// complete (here: the temp path is a directory, so Create fails), the
// previous container at path is untouched.
func TestFileCheckpointFailureKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := WriteFileCheckpoint(path, "k", 5, nil, sampleRegions()); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileCheckpoint(path, "k", 6, nil, sampleRegions()); err == nil {
		t.Fatal("write through a blocked temp path succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed write perturbed the previous container")
	}
}

// TestPeekHeader: the header-only parse returns the container's claim
// without touching the payload, and rejects the same malformed
// preambles/headers ReadCheckpoint does.
func TestPeekHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, "peek-key", 9, nil, sampleRegions()); err != nil {
		t.Fatal(err)
	}
	h, err := PeekHeader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h.Key != "peek-key" || h.Step != 9 {
		t.Fatalf("PeekHeader = %q step %d", h.Key, h.Step)
	}
	// A corrupted payload does not bother PeekHeader (it never reads it)...
	raw := append([]byte{}, buf.Bytes()...)
	raw[len(raw)-1] ^= 0xFF
	if _, err := PeekHeader(raw); err != nil {
		t.Fatalf("payload corruption failed the header peek: %v", err)
	}
	// ...but a truncated header or bad magic is rejected.
	if _, err := PeekHeader(raw[:10]); err == nil {
		t.Fatal("truncated preamble accepted")
	}
	raw[0] = 'X'
	if _, err := PeekHeader(raw); err == nil {
		t.Fatal("bad magic accepted")
	}
}
