package arena

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

func TestMakeSliceOnArena(t *testing.T) {
	a, err := New(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	s := MakeSlice[float64](a, 4, 100)
	if len(s) != 4 || cap(s) != 100 {
		t.Fatalf("len/cap = %d/%d, want 4/100", len(s), cap(s))
	}
	for i := range s {
		if s[i] != 0 {
			t.Fatalf("arena slice not zeroed at %d", i)
		}
	}
	// The backing memory must be inside the mapping.
	base := uintptr(unsafe.Pointer(&a.mem[0]))
	p := uintptr(unsafe.Pointer(&s[0]))
	if p < base || p >= base+uintptr(len(a.mem)) {
		t.Fatal("MakeSlice returned memory outside the arena")
	}
	if a.Used() < 100*8 {
		t.Fatalf("Used() = %d after a 100-float64 allocation", a.Used())
	}
}

func TestMakeSliceHeapFallback(t *testing.T) {
	// nil arena: plain make semantics.
	s := MakeSlice[int32](nil, 3, 10)
	if len(s) != 3 || cap(s) != 10 {
		t.Fatalf("nil-arena len/cap = %d/%d", len(s), cap(s))
	}
	// Exhausted arena: same.
	a, err := New(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	big := MakeSlice[int64](a, 0, 10*pageSize)
	if cap(big) != 10*pageSize {
		t.Fatalf("fallback cap = %d", cap(big))
	}
}

func TestAppendGrowsThroughArena(t *testing.T) {
	a, err := New(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var s []int32
	for i := int32(0); i < 1000; i++ {
		s = Append(a, s, i)
	}
	if len(s) != 1000 {
		t.Fatalf("len = %d", len(s))
	}
	for i, v := range s {
		if v != int32(i) {
			t.Fatalf("s[%d] = %d", i, v)
		}
	}
	base := uintptr(unsafe.Pointer(&a.mem[0]))
	p := uintptr(unsafe.Pointer(&s[0]))
	if p < base || p >= base+uintptr(len(a.mem)) {
		t.Fatal("Append growth did not land on the arena")
	}
}

func TestGrow(t *testing.T) {
	a, err := New(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	s := MakeSlice[uint64](a, 2, 2)
	s[0], s[1] = 7, 9
	g := Grow(a, s, 500)
	if len(g) != 2 || cap(g) < 500 || g[0] != 7 || g[1] != 9 {
		t.Fatalf("Grow lost state: len %d cap %d vals %v", len(g), cap(g), g[:2])
	}
	if same := Grow(a, g, 10); &same[0] != &g[0] {
		t.Fatal("Grow reallocated despite sufficient capacity")
	}
}

func TestPointerTypeRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakeSlice accepted a pointer-bearing element type")
		}
	}()
	type bad struct{ p *int }
	MakeSlice[bad](nil, 0, 1)
}

func TestAlignment(t *testing.T) {
	a, err := New(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	_ = MakeSlice[byte](a, 3, 3) // misalign the bump pointer
	s := MakeSlice[float64](a, 1, 1)
	if p := uintptr(unsafe.Pointer(&s[0])); p%8 != 0 {
		t.Fatalf("float64 slice misaligned: %#x", p)
	}
}

func TestFileBackedSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.bin")
	a, err := Create(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s := MakeSlice[uint32](a, 4, 4)
	copy(s, []uint32{0xdeadbeef, 1, 2, 3})
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// The msync'd pages must be durable in the file after unmap.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(data); got != 0xdeadbeef {
		t.Fatalf("file-backed write not persisted: first word %#x", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	a, err := New(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	var nilA *Arena
	if err := nilA.Close(); err != nil {
		t.Fatal(err)
	}
	if nilA.Sync() != nil {
		t.Fatal("nil Sync should be a no-op")
	}
}
