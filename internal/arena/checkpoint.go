package arena

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Checkpoint file format (DESIGN.md §13):
//
//	offset 0   magic    "UPCBHCKP" (8 bytes)
//	offset 8   version  uint32 LE
//	offset 12  hdrLen   uint32 LE
//	offset 16  header   hdrLen bytes of JSON (Header below)
//	           padding  zero bytes to the next 8-byte boundary
//	           payload  Header.PayloadLen bytes
//
// The payload is the concatenation of named regions, each starting at
// an 8-byte-aligned offset *relative to the payload start* (so the
// header's self-describing length cannot perturb region offsets), with
// zero padding between them. Header.CRC is CRC-32C (Castagnoli) over
// the entire payload including padding.
//
// The same bytes come out of the streaming writer (WriteCheckpoint)
// and the mmap/msync writer (WriteFileCheckpoint); a test pins the two
// byte-identical.

// Magic identifies a checkpoint file.
const Magic = "UPCBHCKP"

// Version is the current layout version; readers reject anything else.
const Version = 1

// maxHeaderLen / maxPayloadLen bound what a reader will accept while
// parsing, so a corrupt length field cannot OOM the process. The
// payload bound is generous next to any realistic checkpoint (a
// million-body run captures on the order of 100 MB), and the reader
// additionally grows its buffer only as payload bytes actually arrive
// (readPayload), so a tiny crafted header advertising the maximum
// cannot force the allocation up front.
const (
	maxHeaderLen  = 1 << 20
	maxPayloadLen = 1 << 33
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Region names one contiguous byte range of the payload.
type Region struct {
	Name string `json:"name"`
	Off  int64  `json:"off"` // relative to payload start; 8-aligned
	Len  int64  `json:"len"`
}

// Header is the JSON header of a checkpoint: enough to identify what
// simulation state follows and to validate it before touching any of
// it.
type Header struct {
	Version    uint32          `json:"version"`
	Key        string          `json:"key"`  // core.Options.Key() of the checkpointed run
	Step       int             `json:"step"` // steps completed at checkpoint time
	Env        json.RawMessage `json:"env,omitempty"`
	Regions    []Region        `json:"regions"`
	PayloadLen int64           `json:"payload_len"`
	CRC        uint32          `json:"crc"` // CRC-32C over the payload
}

// NamedRegion is one region handed to a writer.
type NamedRegion struct {
	Name string
	Data []byte
}

// Checkpoint is a parsed, validated checkpoint.
type Checkpoint struct {
	Header  Header
	regions map[string][]byte
}

// Region returns the named payload region.
func (c *Checkpoint) Region(name string) ([]byte, bool) {
	b, ok := c.regions[name]
	return b, ok
}

const preambleLen = 16 // magic + version + hdrLen

// buildHeader lays the regions out in the payload and returns the
// finished header plus the encoded header JSON.
func buildHeader(key string, step int, env json.RawMessage, regions []NamedRegion) (Header, []byte, error) {
	h := Header{Version: Version, Key: key, Step: step, Env: env}
	var off int64
	for _, r := range regions {
		off = int64(roundUp(int(off), 8))
		h.Regions = append(h.Regions, Region{Name: r.Name, Off: off, Len: int64(len(r.Data))})
		off += int64(len(r.Data))
	}
	h.PayloadLen = off
	crc := crc32.New(crcTable)
	writePayload(crc, h.Regions, regions)
	h.CRC = crc.Sum32()
	hdr, err := json.Marshal(h)
	if err != nil {
		return Header{}, nil, fmt.Errorf("arena: encode checkpoint header: %w", err)
	}
	if len(hdr) > maxHeaderLen {
		return Header{}, nil, fmt.Errorf("arena: checkpoint header %d bytes exceeds limit %d", len(hdr), maxHeaderLen)
	}
	return h, hdr, nil
}

// writePayload streams regions with their alignment padding to w.
// w is a hasher or a real sink; both never error for our writers'
// destinations, so errors surface from the callers' final flush.
func writePayload(w io.Writer, layout []Region, regions []NamedRegion) {
	var pad [8]byte
	var off int64
	for i, r := range regions {
		if gap := layout[i].Off - off; gap > 0 {
			w.Write(pad[:gap])
			off += gap
		}
		w.Write(r.Data)
		off += int64(len(r.Data))
	}
}

// WriteCheckpoint serializes a checkpoint to w (the streaming path:
// heap-backed state, HTTP responses, pipes).
func WriteCheckpoint(w io.Writer, key string, step int, env json.RawMessage, regions []NamedRegion) error {
	h, hdr, err := buildHeader(key, step, env, regions)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(Magic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], Version)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(hdr)))
	buf.Write(u32[:])
	buf.Write(hdr)
	if pad := roundUp(buf.Len(), 8) - buf.Len(); pad > 0 {
		buf.Write(make([]byte, pad))
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("arena: write checkpoint: %w", err)
	}
	cw := &countingWriter{w: w}
	writePayload(cw, h.Regions, regions)
	if cw.err != nil {
		return fmt.Errorf("arena: write checkpoint payload: %w", cw.err)
	}
	return nil
}

type countingWriter struct {
	w   io.Writer
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.err = err
	return n, err
}

// WriteFileCheckpoint writes the identical bytes through a file-backed
// mmap: map the file, copy the preamble/header/regions into the
// mapping, msync, and trim the page-rounded tail so the file matches
// the streaming writer byte for byte. This is the zero-copy path a
// file-backed simulation arena would take (the pages are already
// resident; msync makes them durable).
//
// Durability contract: the container is assembled at a temporary name
// next to path and published by rename only after its data (msync +
// fsync, covering the post-trim file length) is on stable storage,
// followed by an fsync of the directory. When WriteFileCheckpoint
// returns nil, the complete container is durable at path; if the
// writer crashes (or the disk fails) at any earlier point, path either
// does not exist or still holds its previous complete contents — a
// truncated or torn container can never appear at path. The temporary
// file (path + ".tmp") may survive a crash; it is dead weight, not a
// hazard, and a rerun replaces it.
func WriteFileCheckpoint(path, key string, step int, env json.RawMessage, regions []NamedRegion) error {
	h, hdr, err := buildHeader(key, step, env, regions)
	if err != nil {
		return err
	}
	payloadStart := roundUp(preambleLen+len(hdr), 8)
	total := payloadStart + int(h.PayloadLen)
	tmp := path + ".tmp"
	a, err := Create(tmp, total)
	if err != nil {
		return err
	}
	mem := a.Bytes()
	copy(mem, Magic)
	binary.LittleEndian.PutUint32(mem[8:], Version)
	binary.LittleEndian.PutUint32(mem[12:], uint32(len(hdr)))
	copy(mem[preambleLen:], hdr)
	for i, r := range regions {
		copy(mem[payloadStart+int(h.Regions[i].Off):], r.Data)
	}
	if err := a.Sync(); err != nil {
		a.Close()
		return abortTmp(tmp, err)
	}
	if err := a.Close(); err != nil {
		return abortTmp(tmp, fmt.Errorf("arena: unmap checkpoint %s: %w", tmp, err))
	}
	if err := os.Truncate(tmp, int64(total)); err != nil {
		return abortTmp(tmp, fmt.Errorf("arena: trim checkpoint %s: %w", tmp, err))
	}
	// msync flushed the mapped pages, but the trim changed the inode's
	// length after the unmap: fsync the file so the final geometry (and
	// any page the kernel had not yet written back) is durable before
	// the rename makes it visible.
	if err := fsyncFile(tmp); err != nil {
		return abortTmp(tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return abortTmp(tmp, fmt.Errorf("arena: publish checkpoint %s: %w", path, err))
	}
	return fsyncDir(filepath.Dir(path))
}

func abortTmp(tmp string, err error) error {
	os.Remove(tmp)
	return err
}

func fsyncFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("arena: reopen checkpoint %s for fsync: %w", path, err)
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return fmt.Errorf("arena: fsync checkpoint %s: %w", path, serr)
	}
	if cerr != nil {
		return fmt.Errorf("arena: close checkpoint %s: %w", path, cerr)
	}
	return nil
}

func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("arena: open checkpoint directory %s: %w", dir, err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("arena: fsync checkpoint directory %s: %w", dir, serr)
	}
	return cerr
}

// readHeader parses and validates the preamble plus JSON header from
// r, leaving r positioned at the payload (header padding consumed).
func readHeader(r io.Reader) (Header, error) {
	var pre [preambleLen]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return Header{}, fmt.Errorf("arena: checkpoint truncated reading preamble: %w", err)
	}
	if string(pre[:8]) != Magic {
		return Header{}, fmt.Errorf("arena: not a checkpoint (bad magic %q)", pre[:8])
	}
	ver := binary.LittleEndian.Uint32(pre[8:12])
	if ver != Version {
		return Header{}, fmt.Errorf("arena: unsupported checkpoint version %d (this build reads version %d)", ver, Version)
	}
	hdrLen := binary.LittleEndian.Uint32(pre[12:16])
	if hdrLen == 0 || hdrLen > maxHeaderLen {
		return Header{}, fmt.Errorf("arena: implausible checkpoint header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Header{}, fmt.Errorf("arena: checkpoint truncated reading header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(hdr, &h); err != nil {
		return Header{}, fmt.Errorf("arena: corrupt checkpoint header: %w", err)
	}
	if h.Version != ver {
		return Header{}, fmt.Errorf("arena: checkpoint header version %d disagrees with preamble %d", h.Version, ver)
	}
	if h.PayloadLen < 0 || h.PayloadLen > maxPayloadLen {
		return Header{}, fmt.Errorf("arena: implausible checkpoint payload length %d", h.PayloadLen)
	}
	if pad := roundUp(preambleLen+int(hdrLen), 8) - (preambleLen + int(hdrLen)); pad > 0 {
		if _, err := io.CopyN(io.Discard, r, int64(pad)); err != nil {
			return Header{}, fmt.Errorf("arena: checkpoint truncated reading header padding: %w", err)
		}
	}
	return h, nil
}

// PeekHeader parses and validates just the header of the container in
// data — magic, version, header shape — without reading or
// CRC-checking the payload. It answers "what key and step does this
// container claim?" cheaply (the store's restore-dedup path); the
// claim is only trusted after a full ReadCheckpoint.
func PeekHeader(data []byte) (Header, error) {
	return readHeader(bytes.NewReader(data))
}

// ReadCheckpoint parses and validates a checkpoint from r: magic,
// version, header shape, region bounds, and payload CRC all checked
// before any region is handed to the caller. Corrupt or truncated
// input yields a descriptive error, never a panic.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	payload, err := readPayload(r, h.PayloadLen)
	if err != nil {
		return nil, err
	}
	if crc := crc32.Checksum(payload, crcTable); crc != h.CRC {
		return nil, fmt.Errorf("arena: checkpoint payload corrupt: CRC %08x, header says %08x", crc, h.CRC)
	}
	c := &Checkpoint{Header: h, regions: make(map[string][]byte, len(h.Regions))}
	for _, reg := range h.Regions {
		if reg.Off < 0 || reg.Len < 0 || reg.Off+reg.Len > h.PayloadLen {
			return nil, fmt.Errorf("arena: checkpoint region %q out of bounds (off %d len %d payload %d)",
				reg.Name, reg.Off, reg.Len, h.PayloadLen)
		}
		c.regions[reg.Name] = payload[reg.Off : reg.Off+reg.Len : reg.Off+reg.Len]
	}
	return c, nil
}

// readPayload reads exactly n payload bytes from r, doubling the buffer
// as bytes arrive rather than trusting the header's advertised length
// with one up-front allocation: memory committed never exceeds twice
// the bytes actually received, so a truncated or crafted stream fails
// at the size it transmitted, not the size it claimed.
func readPayload(r io.Reader, n int64) ([]byte, error) {
	const initialAlloc = 16 << 20
	capNow := n
	if capNow > initialAlloc {
		capNow = initialAlloc
	}
	payload := make([]byte, 0, capNow)
	for int64(len(payload)) < n {
		if len(payload) == cap(payload) {
			next := int64(cap(payload)) * 2
			if next > n {
				next = n
			}
			grown := make([]byte, len(payload), next)
			copy(grown, payload)
			payload = grown
		}
		prev := len(payload)
		payload = payload[:cap(payload)]
		if _, err := io.ReadFull(r, payload[prev:]); err != nil {
			return nil, fmt.Errorf("arena: checkpoint truncated reading payload (%d of %d bytes): %w", prev, n, err)
		}
	}
	return payload, nil
}
