package arena

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Checkpoint file format (DESIGN.md §13):
//
//	offset 0   magic    "UPCBHCKP" (8 bytes)
//	offset 8   version  uint32 LE
//	offset 12  hdrLen   uint32 LE
//	offset 16  header   hdrLen bytes of JSON (Header below)
//	           padding  zero bytes to the next 8-byte boundary
//	           payload  Header.PayloadLen bytes
//
// The payload is the concatenation of named regions, each starting at
// an 8-byte-aligned offset *relative to the payload start* (so the
// header's self-describing length cannot perturb region offsets), with
// zero padding between them. Header.CRC is CRC-32C (Castagnoli) over
// the entire payload including padding.
//
// The same bytes come out of the streaming writer (WriteCheckpoint)
// and the mmap/msync writer (WriteFileCheckpoint); a test pins the two
// byte-identical.

// Magic identifies a checkpoint file.
const Magic = "UPCBHCKP"

// Version is the current layout version; readers reject anything else.
const Version = 1

// maxHeaderLen / maxPayloadLen bound what a reader will accept while
// parsing, so a corrupt length field cannot OOM the process. The
// payload bound is generous next to any realistic checkpoint (a
// million-body run captures on the order of 100 MB), and the reader
// additionally grows its buffer only as payload bytes actually arrive
// (readPayload), so a tiny crafted header advertising the maximum
// cannot force the allocation up front.
const (
	maxHeaderLen  = 1 << 20
	maxPayloadLen = 1 << 33
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Region names one contiguous byte range of the payload.
type Region struct {
	Name string `json:"name"`
	Off  int64  `json:"off"` // relative to payload start; 8-aligned
	Len  int64  `json:"len"`
}

// Header is the JSON header of a checkpoint: enough to identify what
// simulation state follows and to validate it before touching any of
// it.
type Header struct {
	Version    uint32          `json:"version"`
	Key        string          `json:"key"`  // core.Options.Key() of the checkpointed run
	Step       int             `json:"step"` // steps completed at checkpoint time
	Env        json.RawMessage `json:"env,omitempty"`
	Regions    []Region        `json:"regions"`
	PayloadLen int64           `json:"payload_len"`
	CRC        uint32          `json:"crc"` // CRC-32C over the payload
}

// NamedRegion is one region handed to a writer.
type NamedRegion struct {
	Name string
	Data []byte
}

// Checkpoint is a parsed, validated checkpoint.
type Checkpoint struct {
	Header  Header
	regions map[string][]byte
}

// Region returns the named payload region.
func (c *Checkpoint) Region(name string) ([]byte, bool) {
	b, ok := c.regions[name]
	return b, ok
}

const preambleLen = 16 // magic + version + hdrLen

// buildHeader lays the regions out in the payload and returns the
// finished header plus the encoded header JSON.
func buildHeader(key string, step int, env json.RawMessage, regions []NamedRegion) (Header, []byte, error) {
	h := Header{Version: Version, Key: key, Step: step, Env: env}
	var off int64
	for _, r := range regions {
		off = int64(roundUp(int(off), 8))
		h.Regions = append(h.Regions, Region{Name: r.Name, Off: off, Len: int64(len(r.Data))})
		off += int64(len(r.Data))
	}
	h.PayloadLen = off
	crc := crc32.New(crcTable)
	writePayload(crc, h.Regions, regions)
	h.CRC = crc.Sum32()
	hdr, err := json.Marshal(h)
	if err != nil {
		return Header{}, nil, fmt.Errorf("arena: encode checkpoint header: %w", err)
	}
	if len(hdr) > maxHeaderLen {
		return Header{}, nil, fmt.Errorf("arena: checkpoint header %d bytes exceeds limit %d", len(hdr), maxHeaderLen)
	}
	return h, hdr, nil
}

// writePayload streams regions with their alignment padding to w.
// w is a hasher or a real sink; both never error for our writers'
// destinations, so errors surface from the callers' final flush.
func writePayload(w io.Writer, layout []Region, regions []NamedRegion) {
	var pad [8]byte
	var off int64
	for i, r := range regions {
		if gap := layout[i].Off - off; gap > 0 {
			w.Write(pad[:gap])
			off += gap
		}
		w.Write(r.Data)
		off += int64(len(r.Data))
	}
}

// WriteCheckpoint serializes a checkpoint to w (the streaming path:
// heap-backed state, HTTP responses, pipes).
func WriteCheckpoint(w io.Writer, key string, step int, env json.RawMessage, regions []NamedRegion) error {
	h, hdr, err := buildHeader(key, step, env, regions)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(Magic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], Version)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(hdr)))
	buf.Write(u32[:])
	buf.Write(hdr)
	if pad := roundUp(buf.Len(), 8) - buf.Len(); pad > 0 {
		buf.Write(make([]byte, pad))
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("arena: write checkpoint: %w", err)
	}
	cw := &countingWriter{w: w}
	writePayload(cw, h.Regions, regions)
	if cw.err != nil {
		return fmt.Errorf("arena: write checkpoint payload: %w", cw.err)
	}
	return nil
}

type countingWriter struct {
	w   io.Writer
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.err = err
	return n, err
}

// WriteFileCheckpoint writes the identical bytes through a file-backed
// mmap: map the file, copy the preamble/header/regions into the
// mapping, msync, unmap, and trim the page-rounded tail so the file
// matches the streaming writer byte for byte. This is the zero-copy
// path a file-backed simulation arena would take (the pages are
// already resident; msync + header write makes them durable).
func WriteFileCheckpoint(path, key string, step int, env json.RawMessage, regions []NamedRegion) error {
	h, hdr, err := buildHeader(key, step, env, regions)
	if err != nil {
		return err
	}
	payloadStart := roundUp(preambleLen+len(hdr), 8)
	total := payloadStart + int(h.PayloadLen)
	a, err := Create(path, total)
	if err != nil {
		return err
	}
	mem := a.Bytes()
	copy(mem, Magic)
	binary.LittleEndian.PutUint32(mem[8:], Version)
	binary.LittleEndian.PutUint32(mem[12:], uint32(len(hdr)))
	copy(mem[preambleLen:], hdr)
	for i, r := range regions {
		copy(mem[payloadStart+int(h.Regions[i].Off):], r.Data)
	}
	if err := a.Sync(); err != nil {
		a.Close()
		return err
	}
	if err := a.Close(); err != nil {
		return fmt.Errorf("arena: unmap checkpoint %s: %w", path, err)
	}
	if err := os.Truncate(path, int64(total)); err != nil {
		return fmt.Errorf("arena: trim checkpoint %s: %w", path, err)
	}
	return nil
}

// ReadCheckpoint parses and validates a checkpoint from r: magic,
// version, header shape, region bounds, and payload CRC all checked
// before any region is handed to the caller. Corrupt or truncated
// input yields a descriptive error, never a panic.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var pre [preambleLen]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, fmt.Errorf("arena: checkpoint truncated reading preamble: %w", err)
	}
	if string(pre[:8]) != Magic {
		return nil, fmt.Errorf("arena: not a checkpoint (bad magic %q)", pre[:8])
	}
	ver := binary.LittleEndian.Uint32(pre[8:12])
	if ver != Version {
		return nil, fmt.Errorf("arena: unsupported checkpoint version %d (this build reads version %d)", ver, Version)
	}
	hdrLen := binary.LittleEndian.Uint32(pre[12:16])
	if hdrLen == 0 || hdrLen > maxHeaderLen {
		return nil, fmt.Errorf("arena: implausible checkpoint header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("arena: checkpoint truncated reading header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(hdr, &h); err != nil {
		return nil, fmt.Errorf("arena: corrupt checkpoint header: %w", err)
	}
	if h.Version != ver {
		return nil, fmt.Errorf("arena: checkpoint header version %d disagrees with preamble %d", h.Version, ver)
	}
	if h.PayloadLen < 0 || h.PayloadLen > maxPayloadLen {
		return nil, fmt.Errorf("arena: implausible checkpoint payload length %d", h.PayloadLen)
	}
	if pad := roundUp(preambleLen+int(hdrLen), 8) - (preambleLen + int(hdrLen)); pad > 0 {
		if _, err := io.CopyN(io.Discard, r, int64(pad)); err != nil {
			return nil, fmt.Errorf("arena: checkpoint truncated reading header padding: %w", err)
		}
	}
	payload, err := readPayload(r, h.PayloadLen)
	if err != nil {
		return nil, err
	}
	if crc := crc32.Checksum(payload, crcTable); crc != h.CRC {
		return nil, fmt.Errorf("arena: checkpoint payload corrupt: CRC %08x, header says %08x", crc, h.CRC)
	}
	c := &Checkpoint{Header: h, regions: make(map[string][]byte, len(h.Regions))}
	for _, reg := range h.Regions {
		if reg.Off < 0 || reg.Len < 0 || reg.Off+reg.Len > h.PayloadLen {
			return nil, fmt.Errorf("arena: checkpoint region %q out of bounds (off %d len %d payload %d)",
				reg.Name, reg.Off, reg.Len, h.PayloadLen)
		}
		c.regions[reg.Name] = payload[reg.Off : reg.Off+reg.Len : reg.Off+reg.Len]
	}
	return c, nil
}

// readPayload reads exactly n payload bytes from r, doubling the buffer
// as bytes arrive rather than trusting the header's advertised length
// with one up-front allocation: memory committed never exceeds twice
// the bytes actually received, so a truncated or crafted stream fails
// at the size it transmitted, not the size it claimed.
func readPayload(r io.Reader, n int64) ([]byte, error) {
	const initialAlloc = 16 << 20
	capNow := n
	if capNow > initialAlloc {
		capNow = initialAlloc
	}
	payload := make([]byte, 0, capNow)
	for int64(len(payload)) < n {
		if len(payload) == cap(payload) {
			next := int64(cap(payload)) * 2
			if next > n {
				next = n
			}
			grown := make([]byte, len(payload), next)
			copy(grown, payload)
			payload = grown
		}
		prev := len(payload)
		payload = payload[:cap(payload)]
		if _, err := io.ReadFull(r, payload[prev:]); err != nil {
			return nil, fmt.Errorf("arena: checkpoint truncated reading payload (%d of %d bytes): %w", prev, n, err)
		}
	}
	return payload, nil
}
