// Package arena provides page-aligned, mmap-backed memory arenas for
// the simulation's hot flat arrays, plus the versioned checkpoint
// format that serializes a paused simulation (DESIGN.md §13).
//
// An Arena is a bump allocator over one mmap'd region — anonymous
// (private, zero-filled) or file-backed (shared, so msync persists it).
// Memory handed out by an Arena is invisible to the Go garbage
// collector: it is never scanned and never collected, which is exactly
// what the steady-state-zero-alloc native step wants, and exactly why
// only pointer-free element types are allowed (a Go pointer stored in
// arena memory would be invisible to the GC and dangle after a
// collection; MakeSlice enforces this with a one-time type check).
//
// Every allocation helper degrades gracefully: a nil *Arena, an
// exhausted arena, or a platform where mmap fails all fall back to the
// ordinary Go heap with identical semantics. Callers never need a
// fallback path of their own.
package arena

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"syscall"
	"unsafe"
)

// Arena is a bump allocator over one mmap'd region. Not safe for
// concurrent Alloc; the simulation allocates from per-structure arenas
// on a single thread (growth happens inside thread-0 build phases).
type Arena struct {
	mem  []byte
	off  int
	file *os.File // non-nil when file-backed (msync target)
	path string
}

// pageSize is the mmap granularity; sizes are rounded up to it.
var pageSize = os.Getpagesize()

func roundUp(n, align int) int { return (n + align - 1) &^ (align - 1) }

// New maps an anonymous private region of at least size bytes and
// returns an arena over it. The region is zero-filled by the kernel.
func New(size int) (*Arena, error) {
	size = roundUp(size, pageSize)
	mem, err := syscall.Mmap(-1, 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("arena: anonymous mmap of %d bytes: %w", size, err)
	}
	return &Arena{mem: mem}, nil
}

// Create maps a file-backed shared region of at least size bytes at
// path (created or truncated). Writes land in the page cache and are
// persisted by Sync — the msync-based checkpoint path.
func Create(path string, size int) (*Arena, error) {
	size = roundUp(size, pageSize)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("arena: create %s: %w", path, err)
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, fmt.Errorf("arena: truncate %s to %d bytes: %w", path, size, err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("arena: mmap %s: %w", path, err)
	}
	return &Arena{mem: mem, file: f, path: path}, nil
}

// Size returns the mapped capacity in bytes; Used the bytes bumped so
// far.
func (a *Arena) Size() int { return len(a.mem) }
func (a *Arena) Used() int { return a.off }

// Bytes returns the full mapped region. The caller must not retain it
// past Close.
func (a *Arena) Bytes() []byte { return a.mem }

// alloc bumps n bytes at the given alignment, or returns nil when the
// arena is exhausted (callers fall back to the heap). The returned
// memory is zeroed: fresh mappings are kernel-zeroed, but a reused
// file-backed mapping or interleaved grow/shrink patterns must not leak
// stale bytes into what make() would have zeroed.
func (a *Arena) alloc(n, align int) []byte {
	if a == nil || n < 0 {
		return nil
	}
	start := roundUp(a.off, align)
	if start+n > len(a.mem) || start+n < start {
		return nil
	}
	a.off = start + n
	b := a.mem[start : start+n : start+n]
	clear(b)
	return b
}

// Sync flushes the mapped region to its backing file (msync). A no-op
// for anonymous arenas.
func (a *Arena) Sync() error {
	if a == nil || a.file == nil || len(a.mem) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&a.mem[0])), uintptr(len(a.mem)), syscall.MS_SYNC)
	if errno != 0 {
		return fmt.Errorf("arena: msync %s: %w", a.path, errno)
	}
	return nil
}

// Close unmaps the region (and closes the backing file). Any slice
// previously returned from this arena becomes invalid. Safe on nil and
// idempotent.
func (a *Arena) Close() error {
	if a == nil || a.mem == nil {
		return nil
	}
	err := syscall.Munmap(a.mem)
	a.mem, a.off = nil, 0
	if a.file != nil {
		if cerr := a.file.Close(); err == nil {
			err = cerr
		}
		a.file = nil
	}
	return err
}

// pointerFree caches the per-type "may this live in arena memory"
// verdict so the reflect walk runs once per element type, not per
// allocation.
var pointerFree sync.Map // reflect.Type -> bool

func assertPointerFree[T any]() {
	t := reflect.TypeOf((*T)(nil)).Elem()
	if ok, hit := pointerFree.Load(t); hit {
		if !ok.(bool) {
			panic(fmt.Sprintf("arena: element type %v contains pointers", t))
		}
		return
	}
	free := !hasPointers(t)
	pointerFree.Store(t, free)
	if !free {
		panic(fmt.Sprintf("arena: element type %v contains pointers", t))
	}
}

func hasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return hasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// MakeSlice allocates a slice of capacity elements (length of them
// live) from a, falling back to the Go heap when a is nil or exhausted.
// The element type must be pointer-free.
func MakeSlice[T any](a *Arena, length, capacity int) []T {
	assertPointerFree[T]()
	if capacity < length {
		capacity = length
	}
	var zero T
	esz, ealign := int(unsafe.Sizeof(zero)), int(unsafe.Alignof(zero))
	if b := a.alloc(capacity*esz, ealign); b != nil {
		if capacity == 0 {
			return []T{}
		}
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), capacity)[:length]
	}
	return make([]T, length, capacity)
}

// Append appends vs to s, growing through a (with doubling) when
// capacity runs out — append semantics with arena-backed growth. On a
// nil or exhausted arena, growth lands on the Go heap.
func Append[T any](a *Arena, s []T, vs ...T) []T {
	if len(s)+len(vs) <= cap(s) {
		return append(s, vs...)
	}
	need := len(s) + len(vs)
	newCap := 2 * cap(s)
	if newCap < need {
		newCap = need
	}
	if newCap < 8 {
		newCap = 8
	}
	ns := MakeSlice[T](a, len(s), newCap)
	copy(ns, s)
	return append(ns, vs...)
}

// Grow returns s extended to at least capacity (length preserved),
// allocating from a when the current capacity is insufficient.
func Grow[T any](a *Arena, s []T, capacity int) []T {
	if cap(s) >= capacity {
		return s
	}
	ns := MakeSlice[T](a, len(s), capacity)
	copy(ns, s)
	return ns
}
