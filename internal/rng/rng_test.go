package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(7)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestGaussMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Gauss()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("gauss mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("gauss variance = %v, want ~1", variance)
	}
}

func TestUnitSphere(t *testing.T) {
	r := New(3)
	var cx, cy, cz float64
	const n = 100000
	for i := 0; i < n; i++ {
		x, y, z := r.UnitSphere()
		if d := math.Abs(x*x + y*y + z*z - 1); d > 1e-12 {
			t.Fatalf("point off unit sphere by %v", d)
		}
		cx += x
		cy += y
		cz += z
	}
	// Centroid of uniform sphere points tends to zero.
	if m := math.Sqrt(cx*cx+cy*cy+cz*cz) / n; m > 0.01 {
		t.Errorf("sphere centroid magnitude %v, want ~0", m)
	}
}

func TestRangeAndIntn(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range out of bounds: %v", v)
		}
		k := r.Intn(13)
		if k < 0 || k >= 13 {
			t.Fatalf("Intn out of bounds: %d", k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

// Property: Range output respects arbitrary valid bounds.
func TestQuickRange(t *testing.T) {
	r := New(9)
	f := func(lo, width float64) bool {
		lo = math.Mod(lo, 1e9)
		width = math.Abs(math.Mod(width, 1e9)) + 1e-9
		v := r.Range(lo, lo+width)
		return v >= lo && v < lo+width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
