// Package rng implements a small, fully deterministic pseudo-random number
// generator (splitmix64) plus the distributions needed by the Plummer model
// generator. It is used instead of math/rand so that every experiment in
// the repository is bit-reproducible regardless of the Go release.
package rng

import "math"

// RNG is a splitmix64 generator. The zero value is a valid generator seeded
// with 0; use New to seed explicitly.
type RNG struct {
	state uint64

	haveGauss bool
	gauss     float64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Gauss returns a standard normal variate (Box-Muller, cached pair).
func (r *RNG) Gauss() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	// Avoid log(0) by keeping u1 in (0,1].
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	m := math.Sqrt(-2 * math.Log(u1))
	r.gauss = m * math.Sin(2*math.Pi*u2)
	r.haveGauss = true
	return m * math.Cos(2*math.Pi*u2)
}

// UnitSphere returns a point uniformly distributed on the surface of the
// unit sphere, as (x, y, z).
func (r *RNG) UnitSphere() (x, y, z float64) {
	// Marsaglia's rejection method.
	for {
		a := r.Range(-1, 1)
		b := r.Range(-1, 1)
		s := a*a + b*b
		if s >= 1 {
			continue
		}
		t := 2 * math.Sqrt(1-s)
		return a * t, b * t, 1 - 2*s
	}
}
