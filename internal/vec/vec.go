// Package vec provides small value-type 3D vector math used throughout the
// N-body code. All methods are value methods returning new vectors; the
// compiler inlines them, so there is no allocation cost.
package vec

import "math"

// V3 is a 3-component double-precision vector.
type V3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v V3) Add(w V3) V3 { return V3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V3) Sub(w V3) V3 { return V3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * s.
func (v V3) Scale(s float64) V3 { return V3{v.X * s, v.Y * s, v.Z * s} }

// AddScaled returns v + w*s without intermediate allocation.
func (v V3) AddScaled(w V3, s float64) V3 {
	return V3{v.X + w.X*s, v.Y + w.Y*s, v.Z + w.Z*s}
}

// Dot returns the inner product of v and w.
func (v V3) Dot(w V3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Len2 returns the squared Euclidean length of v.
func (v V3) Len2() float64 { return v.Dot(v) }

// Len returns the Euclidean length of v.
func (v V3) Len() float64 { return math.Sqrt(v.Len2()) }

// Dist2 returns the squared distance between v and w.
func (v V3) Dist2(w V3) float64 { return v.Sub(w).Len2() }

// Dist returns the distance between v and w.
func (v V3) Dist(w V3) float64 { return math.Sqrt(v.Dist2(w)) }

// Min returns the component-wise minimum of v and w.
func (v V3) Min(w V3) V3 {
	return V3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v V3) Max(w V3) V3 {
	return V3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// MaxComponent returns the largest of the three components.
func (v V3) MaxComponent() float64 {
	return math.Max(v.X, math.Max(v.Y, v.Z))
}

// IsFinite reports whether all components are finite numbers.
func (v V3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// Zero is the zero vector.
var Zero = V3{}
