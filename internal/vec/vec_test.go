package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicAlgebra(t *testing.T) {
	a := V3{1, 2, 3}
	b := V3{4, -5, 6}
	if got := a.Add(b); got != (V3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (V3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (V3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.AddScaled(b, 2); got != (V3{9, -8, 15}) {
		t.Errorf("AddScaled = %v", got)
	}
	if got := (V3{3, 4, 0}).Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	a := V3{1, 5, -2}
	b := V3{3, -5, 0}
	if got := a.Min(b); got != (V3{1, -5, -2}) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != (V3{3, 5, 0}) {
		t.Errorf("Max = %v", got)
	}
	if got := a.MaxComponent(); got != 5 {
		t.Errorf("MaxComponent = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !(V3{1, 2, 3}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for _, bad := range []V3{
		{math.NaN(), 0, 0}, {0, math.Inf(1), 0}, {0, 0, math.Inf(-1)},
	} {
		if bad.IsFinite() {
			t.Errorf("%v reported finite", bad)
		}
	}
}

// Property: vector addition commutes and Sub inverts Add.
func TestQuickAddProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3{ax, ay, az}
		b := V3{bx, by, bz}
		if a.Add(b) != b.Add(a) {
			return false
		}
		back := a.Add(b).Sub(b)
		return back.Sub(a).Len() <= 1e-9*(1+a.Len()+b.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |a.b| <= |a||b| and Dist symmetry.
func TestQuickDotDist(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		// Constrain to a sane range to avoid overflow-driven false alarms.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e6)
		}
		a := V3{clamp(ax), clamp(ay), clamp(az)}
		b := V3{clamp(bx), clamp(by), clamp(bz)}
		if math.Abs(a.Dot(b)) > a.Len()*b.Len()*(1+1e-12) {
			return false
		}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
