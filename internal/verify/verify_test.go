package verify_test

import (
	"testing"

	"upcbh/internal/nbody"
	"upcbh/internal/verify"
)

// advanceDirect produces a "final state" by one exact direct-sum force
// evaluation followed by the same kick-drift the simulator applies —
// the ground-truth fixture the oracles must score as (near-)perfect.
func advanceDirect(bodies []nbody.Body, eps, dt float64) []nbody.Body {
	out := make([]nbody.Body, len(bodies))
	copy(out, bodies)
	nbody.Direct(out, eps)
	for i := range out {
		nbody.AdvanceKickDrift(&out[i], dt)
	}
	return out
}

// TestForceOracleOnExactState: a state advanced with exact direct-sum
// forces must reconstruct and score ~zero error — this pins the drift
// reconstruction (Pos - Vel*dt) against the integrator's actual update
// order. If advance ever changes its kick/drift sequence, this fails
// before the differential matrix starts blaming innocent levels.
func TestForceOracleOnExactState(t *testing.T) {
	const eps, dt = 0.05, 0.025
	final := advanceDirect(nbody.Plummer(256, 5), eps, dt)
	maxRel, rms := verify.ForceErrors(final, eps, dt)
	if maxRel > 1e-12 {
		t.Errorf("exact state scored max error %g, want ~0", maxRel)
	}
	if rms > 1e-12 {
		t.Errorf("exact state scored RMS error %g, want ~0", rms)
	}
}

// TestForceOracleDetectsDefects plants the classic Barnes-Hut bugs in
// an otherwise exact state and requires the oracle to flag each one
// well above the differential matrix's tolerances.
func TestForceOracleDetectsDefects(t *testing.T) {
	const eps, dt = 0.05, 0.025
	clean := advanceDirect(nbody.Plummer(256, 5), eps, dt)
	defects := map[string]func([]nbody.Body){
		// A subtree's contribution lost for one body.
		"missing contribution": func(bs []nbody.Body) { bs[17].Acc = bs[17].Acc.Scale(0.5) },
		// A body double-counted (acceleration doubled).
		"double count": func(bs []nbody.Body) { bs[40].Acc = bs[40].Acc.Scale(2) },
		// Stale cache: one body's force computed at a garbage position.
		"stale position": func(bs []nbody.Body) { bs[3].Acc.X += 1 },
	}
	for name, plant := range defects {
		bs := make([]nbody.Body, len(clean))
		copy(bs, clean)
		plant(bs)
		if e := verify.MaxForceError(bs, eps, dt); e < 0.2 {
			t.Errorf("%s: oracle scored only %g; defect would pass the matrix", name, e)
		}
	}
}

// TestConservationDetectsDrift: feeding back the initial state scores
// zero; scaling every velocity (a lost kick / double kick) must move
// both energy and momentum-scale diagnostics.
func TestConservationDetectsDrift(t *testing.T) {
	initial := nbody.Plummer(512, 9)
	c, err := verify.CheckConservation(initial, initial, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if c.EnergyDrift != 0 || c.MomentumDrift != 0 {
		t.Errorf("identical states drifted: %+v", c)
	}

	kicked := make([]nbody.Body, len(initial))
	copy(kicked, initial)
	for i := range kicked {
		kicked[i].Vel = kicked[i].Vel.Scale(1.5)
		kicked[i].Vel.X += 0.2 // net momentum injection
	}
	c, err = verify.CheckConservation(initial, kicked, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if c.EnergyDrift < 0.1 {
		t.Errorf("kinetic-energy injection scored drift %g", c.EnergyDrift)
	}
	if c.MomentumDrift < 0.1 {
		t.Errorf("momentum injection scored drift %g", c.MomentumDrift)
	}

	if _, err := verify.CheckConservation(initial, initial[:100], 0.05); err == nil {
		t.Error("length mismatch not reported")
	}
}
