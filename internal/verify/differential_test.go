package verify_test

import (
	"fmt"
	"testing"

	"upcbh/internal/bench"
	"upcbh/internal/core"
	"upcbh/internal/nbody"
	"upcbh/internal/verify"
)

// Matrix dimensions. Every cell runs through one shared memoized
// bench.Runner, so the oracle subtest and the pairwise subtest request
// each configuration once between them.
var (
	matrixModes = []core.ExecMode{core.ModeSimulate, core.ModeNative}

	// Oracle tolerances for the matrix configuration (theta = 0.5,
	// n = 256, eps = 0.05). Observed legitimate multipole error across
	// all five scenarios x seven levels x both modes: max-relative
	// <= 0.095 (worst body, near a force cancellation), RMS <= 0.011.
	// A real defect — a subtree missed, a mass double-counted, a stale
	// cached cell — shifts the RMS metric by orders of magnitude, so
	// ~1.5-2x headroom separates noise from defect without masking one.
	matrixTheta     = 0.5
	oracleMaxRelTol = 0.15
	oracleRMSTol    = 0.02

	// Levels traverse the same tree and differ only in where the
	// partial sums are accumulated, so cross-level (and cross-mode)
	// divergence is pure floating-point reordering: observed <= 3e-15.
	pairwiseTol = 1e-9
)

// matrixOptions is the one configuration shape every matrix cell uses.
func matrixOptions(scenario string, level core.Level, mode core.ExecMode) core.Options {
	opts := core.DefaultOptions(256, 4, level)
	opts.Scenario = scenario
	opts.Steps, opts.Warmup = 2, 1
	opts.Theta = matrixTheta
	opts.ExecMode = mode
	return opts
}

// matrixScenarios returns the scenario axis: every registered scenario,
// trimmed under -short (the -race CI run) to the paper's workload plus
// the most adversarial distribution.
func matrixScenarios(t *testing.T) []string {
	if testing.Short() {
		return []string{"plummer", "clustered"}
	}
	return nbody.ScenarioNames()
}

// newVerifyRunner builds a Runner that retains the body state the
// oracles consume.
func newVerifyRunner() *bench.Runner {
	r := bench.NewRunner(0)
	r.KeepBodies = true
	return r
}

// TestDifferentialMatrix is the repository's physics gate: every
// optimization Level x ExecMode x workload scenario at oracle-scale n,
// each run checked against O(n^2) direct summation at the reconstructed
// force-evaluation positions, and all levels checked pairwise against
// LevelBaseline within FP-reordering tolerance. A refactor that breaks
// the physics of any single level, backend, or spatial distribution
// fails the corresponding cell by name.
func TestDifferentialMatrix(t *testing.T) {
	runner := newVerifyRunner()
	for _, scenario := range matrixScenarios(t) {
		for _, mode := range matrixModes {
			scenario, mode := scenario, mode
			t.Run(fmt.Sprintf("%s/%s", scenario, mode), func(t *testing.T) {
				// Baseline first: the pairwise reference for this cell group.
				base, _, err := runner.Run(matrixOptions(scenario, core.LevelBaseline, mode))
				if err != nil {
					t.Fatalf("baseline run: %v", err)
				}
				for level := core.LevelBaseline; level < core.NumLevels; level++ {
					level := level
					t.Run(level.String(), func(t *testing.T) {
						opts := matrixOptions(scenario, level, mode)
						res, _, err := runner.Run(opts)
						if err != nil {
							t.Fatal(err)
						}
						if len(res.Bodies) != opts.Bodies {
							t.Fatalf("result carries %d bodies, want %d (Runner.KeepBodies regression?)", len(res.Bodies), opts.Bodies)
						}

						// Oracle: direct summation at the reconstructed positions.
						maxRel, rms := verify.ForceErrors(res.Bodies, opts.Eps, opts.Dt)
						if maxRel > oracleMaxRelTol {
							t.Errorf("max relative force error vs direct sum: %g > %g", maxRel, oracleMaxRelTol)
						}
						if rms > oracleRMSTol {
							t.Errorf("RMS force error vs direct sum: %g > %g", rms, oracleRMSTol)
						}

						// Pairwise: all levels agree with baseline (and hence
						// with each other) up to FP reordering.
						if d := verify.MaxAccDivergence(base.Bodies, res.Bodies); d > pairwiseTol {
							t.Errorf("acceleration divergence vs %s: %g > %g", core.LevelBaseline, d, pairwiseTol)
						}
					})
				}
			})
		}
	}

	// The matrix shares each baseline run between the oracle and
	// pairwise roles; the runner must have deduplicated those requests.
	if st := runner.Stats(); st.Hits == 0 {
		t.Errorf("expected memoized re-use inside the matrix, got stats %+v", st)
	}
}

// TestFlatVsPointerPerScenario adds the flat-vs-pointer axis to the
// differential matrix: for each scenario, the native backend's flat
// paths (arena local build + flat-snapshot force kernel) must produce
// the same physics as the pointer/NodeRef paths (DisableFlat) within
// FP-reordering tolerance, at both a merged-build and the fully
// optimized subspace level, and both variants must satisfy the direct-
// sum oracle.
func TestFlatVsPointerPerScenario(t *testing.T) {
	runner := newVerifyRunner()
	for _, scenario := range matrixScenarios(t) {
		for _, level := range []core.Level{core.LevelMergedBuild, core.LevelSubspace} {
			scenario, level := scenario, level
			t.Run(fmt.Sprintf("%s/%s", scenario, level), func(t *testing.T) {
				flatOpts := matrixOptions(scenario, level, core.ModeNative)
				ptrOpts := flatOpts
				ptrOpts.DisableFlat = true
				flat, _, err := runner.Run(flatOpts)
				if err != nil {
					t.Fatal(err)
				}
				ptr, _, err := runner.Run(ptrOpts)
				if err != nil {
					t.Fatal(err)
				}
				if d := verify.MaxAccDivergence(flat.Bodies, ptr.Bodies); d > pairwiseTol {
					t.Errorf("flat vs pointer acceleration divergence: %g > %g", d, pairwiseTol)
				}
				for name, res := range map[string]*core.Result{"flat": flat, "pointer": ptr} {
					maxRel, rms := verify.ForceErrors(res.Bodies, flatOpts.Eps, flatOpts.Dt)
					if maxRel > oracleMaxRelTol || rms > oracleRMSTol {
						t.Errorf("%s variant vs direct sum: maxRel %g (tol %g), rms %g (tol %g)",
							name, maxRel, oracleMaxRelTol, rms, oracleRMSTol)
					}
				}
			})
		}
	}
}

// TestModeAgreementPerScenario closes the remaining seam the matrix
// checks only indirectly: for each scenario, the Native backend's final
// accelerations match the Simulate backend's bit-for-bit up to
// FP-reordering tolerance at the fully optimized level.
func TestModeAgreementPerScenario(t *testing.T) {
	runner := newVerifyRunner()
	for _, scenario := range matrixScenarios(t) {
		scenario := scenario
		t.Run(scenario, func(t *testing.T) {
			sim, _, err := runner.Run(matrixOptions(scenario, core.LevelSubspace, core.ModeSimulate))
			if err != nil {
				t.Fatal(err)
			}
			nat, _, err := runner.Run(matrixOptions(scenario, core.LevelSubspace, core.ModeNative))
			if err != nil {
				t.Fatal(err)
			}
			if d := verify.MaxAccDivergence(sim.Bodies, nat.Bodies); d > pairwiseTol {
				t.Errorf("simulate vs native acceleration divergence: %g > %g", d, pairwiseTol)
			}
		})
	}
}
