// Package verify is the physics oracle of the repository: it checks the
// *output* of any Barnes-Hut run — at every optimization level, under
// either execution backend, on any workload scenario — against ground
// truth that is computed independently of all the machinery under test.
//
// Two oracles are provided:
//
//   - Force oracle: O(n^2) direct summation (nbody.Direct) at the exact
//     positions of the run's last force evaluation, reconstructed from
//     the final state by undoing the last leapfrog drift. The only
//     discrepancy a correct run may show is the Barnes-Hut multipole
//     approximation error, which is bounded by the opening criterion
//     theta — so a tolerance keyed to theta catches real defects
//     (wrong masses, missed subtrees, double-counted bodies) without
//     flagging the approximation the algorithm is allowed to make.
//
//   - Conservation oracle: energy and momentum drift between the
//     initial conditions and the final state of a multi-step run. The
//     kick-drift leapfrog is symplectic, so energy error stays bounded
//     and small over the short runs used in tests; momentum is exactly
//     conserved by Newton's third law up to the (theta-bounded)
//     asymmetry of the tree approximation.
//
// The differential test matrix in this package runs every Level x
// ExecMode x scenario combination through the memoized bench.Runner and
// holds each run to both oracles, plus pairwise agreement across levels.
package verify

import (
	"fmt"
	"math"

	"upcbh/internal/nbody"
	"upcbh/internal/vec"
)

// ReconstructForcePositions returns the positions at which the run's
// final accelerations were computed. The advance phase applies
// kick-drift (Vel += Acc*dt; Pos += Vel*dt), so the force-evaluation
// position of each body is Pos - Vel*dt with the *final* velocity.
func ReconstructForcePositions(final []nbody.Body, dt float64) []nbody.Body {
	at := make([]nbody.Body, len(final))
	copy(at, final)
	for i := range at {
		at[i].Pos = at[i].Pos.AddScaled(at[i].Vel, -dt)
	}
	return at
}

// ForceErrors compares the accelerations stored in a run's final body
// state against direct summation at the reconstructed force-evaluation
// positions, in one O(n^2) oracle pass, under two metrics:
//
//   - maxRel, the worst per-body relative error |a_bh - a_direct| /
//     |a_direct| — dominated by bodies sitting near force cancellations
//     (small |a_direct|, so large relative error from a small absolute
//     one);
//   - rms, sqrt(sum |a_bh - a_direct|^2 / sum |a_direct|^2) — the
//     whole-field measure and the sharper defect detector: a missed
//     subtree or double-counted body shifts it by orders of magnitude,
//     while the legitimate multipole error stays at the few-percent
//     level for theta <= 1.
func ForceErrors(final []nbody.Body, eps, dt float64) (maxRel, rms float64) {
	ref := ReconstructForcePositions(final, dt)
	nbody.Direct(ref, eps)
	var num, den float64
	for i := range final {
		errSq := final[i].Acc.Sub(ref[i].Acc).Len2()
		refSq := ref[i].Acc.Len2()
		num += errSq
		den += refSq
		if refSq == 0 {
			continue
		}
		if e := math.Sqrt(errSq / refSq); e > maxRel {
			maxRel = e
		}
	}
	if den > 0 {
		rms = math.Sqrt(num / den)
	}
	return maxRel, rms
}

// MaxForceError returns only the per-body metric of ForceErrors.
func MaxForceError(final []nbody.Body, eps, dt float64) float64 {
	maxRel, _ := ForceErrors(final, eps, dt)
	return maxRel
}

// RMSForceError returns only the norm-level metric of ForceErrors.
func RMSForceError(final []nbody.Body, eps, dt float64) float64 {
	_, rms := ForceErrors(final, eps, dt)
	return rms
}

// Conservation reports the drift diagnostics of a run: every field is
// dimensionless and should be ~0 for a correct integrator.
type Conservation struct {
	// EnergyDrift is |E_final - E_initial| / |E_initial| (total energy
	// by O(n^2) direct summation).
	EnergyDrift float64
	// MomentumDrift is |P_final - P_initial| normalized by the initial
	// momentum scale sum_i m_i |v_i| (total momentum is zero in the
	// center-of-mass frame every scenario starts in, so a relative
	// measure needs the scale, not the near-zero total).
	MomentumDrift float64
	// E0, E1 are the initial and final total energies.
	E0, E1 float64
}

// CheckConservation computes drift diagnostics between the initial
// conditions and the final state of a run with softening eps.
func CheckConservation(initial, final []nbody.Body, eps float64) (Conservation, error) {
	if len(initial) != len(final) {
		return Conservation{}, fmt.Errorf("verify: body counts differ: %d initial vs %d final", len(initial), len(final))
	}
	k0, p0 := nbody.Energy(initial, eps)
	k1, p1 := nbody.Energy(final, eps)
	c := Conservation{E0: k0 + p0, E1: k1 + p1}
	if c.E0 != 0 {
		c.EnergyDrift = math.Abs(c.E1-c.E0) / math.Abs(c.E0)
	}
	var mom0, mom1 vec.V3
	var scale float64
	for i := range initial {
		mom0 = mom0.AddScaled(initial[i].Vel, initial[i].Mass)
		mom1 = mom1.AddScaled(final[i].Vel, final[i].Mass)
		scale += initial[i].Mass * initial[i].Vel.Len()
	}
	if scale > 0 {
		c.MomentumDrift = mom1.Sub(mom0).Len() / scale
	}
	return c, nil
}

// MaxAccDivergence returns the worst relative acceleration difference
// between two runs of the same configuration (for pairwise cross-level
// checks): |a_i - b_i| / max(|a_i|, |b_i|). It panics on length or ID
// mismatch — that is already a verification failure.
func MaxAccDivergence(a, b []nbody.Body) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("verify: body counts differ: %d vs %d", len(a), len(b)))
	}
	var worst float64
	for i := range a {
		if a[i].ID != b[i].ID {
			panic(fmt.Sprintf("verify: body order mismatch at %d: ID %d vs %d", i, a[i].ID, b[i].ID))
		}
		denom := math.Max(a[i].Acc.Len(), b[i].Acc.Len())
		if denom == 0 {
			continue
		}
		if e := a[i].Acc.Sub(b[i].Acc).Len() / denom; e > worst {
			worst = e
		}
	}
	return worst
}
