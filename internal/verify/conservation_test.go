package verify_test

import (
	"testing"

	"upcbh/internal/core"
	"upcbh/internal/nbody"
	"upcbh/internal/verify"
)

// Conservation tolerances for the property-test configuration (n = 512,
// 4 threads, LevelSubspace, theta = 1.0, dt = 0.025, 8 steps).
//
//   - Energy: the kick-drift leapfrog is symplectic, so the energy
//     error oscillates instead of accumulating; observed drift across
//     all five scenarios is <= 4.8e-3 over 8 steps (clustered is the
//     worst: deep trees, close encounters). 2e-2 gives ~4x headroom
//     while still failing instantly if the integrator loses a kick or
//     a body is advanced twice.
//   - Momentum: exactly conserved by Newton's third law up to the
//     theta-bounded asymmetry of the multipole approximation (a pure
//     Plummer run conserves it to ~1e-18; clustered, the worst case,
//     drifts 1.3e-3 of the momentum scale sum m|v|). Tolerance 1e-2.
const (
	conservationSteps = 8
	energyDriftTol    = 2e-2
	momentumDriftTol  = 1e-2
)

// TestConservationAcrossScenarios is the multi-step physics property
// test: run every scenario through the fully optimized pipeline for
// several steps and require bounded energy and momentum drift between
// the generated initial conditions and the final state. Warmup steps
// advance the physics exactly like measured steps (warmup only gates
// *timing* accumulation), so the drift is computed over all
// conservationSteps regardless of the warmup setting.
func TestConservationAcrossScenarios(t *testing.T) {
	scenarios := nbody.ScenarioNames()
	if testing.Short() {
		scenarios = []string{"plummer", "clustered"}
	}
	for _, scenario := range scenarios {
		scenario := scenario
		t.Run(scenario, func(t *testing.T) {
			opts := core.DefaultOptions(512, 4, core.LevelSubspace)
			opts.Scenario = scenario
			opts.Steps, opts.Warmup = conservationSteps, 1
			sim, err := core.New(opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			initial, err := nbody.GenerateScenario(scenario, opts.Bodies, opts.Seed)
			if err != nil {
				t.Fatal(err)
			}
			c, err := verify.CheckConservation(initial, res.Bodies, opts.Eps)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("E0=%.6f E1=%.6f energy drift %.3e, momentum drift %.3e",
				c.E0, c.E1, c.EnergyDrift, c.MomentumDrift)
			if c.EnergyDrift > energyDriftTol {
				t.Errorf("energy drift %g > %g over %d steps", c.EnergyDrift, energyDriftTol, conservationSteps)
			}
			if c.MomentumDrift > momentumDriftTol {
				t.Errorf("momentum drift %g > %g over %d steps", c.MomentumDrift, momentumDriftTol, conservationSteps)
			}
		})
	}
}
