package mpi

import (
	"testing"

	"upcbh/internal/machine"
	"upcbh/internal/upc"
)

func TestSendRecvRing(t *testing.T) {
	rt := upc.NewRuntime(machine.Default(4))
	c := NewComm(rt)
	rt.Run(func(th *upc.Thread) {
		right := (th.ID() + 1) % th.P()
		left := (th.ID() + th.P() - 1) % th.P()
		c.Send(th, right, th.ID()*10, 8)
		v, bytes := c.Recv(th, left)
		if v.(int) != left*10 {
			t.Errorf("rank %d received %v, want %d", th.ID(), v, left*10)
		}
		if bytes != 8 {
			t.Errorf("bytes = %d", bytes)
		}
	})
}

func TestRecvAlignsClock(t *testing.T) {
	rt := upc.NewRuntime(machine.Default(2))
	c := NewComm(rt)
	rt.Run(func(th *upc.Thread) {
		if th.ID() == 0 {
			th.ChargeRaw(1e-3) // late sender
			c.Send(th, 1, "hi", 1024)
			return
		}
		before := th.Now()
		v, _ := c.Recv(th, 0)
		if v.(string) != "hi" {
			t.Errorf("payload %v", v)
		}
		// Receiver must wait (in simulated time) for the late sender.
		if th.Now() < 1e-3 || th.Now() <= before {
			t.Errorf("receiver clock %g did not align to sender send time", th.Now())
		}
	})
}

func TestNonOvertaking(t *testing.T) {
	rt := upc.NewRuntime(machine.Default(2))
	c := NewComm(rt)
	rt.Run(func(th *upc.Thread) {
		if th.ID() == 0 {
			for i := 0; i < 100; i++ {
				c.Send(th, 1, i, 8)
			}
			return
		}
		for i := 0; i < 100; i++ {
			v, _ := c.Recv(th, 0)
			if v.(int) != i {
				t.Fatalf("message %d overtook: got %v", i, v)
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	rt := upc.NewRuntime(machine.Default(2))
	c := NewComm(rt)
	rt.Run(func(th *upc.Thread) {
		partner := 1 - th.ID()
		v, _ := c.Sendrecv(th, partner, th.ID()+100, 8)
		if v.(int) != partner+100 {
			t.Errorf("rank %d exchanged %v", th.ID(), v)
		}
	})
}

func TestRecvAbortsOnPeerFailure(t *testing.T) {
	rt := upc.NewRuntime(machine.Default(2))
	c := NewComm(rt)
	defer func() {
		if recover() == nil {
			t.Error("expected panic from aborted receive")
		}
	}()
	rt.Run(func(th *upc.Thread) {
		if th.ID() == 0 {
			panic("sender died before sending")
		}
		c.Recv(th, 0) // would deadlock without the abort channel
	})
}

func TestSendInvalidRank(t *testing.T) {
	rt := upc.NewRuntime(machine.Default(2))
	c := NewComm(rt)
	defer func() {
		if recover() == nil {
			t.Error("invalid rank accepted")
		}
	}()
	rt.Run(func(th *upc.Thread) {
		if th.ID() == 0 {
			c.Send(th, 7, nil, 8)
		}
	})
}
