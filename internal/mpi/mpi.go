// Package mpi emulates a two-sided message-passing interface over the
// same simulated machine as the UPC runtime, for the paper's planned
// UPC-vs-MPI comparison (§9). Ranks are upc.Threads; a message charges
// the sender's overhead immediately and delivers a simulated arrival
// time that the receiver's clock is aligned to — so an early receiver
// waits (in simulated time) for a late sender, as real MPI does.
//
// Collective operations reuse the upc package's reductions and
// exchanges (MPI_Allreduce and friends have the same cost structure as
// UPC collectives on the modelled machine).
package mpi

import (
	"fmt"

	"upcbh/internal/upc"
)

// envelope is one in-flight message.
type envelope struct {
	data     any
	bytes    int
	arriveAt float64
}

// Comm is a communicator over all threads of a runtime. Each (src, dst)
// pair has an ordered channel, giving MPI's non-overtaking guarantee.
type Comm struct {
	rt   *upc.Runtime
	mail [][]chan envelope // mail[dst][src]
}

// NewComm builds a communicator for rt's threads.
func NewComm(rt *upc.Runtime) *Comm {
	n := rt.Threads()
	c := &Comm{rt: rt, mail: make([][]chan envelope, n)}
	for dst := 0; dst < n; dst++ {
		c.mail[dst] = make([]chan envelope, n)
		for src := 0; src < n; src++ {
			c.mail[dst][src] = make(chan envelope, 1024)
		}
	}
	return c
}

// Send delivers data (treated as `bytes` on the wire) to rank `to`.
// It does not block while buffer space is available (eager/buffered
// semantics); with a full mailbox it waits — via BlockOn, so that under
// the cooperative scheduler the receiver can be scheduled to drain (a
// raw channel send would wedge the baton with no deadlock diagnosis).
func (c *Comm) Send(t *upc.Thread, to int, data any, bytes int) {
	if to < 0 || to >= c.rt.Threads() {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", to))
	}
	arrive := t.SendEvent(to, bytes)
	mb := c.mail[to][t.ID()]
	t.BlockOn(func() bool { return len(mb) < cap(mb) })
	mb <- envelope{data: data, bytes: bytes, arriveAt: arrive}
}

// Recv blocks until a message from rank `from` arrives, aligns the
// receiver's simulated clock to the arrival, and returns the payload.
// It aborts if a peer thread fails. Under the cooperative simulate
// scheduler the wait is a BlockOn — the receiver becomes ineligible
// until the sender has deposited, instead of blocking the baton-holding
// goroutine on the channel.
func (c *Comm) Recv(t *upc.Thread, from int) (any, int) {
	mb := c.mail[t.ID()][from]
	t.BlockOn(func() bool { return len(mb) > 0 })
	env := <-mb
	t.AdvanceTo(env.arriveAt)
	t.ChargeRaw(c.rt.Machine().Par.SendOverhead) // receive-side overhead
	return env.data, env.bytes
}

// Sendrecv exchanges one message with a partner rank (deadlock-free).
func (c *Comm) Sendrecv(t *upc.Thread, partner int, data any, bytes int) (any, int) {
	c.Send(t, partner, data, bytes)
	return c.Recv(t, partner)
}

// Barrier synchronizes all ranks (MPI_Barrier == upc_barrier here).
func (c *Comm) Barrier(t *upc.Thread) { t.Barrier() }
