// Package-level benchmarks: one per table and figure of the paper's
// evaluation (DESIGN.md §4 maps each to its experiment id). Each
// benchmark executes the corresponding experiment at a reduced "quick"
// workload and reports the key simulated-time metric; run
// `go run ./cmd/bhbench -exp all` for full-size reproductions.
package upcbh_test

import (
	"strings"
	"testing"

	"upcbh"
	"upcbh/internal/bench"
)

// runExperiment executes one registry entry per benchmark iteration. A
// fresh Runner per iteration keeps the memoization cache cold, so the
// benchmark measures real simulation work, not cache lookups.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p := bench.QuickParams()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(bench.NewRunner(0), p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s:\n%s", e.Title, rep.Text)
		}
	}
}

func BenchmarkTable2Baseline(b *testing.B)        { runExperiment(b, "table2") }
func BenchmarkTable3Scalars(b *testing.B)         { runExperiment(b, "table3") }
func BenchmarkTable4Redistribute(b *testing.B)    { runExperiment(b, "table4") }
func BenchmarkTable5CacheTree(b *testing.B)       { runExperiment(b, "table5") }
func BenchmarkTable6MergedBuild(b *testing.B)     { runExperiment(b, "table6") }
func BenchmarkTable7Async(b *testing.B)           { runExperiment(b, "table7") }
func BenchmarkTable8Subspace(b *testing.B)        { runExperiment(b, "table8") }
func BenchmarkTable9SubspacePthread(b *testing.B) { runExperiment(b, "table9") }

func BenchmarkFig5Speedups(b *testing.B)         { runExperiment(b, "fig5") }
func BenchmarkFig6PhaseBreakdown(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7WeakMerged(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkFig8MergeImbalance(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig10WeakNoVecReduce(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11WeakVecReduce(b *testing.B)   { runExperiment(b, "fig11") }
func BenchmarkFig12ThreadsPerNode(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13StrongSpeedup(b *testing.B)   { runExperiment(b, "fig13") }

func BenchmarkExtTransparentCache(b *testing.B) { runExperiment(b, "ext-cache") }
func BenchmarkExtMPIComparison(b *testing.B)    { runExperiment(b, "ext-mpi") }

// BenchmarkSingleStep measures one fully optimized simulation per level —
// the per-level ablation the paper's figure 5 summarizes. Reported
// metric: simulated seconds at 16 threads.
func BenchmarkSingleStep(b *testing.B) {
	for level := upcbh.Level(0); level < upcbh.NumLevels; level++ {
		level := level
		b.Run(strings.ToUpper(level.String()[:1])+level.String()[1:], func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				opts := upcbh.DefaultOptions(4096, 16, level)
				opts.Steps, opts.Warmup = 2, 1
				s, err := upcbh.New(opts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Total()
			}
			b.ReportMetric(sim, "sim-s")
		})
	}
}
