module upcbh

go 1.24
