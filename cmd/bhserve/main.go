// Command bhserve is the multi-tenant simulation service: a daemon
// exposing the steppable session lifecycle over HTTP. Sessions are
// hashed onto a fixed set of worker shards with bounded queues
// (backpressure is explicit: 429 with Retry-After when a shard is full,
// 503 while draining), snapshot streams fan out from one stepper per
// session to any number of NDJSON subscribers, and completed runs land
// in a shared content-addressed cache so an identical later create is
// answered without re-simulating.
//
//	bhserve -addr :8080 -shards 4 -queue 64
//
//	curl -s localhost:8080/sims -d '{"options":{"bodies":2048,"steps":8}}'
//	curl -s -X POST localhost:8080/sims/s-1/step?k=2
//	curl -sN localhost:8080/sims/s-1/stream | jq .step
//	curl -s localhost:8080/stats | jq .runner
//
// With -store DIR the daemon is crash-safe (DESIGN.md §14): live
// sessions are auto-checkpointed into a durable on-disk store every
// -ckpt-every steps and/or -ckpt-interval of wall clock, and a restart
// pointed at the same store re-admits every recoverable session at its
// newest checkpoint — resumable via GET /sims discovery even after
// kill -9.
//
//	bhserve -store /var/lib/bhserve -ckpt-every 50 -ckpt-interval 30s
//
// SIGINT/SIGTERM drain gracefully: admissions stop, in-flight steps
// finish, every session is finished and released, then the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"upcbh/internal/bench"
	"upcbh/internal/serve"
	"upcbh/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		shards  = flag.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "per-shard request queue depth (0 = 64)")
		subbuf  = flag.Int("subbuf", 0, "per-subscriber snapshot buffer (0 = 8)")
		every   = flag.Int("every", 0, "default steps between streamed snapshots (0 = 1)")
		workers = flag.Int("workers", 0, "runner worker pool size (0 = GOMAXPROCS)")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")

		storeDir  = flag.String("store", "", "durable checkpoint store directory (empty = no durability)")
		ckptEvery = flag.Int("ckpt-every", 0,
			"auto-checkpoint each session every N steps (0 = disabled; requires -store)")
		ckptInterval = flag.Duration("ckpt-interval", 0,
			"auto-checkpoint each session at this wall-clock interval, evaluated at step boundaries (0 = disabled; requires -store)")
		ckptKeep = flag.Int("ckpt-keep", 0,
			"checkpoints retained per session key in the store (0 = 2)")
		maxRestore = flag.Int64("max-restore-bytes", 0,
			"POST /sims/restore upload cap in bytes; larger uploads get 413 (0 = 1 GiB)")
	)
	flag.Parse()
	if args := flag.Args(); len(args) > 0 {
		fmt.Fprintf(os.Stderr, "bhserve: unexpected arguments: %v\n", args)
		os.Exit(2)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	runner := bench.NewRunner(*workers)
	runner.Progress = func(format string, args ...any) { logf("runner: "+format, args...) }

	var ckptStore *store.Store
	if *storeDir != "" {
		var err error
		ckptStore, err = store.Open(*storeDir, store.Options{
			Keep: *ckptKeep,
			Logf: func(format string, args ...any) { logf("store: "+format, args...) },
		})
		if err != nil {
			log.Fatalf("bhserve: open store: %v", err)
		}
	} else if *ckptEvery > 0 || *ckptInterval > 0 {
		log.Fatal("bhserve: -ckpt-every/-ckpt-interval require -store")
	}

	srv := serve.New(serve.Config{
		Shards:          *shards,
		QueueDepth:      *queue,
		SubBuffer:       *subbuf,
		StreamEvery:     *every,
		Runner:          runner,
		Logf:            logf,
		Store:           ckptStore,
		CkptEvery:       *ckptEvery,
		CkptInterval:    *ckptInterval,
		MaxRestoreBytes: *maxRestore,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		logf("bhserve: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		logf("bhserve: %v: draining", got)
		// Order matters: drain the service first — finishing sessions
		// closes their hubs, which ends the open stream responses — then
		// shut the HTTP listener down.
		srv.Shutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logf("bhserve: http shutdown: %v", err)
		}
		logf("bhserve: drained, exiting")
	case err := <-errCh:
		log.Fatalf("bhserve: %v", err)
	}
}
