// Command bhserve is the multi-tenant simulation service: a daemon
// exposing the steppable session lifecycle over HTTP. Sessions are
// hashed onto a fixed set of worker shards with bounded queues
// (backpressure is explicit: 429 with Retry-After when a shard is full,
// 503 while draining), snapshot streams fan out from one stepper per
// session to any number of NDJSON subscribers, and completed runs land
// in a shared content-addressed cache so an identical later create is
// answered without re-simulating.
//
//	bhserve -addr :8080 -shards 4 -queue 64
//
//	curl -s localhost:8080/sims -d '{"options":{"bodies":2048,"steps":8}}'
//	curl -s -X POST localhost:8080/sims/s-1/step?k=2
//	curl -sN localhost:8080/sims/s-1/stream | jq .step
//	curl -s localhost:8080/stats | jq .runner
//
// SIGINT/SIGTERM drain gracefully: admissions stop, in-flight steps
// finish, every session is finished and released, then the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"upcbh/internal/bench"
	"upcbh/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		shards  = flag.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "per-shard request queue depth (0 = 64)")
		subbuf  = flag.Int("subbuf", 0, "per-subscriber snapshot buffer (0 = 8)")
		every   = flag.Int("every", 0, "default steps between streamed snapshots (0 = 1)")
		workers = flag.Int("workers", 0, "runner worker pool size (0 = GOMAXPROCS)")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()
	if args := flag.Args(); len(args) > 0 {
		fmt.Fprintf(os.Stderr, "bhserve: unexpected arguments: %v\n", args)
		os.Exit(2)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	runner := bench.NewRunner(*workers)
	runner.Progress = func(format string, args ...any) { logf("runner: "+format, args...) }

	srv := serve.New(serve.Config{
		Shards:      *shards,
		QueueDepth:  *queue,
		SubBuffer:   *subbuf,
		StreamEvery: *every,
		Runner:      runner,
		Logf:        logf,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		logf("bhserve: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		logf("bhserve: %v: draining", got)
		// Order matters: drain the service first — finishing sessions
		// closes their hubs, which ends the open stream responses — then
		// shut the HTTP listener down.
		srv.Shutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logf("bhserve: http shutdown: %v", err)
		}
		logf("bhserve: drained, exiting")
	case err := <-errCh:
		log.Fatalf("bhserve: %v", err)
	}
}
