package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"upcbh"
)

func streamSim(t *testing.T) *upcbh.Sim {
	t.Helper()
	opts := upcbh.DefaultOptions(256, 2, upcbh.LevelMergedBuild)
	opts.Steps, opts.Warmup = 4, 1
	sim, err := upcbh.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestRunStreamEmitsMonotoneSnapshots: the happy path — step 0 first,
// strictly increasing step indices, ending at -steps.
func TestRunStreamEmitsMonotoneSnapshots(t *testing.T) {
	var buf bytes.Buffer
	if err := runStream(&buf, streamSim(t), 4, 2, false, nil); err != nil {
		t.Fatal(err)
	}
	var steps []int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var snap upcbh.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		steps = append(steps, snap.Step)
	}
	want := []int{0, 2, 4}
	if len(steps) != len(want) {
		t.Fatalf("emitted steps %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("emitted steps %v, want %v", steps, want)
		}
	}
}

// brokenPipe fails every write after the first n with EPIPE, emulating
// `bhrun -stream | head -1` where the downstream consumer has exited.
type brokenPipe struct {
	writes int
	limit  int
}

func (b *brokenPipe) Write(p []byte) (int, error) {
	b.writes++
	if b.writes > b.limit {
		return 0, &os.PathError{Op: "write", Path: "|1", Err: syscall.EPIPE}
	}
	return len(p), nil
}

// TestRunStreamEPIPEIsClean: a downstream close mid-stream must surface
// as an error runStream classifies as clean (downstreamClosed), with the
// session torn down — the regression was fatal()-ing with exit 1 and no
// Finish/Release.
func TestRunStreamEPIPEIsClean(t *testing.T) {
	w := &brokenPipe{limit: 1}
	err := runStream(w, streamSim(t), 4, 1, false, nil)
	if err == nil {
		t.Fatal("broken pipe surfaced no error to classify")
	}
	if !downstreamClosed(err) {
		t.Fatalf("EPIPE not classified as a clean downstream close: %v", err)
	}
	if !strings.Contains(err.Error(), "broken pipe") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRunStreamSignalStopsCleanly: a pending SIGINT/SIGTERM ends the
// stream at the next step boundary with a finished, released session and
// a nil error (exit 0).
func TestRunStreamSignalStopsCleanly(t *testing.T) {
	sig := make(chan os.Signal, 1)
	sig <- os.Interrupt // already pending: the loop must stop before stepping further
	var buf bytes.Buffer
	if err := runStream(&buf, streamSim(t), 4, 1, false, sig); err != nil {
		t.Fatalf("signalled stream did not stop cleanly: %v", err)
	}
	// Only the step-0 snapshot made it out before the signal was seen.
	lines := strings.Count(buf.String(), "\n")
	if lines != 1 {
		t.Fatalf("signalled stream emitted %d snapshots, want 1 (step 0)", lines)
	}
	var snap upcbh.Snapshot
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Step != 0 {
		t.Fatalf("first snapshot at step %d, want 0", snap.Step)
	}
}

// TestRunStreamFromRestoredSim: a restored simulation streams from its
// captured step, and the remaining snapshot lines are byte-identical to
// the tail of the uninterrupted stream.
func TestRunStreamFromRestoredSim(t *testing.T) {
	opts := upcbh.DefaultOptions(256, 2, upcbh.LevelMergedBuild)
	opts.Steps, opts.Warmup = 4, 1

	var ref bytes.Buffer
	sim, err := upcbh.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := runStream(&ref, sim, opts.Steps, 1, false, nil); err != nil {
		t.Fatal(err)
	}

	src, err := upcbh.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Release()
	if err := src.Step(2); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ck.bin"
	if err := src.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := upcbh.Restore(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := runStream(&got, restored, opts.Steps, 1, false, nil); err != nil {
		t.Fatal(err)
	}

	refLines := strings.Split(strings.TrimSpace(ref.String()), "\n")
	gotLines := strings.Split(strings.TrimSpace(got.String()), "\n")
	if len(refLines) != 5 || len(gotLines) != 3 {
		t.Fatalf("stream lengths: uninterrupted %d, restored %d (want 5 and 3)", len(refLines), len(gotLines))
	}
	// The restored stream's frames are the uninterrupted stream's steps
	// 2..4, byte for byte.
	for i, line := range gotLines {
		if line != refLines[i+2] {
			t.Fatalf("restored stream frame %d diverged:\n%s\nvs\n%s", i, line, refLines[i+2])
		}
	}
}

// TestCheckpointFileKilledMidWrite: SIGKILL delivered while -checkpoint
// is writing must never leave a torn container at the target path — the
// atomic temp-file + rename contract of arena.WriteFileCheckpoint. A
// child process writes the same checkpoint file in a tight loop; the
// parent kills it at varying points and asserts the target is either
// absent or a complete, restorable container. (A *.tmp sibling may
// survive the kill; that is the documented, harmless residue.)
func TestCheckpointFileKilledMidWrite(t *testing.T) {
	if target := os.Getenv("UPCBH_KILL_CKPT"); target != "" {
		// Child: pause a small run at step 2 and overwrite the container
		// until killed.
		opts := upcbh.DefaultOptions(2048, 2, upcbh.LevelMergedBuild)
		opts.Steps, opts.Warmup = 4, 1
		sim, err := upcbh.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Step(2); err != nil {
			t.Fatal(err)
		}
		fmt.Println("CHILD-WRITING")
		for {
			if err := sim.CheckpointFile(target); err != nil {
				t.Fatal(err)
			}
		}
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for i, delay := range []time.Duration{2 * time.Millisecond, 8 * time.Millisecond, 25 * time.Millisecond} {
		target := filepath.Join(t.TempDir(), "kill.ckpt")
		cmd := exec.Command(exe, "-test.run", "^TestCheckpointFileKilledMidWrite$", "-test.v")
		cmd.Env = append(os.Environ(), "UPCBH_KILL_CKPT="+target)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(out)
		ready := false
		for sc.Scan() {
			if strings.Contains(sc.Text(), "CHILD-WRITING") {
				ready = true
				break
			}
		}
		if !ready {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatalf("iteration %d: child never started writing", i)
		}
		time.Sleep(delay)
		if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
			t.Fatal(err)
		}
		_ = cmd.Wait()

		if _, err := os.Stat(target); err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("iteration %d: stat target: %v", i, err)
			}
			continue // killed before the first rename: target absent is correct
		}
		f, err := os.Open(target)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := upcbh.Restore(f)
		f.Close()
		if err != nil {
			t.Fatalf("iteration %d: surviving container is torn: %v", i, err)
		}
		if sim.StepsDone() != 2 {
			t.Fatalf("iteration %d: restored at step %d, want 2", i, sim.StepsDone())
		}
		sim.Release()
	}
}
