// Command bhrun executes one Barnes-Hut simulation configuration and
// prints the per-phase simulated times, runtime statistics, and physics
// diagnostics.
//
// Example:
//
//	bhrun -n 16384 -threads 16 -level subspace -steps 4
//	bhrun -n 8192 -threads 8 -level baseline -pernode 4 -pthreads
package main

import (
	"flag"
	"fmt"
	"os"

	"upcbh"
)

func main() {
	var (
		n        = flag.Int("n", 16384, "number of bodies")
		threads  = flag.Int("threads", 8, "emulated UPC threads")
		levelS   = flag.String("level", "subspace", "optimization level: baseline|scalars|redistribute|cache|merged|async|subspace")
		modeS    = flag.String("mode", "simulate", "execution backend: simulate (modelled cluster time) | native (real parallel run, wall-clock time)")
		scenS    = flag.String("scenario", "plummer", "workload scenario: plummer|two-plummer|uniform|clustered|disk")
		steps    = flag.Int("steps", 4, "time-steps to run")
		warmup   = flag.Int("warmup", 2, "warmup steps excluded from timing")
		theta    = flag.Float64("theta", 1.0, "opening criterion")
		eps      = flag.Float64("eps", 0.05, "softening")
		dt       = flag.Float64("dt", 0.025, "time-step length")
		seed     = flag.Uint64("seed", 123, "RNG seed")
		perNode  = flag.Int("pernode", 1, "threads per node")
		pthreads = flag.Bool("pthreads", false, "use the threaded (-pthreads) runtime model")
		noVec    = flag.Bool("novecreduce", false, "disable vector reductions (subspace level)")
		energy   = flag.Bool("energy", false, "report energy before/after (O(n^2): use modest n)")
	)
	flag.Parse()

	level, err := upcbh.ParseLevel(*levelS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mode, err := upcbh.ParseExecMode(*modeS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scenario, err := upcbh.ParseScenario(*scenS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := upcbh.DefaultOptions(*n, *threads, level)
	opts.ExecMode = mode
	opts.Scenario = scenario.Name()
	opts.Steps, opts.Warmup = *steps, *warmup
	opts.Theta, opts.Eps, opts.Dt, opts.Seed = *theta, *eps, *dt, *seed
	opts.VectorReduce = !*noVec
	if m, err := upcbh.NewMachine(*threads, *perNode, *pthreads); err == nil {
		opts.Machine = m
	} else {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var e0kin, e0pot float64
	if *energy {
		ic, err := upcbh.GenerateScenario(scenario.Name(), *n, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		e0kin, e0pot = upcbh.Energy(ic, *eps)
	}

	sim, err := upcbh.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := sim.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	timeKind := "simulated"
	if mode == upcbh.ModeNative {
		timeKind = "wall-clock"
	}
	fmt.Printf("level=%s mode=%s scenario=%s bodies=%d threads=%d (per-node=%d pthreads=%v) steps=%d measured=%d\n",
		level, mode, scenario.Name(), *n, *threads, *perNode, *pthreads, *steps, *steps-*warmup)
	fmt.Printf("times are %s seconds\n\n", timeKind)
	fmt.Printf("%-16s %12s %6s %12s %12s %10s\n", "phase", "t(s)", "%", "msgs", "MB", "locks")
	total := res.Total()
	for ph := upcbh.Phase(0); ph < upcbh.NumPhases; ph++ {
		if res.Phases[ph] == 0 && res.PhaseComm[ph].Msgs == 0 {
			continue
		}
		c := res.PhaseComm[ph]
		fmt.Printf("%-16s %12.6f %6.1f %12d %12.2f %10d\n",
			ph, res.Phases[ph], 100*res.Phases[ph]/total, c.Msgs, float64(c.Bytes)/1e6, c.LockAcqs)
	}
	fmt.Printf("%-16s %12.6f\n\n", "Total", total)

	st := res.Stats
	fmt.Printf("interactions (measured steps): %d\n", res.Interactions)
	fmt.Printf("messages: %d (%.1f MB), remote gets/puts: %d/%d, lock acquires: %d\n",
		st.Msgs, float64(st.Bytes)/1e6, st.RemoteGets, st.RemotePuts, st.LockAcqs)
	fmt.Printf("gather requests: %d (single-source fraction %.1f%%)\n",
		st.GatherReqs, 100*st.SingleSourceFraction())
	fmt.Printf("bodies migrated per step: %.2f%%, buffer compactions: %d\n",
		100*res.MigratedFraction, res.BufferCopies)

	if *energy {
		e1kin, e1pot := upcbh.Energy(res.Bodies, *eps)
		e0, e1 := e0kin+e0pot, e1kin+e1pot
		fmt.Printf("\nenergy: initial %.6f (T=%.6f V=%.6f)  final %.6f  drift %.3g%%\n",
			e0, e0kin, e0pot, e1, 100*(e1-e0)/-e0)
	}
}
