// Command bhrun executes one Barnes-Hut simulation configuration and
// prints the per-phase simulated times, runtime statistics, and physics
// diagnostics.
//
// Example:
//
//	bhrun -n 16384 -threads 16 -level subspace -steps 4
//	bhrun -n 8192 -threads 8 -level baseline -pernode 4 -pthreads
//
// With -stream the run executes through the steppable session engine
// and emits one JSON snapshot per line on stdout (NDJSON) — the initial
// state, then one every -snap-every steps — instead of the report:
//
//	bhrun -n 4096 -threads 8 -steps 8 -stream -snap-every 2
//	bhrun -n 512 -steps 4 -stream -snap-bodies | jq .step
//
// With -checkpoint the run pauses at -checkpoint-at, writes the full
// paused state as one checkpoint container, and continues; -restore
// resumes a run from such a container (which carries the complete
// configuration) and produces byte-identical remaining output:
//
//	bhrun -n 16384 -threads 8 -steps 8 -checkpoint run.ckpt -checkpoint-at 4
//	bhrun -restore run.ckpt
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"upcbh"
)

// usageErr reports a flag-validation failure and exits with the
// conventional usage status.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bhrun: %s\n", fmt.Sprintf(format, args...))
	fmt.Fprintln(os.Stderr, "run 'bhrun -h' for usage")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	var (
		n        = flag.Int("n", 16384, "number of bodies")
		threads  = flag.Int("threads", 8, "emulated UPC threads")
		levelS   = flag.String("level", "subspace", "optimization level: baseline|scalars|redistribute|cache|merged|async|subspace")
		modeS    = flag.String("mode", "simulate", "execution backend: simulate (modelled cluster time) | native (real parallel run, wall-clock time)")
		scenS    = flag.String("scenario", "plummer", "workload scenario: plummer|two-plummer|uniform|clustered|disk")
		steps    = flag.Int("steps", 4, "time-steps to run")
		warmup   = flag.Int("warmup", 2, "warmup steps excluded from timing")
		theta    = flag.Float64("theta", 1.0, "opening criterion")
		eps      = flag.Float64("eps", 0.05, "softening")
		dt       = flag.Float64("dt", 0.025, "time-step length")
		seed     = flag.Uint64("seed", 123, "RNG seed")
		perNode  = flag.Int("pernode", 1, "threads per node")
		pthreads = flag.Bool("pthreads", false, "use the threaded (-pthreads) runtime model")
		noVec    = flag.Bool("novecreduce", false, "disable vector reductions (subspace level)")
		energy   = flag.Bool("energy", false, "report energy before/after (O(n^2): use modest n)")

		stream     = flag.Bool("stream", false, "steppable run: emit one JSON snapshot per line on stdout instead of the report")
		snapEvery  = flag.Int("snap-every", 1, "with -stream: steps between snapshots")
		snapBodies = flag.Bool("snap-bodies", false, "with -stream: include the full body state in each snapshot")

		ckptFile = flag.String("checkpoint", "", "write a checkpoint container to this file at step -checkpoint-at, then continue the run")
		ckptAt   = flag.Int("checkpoint-at", 0, "with -checkpoint: absolute step at which to capture (0 = the initial state)")
		restoreF = flag.String("restore", "", "resume from a checkpoint file; the container carries the full configuration, so the simulation-shape flags conflict")
	)
	flag.Parse()

	// Upfront validation: reject inconsistent invocations with a usage
	// error before any simulation state is built.
	if args := flag.Args(); len(args) > 0 {
		usageErr("unexpected arguments: %v", args)
	}
	if *n < 2 {
		usageErr("-n must be at least 2, got %d", *n)
	}
	if *threads < 1 {
		usageErr("-threads must be positive, got %d", *threads)
	}
	if *steps <= 0 {
		usageErr("-steps must be positive, got %d", *steps)
	}
	if *warmup < 0 {
		usageErr("-warmup must be non-negative, got %d", *warmup)
	}
	if *warmup >= *steps {
		usageErr("-warmup (%d) must be less than -steps (%d)", *warmup, *steps)
	}
	if !*stream {
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "snap-every", "snap-bodies":
				usageErr("-%s requires -stream", f.Name)
			}
		})
	}
	if *snapEvery <= 0 {
		usageErr("-snap-every must be positive, got %d", *snapEvery)
	}
	if *stream && *energy {
		usageErr("-energy cannot be combined with -stream (the snapshot stream owns stdout)")
	}
	if *restoreF != "" {
		// The checkpoint container carries the complete configuration; a
		// flag that would contradict it is a mistake, not an override.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "n", "threads", "level", "mode", "scenario", "steps", "warmup",
				"theta", "eps", "dt", "seed", "pernode", "pthreads", "novecreduce":
				usageErr("-%s conflicts with -restore (the checkpoint carries the configuration)", f.Name)
			case "energy":
				usageErr("-energy needs the initial conditions, which a restored run no longer has")
			}
		})
	}
	if *ckptFile == "" {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "checkpoint-at" {
				usageErr("-checkpoint-at requires -checkpoint")
			}
		})
	} else {
		if *stream {
			usageErr("-checkpoint cannot be combined with -stream (use the session service for that)")
		}
		if *ckptAt < 0 {
			usageErr("-checkpoint-at must be non-negative, got %d", *ckptAt)
		}
	}

	level, err := upcbh.ParseLevel(*levelS)
	if err != nil {
		usageErr("%v", err)
	}
	mode, err := upcbh.ParseExecMode(*modeS)
	if err != nil {
		usageErr("%v", err)
	}
	scenario, err := upcbh.ParseScenario(*scenS)
	if err != nil {
		usageErr("%v", err)
	}
	opts := upcbh.DefaultOptions(*n, *threads, level)
	opts.ExecMode = mode
	opts.Scenario = scenario.Name()
	opts.Steps, opts.Warmup = *steps, *warmup
	opts.Theta, opts.Eps, opts.Dt, opts.Seed = *theta, *eps, *dt, *seed
	opts.VectorReduce = !*noVec
	if m, err := upcbh.NewMachine(*threads, *perNode, *pthreads); err == nil {
		opts.Machine = m
	} else {
		usageErr("%v", err)
	}

	// Build the simulation: either fresh from the flags or resumed from a
	// checkpoint container, which carries the full configuration (the
	// restored Options replace the flag-derived ones everywhere below).
	var sim *upcbh.Sim
	if *restoreF != "" {
		f, err := os.Open(*restoreF)
		if err != nil {
			fatal(err)
		}
		sim, err = upcbh.Restore(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		opts = sim.Options()
		fmt.Fprintf(os.Stderr, "bhrun: resumed from %s at step %d of %d\n", *restoreF, sim.StepsDone(), opts.Steps)
	} else {
		var err error
		sim, err = upcbh.New(opts)
		if err != nil {
			fatal(err)
		}
	}

	if *stream {
		// A downstream close (`bhrun -stream | head -1`) surfaces as EPIPE
		// from the snapshot encoder: that is the consumer saying "enough",
		// not a failure — tear the session down and exit 0. SIGINT/SIGTERM
		// get the same clean teardown: runStream checks the signal channel
		// between steps, finishes the session, and returns nil.
		// The Go runtime re-raises SIGPIPE (killing the process with no
		// teardown) when a write to stdout gets EPIPE; ignore it so the
		// encoder surfaces the EPIPE as an error we can classify instead.
		signal.Ignore(syscall.SIGPIPE)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		if err := runStream(os.Stdout, sim, opts.Steps, *snapEvery, *snapBodies, sig); err != nil && !downstreamClosed(err) {
			fatal(err)
		}
		return
	}

	var e0kin, e0pot float64
	if *energy {
		ic, err := upcbh.GenerateScenario(opts.Scenario, opts.Bodies, opts.Seed)
		if err != nil {
			fatal(err)
		}
		e0kin, e0pot = upcbh.Energy(ic, opts.Eps)
	}

	if *ckptFile != "" {
		if *ckptAt > opts.Steps {
			usageErr("-checkpoint-at %d exceeds the %d-step schedule", *ckptAt, opts.Steps)
		}
		if *ckptAt < sim.StepsDone() {
			usageErr("-checkpoint-at %d is before the restored step %d", *ckptAt, sim.StepsDone())
		}
		if k := *ckptAt - sim.StepsDone(); k > 0 {
			if err := sim.Step(k); err != nil {
				fatal(err)
			}
		}
		if err := sim.CheckpointFile(*ckptFile); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bhrun: checkpoint written to %s at step %d\n", *ckptFile, sim.StepsDone())
	}

	res, err := sim.Run()
	if err != nil {
		fatal(err)
	}
	sim.Release()

	timeKind := "simulated"
	if opts.ExecMode == upcbh.ModeNative {
		timeKind = "wall-clock"
	}
	m := opts.Machine
	fmt.Printf("level=%s mode=%s scenario=%s bodies=%d threads=%d (per-node=%d pthreads=%v) steps=%d measured=%d\n",
		opts.Level, opts.ExecMode, opts.Scenario, opts.Bodies, m.Threads, m.ThreadsPerNode, m.Pthreads, opts.Steps, opts.Steps-opts.Warmup)
	fmt.Printf("times are %s seconds\n\n", timeKind)
	fmt.Printf("%-16s %12s %6s %12s %12s %10s\n", "phase", "t(s)", "%", "msgs", "MB", "locks")
	total := res.Total()
	for ph := upcbh.Phase(0); ph < upcbh.NumPhases; ph++ {
		if res.Phases[ph] == 0 && res.PhaseComm[ph].Msgs == 0 {
			continue
		}
		c := res.PhaseComm[ph]
		fmt.Printf("%-16s %12.6f %6.1f %12d %12.2f %10d\n",
			ph, res.Phases[ph], 100*res.Phases[ph]/total, c.Msgs, float64(c.Bytes)/1e6, c.LockAcqs)
	}
	fmt.Printf("%-16s %12.6f\n\n", "Total", total)

	st := res.Stats
	fmt.Printf("interactions (measured steps): %d\n", res.Interactions)
	fmt.Printf("messages: %d (%.1f MB), remote gets/puts: %d/%d, lock acquires: %d\n",
		st.Msgs, float64(st.Bytes)/1e6, st.RemoteGets, st.RemotePuts, st.LockAcqs)
	fmt.Printf("gather requests: %d (single-source fraction %.1f%%)\n",
		st.GatherReqs, 100*st.SingleSourceFraction())
	fmt.Printf("bodies migrated per step: %.2f%%, buffer compactions: %d\n",
		100*res.MigratedFraction, res.BufferCopies)

	if *energy {
		e1kin, e1pot := upcbh.Energy(res.Bodies, opts.Eps)
		e0, e1 := e0kin+e0pot, e1kin+e1pot
		fmt.Printf("\nenergy: initial %.6f (T=%.6f V=%.6f)  final %.6f  drift %.3g%%\n",
			e0, e0kin, e0pot, e1, 100*(e1-e0)/-e0)
	}
}

// downstreamClosed reports whether a stream write failed because the
// consumer went away (closed pipe / closed file): the conventional clean
// end of an NDJSON pipeline, not an error.
func downstreamClosed(err error) bool {
	return errors.Is(err, syscall.EPIPE) || errors.Is(err, os.ErrClosed)
}

// runStream drives the simulation through the steppable session engine,
// emitting one JSON snapshot per line on w: the current state first
// (step 0 for a fresh run, the captured step for a restored one), then
// one every `every` steps (the final interval truncated to the
// schedule). It returns errors instead of exiting, and it always tears
// the session down before returning — on success via Finish, on any
// early exit (write error, observer gone, signal) via the deferred
// Release, which finishes a still-paused session before recycling its
// storage. A signal on sig ends the stream cleanly (nil error) at the
// next step boundary.
func runStream(w io.Writer, sim *upcbh.Sim, steps, every int, withBodies bool, sig <-chan os.Signal) error {
	defer sim.Release()
	enc := json.NewEncoder(w)
	emit := func() error {
		snap, err := sim.Snapshot()
		if err != nil {
			return err
		}
		if !withBodies {
			snap.Bodies = nil
		}
		return enc.Encode(snap)
	}
	if err := emit(); err != nil {
		return err
	}
loop:
	for sim.StepsDone() < steps {
		select {
		case <-sig:
			break loop
		default:
		}
		k := every
		if rem := steps - sim.StepsDone(); k > rem {
			k = rem
		}
		if err := sim.Step(k); err != nil {
			return err
		}
		if err := emit(); err != nil {
			return err
		}
	}
	if _, err := sim.Finish(); err != nil {
		return err
	}
	return nil
}
