// Command bhbench regenerates the paper's tables and figures.
//
// Usage:
//
//	bhbench -list
//	bhbench -exp table5
//	bhbench -exp all -scale 0.5 -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"upcbh/internal/bench"
	"upcbh/internal/core"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("exp", "", "experiment id (table2..table9, fig5..fig13) or 'all'")
		scale   = flag.Float64("scale", 1.0, "workload scale factor (1.0 = harness default sizes)")
		maxThr  = flag.Int("maxthreads", 0, "cap emulated thread counts (0 = experiment defaults)")
		outDir  = flag.String("out", "", "also write each experiment's output to <out>/<id>.txt")
		steps   = flag.Int("steps", 0, "override total time-steps (default: paper's 4)")
		warmup  = flag.Int("warmup", 0, "override warmup steps (default: paper's 2)")
		modeS   = flag.String("mode", "simulate", "execution backend: simulate | native (cost-model experiments — table9, fig12, ext-cache, ext-mpi — always run simulated; ext-native always runs both)")
		verbose = flag.Bool("v", false, "print timing of each experiment run")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments (bhbench -exp <id>):")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n           paper: %s\n", e.ID, e.Title, e.Paper)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	p := bench.DefaultParams()
	p.Scale = *scale
	p.MaxThreads = *maxThr
	p.Steps, p.Warmup = *steps, *warmup
	mode, err := core.ParseExecMode(*modeS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p.Mode = mode

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		out, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\npaper: %s\n\n%s\n", e.ID, e.Paper, out)
		if *verbose {
			fmt.Printf("(%s ran in %v wall time)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
