// Command bhbench regenerates the paper's tables and figures.
//
// Usage:
//
//	bhbench -list
//	bhbench -exp table5
//	bhbench -exp layout                       # pointer vs flat octree, per phase
//	bhbench -exp all -scale 0.5 -out results/ -json
//
// Experiments run through a shared memoized Runner: configurations that
// several tables/figures have in common simulate once, independent
// simulate-mode configurations run concurrently (-parallel workers), and
// native-mode configurations run exclusively so their wall-clock timings
// stay clean. With -json, the structured reports land in a
// BENCH_results.json trajectory file next to the text output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"upcbh/internal/bench"
	"upcbh/internal/core"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		exp      = flag.String("exp", "", "experiment id (table2..table9, fig5..fig13) or 'all'")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1.0 = harness default sizes)")
		maxThr   = flag.Int("maxthreads", 0, "cap emulated thread counts (0 = experiment defaults)")
		outDir   = flag.String("out", "", "also write each experiment's output to <out>/<id>.txt (and BENCH_results.json there with -json)")
		jsonOut  = flag.Bool("json", false, "write structured reports to BENCH_results.json (in -out dir, else cwd)")
		parallel = flag.Int("parallel", 0, "simulate-mode worker pool size (0 = one per host core)")
		steps    = flag.Int("steps", 0, "override total time-steps (default: paper's 4)")
		warmup   = flag.Int("warmup", 0, "override warmup steps (default: paper's 2)")
		modeS    = flag.String("mode", "simulate", "execution backend: simulate | native (cost-model experiments — table9, fig12, ext-cache, ext-mpi — always run simulated; ext-native always runs both)")
		scenS    = flag.String("scenario", "", "workload scenario for every experiment: plummer|two-plummer|uniform|clustered|disk (default plummer; the imbalance experiment sweeps all of them)")
		threadsS = flag.String("threads", "", "comma-separated native thread counts for the scaling experiment (default: doubling counts up to this host's CPUs; counts beyond NumCPU are rejected)")
		verbose  = flag.Bool("v", false, "print per-experiment timing and per-run progress")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile covering all experiment execution to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (taken after all experiments) to this file")
	)
	flag.Parse()

	// Profiling brackets the experiment loop below so future perf PRs can
	// attach pprof evidence: bhbench -exp all -cpuprofile cpu.out, then
	// `go tool pprof` on the result.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list || *exp == "" {
		fmt.Println("Available experiments (bhbench -exp <id>):")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n           paper: %s\n", e.ID, e.Title, e.Paper)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	p := bench.DefaultParams()
	p.Scale = *scale
	p.MaxThreads = *maxThr
	p.Steps, p.Warmup = *steps, *warmup
	mode, err := core.ParseExecMode(*modeS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p.Mode = mode
	scenario, err := core.ParseScenario(*scenS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Only pin the scenario when the user asked for one: an empty
	// Params.Scenario falls back to the default per experiment, which
	// lets multi-scenario experiments (scaling) run their full default
	// set instead of being narrowed to plummer.
	if *scenS != "" {
		p.Scenario = scenario.Name()
	}
	if *threadsS != "" {
		counts, err := parseThreads(*threadsS)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		p.NativeThreads = counts
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	runner := bench.NewRunner(*parallel)
	if *verbose {
		runner.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var reports []*bench.Report
	for _, e := range exps {
		rep, err := e.Run(runner, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		reports = append(reports, rep)
		fmt.Printf("=== %s ===\npaper: %s\n\n%s\n", rep.ID, rep.Paper, rep.Text)
		if *verbose {
			fmt.Printf("(%s ran in %v wall time)\n\n", rep.ID, time.Duration(rep.Elapsed*float64(time.Second)).Round(time.Millisecond))
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(rep.Text), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	stats := runner.Stats()
	fmt.Fprintf(os.Stderr, "runner: %d simulations (%d native), %d cache hits — %.0f%% of requests deduplicated, %d workers\n",
		stats.Runs, stats.NativeRuns, stats.Hits, 100*stats.DedupFraction(), runner.Workers())

	if *jsonOut {
		traj := &bench.Trajectory{
			Generated: time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			Params:    p,
			Env:       bench.CaptureEnv(),
			Runner:    stats,
			Reports:   reports,
		}
		raw, err := traj.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dir := *outDir
		if dir == "" {
			dir = "."
		}
		path := filepath.Join(dir, "BENCH_results.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d reports, %d configs)\n", path, len(reports), totalConfigs(reports))

		// The scaling wall additionally lands in its own artifact file:
		// the permanent machine-stamped record CI uploads per run.
		for _, rep := range reports {
			if rep.ID != "scaling" {
				continue
			}
			raw, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			spath := filepath.Join(dir, "BENCH_scaling.json")
			if err := os.WriteFile(spath, append(raw, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", spath)
		}
	}
}

// parseThreads parses the -threads list and rejects counts this host
// cannot genuinely run in parallel: a point with more threads than CPUs
// measures Go-scheduler timesharing, not scaling.
func parseThreads(s string) ([]int, error) {
	ncpu := runtime.NumCPU()
	var counts []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bhbench: bad -threads entry %q: %v", part, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("bhbench: -threads entry %d: thread counts must be >= 1", v)
		}
		if v > ncpu {
			return nil, fmt.Errorf("bhbench: -threads entry %d exceeds this machine's %d CPUs — an oversubscribed run measures timesharing, not scaling (omit -threads for the default sweep)", v, ncpu)
		}
		counts = append(counts, v)
	}
	return counts, nil
}

func totalConfigs(reports []*bench.Report) int {
	n := 0
	for _, r := range reports {
		n += len(r.Configs)
	}
	return n
}
